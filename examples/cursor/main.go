// Cursor walkthrough: runs the incremental scheduler on the task set of
// the paper's Figure 2 with event tracing enabled, prints the full event
// log, and reconstructs the Closed/Alive/Future partition at the cursor
// instant of the paper's running example (t = 5: C gains n6, A = {n0, n4,
// n7, n9} after n7 opens).
//
//	go run ./examples/cursor
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
	"github.com/mia-rt/mia/internal/trace"
)

func main() {
	g := gen.Figure2()

	var rec trace.Recorder
	res, err := incremental.Schedule(g, sched.Options{Trace: rec.Hook()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- event log (the cursor mechanism of Section IV) --")
	if err := rec.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("-- the paper's running example at t = 5 --")
	fmt.Println(rec.PartitionAt(g, 5).String())
	fmt.Println()

	fmt.Println("-- final schedule --")
	fmt.Print(sched.Gantt(g, res, 68))
}
