// Figure 1 of the paper, end to end: the five-task example scheduled twice
// — once ignoring interference (top diagram, global WCRT 6) and once under
// the Kalray round-robin arbiter (bottom diagram, global WCRT 7 with
// interference 1 on n0, 1 on n1 and 2 on n3).
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func main() {
	g := gen.Figure1()

	fmt.Println("Figure 1 task set: 5 tasks, 4 cores, 1 shared bank")
	fmt.Println()

	naive, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewNone()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- interference ignored (paper: top diagram, t = 6) --")
	fmt.Print(sched.Gantt(g, naive, 60))
	fmt.Println()

	rr, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- round-robin interference accounted (paper: bottom diagram, t = 7) --")
	fmt.Print(sched.Gantt(g, rr, 60))
	fmt.Println()

	fmt.Printf("naive makespan %d, interference-aware makespan %d\n", naive.Makespan, rr.Makespan)
	if naive.Makespan != 6 || rr.Makespan != 7 {
		log.Fatalf("expected 6 and 7 as published")
	}
	fmt.Println("matches the published schedules exactly.")
}
