// Avionics case study: a ROSACE-style longitudinal flight-controller
// dataflow (sensor filters → control laws → actuators over two control
// periods) mapped on 4 cores with per-core memory banks — the class of
// application the paper's introduction motivates.
//
// The example compares three arbitration policies on the same task set,
// validates the round-robin schedule against the cycle-level bus simulator,
// and prints the safety margin actually observed.
//
//	go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
	"github.com/mia-rt/mia/internal/sim"
)

func main() {
	g := gen.Avionics()
	fmt.Printf("flight controller: %d tasks, %d edges on %d cores / %d banks\n\n",
		g.NumTasks(), len(g.Edges()), g.Cores, g.Banks)

	policies := []arbiter.Arbiter{
		arbiter.NewNone(),
		arbiter.NewRoundRobin(1),
		arbiter.NewTDM(g.Cores, 1),
	}
	fmt.Printf("%-22s %10s %14s\n", "arbiter", "makespan", "interference")
	var rr *sched.Result
	for _, arb := range policies {
		res, err := incremental.Schedule(g, sched.Options{Arbiter: arb})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %14d\n", arb.Name(), res.Makespan, res.TotalInterference())
		if arb.Name() == "round-robin(L=1)" {
			rr = res
		}
	}
	fmt.Println()
	fmt.Print(sched.Gantt(g, rr, 76))
	fmt.Println()

	// Validate the round-robin schedule against the cycle-level simulator
	// under the most contentious access pattern.
	out, err := sim.Run(g, rr.Release, sim.Config{Pattern: sim.Front})
	if err != nil {
		log.Fatal(err)
	}
	worstSlack := model.Infinity
	var worstTask model.TaskID
	for i := range out.Finish {
		id := model.TaskID(i)
		slack := rr.Finish(id) - out.Finish[i]
		if slack < 0 {
			log.Fatalf("%s finished at %d, past its bound %d — analysis unsound!", id, out.Finish[i], rr.Finish(id))
		}
		if slack < worstSlack {
			worstSlack, worstTask = slack, id
		}
	}
	fmt.Printf("cycle-level simulation: all %d tasks within their analyzed windows\n", g.NumTasks())
	fmt.Printf("tightest margin: %d cycles on %s (%s)\n", worstSlack, worstTask, g.Task(worstTask).Name)
	fmt.Printf("simulated makespan %d vs analyzed worst case %d\n", out.Makespan, rr.Makespan)
}
