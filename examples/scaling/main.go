// Scaling demonstration: the conclusion of the paper claims the incremental
// algorithm handles "more than 8000 tasks while maintaining a reasonable
// execution time". This example generates an 8192-task LS64 benchmark DAG
// (the heaviest family of Figure 3), schedules it, and reports the wall
// clock — then doubles to 16384 for good measure.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func main() {
	fmt.Printf("%8s %12s %14s %12s\n", "tasks", "analysis(s)", "makespan", "events")
	for _, tasks := range []int{1024, 2048, 4096, 8192, 16384} {
		p := gen.NewParams(tasks/64, 64) // LS64: layer size 64
		g, err := gen.Layered(p)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%8d %12.4f %14d %12d\n", tasks, elapsed.Seconds(), res.Makespan, res.Iterations)
	}
	fmt.Println("\nthe O(n⁴) baseline needs hours beyond ~1k tasks; see `miabench -scale`.")
}
