// Multi-cluster deployment: two compute clusters of an MPPA-256-style chip
// run a producer pipeline and a consumer pipeline; their cross-cluster
// channel traverses the NoC (2D torus, X-then-Y routing, (σ,ρ)-regulated
// flows). The per-cluster schedules come from the paper's O(n²) analysis;
// the NoC worst-case traversal bound couples them into a global
// time-triggered schedule.
//
//	go run ./examples/multicluster
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/noc"
	"github.com/mia-rt/mia/internal/sched"
)

func main() {
	// Cluster 0: sensor acquisition + preprocation feeding the NoC.
	b0 := model.NewBuilder(4, 4)
	acq := b0.AddTask(model.TaskSpec{Name: "acquire", WCET: 300, Core: 0, Local: 120})
	f1 := b0.AddTask(model.TaskSpec{Name: "filter_a", WCET: 250, Core: 1, Local: 90})
	f2 := b0.AddTask(model.TaskSpec{Name: "filter_b", WCET: 260, Core: 2, Local: 95})
	pack := b0.AddTask(model.TaskSpec{Name: "pack", WCET: 150, Core: 3, Local: 60})
	b0.AddEdge(acq, f1, 32)
	b0.AddEdge(acq, f2, 32)
	b0.AddEdge(f1, pack, 24)
	b0.AddEdge(f2, pack, 24)
	g0 := b0.MustBuild()

	// Cluster 5 (one X-hop, one Y-hop away): fusion and decision.
	b1 := model.NewBuilder(4, 4)
	unpack := b1.AddTask(model.TaskSpec{Name: "unpack", WCET: 140, Core: 0, Local: 55})
	fuse := b1.AddTask(model.TaskSpec{Name: "fuse", WCET: 400, Core: 1, Local: 150})
	act := b1.AddTask(model.TaskSpec{Name: "actuate", WCET: 180, Core: 2, Local: 70})
	b1.AddEdge(unpack, fuse, 40)
	b1.AddEdge(fuse, act, 16)
	g1 := b1.MustBuild()

	system := &noc.System{
		Topology: noc.MPPA256(),
		Graphs:   map[noc.ClusterID]*model.Graph{0: g0, 5: g1},
		Edges: []noc.InterEdge{{
			FromCluster: 0, FromTask: pack,
			ToCluster: 5, ToTask: unpack,
			Flow: noc.Flow{Name: "pack→unpack", Burst: 16, Rate: 0.25, PacketFlits: 64},
		}},
	}

	res, err := system.Analyze(context.Background(), sched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-cluster analysis (MPPA-256 4×4 torus):")
	fmt.Printf("  NoC worst-case traversal for %q: %d cycles over route cluster0→cluster5\n",
		"pack→unpack", res.EdgeLatency[0])
	fmt.Printf("  converged in %d global rounds\n\n", res.Rounds)
	for _, c := range []noc.ClusterID{0, 5} {
		r := res.Schedules[c]
		fmt.Printf("cluster %d: makespan %d cycles, total interference %d\n",
			c, r.Makespan, r.TotalInterference())
	}
	fmt.Printf("\nglobal worst-case makespan: %d cycles\n", res.Makespan)
	fmt.Printf("consumer %q released at %d = producer finish %d + NoC bound %d\n",
		"unpack", res.Schedules[5].Release[0], res.Schedules[0].Finish(3), res.EdgeLatency[0])
}
