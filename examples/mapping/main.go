// Mapping strategies: the framework stage upstream of the paper's analysis.
// An unmapped image-processing pipeline DAG is mapped onto 4 cores with
// three strategies (the evaluation's cyclic rule, greedy load balancing,
// and HEFT-style list scheduling), then each mapping is pushed through the
// O(n²) interference analysis to compare end-to-end worst-case makespans.
//
//	go run ./examples/mapping
package main

import (
	"fmt"
	"log"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func main() {
	// A fork-join image pipeline: capture → demosaic → 6 parallel tile
	// filters → merge → encode, with communication volumes on every edge.
	p := &mapper.Problem{
		Cores: 4, Banks: 4,
		Specs: []mapper.Spec{
			{Name: "capture", WCET: 120, Local: 60},
			{Name: "demosaic", WCET: 400, Local: 200},
		},
	}
	p.Edges = append(p.Edges, mapper.Edge{From: 0, To: 1, Words: 64})
	for i := 0; i < 6; i++ {
		p.Specs = append(p.Specs, mapper.Spec{
			Name:  fmt.Sprintf("filter%d", i),
			WCET:  model.Cycles(250 + 80*(i%3)),
			Local: 120,
		})
		p.Edges = append(p.Edges, mapper.Edge{From: 1, To: 2 + i, Words: 32})
	}
	merge := len(p.Specs)
	p.Specs = append(p.Specs, mapper.Spec{Name: "merge", WCET: 180, Local: 90})
	for i := 0; i < 6; i++ {
		p.Edges = append(p.Edges, mapper.Edge{From: 2 + i, To: merge, Words: 32})
	}
	p.Specs = append(p.Specs, mapper.Spec{Name: "encode", WCET: 300, Local: 150})
	p.Edges = append(p.Edges, mapper.Edge{From: merge, To: merge + 1, Words: 48})

	fmt.Printf("unmapped pipeline: %d tasks, %d edges → 4 cores\n\n", len(p.Specs), len(p.Edges))
	fmt.Printf("%-22s %12s %14s\n", "mapping strategy", "makespan", "interference")
	for _, s := range []mapper.Strategy{
		mapper.RoundRobinLayers{},
		mapper.LoadBalance{},
		mapper.ListScheduling{},
	} {
		g, err := mapper.Map(p, s)
		if err != nil {
			log.Fatal(err)
		}
		res, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12d %14d\n", s.Name(), res.Makespan, res.TotalInterference())
	}
	fmt.Println("\nmapping happens before the analysis (the paper takes it as input);")
	fmt.Println("the analysis then fixes release dates so the bounds hold at run time.")
}
