// Quickstart: build a small task graph programmatically, run the paper's
// O(n²) incremental interference analysis, and print the resulting
// time-triggered schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func main() {
	// A 2-core platform with one shared memory bank behind a round-robin
	// arbiter: the smallest configuration where memory interference is
	// visible.
	b := model.NewBuilder(2, 1)

	// Two producers run concurrently on different cores, then a consumer
	// aggregates their outputs. WCETs are in cycles; Local is the number
	// of shared-memory accesses each task performs for its own data.
	left := b.AddTask(model.TaskSpec{Name: "sense_left", WCET: 40, Core: 0, Local: 12})
	right := b.AddTask(model.TaskSpec{Name: "sense_right", WCET: 35, Core: 1, Local: 10})
	fuse := b.AddTask(model.TaskSpec{Name: "fuse", WCET: 25, Core: 0, Local: 6})

	// Each producer writes 8 words into the consumer's bank.
	b.AddEdge(left, fuse, 8)
	b.AddEdge(right, fuse, 8)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := incremental.Schedule(g, sched.Options{
		Arbiter: arbiter.NewRoundRobin(1), // the Kalray MPPA-256 policy
	})
	if err != nil {
		log.Fatal(err) // wraps sched.ErrUnschedulable on failure
	}

	fmt.Printf("schedulable: makespan %d cycles\n\n", res.Makespan)
	for i, task := range g.Tasks() {
		id := model.TaskID(i)
		fmt.Printf("%-12s core %d  release %3d  WCET %3d  interference %2d  finish %3d\n",
			task.Name, task.Core, res.Release[id], task.WCET, res.Interference[id], res.Finish(id))
	}
	fmt.Println()
	fmt.Print(sched.Gantt(g, res, 64))

	// The two producers overlap and share the bank: each suffers
	// round-robin interference bounded by min(opponent accesses, own
	// accesses) — visible above as non-zero interference on both.
}
