// Command miaopt runs the multi-objective design-space search: an NSGA-II
// portfolio over per-core order permutations, task→core remappings, and
// bank-policy changes, reporting the Pareto front of makespan vs. peak
// per-bank interference vs. bank-load balance (or any registered objective
// vector). The front is byte-identical across -jobs levels and repeated
// runs of the same seed; the canonical JSON written by -o is the committed
// artifact format under results/.
//
// Usage:
//
//	miaopt graph.json
//	miaopt -gen 24x16 -cores 16 -banks 16 -pop 24 -gens 30 -seed 42 -jobs 4
//	miaopt -gen 240x16 -pop 12 -gens 8 -o results/pareto_10x.json
//	miaopt -objectives makespan,comm-affinity graph.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/explore/objective"
	"github.com/mia-rt/mia/internal/explore/pareto"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miaopt:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miaopt", flag.ContinueOnError)
	var (
		genShape  = fs.String("gen", "", `generate a layered instance "LAYERSxSIZE" (e.g. "24x16") instead of reading a graph file`)
		cores     = fs.Int("cores", 16, "platform cores for -gen (default: the MPPA-256 cluster's 16)")
		banks     = fs.Int("banks", 16, "platform banks for -gen")
		graphSeed = fs.Int64("graph-seed", 1, "instance seed for -gen")
		objNames  = fs.String("objectives", "", "comma-separated objective names (default: "+strings.Join(objective.NamesOf(objective.Default()), ",")+"; registered: "+strings.Join(objective.Names(), ",")+")")
		popSize   = fs.Int("pop", 0, "population size (default 24)")
		gens      = fs.Int("gens", 0, "NSGA-II generations (default 30)")
		seed      = fs.Int64("seed", 1, "search seed (the front is a pure function of graph, options, and seed)")
		jobs      = fs.Int("jobs", 1, "parallel candidate evaluations (the front is byte-identical at every level)")
		outPath   = fs.String("o", "", "write the canonical front JSON to this file")
		progress  = fs.Bool("progress", false, "log each front update to stderr as the search runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *model.Graph
	switch {
	case *genShape != "":
		var layers, size int
		if _, err := fmt.Sscanf(*genShape, "%dx%d", &layers, &size); err != nil || layers < 1 || size < 1 {
			return fmt.Errorf("bad -gen shape %q (want LAYERSxSIZE, e.g. 24x16)", *genShape)
		}
		p := gen.NewParams(layers, size)
		p.Seed = *graphSeed
		p.Cores, p.Banks = *cores, *banks
		g = gen.MustLayered(p)
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		if g, err = model.ReadJSON(f); err != nil {
			return fmt.Errorf("reading %s: %w", fs.Arg(0), err)
		}
	default:
		return fmt.Errorf("need a graph file or -gen shape (and at most one graph)")
	}

	var objs []objective.Objective
	if *objNames != "" {
		for _, name := range strings.Split(*objNames, ",") {
			o, err := objective.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			objs = append(objs, o)
		}
	}

	img, err := engine.Compile(g, sched.Options{})
	if err != nil {
		return err
	}
	opts := pareto.Options{
		Objectives:  objs,
		PopSize:     *popSize,
		Generations: *gens,
		Seed:        *seed,
		Jobs:        *jobs,
	}
	if *progress {
		opts.OnFront = func(u pareto.FrontUpdate) {
			fmt.Fprintf(os.Stderr, "miaopt: generation %d: %d evaluations, front size %d\n",
				u.Generation, u.Evaluations, len(u.Points))
		}
	}
	res, err := pareto.Search(ctx, img, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "graph: %d tasks, %d cores, %d banks (fingerprint %s)\n",
		img.NumTasks, img.Cores, img.Banks, img.Fingerprint()[:16])
	fmt.Fprintf(stdout, "search: objectives [%s], %d generations, %d evaluations, seed %d\n",
		strings.Join(res.Objectives, ", "), res.Generations, res.Evaluations, *seed)
	fmt.Fprintf(stdout, "front: %d non-dominated points (fingerprint %s)\n", len(res.Front), res.FrontFingerprint())
	for _, p := range res.Front {
		vals := make([]string, len(p.Values))
		for i, v := range p.Values {
			vals[i] = fmt.Sprintf("%s=%.2f", res.Objectives[i], v)
		}
		fmt.Fprintf(stdout, "  %s  policy=%s  %s\n", p.Fingerprint[:16], p.Policy, strings.Join(vals, "  "))
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, res.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outPath)
	}
	return nil
}
