package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOptGeneratedInstance runs a tiny search end to end and checks the
// summary plus the written canonical artifact.
func TestOptGeneratedInstance(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "front.json")
	var buf bytes.Buffer
	args := []string{"-gen", "4x3", "-cores", "4", "-banks", "4", "-graph-seed", "9",
		"-pop", "8", "-gens", "4", "-seed", "5", "-o", out}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"12 tasks", "non-dominated points", "makespan", "peak-interference", "bank-variance"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	artifact, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	if !strings.Contains(string(artifact), `"front"`) {
		t.Errorf("artifact missing front: %s", artifact)
	}

	// Byte-identical at a different -jobs level.
	out2 := filepath.Join(dir, "front2.json")
	args2 := []string{"-gen", "4x3", "-cores", "4", "-banks", "4", "-graph-seed", "9",
		"-pop", "8", "-gens", "4", "-seed", "5", "-jobs", "4", "-o", out2}
	if err := run(context.Background(), args2, &bytes.Buffer{}); err != nil {
		t.Fatalf("run (jobs=4): %v", err)
	}
	artifact2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatalf("reading artifact 2: %v", err)
	}
	if !bytes.Equal(artifact, artifact2) {
		t.Errorf("artifacts differ across -jobs levels")
	}
}

// TestOptObjectiveSelection runs with a custom objective vector.
func TestOptObjectiveSelection(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-gen", "4x3", "-cores", "4", "-banks", "4",
		"-pop", "6", "-gens", "2", "-objectives", "makespan,comm-affinity"}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "objectives [makespan, comm-affinity]") {
		t.Errorf("output missing custom objectives:\n%s", buf.String())
	}
}

// TestOptBadArgs covers the argument error surface.
func TestOptBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-gen", "bogus"},
		{"-gen", "4x3", "-objectives", "nope"},
		{"nonexistent-file.json"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
