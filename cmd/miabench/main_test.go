package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPanelsQuickSubset(t *testing.T) {
	var buf bytes.Buffer
	// A tiny custom subset through the real flag path: restrict to LS4 and
	// lean on the quick sizes but with a small platform via flags.
	err := run(context.Background(), []string{"-q", "-panels", "LS4", "-cores", "4", "-banks", "4", "-timeout", "30s"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Panel LS4", "incremental(s)", "fixpoint(s)", "fit incremental"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Panel NL4") {
		t.Error("-panels filter ignored")
	}
}

func TestHeadlineMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-q", "-headline", "-timeout", "120s"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"LS64", "256", "NL64", "384", "593x"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAgreementMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-q", "-agreement", "-cores", "4", "-banks", "4"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "identical schedules:") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestScaleMode(t *testing.T) {
	if testing.Short() {
		t.Skip("scale experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-q", "-scale"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "8192") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-panels", "LS4", "-cores", "-3"}, &bytes.Buffer{}); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestDataAndSVGOutputs(t *testing.T) {
	dir := t.TempDir()
	err := run(context.Background(), []string{"-q", "-panels", "NL4", "-cores", "4", "-banks", "4",
		"-timeout", "30s", "-data", dir + "/data", "-svg", dir + "/svg"}, &bytes.Buffer{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "data", "NL4.csv"))
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if !strings.HasPrefix(string(csv), "panel,algorithm,tasks") {
		t.Errorf("csv header: %q", string(csv)[:40])
	}
	svg, err := os.ReadFile(filepath.Join(dir, "svg", "NL4.svg"))
	if err != nil {
		t.Fatalf("svg: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "O(n^") {
		t.Errorf("svg content bad")
	}
}

func TestReportOutput(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.md")
	err := run(context.Background(), []string{"-q", "-panels", "LS4", "-cores", "4", "-banks", "4",
		"-timeout", "30s", "-report", report}, &bytes.Buffer{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	md, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### Panel LS4", "| tasks |", "- fit `incremental`"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("report missing %q:\n%s", want, md)
		}
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-q", "-panels", "LS4", "-cores", "2", "-banks", "2",
		"-cpuprofile", cpu, "-memprofile", mem}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestInterruptedSweepFlushesTruncatedCSV pins the SIGINT contract end to
// end at the run() level: a canceled context exits nonzero AND still flushes
// the panel CSV with an explicit truncation marker, so partial sweeps leave
// valid, honestly-labeled artifacts behind.
func TestInterruptedSweepFlushesTruncatedCSV(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // what the signal handler does
	var buf bytes.Buffer
	err := run(ctx, []string{"-q", "-panels", "LS4", "-cores", "4", "-banks", "4",
		"-jobs", "2", "-data", dir}, &buf)
	if err == nil {
		t.Fatal("interrupted run must exit nonzero")
	}
	if !strings.Contains(buf.String(), "TRUNCATED") {
		t.Errorf("stdout table missing truncation marker:\n%s", buf.String())
	}
	data, rerr := os.ReadFile(filepath.Join(dir, "LS4.csv"))
	if rerr != nil {
		t.Fatalf("partial CSV was not flushed: %v", rerr)
	}
	if !strings.Contains(string(data), "# TRUNCATED") {
		t.Errorf("partial CSV missing truncation marker:\n%s", data)
	}
	if !strings.Contains(string(data), "skipped") {
		t.Errorf("unmeasured points should be recorded as skipped:\n%s", data)
	}
}
