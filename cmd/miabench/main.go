// Command miabench regenerates the paper's evaluation (Section V):
//
//   - the six panels of Figure 3 (families LS and NL, fixed dimension 4,
//     16 and 64): runtime of the O(n⁴) baseline and the O(n²) incremental
//     algorithm over growing task counts, with per-run timeouts and
//     log–log complexity fits;
//   - the headline numbers quoted in the text (LS64 @ 256 tasks and NL64 @
//     384 tasks, where the paper reports ≈270× and ≈593× speedups);
//   - the conclusion's scalability claim (8000+ tasks in reasonable time);
//   - the agreement statistics between the two analyses.
//
// Absolute seconds differ from the paper's (their baseline is C++, their
// new algorithm is interpreted Python; both of ours are Go): the
// reproduction targets are the complexity exponents and the
// orders-of-magnitude gap, which are implementation-independent.
//
// Usage:
//
//	miabench                        # quick Figure 3 (all six panels)
//	miabench -panels LS64,NL64     # selected panels
//	miabench -full                 # larger sweeps (minutes to hours)
//	miabench -headline             # the paper's two quoted configurations
//	miabench -scale                # 1k..8k task scaling, incremental only
//	miabench -agreement            # fixpoint vs incremental agreement
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/bench"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/pool"
	"github.com/mia-rt/mia/internal/prof"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/fixpoint"    // registers the "fixpoint" engine backend
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

func main() {
	// SIGINT/SIGTERM cancel the context; the sweep stops launching points,
	// in-flight scheduler runs abort through their cancellation hook, partial
	// CSV exports are flushed with a truncation marker, and the exit is
	// nonzero. A second signal kills the process the hard way (NotifyContext
	// restores the default handlers once canceled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miabench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miabench", flag.ContinueOnError)
	var (
		panels    = fs.String("panels", "", `comma-separated panel list (e.g. "LS4,NL64"); empty = all six`)
		full      = fs.Bool("full", false, "larger size sweeps (the quick default finishes in minutes)")
		timeout   = fs.Duration("timeout", 60*time.Second, "per-run timeout for either algorithm")
		jobs      = fs.Int("jobs", 1, "measure this many sweep points concurrently (0 = one per CPU); outputs are identical at every level, only wall-clock fidelity differs")
		parallel  = fs.Int("parallel", 0, "intra-analysis worker goroutines per run (0 or 1 = sequential; results are bit-identical at every level)")
		seed      = fs.Int64("seed", 1, "generation seed")
		cores     = fs.Int("cores", 16, "platform cores")
		banks     = fs.Int("banks", 16, "platform banks")
		shared    = fs.Bool("shared", false, "single shared bank (maximal contention)")
		headline  = fs.Bool("headline", false, "run the paper's two quoted configurations (E5)")
		scale     = fs.Bool("scale", false, "run the 8000-task scalability experiment (E6)")
		agreement = fs.Bool("agreement", false, "report fixpoint/incremental agreement statistics")
		dataDir   = fs.String("data", "", "also write per-panel CSV measurement series into this directory")
		svgDir    = fs.String("svg", "", "also render each panel as a Figure 3-style SVG into this directory")
		report    = fs.String("report", "", "also append each panel as a Markdown section to this file")
		quiet     = fs.Bool("q", false, "suppress progress lines")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprof   = fs.String("memprofile", "", "write a heap profile to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cores < 1 || *banks < 1 {
		return fmt.Errorf("need at least 1 core and 1 bank (got %d, %d)", *cores, *banks)
	}
	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer stopProf()
	// finish stops profiling explicitly on success paths so profile-write
	// errors surface (the defer above only covers error returns).
	finish := func(err error) error {
		if err != nil {
			return err
		}
		return stopProf()
	}

	progress := func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	if *quiet {
		progress = nil
	}
	base := bench.Config{Seed: *seed, Cores: *cores, Banks: *banks, SharedBank: *shared,
		Timeout: *timeout, Arbiter: arbiter.NewRoundRobin(1), Jobs: pool.Jobs(*jobs),
		Parallelism: *parallel}

	switch {
	case *headline:
		return finish(runHeadline(ctx, stdout, base, progress))
	case *scale:
		return finish(runScale(ctx, stdout, base, *full, progress))
	case *agreement:
		return finish(runAgreement(ctx, stdout, base))
	}

	selected := map[string]bool{}
	if *panels != "" {
		for _, name := range strings.Split(*panels, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	for _, cfg := range figure3Configs(base, *full) {
		if len(selected) > 0 && !selected[cfg.Name()] {
			continue
		}
		panel, runErr := bench.RunPanelContext(ctx, cfg, []bench.Algorithm{bench.Incremental(), bench.Fixpoint()}, progress)
		if panel == nil {
			return runErr
		}
		// A truncated panel (SIGINT mid-sweep) still gets written: the table
		// and CSV carry explicit truncation markers, and the nonzero exit
		// below keeps the interruption visible to scripts.
		if err := panel.WriteTable(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if *dataDir != "" {
			if err := writePanelCSV(*dataDir, panel); err != nil {
				return err
			}
		}
		if *svgDir != "" {
			if err := writePanelSVG(*svgDir, panel); err != nil {
				return err
			}
		}
		if *report != "" {
			f, err := os.OpenFile(*report, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			err = panel.WriteMarkdown(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
		if runErr != nil {
			return fmt.Errorf("sweep interrupted: %w", runErr)
		}
	}
	return finish(nil)
}

// writePanelSVG renders one panel to <dir>/<panel>.svg.
func writePanelSVG(dir string, panel *bench.Panel) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, panel.Config.Name()+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return panel.LogLog().Render(f, 640, 480)
}

// writePanelCSV dumps one panel's measurement series to <dir>/<panel>.csv.
func writePanelCSV(dir string, panel *bench.Panel) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, panel.Config.Name()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return panel.WriteCSV(f)
}

// figure3Configs builds the six panels. Sizes are multiples of the fixed
// dimension; the quick lists keep the baseline under a minute per panel
// while still spanning a decade of sizes for the fits.
func figure3Configs(base bench.Config, full bool) []bench.Config {
	sizes := func(fixed int, quick, fullSizes []int) []int {
		if full {
			return fullSizes
		}
		_ = fixed
		return quick
	}
	mk := func(family string, fixed int, quick, fullSizes []int) bench.Config {
		cfg := base
		cfg.Family, cfg.Fixed = family, fixed
		cfg.Sizes = sizes(fixed, quick, fullSizes)
		return cfg
	}
	return []bench.Config{
		mk("LS", 4, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256, 512, 1024, 2048, 4096}),
		mk("LS", 16, []int{64, 128, 256, 512}, []int{64, 128, 256, 512, 1024, 2048, 4096}),
		mk("LS", 64, []int{128, 256, 512}, []int{128, 256, 512, 1024, 2048, 4096, 8192}),
		mk("NL", 4, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256, 512, 1024, 2048, 4096}),
		mk("NL", 16, []int{64, 128, 256, 512}, []int{64, 128, 256, 512, 1024, 2048, 4096}),
		mk("NL", 64, []int{128, 256, 512}, []int{128, 256, 384, 512, 1024, 2048, 4096, 8192}),
	}
}

// runHeadline reproduces the two configurations the paper quotes (E5):
// LS64 with 256 tasks (C++ 1121.79 s vs Python 4.13 s, 270×) and NL64 with
// 384 tasks (C++ 535.24 s vs Python 0.90 s, 593×).
func runHeadline(ctx context.Context, w io.Writer, base bench.Config, progress func(string)) error {
	cases := []struct {
		family string
		fixed  int
		tasks  int
		paper  string
	}{
		{"LS", 64, 256, "paper: old 1121.79s, new 4.13s (270x)"},
		{"NL", 64, 384, "paper: old 535.24s, new 0.90s (593x)"},
	}
	fmt.Fprintln(w, "# Headline configurations (paper §V text)")
	fmt.Fprintf(w, "%-6s %-6s %14s %14s %10s   %s\n", "panel", "tasks", "incremental(s)", "fixpoint(s)", "speedup", "reference")
	for _, c := range cases {
		cfg := base
		cfg.Family, cfg.Fixed, cfg.Sizes = c.family, c.fixed, []int{c.tasks}
		panel, err := bench.RunPanelContext(ctx, cfg, []bench.Algorithm{bench.Incremental(), bench.Fixpoint()}, progress)
		if err != nil {
			return err
		}
		inc, fix := panel.Series[0].Points[0], panel.Series[1].Points[0]
		fixCell := fmt.Sprintf("%14.4f", fix.Seconds)
		speedup := "-"
		if fix.TimedOut {
			fixCell = fmt.Sprintf("%14s", "timeout")
		} else if inc.Seconds > 0 {
			speedup = fmt.Sprintf("%.0fx", fix.Seconds/inc.Seconds)
		}
		fmt.Fprintf(w, "%-6s %-6d %14.4f %s %10s   %s\n",
			cfg.Name(), c.tasks, inc.Seconds, fixCell, speedup, c.paper)
	}
	return nil
}

// runScale demonstrates the conclusion's claim: the incremental algorithm
// handles more than 8000 tasks in reasonable time (E6).
func runScale(ctx context.Context, w io.Writer, base bench.Config, full bool, progress func(string)) error {
	cfg := base
	cfg.Family, cfg.Fixed = "LS", 64
	cfg.Sizes = []int{1024, 2048, 4096, 8192}
	if full {
		cfg.Sizes = append(cfg.Sizes, 16384, 32768)
	}
	cfg.Timeout = 0 // the point is to finish
	panel, runErr := bench.RunPanelContext(ctx, cfg, []bench.Algorithm{bench.Incremental()}, progress)
	if panel == nil {
		return runErr
	}
	fmt.Fprintln(w, "# Scalability (paper §VI: \"more than 8000 tasks while maintaining a reasonable execution time\")")
	if err := panel.WriteTable(w); err != nil {
		return err
	}
	if runErr != nil {
		return fmt.Errorf("sweep interrupted: %w", runErr)
	}
	return nil
}

// runAgreement quantifies how often the two analyses produce identical
// schedules (see DESIGN.md: the analysis equations admit several consistent
// fixed points). Instances are independent, so they are compared on the
// worker pool; the tallies are reduced in submission order and the reported
// statistics do not depend on the jobs level.
func runAgreement(ctx context.Context, w io.Writer, base bench.Config) error {
	configs := []struct{ layers, size int }{{4, 8}, {8, 4}, {6, 16}, {16, 4}}
	const seeds = 25
	type tally struct{ identical, tasks, agree int }
	tallies, err := pool.Map(ctx, base.Jobs, len(configs)*seeds,
		func(ctx context.Context, i int) (tally, error) {
			c := configs[i/seeds]
			p := gen.NewParams(c.layers, c.size)
			p.Seed = int64(i%seeds) + 1
			p.Cores, p.Banks, p.SharedBank = base.Cores, base.Banks, base.SharedBank
			g, err := gen.Layered(p)
			if err != nil {
				return tally{}, err
			}
			// One compiled image serves both analyses: agreement is a
			// same-input comparison, so sharing the image removes any chance
			// of the two algorithms seeing different normalizations.
			img, err := engine.Compile(g, sched.Options{Arbiter: base.Arbiter})
			if err != nil {
				return tally{}, err
			}
			fast, err := engine.MustNew(engine.Incremental).Analyze(ctx, img)
			if err != nil {
				return tally{}, err
			}
			slow, err := engine.MustNew(engine.Fixpoint).Analyze(ctx, img)
			if err != nil {
				return tally{}, err
			}
			var t tally
			if fast.Equal(slow) {
				t.identical = 1
			}
			for i := range fast.Release {
				t.tasks++
				if fast.Release[i] == slow.Release[i] && fast.Response[i] == slow.Response[i] {
					t.agree++
				}
			}
			return t, nil
		})
	if err != nil {
		return err
	}
	instances, identical := len(tallies), 0
	var tasks, agree int
	for _, t := range tallies {
		identical += t.identical
		tasks += t.tasks
		agree += t.agree
	}
	fmt.Fprintln(w, "# Fixpoint vs incremental agreement (both are consistent fixed points; see DESIGN.md)")
	fmt.Fprintf(w, "identical schedules: %d/%d instances (%.0f%%)\n", identical, instances, 100*float64(identical)/float64(instances))
	fmt.Fprintf(w, "per-task agreement:  %d/%d tasks (%.1f%%)\n", agree, tasks, 100*float64(agree)/float64(tasks))
	return nil
}
