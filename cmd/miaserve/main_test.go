package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/gen"
)

// syncBuffer is a race-safe io.Writer: run() writes from the test goroutine
// and the server goroutine while the test polls for the listening line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://\S+)`)

// TestRunServesAndDrainsOnCancel drives the full service lifecycle in
// process: boot on an ephemeral port, analyze, reschedule against the
// returned hash, then cancel the context (the signal path) and require a
// clean drain.
func TestRunServesAndDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1"}, &out) }()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never printed its listening line; output: %q", out.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	var graph bytes.Buffer
	if err := gen.Figure2().WriteJSON(&graph); err != nil {
		t.Fatalf("serializing graph: %v", err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(graph.Bytes()))
	if err != nil {
		t.Fatalf("analyze request: %v", err)
	}
	var analyzed struct {
		Hash string `json:"hash"`
	}
	err = json.NewDecoder(resp.Body).Decode(&analyzed)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || analyzed.Hash == "" {
		t.Fatalf("analyze: status %d, hash %q, err %v", resp.StatusCode, analyzed.Hash, err)
	}

	body := fmt.Sprintf(`{"hash":%q,"swaps":[{"core":2,"pos":0}]}`, analyzed.Hash)
	resp, err = http.Post(base+"/v1/reschedule", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("reschedule request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reschedule: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mia-Cache"); got != "hit" {
		t.Errorf("reschedule X-Mia-Cache = %q, want \"hit\" (single worker, freshly analyzed)", got)
	}

	cancel() // what SIGINT/SIGTERM does via signal.NotifyContext
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("run did not return after cancel; output: %q", out.String())
	}
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Errorf("missing clean-shutdown notice in output: %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-addr"}, &out); err == nil {
		t.Error("run with dangling -addr should fail")
	}
	if err := run(context.Background(), []string{"-arbiter", "nonsense"}, &out); err == nil {
		t.Error("run with unknown arbiter should fail")
	}
}
