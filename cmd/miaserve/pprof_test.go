package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func apiStub() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
}

// With -pprof off, no /debug route exists: the API handler sees every path.
func TestPprofDisabledByDefault(t *testing.T) {
	h := assembleHandler(apiStub(), false)
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusTeapot {
		t.Fatalf("disabled pprof: /debug/pprof/ reached something other than the API (status %d)", rr.Code)
	}
}

func TestPprofLoopbackOnly(t *testing.T) {
	h := assembleHandler(apiStub(), true)
	cases := []struct {
		name       string
		remoteAddr string
		want       int
	}{
		{"ipv4 loopback", "127.0.0.1:54321", http.StatusOK},
		{"ipv6 loopback", "[::1]:54321", http.StatusOK},
		{"remote client", "192.0.2.10:54321", http.StatusForbidden},
		{"unparseable peer", "not-an-address", http.StatusForbidden},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
			req.RemoteAddr = tc.remoteAddr
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != tc.want {
				t.Fatalf("peer %s: status %d, want %d", tc.remoteAddr, rr.Code, tc.want)
			}
		})
	}
}

// The API keeps working unchanged when pprof is mounted.
func TestPprofMountLeavesAPIRoutes(t *testing.T) {
	h := assembleHandler(apiStub(), true)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.RemoteAddr = "192.0.2.10:54321" // remote clients still reach the API
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusTeapot {
		t.Fatalf("API route behind pprof mux: status %d", rr.Code)
	}
}
