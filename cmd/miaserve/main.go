// Command miaserve runs the memory-interference analysis as a long-running
// HTTP service with warm-scheduler pooling: repeat analyses and
// order-edit reschedules of a known graph are served from checkpointed
// incremental schedulers instead of re-analyzing from t=0. Graphs arrive
// as JSON or as the flat binary wire format (Content-Type:
// application/x-mia-wire, see internal/wire), which compiles without an
// intermediate graph build.
//
//	POST /v1/analyze     graph (JSON or wire) → schedule (release dates, response times)
//	POST /v1/reschedule  {"hash": ..., "swaps": [{"core":k,"pos":p}, ...]}
//	POST /v1/batch       one graph + many swap scenarios → streamed NDJSON
//	                     results with a truncation-aware trailer line
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        counters, cache hits/misses, batch/ingest/streaming
//	                     counters, p50/p99 latency
//	GET  /debug/pprof/*  profiling — only with -pprof, loopback clients only
//
// Admission is load-shedding: a full queue answers 429 with Retry-After.
// SIGINT/SIGTERM drains gracefully — in-flight requests finish (bounded by
// -drain), new ones get 503, and the process exits 0 on a clean drain.
//
// Usage:
//
//	miaserve -addr :8080
//	miaserve -addr 127.0.0.1:0 -workers 8 -queue 128 -timeout 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miaserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miaserve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers = fs.Int("workers", 0, "warm evaluator workers (0 = one per CPU)")
		queue   = fs.Int("queue", 64, "admission queue depth (full queue sheds with 429)")
		cache   = fs.Int("cache", 8, "warm schedulers kept per worker (LRU)")
		graphs  = fs.Int("graphs", 128, "compiled graph images kept for reschedule-by-hash (LRU)")
		timeout = fs.Duration("timeout", 30*time.Second, "default per-request deadline (override per request with ?timeout_ms=)")
		drain   = fs.Duration("drain", 15*time.Second, "graceful shutdown budget after SIGINT/SIGTERM")
		arbName = fs.String("arbiter", "rr", `bus policy: "rr", "hier-rr", "tree-rr", "wrr", "tdm", "fp" or "none"`)
		par     = fs.Int("parallel", 0, "intra-analysis worker goroutines per request (0 or 1 = sequential; results are bit-identical at every level)")
		latency = fs.Int64("latency", 1, "bank word latency in cycles")
		pprofOn = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (loopback clients only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	arb, err := arbiter.New(arbiter.Spec{Policy: *arbName, WordLatency: *latency, GroupSize: 2, Slots: 16, SlotLength: 1})
	if err != nil {
		return err
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		WarmCacheSize:  *cache,
		GraphCacheSize: *graphs,
		DefaultTimeout: *timeout,
		Sched:          sched.Options{Arbiter: arb, Deadline: model.Cycles(0), Parallelism: *par},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: assembleHandler(srv.Handler(), *pprofOn)}
	fmt.Fprintf(stdout, "miaserve: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "miaserve: signal received, draining")
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	srv.Close() // runs every admitted job to completion, stops the workers
	if shutdownErr != nil {
		return fmt.Errorf("drain incomplete after %v: %w", *drain, shutdownErr)
	}
	fmt.Fprintln(stdout, "miaserve: clean shutdown")
	return nil
}

// assembleHandler layers the optional profiling endpoints over the analysis
// API. With pprofOn false the API handler is served unchanged — no /debug
// routes exist at all. With it true, /debug/pprof/ is mounted for loopback
// clients only: profiles expose memory contents and timing side channels,
// so a service reachable from the network must not leak them to remote
// callers merely because an operator wanted local profiling.
func assembleHandler(api http.Handler, pprofOn bool) http.Handler {
	if !pprofOn {
		return api
	}
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/debug/pprof/", loopbackOnly(http.HandlerFunc(pprof.Index)))
	mux.Handle("/debug/pprof/cmdline", loopbackOnly(http.HandlerFunc(pprof.Cmdline)))
	mux.Handle("/debug/pprof/profile", loopbackOnly(http.HandlerFunc(pprof.Profile)))
	mux.Handle("/debug/pprof/symbol", loopbackOnly(http.HandlerFunc(pprof.Symbol)))
	mux.Handle("/debug/pprof/trace", loopbackOnly(http.HandlerFunc(pprof.Trace)))
	return mux
}

// loopbackOnly admits only requests whose peer address is a loopback IP.
// The check uses the transport-level RemoteAddr, never forwarded-for
// headers, which any client could spoof.
func loopbackOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			http.Error(w, "pprof is restricted to loopback clients", http.StatusForbidden)
			return
		}
		next.ServeHTTP(w, r)
	})
}
