//go:build servesmoke

package main

// The serve-smoke test (make serve-smoke) exercises the real binary the way
// an operator would: build it, boot it, run an analyze→reschedule round trip
// over TCP, send SIGINT, and require a clean drain with exit code 0. It sits
// behind the servesmoke build tag because it compiles and execs a binary —
// too heavy for the inner unit-test loop, but wired into CI.

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/gen"
)

func TestServeSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "miaserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building miaserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1")
	var out syncOutput
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting miaserve: %v", err)
	}
	defer cmd.Process.Kill() // no-op after a clean exit

	base := waitListening(t, &out)

	var graph bytes.Buffer
	if err := gen.Figure2().WriteJSON(&graph); err != nil {
		t.Fatalf("serializing graph: %v", err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", &graph)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	hashBody := new(bytes.Buffer)
	hashBody.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d body %s", resp.StatusCode, hashBody)
	}
	m := regexp.MustCompile(`"hash":"([0-9a-f]+)"`).FindStringSubmatch(hashBody.String())
	if m == nil {
		t.Fatalf("analyze response has no hash: %s", hashBody)
	}

	resp, err = http.Post(base+"/v1/reschedule", "application/json",
		strings.NewReader(fmt.Sprintf(`{"hash":%q,"swaps":[{"core":2,"pos":0}]}`, m[1])))
	if err != nil {
		t.Fatalf("reschedule: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reschedule: status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("miaserve exited with %v, want code 0; output: %s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("miaserve did not exit after SIGINT; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Errorf("missing clean-shutdown notice; output: %s", out.String())
	}
}

func waitListening(t *testing.T, out *syncOutput) string {
	t.Helper()
	re := regexp.MustCompile(`listening on (http://\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("miaserve never printed its listening line; output: %s", out.String())
	return ""
}

// syncOutput mirrors syncBuffer but lives behind the build tag with its own
// name so the two files can compile together.
type syncOutput struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncOutput) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncOutput) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
