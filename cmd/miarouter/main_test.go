package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/server"
)

// syncBuffer is a race-safe io.Writer: run() writes from the test goroutine
// and the server goroutine while the test polls for the listening line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s,]+)`)

func startShard(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// TestRunRoutesAndDrainsOnCancel drives the router binary's lifecycle in
// process: boot against two real shards on an ephemeral port, analyze
// through the router, reschedule by hash, check /healthz and /metrics, then
// cancel the context (the signal path) and require a clean drain.
func TestRunRoutesAndDrainsOnCancel(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-targets", s1.URL + "," + s2.URL,
			"-health", "0",
		}, &out)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("router never printed its listening line; output: %q", out.String())
		}
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	var graph bytes.Buffer
	if err := gen.Figure2().WriteJSON(&graph); err != nil {
		t.Fatalf("serializing graph: %v", err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(graph.Bytes()))
	if err != nil {
		t.Fatalf("analyze via router: %v", err)
	}
	var analyzed struct {
		Hash string `json:"hash"`
	}
	err = json.NewDecoder(resp.Body).Decode(&analyzed)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || analyzed.Hash == "" {
		t.Fatalf("analyze: status %d, hash %q, err %v", resp.StatusCode, analyzed.Hash, err)
	}

	// By-hash reschedule must resolve wherever the ring placed the image.
	resp, err = http.Post(base+"/v1/reschedule", "application/json",
		strings.NewReader(`{"hash":"`+analyzed.Hash+`","swaps":[{"core":2,"pos":0}]}`))
	if err != nil {
		t.Fatalf("reschedule via router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reschedule: status %d", resp.StatusCode)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}

	cancel() // what SIGINT/SIGTERM does via signal.NotifyContext
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("run did not return after cancel; output: %q", out.String())
	}
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Errorf("missing clean-shutdown notice in output: %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-addr"}, &out); err == nil {
		t.Error("run with dangling -addr should fail")
	}
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("run without -targets should fail")
	}
}
