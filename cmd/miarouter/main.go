// Command miarouter fronts a fleet of miaserve shards. It speaks the same
// protocol as a single shard — POST /v1/analyze, /v1/reschedule, /v1/batch,
// GET /healthz, /metrics — so existing clients point at the router instead
// of a shard and gain placement, replication, and failover without change:
//
//   - every request routes by its graph's fingerprint on a consistent-hash
//     ring with bounded loads, so a graph's warm engine image and batch
//     memo stay resident on the shard its traffic keeps landing on;
//   - analyze bodies are replicated to the next ring replica, pinning each
//     image on a primary plus one successor;
//   - transient failures (connection errors, 503) retry on the next replica
//     with jittered backoff, and a shard dying mid-batch fails over: only
//     the not-yet-streamed items are re-admitted, exactly one trailer is
//     emitted, and no result line is duplicated or lost.
//
// GET /healthz answers 200 while any shard is up, 503 when all are down;
// GET /metrics reports the router's own counters (forwards, retries,
// failovers, shed) plus per-target health.
//
// Usage:
//
//	miarouter -addr :8090 -targets http://s1:8080,http://s2:8080,http://s3:8080
//	miarouter -addr 127.0.0.1:0 -targets ... -replicas 2 -health 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mia-rt/mia/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miarouter:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miarouter", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8090", "listen address (host:port; port 0 picks a free port)")
		targets  = fs.String("targets", "", "comma-separated shard base URLs (required)")
		replicas = fs.Int("replicas", 2, "replica-set size per fingerprint: primary plus replicas-1 successors")
		retries  = fs.Int("retries", 0, "replica attempts per request (0 = replicas, clamped to fleet size)")
		backoff  = fs.Duration("backoff", 25*time.Millisecond, "base jittered delay between replica attempts")
		health   = fs.Duration("health", 2*time.Second, "active health-probe interval (0 = passive health only)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-attempt shard timeout (response-header wait for batches)")
		drain    = fs.Duration("drain", 15*time.Second, "graceful shutdown budget after SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, t)
		}
	}
	if len(urls) == 0 {
		return errors.New("-targets is required (comma-separated shard base URLs)")
	}

	router, err := shard.NewRouter(ctx, shard.Config{
		Targets:     urls,
		Replicas:    *replicas,
		Retries:     *retries,
		Backoff:     *backoff,
		HealthEvery: *health,
		Timeout:     *timeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		router.Close()
		return err
	}
	httpSrv := &http.Server{Handler: router.Handler()}
	fmt.Fprintf(stdout, "miarouter: listening on http://%s, fronting %d shards\n", ln.Addr(), len(urls))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		router.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "miarouter: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	router.Close() // joins the health prober
	if shutdownErr != nil {
		return fmt.Errorf("drain incomplete after %v: %w", *drain, shutdownErr)
	}
	fmt.Fprintln(stdout, "miarouter: clean shutdown")
	return nil
}
