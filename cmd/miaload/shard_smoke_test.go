//go:build servesmoke

package main

// The shard smoke test (make serve-shard-smoke) stands up the full sharded
// serving tier as real processes over loopback TCP: three miaserve shards
// with a deliberately tiny admission queue, one miarouter fronting them,
// and miaload driving through the router. It checks the tier's three
// operating regimes end to end:
//
//   - steady state: batch traffic through the router completes with zero
//     errors (routing and replication are invisible to the client);
//   - saturation: overload sheds with 429 and every shed response carries a
//     bounded Retry-After in [1, 30] s (validated by miaload -saturate);
//   - drain: SIGINT stops router and shards cleanly, exit code 0.
//
// Same build tag as serve-smoke so `go test ./...` stays exec-free; CI runs
// this with -race so the in-process client doubles as a race probe.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestServeShardSmoke(t *testing.T) {
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "miaserve")
	routerBin := filepath.Join(dir, "miarouter")
	// -race on the fleet binaries too: the shards and router double as race
	// probes, and a race-slowed client cannot overload full-speed shards —
	// the saturation phase needs comparable speeds on both sides.
	for bin, pkg := range map[string]string{
		serveBin:  "github.com/mia-rt/mia/cmd/miaserve",
		routerBin: "github.com/mia-rt/mia/cmd/miarouter",
	} {
		if out, err := exec.Command("go", "build", "-race", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Three shards with one worker and a single queue slot each (the
	// smallest honored depth), so overload sheds almost immediately.
	type proc struct {
		cmd *exec.Cmd
		out *syncOutput
	}
	start := func(name string, args ...string) (*proc, string) {
		t.Helper()
		p := &proc{cmd: exec.Command(name, args...), out: &syncOutput{}}
		p.cmd.Stdout = p.out
		p.cmd.Stderr = p.out
		if err := p.cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() { p.cmd.Process.Kill() }) // no-op after a clean exit
		return p, waitListening(t, p.out)
	}

	shards := make([]*proc, 3)
	urls := make([]string, 3)
	for i := range shards {
		shards[i], urls[i] = start(serveBin, "-addr", "127.0.0.1:0", "-workers", "1", "-queue", "1")
	}
	router, routerURL := start(routerBin,
		"-addr", "127.0.0.1:0", "-targets", strings.Join(urls, ","), "-health", "250ms")

	runReport := func(args ...string) report {
		t.Helper()
		args = append([]string{"-addr", routerURL, "-json"}, args...)
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatalf("miaload %v: %v\noutput: %s", args, err, out.String())
		}
		var rep report
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("decoding report: %v\noutput: %s", err, out.String())
		}
		return rep
	}

	// Steady state: sequential batch traffic through the router must be
	// error-free even on a single-slot queue (one request in flight keeps
	// the worker ready).
	steady := runReport("-tasks", "128", "-mode", "batch", "-batch", "8", "-requests", "8", "-concurrency", "1", "-graphs", "3")
	if steady.Errors != 0 || steady.Shed != 0 {
		t.Fatalf("steady state: %d errors, %d shed, want 0 and 0", steady.Errors, steady.Shed)
	}

	// Saturation: sixteen concurrent clients against single-worker shards,
	// with graphs big enough (512 tasks) that cold batches pin a worker for
	// a long window — concurrent arrivals then find the single queue slot
	// taken and shed. -saturate turns 429s into measured outcomes, while
	// still treating a missing or out-of-range Retry-After as a protocol
	// error.
	sat := runReport("-tasks", "256", "-mode", "batch", "-batch", "16", "-requests", "32", "-concurrency", "16", "-graphs", "4", "-saturate")
	if sat.Errors != 0 {
		t.Fatalf("saturation run: %d errors (shed accounting should absorb overload)", sat.Errors)
	}
	if sat.Shed == 0 {
		t.Fatalf("saturation run shed nothing: report %+v (queue 1, 16 clients — overload never reached the shards?)", sat)
	}
	if sat.RetryAfterMinS < 1 || sat.RetryAfterMaxS > 30 {
		t.Fatalf("Retry-After range [%d, %d] s outside [1, 30]", sat.RetryAfterMinS, sat.RetryAfterMaxS)
	}

	// Drain: router first, then the shards; each must exit 0.
	stop := func(p *proc, name string) {
		t.Helper()
		if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("SIGINT %s: %v", name, err)
		}
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited with %v, want code 0; output: %s", name, err, p.out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not exit after SIGINT; output: %s", name, p.out.String())
		}
	}
	stop(router, "miarouter")
	for i, sh := range shards {
		stop(sh, "shard "+urls[i])
	}
}
