// Command miaload load-tests a running miaserve instance and reports a
// latency histogram — the measurement harness for the serving layer's two
// amortization levers: binary wire ingest (vs graph JSON) and batched edit
// evaluation (vs unary reschedules).
//
// It generates one layered task graph (the paper's evaluation shape),
// registers it with the target server, then drives one of three request
// mixes against it:
//
//	-mode analyze  repeat POST /v1/analyze of the same graph body
//	-mode unary    POST /v1/reschedule, one edit scenario per request
//	-mode batch    POST /v1/batch, -batch edit scenarios per request
//
// Every edit scenario is an identity pair — the same adjacent swap applied
// twice — so the evaluated orders equal the baseline and every scenario is
// schedulable by construction, while the server still pays the full
// apply-replay-undo cost. -wire switches the graph upload from JSON to the
// binary wire format (Content-Type application/x-mia-wire).
//
// Output is a human-readable summary or, with -json, a machine-readable
// report (p50/p95/p99/mean/max latency in milliseconds, throughput,
// response bytes, error count).
//
// Usage:
//
//	miaload -addr http://127.0.0.1:8080 -mode batch -batch 100 -requests 20
//	miaload -addr http://127.0.0.1:8080 -mode unary -wire -requests 200 -concurrency 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miaload:", err)
		os.Exit(1)
	}
}

// report is the -json output shape. Latencies are milliseconds.
type report struct {
	Mode        string  `json:"mode"`
	Wire        bool    `json:"wire"`
	Tasks       int     `json:"tasks"`
	Requests    int     `json:"requests"`
	Batch       int     `json:"batch,omitempty"`
	Concurrency int     `json:"concurrency"`
	AnalyzeMs   float64 `json:"analyze_ms"`
	UploadBytes int     `json:"upload_bytes"`
	Latency     struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	ItemsPerSec float64 `json:"items_per_sec"`
	BytesIn     int64   `json:"bytes_in"`
	Errors      int64   `json:"errors"`
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miaload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "base URL of the miaserve instance under test")
		mode        = fs.String("mode", "unary", `request mix: "analyze", "unary" or "batch"`)
		useWire     = fs.Bool("wire", false, "upload the graph in binary wire format instead of JSON")
		tasks       = fs.Int("tasks", 512, "generated graph size (layers of 64 tasks on 16 cores)")
		requests    = fs.Int("requests", 100, "number of HTTP requests to issue")
		batch       = fs.Int("batch", 32, "edit scenarios per request in batch mode")
		concurrency = fs.Int("concurrency", 4, "concurrent client goroutines")
		seed        = fs.Int64("seed", 1, "graph generator seed")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		asJSON      = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "analyze", "unary", "batch":
	default:
		return fmt.Errorf("unknown -mode %q (want analyze, unary or batch)", *mode)
	}
	if *requests < 1 || *batch < 1 || *concurrency < 1 || *tasks < 64 {
		return fmt.Errorf("need -requests, -batch, -concurrency >= 1 and -tasks >= 64")
	}

	layers := *tasks / 64
	p := gen.NewParams(layers, 64)
	p.Seed = *seed
	g, err := gen.Layered(p)
	if err != nil {
		return err
	}

	// Graph upload body in the selected encoding.
	var body []byte
	contentType := "application/json"
	if *useWire {
		body = wire.EncodeGraph(g)
		contentType = "application/x-mia-wire"
	} else {
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return err
		}
		body = buf.Bytes()
	}

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*addr, "/")

	// Register the graph (and measure the one-time ingest cost).
	analyzeStart := time.Now()
	hash, n, err := doAnalyze(ctx, client, base, contentType, body)
	analyzeMs := float64(time.Since(analyzeStart)) / float64(time.Millisecond)
	if err != nil {
		return fmt.Errorf("priming analyze: %w", err)
	}

	// Identity-pair edit scenarios, rotated across the cores that have at
	// least two tasks mapped (a swap needs pos and pos+1).
	type swap struct{ core, pos int }
	var sites []swap
	for k := 0; k < g.Cores; k++ {
		if ord := g.Order(model.CoreID(k)); len(ord) >= 2 {
			sites = append(sites, swap{core: k, pos: len(ord) - 2})
		}
	}
	if len(sites) == 0 {
		return fmt.Errorf("generated graph has no core with >= 2 tasks")
	}
	swapsFor := func(i int) string {
		s := sites[i%len(sites)]
		one := fmt.Sprintf(`{"core":%d,"pos":%d}`, s.core, s.pos)
		return "[" + one + "," + one + "]"
	}
	reqBody := func(i int) (string, string, string) { // path, contentType, body
		switch *mode {
		case "analyze":
			return "/v1/analyze", contentType, string(body)
		case "unary":
			return "/v1/reschedule", "application/json",
				fmt.Sprintf(`{"hash":%q,"swaps":%s}`, hash, swapsFor(i))
		default: // batch
			items := make([]string, *batch)
			for j := range items {
				items[j] = `{"swaps":` + swapsFor(i**batch+j) + `}`
			}
			return "/v1/batch", "application/json",
				fmt.Sprintf(`{"hash":%q,"items":[%s]}`, hash, strings.Join(items, ","))
		}
	}

	// Drive the load: fixed request count fanned over worker goroutines.
	lat := make([]float64, *requests)
	var errs, bytesIn atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				path, ct, rb := reqBody(i)
				start := time.Now()
				nb, err := doRequest(ctx, client, base+path, ct, rb, *mode == "batch")
				lat[i] = float64(time.Since(start)) / float64(time.Millisecond)
				bytesIn.Add(nb)
				if err != nil {
					errs.Add(1)
				}
			}
		}()
	}
feed:
	for i := 0; i < *requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(loadStart)

	rep := report{
		Mode:        *mode,
		Wire:        *useWire,
		Tasks:       g.NumTasks(),
		Requests:    *requests,
		Concurrency: *concurrency,
		AnalyzeMs:   analyzeMs,
		UploadBytes: len(body),
		BytesIn:     bytesIn.Load() + int64(n),
		Errors:      errs.Load(),
	}
	if *mode == "batch" {
		rep.Batch = *batch
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	rep.Latency.P50 = quantile(sorted, 0.50)
	rep.Latency.P95 = quantile(sorted, 0.95)
	rep.Latency.P99 = quantile(sorted, 0.99)
	rep.Latency.Max = sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	rep.Latency.Mean = sum / float64(len(sorted))
	items := *requests
	if *mode == "batch" {
		items *= *batch
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ItemsPerSec = float64(items) / secs
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&rep)
	}
	fmt.Fprintf(stdout, "miaload: mode=%s wire=%v tasks=%d requests=%d", rep.Mode, rep.Wire, rep.Tasks, rep.Requests)
	if *mode == "batch" {
		fmt.Fprintf(stdout, " batch=%d", rep.Batch)
	}
	fmt.Fprintf(stdout, " concurrency=%d\n", rep.Concurrency)
	fmt.Fprintf(stdout, "  upload     %d bytes (%s), priming analyze %.2f ms\n", rep.UploadBytes, contentType, rep.AnalyzeMs)
	fmt.Fprintf(stdout, "  latency ms p50=%.3f p95=%.3f p99=%.3f mean=%.3f max=%.3f\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Mean, rep.Latency.Max)
	fmt.Fprintf(stdout, "  throughput %.1f items/s, %d bytes in, %d errors\n", rep.ItemsPerSec, rep.BytesIn, rep.Errors)
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

// doAnalyze registers the graph and returns its fingerprint.
func doAnalyze(ctx context.Context, client *http.Client, base, contentType string, body []byte) (string, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("analyze: status %d body %s", resp.StatusCode, rb)
	}
	var r struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(rb, &r); err != nil || r.Hash == "" {
		return "", 0, fmt.Errorf("analyze response has no hash: %s", rb)
	}
	return r.Hash, len(rb), nil
}

// doRequest issues one load request and validates its outcome: HTTP 200,
// and for batch responses a complete (untruncated) NDJSON stream whose
// every line carries status 200.
func doRequest(ctx context.Context, client *http.Client, url, contentType, body string, isBatch bool) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return int64(len(rb)), err
	}
	if resp.StatusCode != http.StatusOK {
		return int64(len(rb)), fmt.Errorf("status %d", resp.StatusCode)
	}
	if !isBatch {
		return int64(len(rb)), nil
	}
	for _, line := range strings.Split(strings.TrimRight(string(rb), "\n"), "\n") {
		var l struct {
			Status    int  `json:"status"`
			Done      bool `json:"done"`
			Truncated bool `json:"truncated"`
		}
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			return int64(len(rb)), err
		}
		if l.Done && l.Truncated {
			return int64(len(rb)), fmt.Errorf("batch truncated")
		}
		if !l.Done && l.Status != http.StatusOK {
			return int64(len(rb)), fmt.Errorf("item status %d", l.Status)
		}
	}
	return int64(len(rb)), nil
}

// quantile reads the q-quantile from an ascending sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
