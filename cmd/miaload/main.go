// Command miaload load-tests a running miaserve instance and reports a
// latency histogram — the measurement harness for the serving layer's two
// amortization levers: binary wire ingest (vs graph JSON) and batched edit
// evaluation (vs unary reschedules).
//
// It generates one layered task graph (the paper's evaluation shape),
// registers it with the target server, then drives one of three request
// mixes against it:
//
//	-mode analyze  repeat POST /v1/analyze of the same graph body
//	-mode unary    POST /v1/reschedule, one edit scenario per request
//	-mode batch    POST /v1/batch, -batch edit scenarios per request
//
// Every edit scenario is an identity pair — the same adjacent swap applied
// twice — so the evaluated orders equal the baseline and every scenario is
// schedulable by construction, while the server still pays the full
// apply-replay-undo cost. -wire switches the graph upload from JSON to the
// binary wire format (Content-Type application/x-mia-wire).
//
// Output is a human-readable summary or, with -json, a machine-readable
// report (p50/p95/p99/mean/max latency in milliseconds, throughput,
// response bytes, error count).
//
// Usage:
//
//	miaload -addr http://127.0.0.1:8080 -mode batch -batch 100 -requests 20
//	miaload -addr http://127.0.0.1:8080 -mode unary -wire -requests 200 -concurrency 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/shard"
	"github.com/mia-rt/mia/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miaload:", err)
		os.Exit(1)
	}
}

// report is the -json output shape. Latencies are milliseconds.
type report struct {
	Mode        string  `json:"mode"`
	Wire        bool    `json:"wire"`
	Tasks       int     `json:"tasks"`
	Graphs      int     `json:"graphs,omitempty"`
	Targets     int     `json:"targets,omitempty"`
	Requests    int     `json:"requests"`
	Batch       int     `json:"batch,omitempty"`
	Concurrency int     `json:"concurrency"`
	AnalyzeMs   float64 `json:"analyze_ms"`
	UploadBytes int     `json:"upload_bytes"`
	Latency     struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	ItemsPerSec float64 `json:"items_per_sec"`
	BytesIn     int64   `json:"bytes_in"`
	Errors      int64   `json:"errors"`
	// Saturation-mode accounting: requests the service shed with 429 (plus
	// the Retry-After bounds it advertised) and requests every target
	// answered 503 for (drain). Zero outside -saturate.
	Shed           int64 `json:"shed,omitempty"`
	Drained        int64 `json:"drained,omitempty"`
	RetryAfterMinS int   `json:"retry_after_min_s,omitempty"`
	RetryAfterMaxS int   `json:"retry_after_max_s,omitempty"`
}

// loadGraph is one generated graph's client-side serving state: its upload
// body, canonical fingerprint (the routing key), the server-reported hash,
// and the target order its requests walk (the fingerprint's ring walk in
// -targets mode, or the single -addr base).
type loadGraph struct {
	fp    string
	hash  string
	body  string
	order []string
	sites []swapSite
}

// swapSite is one identity-pair edit location (see package comment).
type swapSite struct{ core, pos int }

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miaload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "base URL of the miaserve instance under test")
		targetsFlag = fs.String("targets", "", "comma-separated shard base URLs: route client-side by fingerprint over their consistent-hash ring, with failover (overrides -addr)")
		mode        = fs.String("mode", "unary", `request mix: "analyze", "unary" or "batch"`)
		useWire     = fs.Bool("wire", false, "upload the graph in binary wire format instead of JSON")
		tasks       = fs.Int("tasks", 512, "generated graph size (layers of 64 tasks on 16 cores)")
		graphs      = fs.Int("graphs", 1, "number of distinct graphs to spread the load over (seeds seed..seed+n-1)")
		requests    = fs.Int("requests", 100, "number of HTTP requests to issue")
		batch       = fs.Int("batch", 32, "edit scenarios per request in batch mode")
		concurrency = fs.Int("concurrency", 4, "concurrent client goroutines")
		seed        = fs.Int64("seed", 1, "graph generator seed")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		saturate    = fs.Bool("saturate", false, "overload mode: count 429/503 as shed/drained outcomes instead of errors, and check Retry-After stays within [1, 30] s")
		asJSON      = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "analyze", "unary", "batch":
	default:
		return fmt.Errorf("unknown -mode %q (want analyze, unary or batch)", *mode)
	}
	if *requests < 1 || *batch < 1 || *concurrency < 1 || *tasks < 64 || *graphs < 1 {
		return fmt.Errorf("need -requests, -batch, -concurrency, -graphs >= 1 and -tasks >= 64")
	}

	// Target fleet: the single -addr base, or the -targets shard list with a
	// client-side ring — the same ring the router builds, so a shard-aware
	// miaload and a router agree on every fingerprint's primary without
	// coordination.
	bases := []string{strings.TrimRight(*addr, "/")}
	var ring *shard.Ring
	if *targetsFlag != "" {
		bases = bases[:0]
		for _, tgt := range strings.Split(*targetsFlag, ",") {
			if tgt = strings.TrimSpace(tgt); tgt != "" {
				bases = append(bases, strings.TrimRight(tgt, "/"))
			}
		}
		if len(bases) == 0 {
			return fmt.Errorf("-targets has no usable URLs")
		}
		ring = shard.NewRing(bases, 0)
	}

	d := &driver{client: &http.Client{Timeout: *timeout}, saturate: *saturate}

	// Generate and register the graphs (measuring the one-time ingest cost).
	// In ring mode each graph is primed on its primary AND its successor —
	// the router's replication policy — so failover requests land on a shard
	// that already holds the image.
	contentType := "application/json"
	if *useWire {
		contentType = "application/x-mia-wire"
	}
	lgs := make([]*loadGraph, *graphs)
	var numTasks int
	var analyzeMs float64
	var primeBytes int64
	for gi := range lgs {
		p := gen.NewParams(*tasks/64, 64)
		p.Seed = *seed + int64(gi)
		g, err := gen.Layered(p)
		if err != nil {
			return err
		}
		var body []byte
		if *useWire {
			body = wire.EncodeGraph(g)
		} else {
			var buf bytes.Buffer
			if err := g.WriteJSON(&buf); err != nil {
				return err
			}
			body = buf.Bytes()
		}
		numTasks = g.NumTasks()
		lg := &loadGraph{fp: g.Fingerprint(), body: string(body), order: bases}
		if ring != nil {
			lg.order = ring.Order(lg.fp)
		}
		// Identity-pair edit scenarios, rotated across the cores that have
		// at least two tasks mapped (a swap needs pos and pos+1).
		for k := 0; k < g.Cores; k++ {
			if ord := g.Order(model.CoreID(k)); len(ord) >= 2 {
				lg.sites = append(lg.sites, swapSite{core: k, pos: len(ord) - 2})
			}
		}
		if len(lg.sites) == 0 {
			return fmt.Errorf("generated graph %d has no core with >= 2 tasks", gi)
		}
		primeTargets := lg.order[:1]
		if ring != nil && len(lg.order) > 1 {
			primeTargets = lg.order[:2]
		}
		// Priming is per-replica best-effort (a dead successor is exactly
		// what failover exists for), but at least one replica must accept
		// the graph or no later request can succeed.
		analyzeStart := time.Now()
		primed := 0
		var lastPrimeErr error
		for _, tgt := range primeTargets {
			hash, n, err := doAnalyze(ctx, d.client, tgt, contentType, body, lg.fp)
			if err != nil {
				lastPrimeErr = err
				continue
			}
			lg.hash = hash
			primeBytes += int64(n)
			primed++
		}
		if primed == 0 {
			return fmt.Errorf("priming analyze of graph %d: no replica accepted it: %w", gi, lastPrimeErr)
		}
		analyzeMs += float64(time.Since(analyzeStart)) / float64(time.Millisecond)
		lgs[gi] = lg
	}

	swapsFor := func(lg *loadGraph, i int) string {
		s := lg.sites[i%len(lg.sites)]
		one := fmt.Sprintf(`{"core":%d,"pos":%d}`, s.core, s.pos)
		return "[" + one + "," + one + "]"
	}
	reqBody := func(i int) (*loadGraph, string, string, string) { // graph, path, contentType, body
		lg := lgs[i%len(lgs)]
		switch *mode {
		case "analyze":
			return lg, "/v1/analyze", contentType, lg.body
		case "unary":
			return lg, "/v1/reschedule", "application/json",
				fmt.Sprintf(`{"hash":%q,"swaps":%s}`, lg.hash, swapsFor(lg, i))
		default: // batch
			items := make([]string, *batch)
			for j := range items {
				items[j] = `{"swaps":` + swapsFor(lg, i**batch+j) + `}`
			}
			return lg, "/v1/batch", "application/json",
				fmt.Sprintf(`{"hash":%q,"items":[%s]}`, lg.hash, strings.Join(items, ","))
		}
	}

	// Drive the load: fixed request count fanned over worker goroutines.
	lat := make([]float64, *requests)
	var errs, bytesIn atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				lg, path, ct, rb := reqBody(i)
				start := time.Now()
				nb, err := d.do(ctx, lg, path, ct, rb, *mode == "batch")
				lat[i] = float64(time.Since(start)) / float64(time.Millisecond)
				bytesIn.Add(nb)
				if err != nil {
					errs.Add(1)
				}
			}
		}()
	}
feed:
	for i := 0; i < *requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(loadStart)

	rep := report{
		Mode:        *mode,
		Wire:        *useWire,
		Tasks:       numTasks,
		Requests:    *requests,
		Concurrency: *concurrency,
		AnalyzeMs:   analyzeMs,
		UploadBytes: len(lgs[0].body),
		BytesIn:     bytesIn.Load() + primeBytes,
		Errors:      errs.Load(),
	}
	if *graphs > 1 {
		rep.Graphs = *graphs
	}
	if ring != nil {
		rep.Targets = len(bases)
	}
	if *mode == "batch" {
		rep.Batch = *batch
	}
	d.mu.Lock()
	rep.Shed, rep.Drained = d.shed, d.drained
	rep.RetryAfterMinS, rep.RetryAfterMaxS = d.raMin, d.raMax
	d.mu.Unlock()
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	rep.Latency.P50 = quantile(sorted, 0.50)
	rep.Latency.P95 = quantile(sorted, 0.95)
	rep.Latency.P99 = quantile(sorted, 0.99)
	rep.Latency.Max = sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	rep.Latency.Mean = sum / float64(len(sorted))
	items := *requests
	if *mode == "batch" {
		items *= *batch
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ItemsPerSec = float64(items) / secs
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&rep)
	}
	fmt.Fprintf(stdout, "miaload: mode=%s wire=%v tasks=%d requests=%d", rep.Mode, rep.Wire, rep.Tasks, rep.Requests)
	if *mode == "batch" {
		fmt.Fprintf(stdout, " batch=%d", rep.Batch)
	}
	fmt.Fprintf(stdout, " concurrency=%d\n", rep.Concurrency)
	fmt.Fprintf(stdout, "  upload     %d bytes (%s), priming analyze %.2f ms\n", rep.UploadBytes, contentType, rep.AnalyzeMs)
	fmt.Fprintf(stdout, "  latency ms p50=%.3f p95=%.3f p99=%.3f mean=%.3f max=%.3f\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Mean, rep.Latency.Max)
	fmt.Fprintf(stdout, "  throughput %.1f items/s, %d bytes in, %d errors\n", rep.ItemsPerSec, rep.BytesIn, rep.Errors)
	if *saturate {
		fmt.Fprintf(stdout, "  saturation shed=%d drained=%d retry-after=[%d, %d] s\n",
			rep.Shed, rep.Drained, rep.RetryAfterMinS, rep.RetryAfterMaxS)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

// driver issues the load requests: per-graph target order with failover
// across shards (connection errors and 503s move to the next replica), and
// saturation accounting when -saturate converts shed responses from errors
// into the measured outcome.
type driver struct {
	client   *http.Client
	saturate bool

	mu           sync.Mutex
	shed         int64
	drained      int64
	raMin, raMax int // observed Retry-After bounds, seconds (0 = none seen)
}

// recordShed accounts one 429, validating the server's Retry-After hint:
// the serving contract promises a bounded hint in [1, 30] seconds, so a
// missing, non-integer, or out-of-range value is a protocol error even in
// saturation mode.
func (d *driver) recordShed(retryAfter string) error {
	secs, err := strconv.Atoi(strings.TrimSpace(retryAfter))
	if err != nil {
		return fmt.Errorf("shed response Retry-After %q is not an integer", retryAfter)
	}
	if secs < 1 || secs > 30 {
		return fmt.Errorf("shed response Retry-After %d s outside [1, 30]", secs)
	}
	d.mu.Lock()
	d.shed++
	if d.raMin == 0 || secs < d.raMin {
		d.raMin = secs
	}
	if secs > d.raMax {
		d.raMax = secs
	}
	d.mu.Unlock()
	return nil
}

// do issues one load request, walking the graph's target order: a
// connection error or 503 moves to the next replica; 429 is terminal (the
// primary's admission verdict — retrying it elsewhere would defeat the
// bounded-load signal) and counts as shed under -saturate. Successful
// responses are validated by readResponse.
func (d *driver) do(ctx context.Context, lg *loadGraph, path, contentType, body string, isBatch bool) (int64, error) {
	var lastErr error
	sawDrain := false
	for _, base := range lg.order {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set(wire.RouteHeader, lg.fp)
		resp, err := d.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable, http.StatusBadGateway:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			sawDrain = sawDrain || resp.StatusCode == http.StatusServiceUnavailable
			lastErr = fmt.Errorf("%s: status %d", base, resp.StatusCode)
			continue
		case http.StatusTooManyRequests:
			ra := resp.Header.Get("Retry-After")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if !d.saturate {
				return 0, fmt.Errorf("%s: shed (429, Retry-After %q)", base, ra)
			}
			return 0, d.recordShed(ra)
		}
		nb, err := readResponse(resp, isBatch)
		resp.Body.Close()
		return nb, err
	}
	if d.saturate && sawDrain {
		d.mu.Lock()
		d.drained++
		d.mu.Unlock()
		return 0, nil
	}
	return 0, fmt.Errorf("all targets failed: %w", lastErr)
}

// doAnalyze registers the graph on one target and returns its fingerprint.
func doAnalyze(ctx context.Context, client *http.Client, base, contentType string, body []byte, fp string) (string, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(wire.RouteHeader, fp)
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("analyze: status %d body %s", resp.StatusCode, rb)
	}
	var r struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(rb, &r); err != nil || r.Hash == "" {
		return "", 0, fmt.Errorf("analyze response has no hash: %s", rb)
	}
	return r.Hash, len(rb), nil
}

// readResponse validates one 200 response's outcome: for batch responses a
// complete (untruncated) NDJSON stream whose every line carries status 200.
func readResponse(resp *http.Response, isBatch bool) (int64, error) {
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return int64(len(rb)), err
	}
	if resp.StatusCode != http.StatusOK {
		return int64(len(rb)), fmt.Errorf("status %d", resp.StatusCode)
	}
	if !isBatch {
		return int64(len(rb)), nil
	}
	for _, line := range strings.Split(strings.TrimRight(string(rb), "\n"), "\n") {
		var l struct {
			Status    int  `json:"status"`
			Done      bool `json:"done"`
			Truncated bool `json:"truncated"`
		}
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			return int64(len(rb)), err
		}
		if l.Done && l.Truncated {
			return int64(len(rb)), fmt.Errorf("batch truncated")
		}
		if !l.Done && l.Status != http.StatusOK {
			return int64(len(rb)), fmt.Errorf("item status %d", l.Status)
		}
	}
	return int64(len(rb)), nil
}

// quantile reads the q-quantile from an ascending sample by the
// nearest-rank definition: index ⌈q·n⌉−1, clamped. The previous
// int(q·(n−1)) truncated the rank downward, so small samples
// underestimated — p99 of two samples reported the minimum. An empty
// sample reports 0 by convention.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}
