package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/mia-rt/mia/internal/server"
)

// startServer boots an in-process miaserve core behind httptest, so the
// client-side harness is exercised over a real HTTP stack without execing a
// binary (the servesmoke-tagged test covers the binary).
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func runLoad(t *testing.T, addr string, extra ...string) report {
	t.Helper()
	args := append([]string{
		"-addr", addr, "-tasks", "128", "-requests", "6",
		"-concurrency", "2", "-json",
	}, extra...)
	var out bytes.Buffer
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("miaload %v: %v\noutput: %s", args, err, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decoding report: %v\noutput: %s", err, out.String())
	}
	return rep
}

func TestLoadModes(t *testing.T) {
	ts := startServer(t)
	for _, mode := range []string{"analyze", "unary", "batch"} {
		for _, useWire := range []bool{false, true} {
			t.Run(mode+"/wire="+strconv.FormatBool(useWire), func(t *testing.T) {
				extra := []string{"-mode", mode, "-batch", "4"}
				if useWire {
					extra = append(extra, "-wire")
				}
				rep := runLoad(t, ts.URL, extra...)
				if rep.Errors != 0 {
					t.Fatalf("report has %d errors", rep.Errors)
				}
				if rep.Requests != 6 || rep.Mode != mode || rep.Wire != useWire {
					t.Errorf("report header %+v, want 6 %s requests (wire=%v)", rep, mode, useWire)
				}
				if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P50 {
					t.Errorf("degenerate latency histogram %+v", rep.Latency)
				}
				if rep.ItemsPerSec <= 0 || rep.BytesIn <= 0 {
					t.Errorf("throughput %.1f items/s, %d bytes in: want > 0", rep.ItemsPerSec, rep.BytesIn)
				}
				if mode == "batch" && rep.Batch != 4 {
					t.Errorf("report batch %d, want 4", rep.Batch)
				}
			})
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-mode", "bogus"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(context.Background(), []string{"-requests", "0"}, &out); err == nil {
		t.Error("zero requests accepted")
	}
	if err := run(context.Background(), []string{"-tasks", "1"}, &out); err == nil {
		t.Error("degenerate task count accepted")
	}
}
