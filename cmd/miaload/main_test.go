package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/mia-rt/mia/internal/server"
)

// startServer boots an in-process miaserve core behind httptest, so the
// client-side harness is exercised over a real HTTP stack without execing a
// binary (the servesmoke-tagged test covers the binary).
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func runLoad(t *testing.T, addr string, extra ...string) report {
	t.Helper()
	args := append([]string{
		"-addr", addr, "-tasks", "128", "-requests", "6",
		"-concurrency", "2", "-json",
	}, extra...)
	var out bytes.Buffer
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("miaload %v: %v\noutput: %s", args, err, out.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decoding report: %v\noutput: %s", err, out.String())
	}
	return rep
}

func TestLoadModes(t *testing.T) {
	ts := startServer(t)
	for _, mode := range []string{"analyze", "unary", "batch"} {
		for _, useWire := range []bool{false, true} {
			t.Run(mode+"/wire="+strconv.FormatBool(useWire), func(t *testing.T) {
				extra := []string{"-mode", mode, "-batch", "4"}
				if useWire {
					extra = append(extra, "-wire")
				}
				rep := runLoad(t, ts.URL, extra...)
				if rep.Errors != 0 {
					t.Fatalf("report has %d errors", rep.Errors)
				}
				if rep.Requests != 6 || rep.Mode != mode || rep.Wire != useWire {
					t.Errorf("report header %+v, want 6 %s requests (wire=%v)", rep, mode, useWire)
				}
				if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P50 {
					t.Errorf("degenerate latency histogram %+v", rep.Latency)
				}
				if rep.ItemsPerSec <= 0 || rep.BytesIn <= 0 {
					t.Errorf("throughput %.1f items/s, %d bytes in: want > 0", rep.ItemsPerSec, rep.BytesIn)
				}
				if mode == "batch" && rep.Batch != 4 {
					t.Errorf("report batch %d, want 4", rep.Batch)
				}
			})
		}
	}
}

// TestQuantile pins the nearest-rank definition at the sample sizes the old
// int(q·(n−1)) formula underestimated: n = 1 and 2 (p99 must be the max,
// not the min), the empty sample (0 by convention), and n = 100 anchors.
func TestQuantile(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	cases := []struct {
		n    int
		q    float64
		want float64
	}{
		{0, 0.50, 0},
		{0, 0.99, 0},
		{1, 0.50, 1},
		{1, 0.99, 1},
		{2, 0.50, 1},
		{2, 0.95, 2}, // old formula returned 1 (the minimum)
		{2, 0.99, 2},
		{2, 1.00, 2},
		{100, 0.50, 50},
		{100, 0.95, 95},
		{100, 0.99, 99},
		{100, 1.00, 100},
	}
	for _, tc := range cases {
		if got := quantile(seq(tc.n), tc.q); got != tc.want {
			t.Errorf("quantile(n=%d, q=%.2f) = %v, want %v", tc.n, tc.q, got, tc.want)
		}
	}
}

// TestLoadShardTargets drives the shard-aware client path end to end: three
// in-process shards, client-side ring routing with -targets, several graphs
// spread across the fleet. Every request must land successfully (priming on
// primary + successor means even a routing disagreement would surface as a
// 404 error here).
func TestLoadShardTargets(t *testing.T) {
	ts1, ts2, ts3 := startServer(t), startServer(t), startServer(t)
	targets := ts1.URL + "," + ts2.URL + "," + ts3.URL
	rep := runLoad(t, ts1.URL, "-targets", targets, "-graphs", "3", "-mode", "batch", "-batch", "4")
	if rep.Errors != 0 {
		t.Fatalf("report has %d errors", rep.Errors)
	}
	if rep.Targets != 3 || rep.Graphs != 3 {
		t.Errorf("report targets=%d graphs=%d, want 3 and 3", rep.Targets, rep.Graphs)
	}
}

// TestLoadFailover: one of two targets is dead from the start; the
// client-side ring must fail requests over to the surviving shard.
func TestLoadFailover(t *testing.T) {
	live := startServer(t)
	dead := startServer(t)
	deadURL := dead.URL
	dead.Close() // connection refused for every request routed here first
	rep := runLoad(t, live.URL, "-targets", live.URL+","+deadURL, "-graphs", "2")
	if rep.Errors != 0 {
		t.Fatalf("failover load reported %d errors", rep.Errors)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-mode", "bogus"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(context.Background(), []string{"-requests", "0"}, &out); err == nil {
		t.Error("zero requests accepted")
	}
	if err := run(context.Background(), []string{"-tasks", "1"}, &out); err == nil {
		t.Error("degenerate task count accepted")
	}
}
