//go:build servesmoke

package main

// The serve-load smoke test (make serve-load-smoke) drives a short miaload
// run against a real miaserve process over loopback TCP: build the server
// binary, boot it, run the harness in every mode including wire ingest, and
// require zero failed requests plus a clean drain. It sits behind the
// servesmoke build tag because it compiles and execs a binary — CI runs it
// with -race so the in-process client side doubles as a race probe.

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestServeLoadSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "miaserve")
	build := exec.Command("go", "build", "-o", bin, "github.com/mia-rt/mia/cmd/miaserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building miaserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	var out syncOutput
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting miaserve: %v", err)
	}
	defer cmd.Process.Kill() // no-op after a clean exit

	base := waitListening(t, &out)

	for _, args := range [][]string{
		{"-mode", "analyze", "-wire"},
		{"-mode", "unary"},
		{"-mode", "batch", "-batch", "8", "-wire"},
	} {
		args = append([]string{"-addr", base, "-tasks", "128", "-requests", "8", "-concurrency", "2"}, args...)
		var loadOut bytes.Buffer
		if err := run(context.Background(), args, &loadOut); err != nil {
			t.Fatalf("miaload %v: %v\noutput: %s", args, err, loadOut.String())
		}
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("miaserve exited with %v, want code 0; output: %s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("miaserve did not exit after SIGINT; output: %s", out.String())
	}
}

func waitListening(t *testing.T, out *syncOutput) string {
	t.Helper()
	re := regexp.MustCompile(`listening on (http://[^\s,]+)`)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("miaserve never printed its listening line; output: %s", out.String())
	return ""
}

// syncOutput serializes concurrent writes from the child process pipes.
type syncOutput struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncOutput) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncOutput) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
