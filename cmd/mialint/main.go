// Command mialint runs the repository's domain-specific static-analysis
// suite (internal/lint) over a Go module: seven analyzers that enforce the
// determinism, hot-path-allocation, context-flow, bounded-input, lock-safety,
// handler-flow, and goroutine-join invariants the runtime test suites can
// only check after a regression has landed.
//
// Usage:
//
//	mialint ./...
//	mialint -analyzers determinism,ctxflow ./internal/...
//	mialint -C path/to/module -json ./...
//	mialint -jobs 8 -gha ./...
//
// Analysis parallelizes across packages with -jobs (0 means one worker per
// CPU); diagnostic output is byte-identical at any worker count. -gha
// renders diagnostics as GitHub Actions workflow annotations so findings
// surface inline on the pull-request diff.
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic was
// reported, and 2 when the module could not be loaded or the flags were
// invalid — the same convention as go vet, so CI treats diagnostics and
// breakage differently.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/pool"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mialint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "directory of the module to lint")
		names    = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		asJSON   = fs.Bool("json", false, "emit diagnostics as a JSON array instead of vet-style lines")
		asGHA    = fs.Bool("gha", false, "emit diagnostics as GitHub Actions ::error annotations")
		jobs     = fs.Int("jobs", 0, "packages analyzed concurrently (0 = one per CPU, 1 = sequential)")
		listOnly = fs.Bool("list", false, "list the available analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asGHA {
		fmt.Fprintln(stderr, "mialint: -json and -gha are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		var want []string
		for _, n := range strings.Split(*names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				want = append(want, n)
			}
		}
		sort.Strings(want)
		if analyzers = lint.ByName(want); analyzers == nil {
			fmt.Fprintf(stderr, "mialint: unknown analyzer in -analyzers=%s (run mialint -list)\n", *names)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Loading and type-checking the module is the expensive step; honor
	// cancellation before starting and between load and analysis so an
	// interrupted CI job dies fast.
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(stderr, "mialint:", err)
		return 2
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mialint:", err)
		return 2
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(stderr, "mialint:", err)
		return 2
	}
	diags, err := lint.RunParallel(ctx, pool.Jobs(*jobs), pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "mialint:", err)
		return 2
	}

	switch {
	case *asGHA:
		// GitHub Actions workflow-command syntax: message properties are
		// comma/colon-delimited, so the file path (the only property we emit
		// that can contain delimiters) is percent-escaped per the runner's
		// rules; the message itself only needs %, CR, and LF escaped.
		for _, d := range diags {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=mialint %s::%s\n",
				ghaEscapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, ghaEscapeData(d.Message))
		}
	case *asJSON:
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mialint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mialint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// ghaEscapeProperty escapes a workflow-command property value (the file
// path): %, CR, LF, and the property delimiters : and , per the Actions
// runner's escapeProperty.
func ghaEscapeProperty(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

// ghaEscapeData escapes a workflow-command message: %, CR, and LF per the
// Actions runner's escapeData, so multi-line messages stay one annotation.
func ghaEscapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}
