package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// runCLI invokes run in-process and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanModuleExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", "testdata/clean", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module produced output:\n%s", stdout)
	}
}

func TestDirtyModuleExitsOne(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", "testdata/dirty", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	for _, wantFrag := range []string{
		"ctxflow: context.Background in a library package",
		"goroleak: goroutine has no visible join",
	} {
		if !strings.Contains(stdout, wantFrag) {
			t.Errorf("stdout missing %q:\n%s", wantFrag, stdout)
		}
	}
	if !strings.Contains(stderr, "2 diagnostic(s)") {
		t.Errorf("stderr missing summary count:\n%s", stderr)
	}
}

func TestBrokenModuleExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-C", "testdata/broken", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "mialint:") {
		t.Errorf("stderr missing load error:\n%s", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-C", "testdata/dirty", "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if (d.Analyzer != "ctxflow" && d.Analyzer != "goroleak") || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestGHAOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-C", "testdata/dirty", "-gha", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("line is not a workflow annotation: %q", line)
		}
	}
	for _, wantFrag := range []string{"title=mialint ctxflow::", "title=mialint goroleak::", ",line=", ",col="} {
		if !strings.Contains(stdout, wantFrag) {
			t.Errorf("-gha output missing %q:\n%s", wantFrag, stdout)
		}
	}
}

func TestJSONAndGHAExclusive(t *testing.T) {
	code, _, stderr := runCLI(t, "-C", "testdata/dirty", "-json", "-gha", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("stderr missing exclusivity hint:\n%s", stderr)
	}
}

func TestJobsOutputByteIdentical(t *testing.T) {
	_, sequential, _ := runCLI(t, "-C", "testdata/dirty", "-jobs", "1", "./...")
	if sequential == "" {
		t.Fatal("sequential run produced no diagnostics to compare")
	}
	for _, jobs := range []string{"2", "4", "8"} {
		if _, parallel, _ := runCLI(t, "-C", "testdata/dirty", "-jobs", jobs, "./..."); parallel != sequential {
			t.Errorf("-jobs %s output differs from sequential:\n--- jobs=1\n%s\n--- jobs=%s\n%s", jobs, sequential, jobs, parallel)
		}
	}
}

func TestAnalyzerSubset(t *testing.T) {
	// The dirty fixture's violations are ctxflow and goroleak; restricting
	// the run to determinism must make it clean.
	code, stdout, stderr := runCLI(t, "-C", "testdata/dirty", "-analyzers", "determinism", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-C", "testdata/clean", "-analyzers", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer hint:\n%s", stderr)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"boundedinput", "ctxflow", "determinism", "goroleak", "handlerflow", "hotpathalloc", "locksafe"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestCanceledContextExitsTwo(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if code := run(ctx, []string{"-C", "testdata/clean", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 on canceled context", code)
	}
}
