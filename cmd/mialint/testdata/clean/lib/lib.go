// Package lib is a violation-free fixture: mialint must exit 0 on it.
package lib

import "context"

// Run is context-first and allocates nowhere special.
func Run(ctx context.Context, n int) (int, error) {
	return n * 2, ctx.Err()
}
