// Package lib carries exactly two violations, one ctxflow and one goroleak,
// so exit-code and diagnostic-count assertions stay stable.
package lib

import "context"

// Detach roots a context in a library (ctxflow).
func Detach() context.Context {
	return context.Background()
}

// Leak launches a join-less goroutine (goroleak).
func Leak(f func()) {
	go f()
}
