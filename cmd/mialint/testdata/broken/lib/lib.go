// Package lib does not type-check: the CLI must exit 2, distinguishing
// breakage from findings.
package lib

func Broken() int {
	return undefinedIdentifier
}
