// Command miaflow runs the complete framework pipeline the paper's
// introduction describes, from a dataflow program to a validated
// time-triggered schedule:
//
//	SDF graph → consistency (repetition vector) → single-rate expansion
//	→ mapping/ordering → O(n²) interference analysis → cycle-level
//	simulation check
//
// optionally unrolled over several periods for periodic applications.
//
// Usage:
//
//	miaflow app.sdf.json
//	miaflow -cores 8 -strategy list -gantt 80 app.sdf.json
//	miaflow -period 5000 -iterations 4 app.sdf.json
//	miaflow -example src-fir-dec
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/dataflow"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/periodic"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
	"github.com/mia-rt/mia/internal/sim"
)

func main() {
	// SIGINT/SIGTERM abort the interference analysis through the
	// scheduler's cancellation hook; the pipeline exits nonzero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miaflow:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miaflow", flag.ContinueOnError)
	var (
		cores      = fs.Int("cores", 4, "platform cores")
		banks      = fs.Int("banks", 4, "platform banks")
		strategy   = fs.String("strategy", "list", `mapping strategy: "cyclic", "balance" or "list"`)
		latency    = fs.Int64("latency", 1, "bank word latency in cycles")
		period     = fs.Int64("period", 0, "activation period in cycles (0 = single iteration)")
		iterations = fs.Int("iterations", 4, "periods to unroll when -period is set")
		gantt      = fs.Int("gantt", 0, "print an ASCII Gantt chart this many columns wide")
		noSim      = fs.Bool("nosim", false, "skip the cycle-level simulation check")
		example    = fs.String("example", "", `run a built-in SDF graph: "src-fir-dec"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *dataflow.Graph
	switch {
	case *example == "src-fir-dec":
		g = sampleRateConverter()
	case *example != "":
		return fmt.Errorf("unknown example %q", *example)
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = dataflow.ReadJSON(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need exactly one SDF JSON file (or -example); see -h")
	}

	var strat mapper.Strategy
	switch *strategy {
	case "cyclic":
		strat = mapper.RoundRobinLayers{}
	case "balance":
		strat = mapper.LoadBalance{}
	case "list":
		strat = mapper.ListScheduling{}
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	reps, err := g.Repetitions()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "SDF graph: %d actors, %d channels — consistent, repetition vector %v\n",
		len(g.Actors), len(g.Channels), reps)

	mg, err := g.Compile(*cores, *banks, strat)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "expanded + mapped (%s): %d tasks, %d edges on %d cores\n",
		strat.Name(), mg.NumTasks(), len(mg.Edges()), mg.Cores)

	tasksPerIteration := mg.NumTasks()
	nIter := 1
	if *period > 0 {
		nIter = *iterations
		if nIter < 1 {
			nIter = 1
		}
		mg, err = periodic.Unroll(mg, model.Cycles(*period), nIter)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "unrolled %d periods of %d cycles: %d jobs\n", nIter, *period, mg.NumTasks())
	}

	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(model.Cycles(*latency))}
	img, err := engine.Compile(mg, opts)
	if err != nil {
		return err
	}
	res, err := engine.MustNew(engine.Incremental).Analyze(ctx, img)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schedulable: makespan %d cycles, total interference %d cycles\n",
		res.Makespan, res.TotalInterference())
	if *period > 0 {
		if viol := periodic.CheckDeadlines(res, tasksPerIteration, nIter, model.Cycles(*period)); viol >= 0 {
			fmt.Fprintf(stdout, "PERIOD OVERRUN: iteration %d misses its deadline — reduce load or raise the period\n", viol)
		} else {
			slack := periodic.SteadyStateSlack(res, tasksPerIteration, nIter, model.Cycles(*period))
			fmt.Fprintf(stdout, "all %d iterations meet the period; steady-state slack %d cycles\n", nIter, slack)
		}
	}
	if *gantt > 0 {
		fmt.Fprint(stdout, sched.Gantt(mg, res, *gantt))
	}

	if !*noSim {
		out, err := sim.Run(mg, res.Release, sim.Config{Pattern: sim.Front, WordLatency: model.Cycles(*latency)})
		if err != nil {
			return err
		}
		for i := range out.Finish {
			if out.Finish[i] > res.Finish(model.TaskID(i)) {
				return fmt.Errorf("simulation exceeded analysis bound on task %d — please report", i)
			}
		}
		fmt.Fprintf(stdout, "cycle-level simulation: all %d jobs within their analyzed windows (simulated makespan %d)\n",
			mg.NumTasks(), out.Makespan)
	}
	return nil
}

// sampleRateConverter is the built-in demo: a classic multirate audio
// pipeline (source → FIR → 2:3 rate change → sink).
func sampleRateConverter() *dataflow.Graph {
	g := &dataflow.Graph{}
	src := g.AddActor(dataflow.Actor{Name: "src", WCET: 60, Local: 24})
	fir := g.AddActor(dataflow.Actor{Name: "fir", WCET: 140, Local: 48})
	rate := g.AddActor(dataflow.Actor{Name: "rate2to3", WCET: 90, Local: 30})
	sink := g.AddActor(dataflow.Actor{Name: "sink", WCET: 50, Local: 20})
	g.AddChannel(dataflow.Channel{From: src, To: fir, Produce: 1, Consume: 1, TokenWords: 4})
	g.AddChannel(dataflow.Channel{From: fir, To: rate, Produce: 3, Consume: 2, TokenWords: 4})
	g.AddChannel(dataflow.Channel{From: rate, To: sink, Produce: 3, Consume: 1, TokenWords: 4})
	return g
}
