package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuiltinExample(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-example", "src-fir-dec"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"repetition vector [2 2 3 9]",
		"16 tasks",
		"schedulable",
		"within their analyzed windows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPeriodicPipeline(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-example", "src-fir-dec", "-period", "800", "-iterations", "3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "steady-state slack") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestPeriodOverrunReported(t *testing.T) {
	var buf bytes.Buffer
	// Period far below the iteration makespan (~460 cycles on 4 cores).
	if err := run(context.Background(), []string{"-example", "src-fir-dec", "-period", "100", "-iterations", "3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "PERIOD OVERRUN") {
		t.Errorf("overrun not reported:\n%s", buf.String())
	}
}

func TestFromJSONFile(t *testing.T) {
	const src = `{
		"actors": [
			{"name": "a", "wcet": 10, "local": 4},
			{"name": "b", "wcet": 20, "local": 6}
		],
		"channels": [{"from": 0, "to": 1, "produce": 2, "consume": 3, "tokenWords": 5}]
	}`
	dir := t.TempDir()
	path := filepath.Join(dir, "app.sdf.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-cores", "2", "-banks", "2", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "repetition vector [3 2]") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestStrategies(t *testing.T) {
	for _, s := range []string{"cyclic", "balance", "list"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-strategy", s, "-example", "src-fir-dec", "-nosim"}, &buf); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                    // no input
		{"-example", "bogus"}, // unknown example
		{"-strategy", "bogus", "-example", "src-fir-dec"}, // unknown strategy
		{"/nonexistent.json"},                             // missing file
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Inconsistent SDF from file.
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	bad := `{"actors":[{"name":"a","wcet":1},{"name":"b","wcet":1}],
		"channels":[{"from":0,"to":1},{"from":0,"to":1,"produce":2}]}`
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{path}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("inconsistent SDF: err = %v", err)
	}
}
