package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
)

func TestGenerateToStdout(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-layers", "3", "-layersize", "4", "-cores", "4", "-banks", "4", "-seed", "7"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := model.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("output not a valid graph: %v", err)
	}
	if g.NumTasks() != 12 {
		t.Errorf("tasks = %d, want 12", g.NumTasks())
	}
}

func TestGenerateFamilyToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.json")
	dot := filepath.Join(dir, "g.dot")
	err := run(context.Background(), []string{"-family", "NL", "-fixed", "4", "-tasks", "32", "-o", out, "-dot", dot}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	g, err := model.ReadJSON(f)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g.NumTasks() != 32 {
		t.Errorf("tasks = %d", g.NumTasks())
	}
	dotBytes, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(dotBytes), "digraph") {
		t.Errorf("dot output bad: %v", err)
	}
}

func TestGenerateExamples(t *testing.T) {
	for _, name := range []string{"figure1", "figure2", "avionics"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-example", name}, &buf); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := model.ReadJSON(&buf); err != nil {
			t.Errorf("%s: invalid JSON: %v", name, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{},                    // no sizing
		{"-example", "bogus"}, // unknown example
		{"-family", "XX", "-fixed", "4", "-tasks", "16"}, // unknown family
		{"-family", "LS", "-fixed", "4", "-tasks", "15"}, // non-multiple
		{"-family", "LS"}, // missing fixed/tasks
		{"-layers", "2", "-layersize", "2", "-cores", "0"}, // bad platform
	}
	for _, args := range cases {
		if err := run(context.Background(), args, nil); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestSTGImportExport(t *testing.T) {
	dir := t.TempDir()
	stgIn := filepath.Join(dir, "in.stg")
	const src = "4\n0 0 0\n1 12 1 0\n2 18 1 0\n3 0 2 1 2\n"
	if err := os.WriteFile(stgIn, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonOut := filepath.Join(dir, "g.json")
	stgOut := filepath.Join(dir, "out.stg")
	if err := run(context.Background(), []string{"-fromstg", stgIn, "-cores", "2", "-banks", "2", "-o", jsonOut, "-stg", stgOut}, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := model.ReadJSON(f)
	if err != nil {
		t.Fatalf("imported JSON invalid: %v", err)
	}
	if g.NumTasks() != 4 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
	if g.Task(1).WCET != 12 {
		t.Errorf("wcet[1] = %d", g.Task(1).WCET)
	}
	if g.Task(1).Local == 0 {
		t.Error("memory annotations not synthesized")
	}
	round, err := os.ReadFile(stgOut)
	if err != nil || !strings.HasPrefix(string(round), "4\n") {
		t.Errorf("stg export bad: %v", err)
	}
}
