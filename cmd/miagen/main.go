// Command miagen generates the random layer-by-layer task graphs of the
// paper's evaluation (Tobita–Kasahara generation with the published
// parameter ranges) and writes them as JSON for miasched, or as Graphviz
// DOT for inspection.
//
// Usage:
//
//	miagen -layers 4 -layersize 64 -seed 3 -o graph.json
//	miagen -family NL -fixed 64 -tasks 384 -o nl64.json
//	miagen -example figure1 -dot figure1.dot
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/stg"
)

func main() {
	// SIGINT/SIGTERM stop generation before the output file is (over)written,
	// so an interrupted run never leaves a half-written graph behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miagen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miagen", flag.ContinueOnError)
	var (
		layers    = fs.Int("layers", 0, "number of layers")
		layerSize = fs.Int("layersize", 0, "tasks per layer")
		family    = fs.String("family", "", `alternative sizing: "LS" or "NL" with -fixed and -tasks`)
		fixed     = fs.Int("fixed", 0, "fixed dimension for -family")
		tasks     = fs.Int("tasks", 0, "total task count for -family")
		cores     = fs.Int("cores", 16, "number of cores")
		banks     = fs.Int("banks", 16, "number of memory banks")
		shared    = fs.Bool("shared", false, "compile all demands onto a single shared bank")
		seed      = fs.Int64("seed", 1, "random seed")
		edgeProb  = fs.Float64("edgeprob", 0.5, "probability of an edge to each next-layer task")
		example   = fs.String("example", "", `emit a named graph instead: "figure1", "figure2" or "avionics"`)
		fromSTG   = fs.String("fromstg", "", "import a Standard Task Graph (.stg) file instead of generating (synthesizes memory annotations)")
		out       = fs.String("o", "", "output JSON file (default stdout)")
		dot       = fs.String("dot", "", "also write Graphviz DOT to this file")
		stgOut    = fs.String("stg", "", "also export the graph in STG format to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *model.Graph
	var err error
	switch {
	case *fromSTG != "":
		f, err := os.Open(*fromSTG)
		if err != nil {
			return err
		}
		parsed, err := stg.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		syn := stg.DefaultSynthesis()
		syn.Seed = *seed
		prob, err := parsed.ToProblem(*cores, *banks, syn)
		if err != nil {
			return err
		}
		g, err = mapper.Map(prob, mapper.RoundRobinLayers{})
		if err != nil {
			return err
		}
	case *example != "":
		switch *example {
		case "figure1":
			g = gen.Figure1()
		case "figure2":
			g = gen.Figure2()
		case "avionics":
			g = gen.Avionics()
		default:
			return fmt.Errorf("unknown example %q", *example)
		}
	case *family != "":
		if *fixed <= 0 || *tasks <= 0 {
			return fmt.Errorf("-family needs -fixed and -tasks")
		}
		var p gen.Params
		switch *family {
		case "LS":
			if *tasks%*fixed != 0 {
				return fmt.Errorf("-tasks %d not a multiple of -fixed %d", *tasks, *fixed)
			}
			p = gen.NewParams(*tasks / *fixed, *fixed)
		case "NL":
			if *tasks%*fixed != 0 {
				return fmt.Errorf("-tasks %d not a multiple of -fixed %d", *tasks, *fixed)
			}
			p = gen.NewParams(*fixed, *tasks / *fixed)
		default:
			return fmt.Errorf("unknown family %q (want LS or NL)", *family)
		}
		p.Cores, p.Banks, p.SharedBank, p.Seed, p.EdgeProb = *cores, *banks, *shared, *seed, *edgeProb
		g, err = gen.Layered(p)
		if err != nil {
			return err
		}
	default:
		if *layers <= 0 || *layerSize <= 0 {
			return fmt.Errorf("need -layers and -layersize (or -family / -example); see -h")
		}
		p := gen.NewParams(*layers, *layerSize)
		p.Cores, p.Banks, p.SharedBank, p.Seed, p.EdgeProb = *cores, *banks, *shared, *seed, *edgeProb
		g, err = gen.Layered(p)
		if err != nil {
			return err
		}
	}

	if err := ctx.Err(); err != nil {
		return err // interrupted during generation: write nothing
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		return err
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteDOT(f); err != nil {
			return err
		}
	}
	if *stgOut != "" {
		f, err := os.Create(*stgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := stg.Write(f, g); err != nil {
			return err
		}
	}
	s := g.Stats()
	fmt.Fprintf(os.Stderr, "miagen: %d tasks, %d edges, %d cores, %d banks, total WCET %d\n",
		s.Tasks, s.Edges, s.Cores, s.Banks, s.TotalWCET)
	return nil
}
