// Command miasched computes the static time-triggered schedule of a task
// graph under memory interference: release dates Θ and worst-case response
// times R, per the DATE 2020 paper this repository reproduces.
//
// Usage:
//
//	miasched graph.json
//	miasched -algo fixpoint -arbiter rr -gantt 80 graph.json
//	miasched -example figure1 -gantt 72
//	miasched -example figure2 -events -partition 5
//	miasched -csv schedule.csv graph.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/plot"
	"github.com/mia-rt/mia/internal/prof"
	_ "github.com/mia-rt/mia/internal/rta" // registers the "rta" engine backend
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/fixpoint"    // registers the "fixpoint" engine backend
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
	"github.com/mia-rt/mia/internal/sens"
	"github.com/mia-rt/mia/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the analysis through the scheduler's
	// cancellation hook, so even a pathological instance exits promptly and
	// nonzero instead of ignoring the signal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miasched:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("miasched", flag.ContinueOnError)
	var (
		algo      = fs.String("algo", "incremental", `analysis: "incremental" (O(n²), the paper's contribution), "fixpoint" (O(n⁴) baseline) or "rta" (window-free compositional bound)`)
		arbName   = fs.String("arbiter", "rr", `bus policy: "rr", "hier-rr", "tree-rr", "wrr", "tdm", "fp" or "none"`)
		latency   = fs.Int64("latency", 1, "bank word latency in cycles")
		group     = fs.Int("group", 2, "hier-rr first-level group size")
		slots     = fs.Int("slots", 0, "tdm slots (default: core count)")
		slotLen   = fs.Int64("slotlen", 1, "tdm slot length in cycles")
		deadline  = fs.Int64("deadline", 0, "global deadline in cycles (0 = none)")
		crit      = fs.Bool("criticality", false, "print per-task WCET slack under the deadline (needs -deadline)")
		separate  = fs.Bool("separate", false, "disable same-core competitor merging (paper §II.C ablation)")
		oracle    = fs.Bool("oracle", false, "disable the cached-IBUS fast path; run the uncached reference analysis (differential-testing oracle)")
		parallel  = fs.Int("parallel", 0, "intra-analysis worker goroutines (0 or 1 = sequential; results are bit-identical at every level)")
		gantt     = fs.Int("gantt", 0, "print an ASCII Gantt chart this many columns wide")
		svg       = fs.String("svg", "", "write a Figure 1-style SVG Gantt chart to this file")
		chrome    = fs.String("chrome", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
		csv       = fs.String("csv", "", "write the schedule as CSV to this file")
		events    = fs.Bool("events", false, "print the incremental scheduler's event trace")
		partition = fs.Int64("partition", -1, "print the Closed/Alive/Future partition at this cursor instant (Figure 2)")
		example   = fs.String("example", "", `schedule a named graph: "figure1", "figure2" or "avionics"`)
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprof   = fs.String("memprofile", "", "write a heap profile to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer stopProf()

	var g *model.Graph
	switch {
	case *example != "":
		switch *example {
		case "figure1":
			g = gen.Figure1()
		case "figure2":
			g = gen.Figure2()
		case "avionics":
			g = gen.Avionics()
		default:
			return fmt.Errorf("unknown example %q", *example)
		}
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = model.ReadJSON(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need exactly one graph file (or -example); see -h")
	}

	nslots := *slots
	if nslots == 0 {
		nslots = g.Cores
	}
	arb, err := arbiter.New(arbiter.Spec{
		Policy: *arbName, WordLatency: *latency, GroupSize: *group,
		Slots: nslots, SlotLength: *slotLen,
	})
	if err != nil {
		return err
	}

	opts := sched.Options{
		Arbiter:             arb,
		Deadline:            model.Cycles(*deadline),
		SeparateCompetitors: *separate,
		DisableFastPath:     *oracle,
		Parallelism:         *parallel,
		Cancel:              ctx.Done(),
	}
	var rec trace.Recorder
	if *events || *partition >= 0 {
		opts.Trace = rec.Hook()
	}

	eng, err := engine.New(*algo)
	if err != nil {
		return err
	}
	if opts.Trace != nil && *algo != engine.Incremental {
		return fmt.Errorf("-events/-partition need the incremental scheduler (the baseline has no cursor)")
	}
	img, err := engine.Compile(g, opts)
	if err != nil {
		return err
	}
	res, err := eng.Analyze(ctx, img)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s: %d tasks on %d cores, %d banks, arbiter %s\n",
		res.Algorithm, g.NumTasks(), g.Cores, g.Banks, arb.Name())
	fmt.Fprintf(stdout, "schedulable: global WCRT (makespan) = %d cycles, total interference = %d cycles, %d iterations\n",
		res.Makespan, res.TotalInterference(), res.Iterations)
	if *gantt > 0 {
		fmt.Fprint(stdout, sched.Gantt(g, res, *gantt))
	}
	if *events {
		if err := rec.WriteText(stdout); err != nil {
			return err
		}
	}
	if *partition >= 0 {
		p := rec.PartitionAt(g, model.Cycles(*partition))
		fmt.Fprintln(stdout, p.String())
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteScheduleCSV(f, g, res); err != nil {
			return err
		}
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := plot.GanttSVG(f, g, res, 900); err != nil {
			return err
		}
	}
	if *crit {
		if *deadline <= 0 {
			return fmt.Errorf("-criticality needs -deadline")
		}
		slacks, err := sens.Criticality(ctx, g, opts, model.Cycles(*deadline))
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "per-task WCET slack (0 = critical):")
		for _, s := range slacks {
			fmt.Fprintf(stdout, "  %-12s %8d cycles\n", g.Task(s.Task).Name, s.Slack)
		}
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, g, res); err != nil {
			return err
		}
	}
	// Explicit stop (the defer is then a no-op) so profile-write errors
	// surface instead of vanishing in the deferred call.
	return stopProf()
}
