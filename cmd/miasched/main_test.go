package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScheduleFigure1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-example", "figure1", "-gantt", "60"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"makespan) = 7 cycles", "n3 I:2", "incremental"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleFixpoint(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-algo", "fixpoint", "-example", "figure1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "fixpoint") {
		t.Errorf("output = %s", buf.String())
	}
}

func TestScheduleFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	const src = `{
		"cores": 2, "banks": 1,
		"tasks": [
			{"id": 0, "name": "a", "wcet": 10, "core": 0, "local": 5},
			{"id": 1, "name": "b", "wcet": 10, "core": 1, "local": 5}
		],
		"edges": []
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "out.csv")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", csvPath, path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if !strings.Contains(string(csv), "a,0,0,10,5,15,15") {
		t.Errorf("csv content:\n%s", csv)
	}
}

func TestScheduleEventsAndPartition(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-example", "figure2", "-events", "-partition", "5"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "t=5 C=") {
		t.Errorf("partition line missing:\n%s", out)
	}
	if !strings.Contains(out, "open") {
		t.Errorf("event log missing")
	}
}

func TestScheduleArbiters(t *testing.T) {
	for _, arb := range []string{"rr", "hier-rr", "tdm", "fp", "none"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-arbiter", arb, "-example", "avionics"}, &buf); err != nil {
			t.Errorf("%s: %v", arb, err)
		}
	}
}

func TestScheduleUnschedulable(t *testing.T) {
	if err := run(context.Background(), []string{"-example", "figure1", "-deadline", "3"}, &bytes.Buffer{}); err == nil {
		t.Fatal("impossible deadline accepted")
	}
}

func TestScheduleErrors(t *testing.T) {
	cases := [][]string{
		{},                    // no input
		{"-example", "bogus"}, // unknown example
		{"-algo", "bogus", "-example", "figure1"},               // unknown algorithm
		{"-arbiter", "bogus", "-example", "figure1"},            // unknown arbiter
		{"-algo", "fixpoint", "-events", "-example", "figure1"}, // baseline has no trace
		{"/nonexistent/graph.json"},                             // missing file
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestScheduleSVGGantt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig1.svg")
	if err := run(context.Background(), []string{"-example", "figure1", "-svg", path}, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	svg, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read svg: %v", err)
	}
	for _, want := range []string{"<svg", "n3 I:2", "makespan 7 cycles"} {
		if !strings.Contains(string(svg), want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestCriticalityFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-example", "figure1", "-deadline", "10", "-criticality"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "per-task WCET slack") || !strings.Contains(out, "n3") {
		t.Errorf("output:\n%s", out)
	}
	if err := run(context.Background(), []string{"-example", "figure1", "-criticality"}, &bytes.Buffer{}); err == nil {
		t.Error("criticality without deadline accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-example", "avionics", "-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestProfileFlagBadPath(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-example", "figure1", "-cpuprofile", filepath.Join(t.TempDir(), "no", "dir", "x")}, &buf)
	if err == nil {
		t.Fatal("expected error for unwritable profile path")
	}
}
