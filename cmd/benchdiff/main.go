// Command benchdiff compares `go test -bench -benchmem` output against a
// committed baseline and flags regressions — the benchstat-style smoke check
// behind the CI benchmark job.
//
// Usage:
//
//	go test ./... -bench . -benchmem -benchtime 100x | benchdiff -baseline BENCH_baseline.json
//	go test ./... -bench . -benchmem | benchdiff -baseline BENCH_baseline.json -update
//
// The comparison is deliberately a *smoke* check, not a statistics suite:
// shared CI runners are noisy, so a benchmark only draws a warning when it
// regresses beyond the threshold (default 2x) — and a warning is all it
// draws. benchdiff always exits 0 on a successful comparison, regressions
// included; a non-zero exit means the input or the baseline could not be
// read. Time regressions warn; allocation-count regressions also warn, and
// a benchmark whose baseline pins 0 allocs/op warns on ANY allocation, since
// allocs/op is deterministic and zero is the contract the scheduler's hot
// path ships with (see the AllocsPerRun guards). Custom b.ReportMetric units
// (latency quantiles such as p50-ms) are pinned and compared the same way,
// except that a metric the baseline does not pin yet compares silently — a
// benchmark may grow metrics before the baseline is refreshed. With -gha,
// warnings are emitted as GitHub Actions ::warning annotations.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// entry is one benchmark's pinned numbers. AllocsOp is a pointer so a
// baseline can omit it for benchmarks without -benchmem data. Metrics holds
// b.ReportMetric custom units (latency quantiles like "p50-ms") by unit
// name; a baseline that predates a benchmark's custom metrics simply omits
// them, and such unpinned metrics compare silently — they become pinned on
// the next -update.
type entry struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp *float64           `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// baseline is the committed BENCH_baseline.json: benchmark name (with the
// GOMAXPROCS suffix stripped) → pinned numbers.
type baseline struct {
	// Note records how the numbers were produced, for humans regenerating
	// the file.
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	// benchdiff usually sits at the end of a pipe; SIGINT/SIGTERM abort the
	// stdin read (which otherwise blocks forever on an interactive terminal)
	// and exit nonzero instead of being ignored.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		update    = fs.Bool("update", false, "rewrite the baseline from the measured input instead of comparing")
		threshold = fs.Float64("threshold", 2.0, "warn when measured/baseline exceeds this ratio")
		gha       = fs.Bool("gha", false, "emit GitHub Actions ::warning annotations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold <= 1 {
		return fmt.Errorf("threshold must exceed 1 (got %g)", *threshold)
	}

	// Parse on a helper goroutine so a signal can interrupt a stdin read
	// that would otherwise block forever (e.g. benchdiff run without a
	// pipe). The reader goroutine is abandoned on cancellation; the process
	// exits right after, so nothing leaks past main.
	type parsed struct {
		m   map[string]entry
		err error
	}
	ch := make(chan parsed, 1)
	go func() {
		m, err := parseBench(stdin)
		ch <- parsed{m, err}
	}()
	var measured map[string]entry
	select {
	case p := <-ch:
		if p.err != nil {
			return p.err
		}
		measured = p.m
	case <-ctx.Done():
		return ctx.Err()
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin (want `go test -bench` output)")
	}

	if *update {
		return writeBaseline(*basePath, measured)
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", *basePath, err)
	}

	warn := func(format string, a ...any) {
		msg := fmt.Sprintf(format, a...)
		if *gha {
			fmt.Fprintf(stdout, "::warning title=benchmark regression::%s\n", msg)
		} else {
			fmt.Fprintf(stdout, "WARN: %s\n", msg)
		}
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions, drift := 0, 0
	for _, name := range names {
		m := measured[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			// A measured benchmark the baseline does not pin is comparison
			// drift, not a regression — but it must be visible in CI, not a
			// stdout note nobody reads.
			warn("%s: not in baseline — no comparison possible (run -update to pin it)", name)
			drift++
			continue
		}
		// A non-positive pinned time can only come from a corrupt or
		// hand-edited baseline; dividing by it would turn every comparison
		// into ±Inf/NaN, so flag the baseline instead of the measurement.
		if b.NsOp <= 0 {
			warn("%s: baseline pins %g ns/op (non-positive) — refresh the baseline with -update", name, b.NsOp)
			drift++
		} else if m.NsOp/b.NsOp > *threshold {
			warn("%s: %.0f ns/op vs baseline %.0f ns/op (%.1fx > %.1fx threshold)",
				name, m.NsOp, b.NsOp, m.NsOp/b.NsOp, *threshold)
			regressions++
		}
		switch {
		case m.AllocsOp != nil && b.AllocsOp == nil:
			warn("%s: measured %.0f allocs/op but baseline pins no allocation data (run -update with -benchmem)",
				name, *m.AllocsOp)
			drift++
		case b.AllocsOp == nil || m.AllocsOp == nil:
			// Baseline-only allocation data (input ran without -benchmem):
			// nothing to compare.
		case *b.AllocsOp == 0 && *m.AllocsOp > 0:
			// Allocation counts are deterministic: zero is a contract,
			// not a measurement, so any alloc is a real regression.
			warn("%s: %.0f allocs/op vs baseline 0 (allocation-free contract broken)",
				name, *m.AllocsOp)
			regressions++
		case *b.AllocsOp < 0:
			warn("%s: baseline pins %g allocs/op (negative) — refresh the baseline with -update", name, *b.AllocsOp)
			drift++
		case *b.AllocsOp > 0 && *m.AllocsOp / *b.AllocsOp > *threshold:
			warn("%s: %.0f allocs/op vs baseline %.0f (%.1fx > %.1fx threshold)",
				name, *m.AllocsOp, *b.AllocsOp, *m.AllocsOp / *b.AllocsOp, *threshold)
			regressions++
		}
		// Custom metrics (b.ReportMetric units such as latency quantiles)
		// compare only where the baseline pins a positive value: a fresh
		// baseline written before a benchmark grew the metric is not drift
		// and draws no warning.
		units := make([]string, 0, len(m.Metrics))
		for unit := range m.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			pinned, ok := b.Metrics[unit]
			if !ok || pinned <= 0 {
				continue
			}
			if v := m.Metrics[unit]; v/pinned > *threshold {
				warn("%s: %.3g %s vs baseline %.3g (%.1fx > %.1fx threshold)",
					name, v, unit, pinned, v/pinned, *threshold)
				regressions++
			}
		}
	}
	switch {
	case regressions == 0 && drift == 0:
		fmt.Fprintf(stdout, "benchdiff: %d benchmarks within %.1fx of baseline\n", len(names), *threshold)
	case regressions == 0:
		fmt.Fprintf(stdout, "benchdiff: no regressions, but %d benchmark(s) could not be fully compared — see warnings above\n", drift)
	default:
		fmt.Fprintf(stdout, "benchdiff: %d possible regression(s) — warnings only, see above (noise on shared runners is expected; re-run or refresh the baseline with -update if reproducible)\n", regressions)
	}
	return nil
}

// parseBench extracts Benchmark lines from `go test -bench` output. The
// trailing -N GOMAXPROCS suffix is stripped so baselines transfer across
// machines with different core counts.
func parseBench(r io.Reader) (map[string]entry, error) {
	out := map[string]entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e entry
		seenNs := false
		// fields: name, iterations, then value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsOp, seenNs = v, true
			case "allocs/op":
				av := v
				e.AllocsOp = &av
			case "B/op", "MB/s":
				// Throughput and bytes-per-op track ns/op; comparing them
				// separately would only double-report the same regression.
			default:
				// Anything else is a b.ReportMetric custom unit (latency
				// quantiles, counts) — carried so baselines can pin it.
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
		if !seenNs {
			return nil, fmt.Errorf("line %q: no ns/op field", sc.Text())
		}
		out[name] = e
	}
	return out, sc.Err()
}

// writeBaseline pins the measured numbers as the new baseline.
func writeBaseline(path string, measured map[string]entry) error {
	b := baseline{
		Note:       "regenerate: go test ./... -bench . -benchmem | benchdiff -baseline BENCH_baseline.json -update",
		Benchmarks: measured,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
