package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/mia-rt/mia/internal/sched/incremental
BenchmarkScheduleIncremental/n=256-8         	    1000	    100000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRescheduleWarm/n=256/warm-8         	    5000	     20000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRescheduleWarm/n=256/cold-8         	    1000	    210000 ns/op	   60720 B/op	     264 allocs/op
PASS
ok  	github.com/mia-rt/mia/internal/sched/incremental	2.1s
`

func writeTempBaseline(t *testing.T, input string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path, "-update"}, strings.NewReader(input), &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	return path
}

func TestUpdateWritesBaseline(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	e, ok := b.Benchmarks["BenchmarkRescheduleWarm/n=256/warm"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped; keys: %v", b.Benchmarks)
	}
	if e.NsOp != 20000 || e.AllocsOp == nil || *e.AllocsOp != 0 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestCompareWithinThresholdIsQuiet(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "WARN") {
		t.Fatalf("identical numbers warned:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "within 2.0x") {
		t.Fatalf("missing summary:\n%s", out.String())
	}
}

func TestCompareWarnsButExitsZero(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	slow := strings.Replace(sampleBench, "20000 ns/op", "90000 ns/op", 1)
	var out bytes.Buffer
	// A 4.5x time regression must warn yet still return nil (warn-don't-fail).
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(slow), &out); err != nil {
		t.Fatalf("regression must not fail the run: %v", err)
	}
	if !strings.Contains(out.String(), "WARN") || !strings.Contains(out.String(), "4.5x") {
		t.Fatalf("missing warning:\n%s", out.String())
	}
}

func TestCompareNoiseBelowThresholdIgnored(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	noisy := strings.Replace(sampleBench, "20000 ns/op", "35000 ns/op", 1) // 1.75x < 2x
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(noisy), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "WARN") {
		t.Fatalf("sub-threshold noise warned:\n%s", out.String())
	}
}

func TestZeroAllocContractWarnsOnAnyAlloc(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	leaky := strings.Replace(sampleBench,
		"5000	     20000 ns/op	       0 B/op	       0 allocs/op",
		"5000	     20000 ns/op	      48 B/op	       1 allocs/op", 1)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(leaky), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocation-free contract") {
		t.Fatalf("1 alloc against a 0-alloc baseline must warn:\n%s", out.String())
	}
}

func TestGitHubAnnotations(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	slow := strings.Replace(sampleBench, "20000 ns/op", "90000 ns/op", 1)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path, "-gha"}, strings.NewReader(slow), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "::warning title=benchmark regression::") {
		t.Fatalf("missing GHA annotation:\n%s", out.String())
	}
}

func TestUnknownBenchmarkWarns(t *testing.T) {
	path := writeTempBaseline(t, sampleBench)
	extra := sampleBench + "BenchmarkNew/thing-8 	 100	 5000 ns/op\n"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(extra), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkNew/thing: not in baseline") {
		t.Fatalf("missing warning:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "could not be fully compared") {
		t.Fatalf("missing drift summary:\n%s", out.String())
	}
}

// TestDegenerateBaselines pins the hardened comparison paths: non-positive
// pinned values and candidate-only metrics draw warn-annotations instead of
// panicking, dividing into ±Inf, or passing silently. Every case must still
// exit zero — benchdiff fails only on unreadable input.
func TestDegenerateBaselines(t *testing.T) {
	writeBaselineFile := func(t *testing.T, body string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	input := "BenchmarkX-8 	 100	 5000 ns/op	 10 allocs/op\n"
	cases := []struct {
		name     string
		baseline string
		input    string
		want     string // substring that must appear in output
		veto     string // substring that must NOT appear (empty = none)
	}{
		{
			name:     "zero baseline ns/op",
			baseline: `{"benchmarks":{"BenchmarkX":{"ns_op":0}}}`,
			input:    input,
			want:     "non-positive",
			veto:     "Inf",
		},
		{
			name:     "negative baseline ns/op",
			baseline: `{"benchmarks":{"BenchmarkX":{"ns_op":-12}}}`,
			input:    input,
			want:     "non-positive",
			veto:     "Inf",
		},
		{
			name:     "allocs measured but not pinned",
			baseline: `{"benchmarks":{"BenchmarkX":{"ns_op":5000}}}`,
			input:    input,
			want:     "no allocation data",
		},
		{
			name:     "negative baseline allocs",
			baseline: `{"benchmarks":{"BenchmarkX":{"ns_op":5000,"allocs_op":-3}}}`,
			input:    input,
			want:     "negative",
			veto:     "Inf",
		},
		{
			name:     "allocs pinned but not measured is fine",
			baseline: `{"benchmarks":{"BenchmarkX":{"ns_op":5000,"allocs_op":10}}}`,
			input:    "BenchmarkX-8 	 100	 5000 ns/op\n",
			want:     "within 2.0x",
			veto:     "WARN",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeBaselineFile(t, tc.baseline)
			var out bytes.Buffer
			if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(tc.input), &out); err != nil {
				t.Fatalf("degenerate baseline must not fail the run: %v", err)
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("missing %q in output:\n%s", tc.want, out.String())
			}
			if tc.veto != "" && strings.Contains(out.String(), tc.veto) {
				t.Errorf("output must not contain %q:\n%s", tc.veto, out.String())
			}
		})
	}
}

// sampleQuantileBench mirrors the serve benchmarks' b.ReportMetric output:
// latency quantiles interleaved with the standard -benchmem columns.
const sampleQuantileBench = `BenchmarkServeRescheduleBatch-8 	      30	   2500000 ns/op	         1.250 p50-ms	         2.100 p95-ms	         3.000 p99-ms	 1344000 B/op	   15853 allocs/op
PASS
`

func TestCustomMetricsPinnedAndCompared(t *testing.T) {
	path := writeTempBaseline(t, sampleQuantileBench)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	e := b.Benchmarks["BenchmarkServeRescheduleBatch"]
	if e.Metrics["p50-ms"] != 1.25 || e.Metrics["p95-ms"] != 2.1 || e.Metrics["p99-ms"] != 3 {
		t.Fatalf("quantile metrics not pinned: %+v", e.Metrics)
	}
	if _, ok := e.Metrics["B/op"]; ok {
		t.Fatalf("B/op must not be treated as a custom metric: %+v", e.Metrics)
	}

	// Within threshold: quiet.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(sampleQuantileBench), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "WARN") {
		t.Fatalf("identical quantiles warned:\n%s", out.String())
	}

	// A quantile regression past the threshold warns even when ns/op holds.
	slow := strings.Replace(sampleQuantileBench, "1.250 p50-ms", "9.000 p50-ms", 1)
	out.Reset()
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(slow), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p50-ms") || !strings.Contains(out.String(), "WARN") {
		t.Fatalf("p50-ms regression must warn:\n%s", out.String())
	}
}

func TestCustomMetricsAbsentFromBaselineAreSilent(t *testing.T) {
	// Baseline written before the benchmark grew quantile metrics: the new
	// metrics must compare silently, not as drift.
	noMetrics := "BenchmarkServeRescheduleBatch-8 	      30	   2500000 ns/op	 1344000 B/op	   15853 allocs/op\n"
	path := writeTempBaseline(t, noMetrics)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-baseline", path}, strings.NewReader(sampleQuantileBench), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "WARN") {
		t.Fatalf("fresh metrics against a metric-less baseline must not warn:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "within 2.0x") {
		t.Fatalf("missing clean summary:\n%s", out.String())
	}
}

func TestEmptyInputFails(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("empty input must fail (broken pipe upstream)")
	}
}

func TestMissingBaselineFails(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-baseline", filepath.Join(t.TempDir(), "absent.json")},
		strings.NewReader(sampleBench), &out)
	if err == nil {
		t.Fatal("missing baseline must fail")
	}
}

func TestBadThresholdRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-threshold", "0.5"}, strings.NewReader(sampleBench), &out); err == nil {
		t.Fatal("threshold ≤ 1 must be rejected")
	}
}
