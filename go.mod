module github.com/mia-rt/mia

go 1.22
