// Package mia reproduces "Scaling Up the Memory Interference Analysis for
// Hard Real-Time Many-Core Systems" (Dupont de Dinechin, Schuh, Moy, Maïza
// — DATE 2020): computing static time-triggered schedules (release dates
// and worst-case response times under shared-memory interference) for task
// DAGs mapped onto many-core platforms, with the paper's O(n²) incremental
// algorithm and the O(n⁴) fixed-point baseline it supersedes.
//
// The implementation lives under internal/ — see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the paper-vs-measured record, the
// examples/ directory for runnable entry points, and cmd/ for the three
// command-line tools (miagen, miasched, miabench). The root-level
// bench_test.go hosts one testing.B benchmark per figure panel of the
// paper's evaluation plus the design-choice ablations.
package mia
