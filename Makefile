# Developer entry points. `make ci` is exactly what the GitHub Actions
# workflow runs; keep the two in sync.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: all vet build test race fuzz-smoke bench-smoke serve-smoke ci clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One bounded fuzzing pass per target. Short by design: this is a smoke
# check that the harnesses still run and the seed corpora still pass, not a
# bug hunt. Override with e.g. `make fuzz-smoke FUZZTIME=5m` to dig.
fuzz-smoke:
	$(GO) test ./internal/model -run '^$$' -fuzz FuzzReadJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stg -run '^$$' -fuzz FuzzReadSTG -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sched/incremental -run '^$$' -fuzz FuzzScheduleInvariants -fuzztime $(FUZZTIME)

# Short benchmark pass compared against the committed baseline. Warn-only by
# design: shared runners are noisy, so regressions annotate the run instead
# of failing it (the allocation-free contracts are enforced for real by the
# AllocsPerRun guard tests under `make test`). Refresh the baseline on a
# quiet machine with:
#   $(GO) test ./internal/sched/incremental ./internal/explore -run '^$$' \
#     -bench . -benchmem -benchtime 1s | $(GO) run ./cmd/benchdiff -update
bench-smoke:
	$(GO) test ./internal/sched/incremental ./internal/explore -run '^$$' \
	  -bench . -benchmem -benchtime 100ms | $(GO) run ./cmd/benchdiff $(BENCHDIFF_FLAGS)

# End-to-end smoke check for the analysis service: builds the real miaserve
# binary, boots it on an ephemeral port, round-trips analyze → reschedule
# over HTTP, then sends SIGINT and requires a clean drain (exit 0). Behind a
# build tag so `go test ./...` stays exec-free.
serve-smoke:
	$(GO) test -tags servesmoke -run TestServeSmoke -v ./cmd/miaserve

ci: vet build race fuzz-smoke bench-smoke serve-smoke

clean:
	$(GO) clean ./...
