# Developer entry points. `make ci` is exactly what the GitHub Actions
# workflow runs; keep the two in sync.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: all vet build test race fuzz-smoke ci clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One bounded fuzzing pass per target. Short by design: this is a smoke
# check that the harnesses still run and the seed corpora still pass, not a
# bug hunt. Override with e.g. `make fuzz-smoke FUZZTIME=5m` to dig.
fuzz-smoke:
	$(GO) test ./internal/model -run '^$$' -fuzz FuzzReadJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stg -run '^$$' -fuzz FuzzReadSTG -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sched/incremental -run '^$$' -fuzz FuzzScheduleInvariants -fuzztime $(FUZZTIME)

ci: vet build race fuzz-smoke

clean:
	$(GO) clean ./...
