# Developer entry points. `make ci` is exactly what the GitHub Actions
# workflow runs; keep the two in sync.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: all vet build test race lint lint-fixtures fuzz-smoke bench-smoke pareto-smoke serve-smoke serve-load-smoke serve-shard-smoke engine-diff engine-diff-parallel ci clean

all: build

vet:
	$(GO) vet ./...

# Static-analysis gate: the domain-specific mialint suite (all seven
# analyzers — see internal/lint and the README table), go vet, and a gofmt
# cleanliness check. staticcheck joins in when it is on PATH; the container
# image does not ship it, so its absence is not a failure. bin/mialint is a
# real file target so repeated `make lint` reuses the built analyzer when
# its sources have not changed; CI caches it on the same source hash.
# MIALINT_FLAGS feeds extra flags (CI passes -gha for inline annotations).
MIALINT_SRCS := $(shell find cmd/mialint internal/lint -name '*.go' -not -path '*/testdata/*')

bin/mialint: $(MIALINT_SRCS) go.mod
	$(GO) build -o $@ ./cmd/mialint

lint: bin/mialint vet
	./bin/mialint $(MIALINT_FLAGS) ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
	  echo "gofmt -l flagged:"; echo "$$unformatted"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	  else echo "staticcheck not on PATH; skipped"; fi

# The analyzers' own golden-fixture suites: every testdata module under
# internal/lint replayed against its `// want` expectations, plus the
# call-graph and CLI tests. The fast loop while writing an analyzer.
lint-fixtures:
	$(GO) test ./internal/lint/... ./cmd/mialint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One bounded fuzzing pass per target. Short by design: this is a smoke
# check that the harnesses still run and the seed corpora still pass, not a
# bug hunt. Override with e.g. `make fuzz-smoke FUZZTIME=5m` to dig.
fuzz-smoke:
	$(GO) test ./internal/model -run '^$$' -fuzz FuzzReadJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stg -run '^$$' -fuzz FuzzReadSTG -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzDecodeWire -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sched/incremental -run '^$$' -fuzz FuzzScheduleInvariants -fuzztime $(FUZZTIME)

# Short benchmark pass compared against the committed baseline. Warn-only by
# design: shared runners are noisy, so regressions annotate the run instead
# of failing it (the allocation-free contracts are enforced for real by the
# AllocsPerRun guard tests under `make test`). Refresh the baseline on a
# quiet machine with:
#   $(GO) test ./internal/sched/incremental ./internal/explore ./internal/engine \
#     ./internal/wire ./internal/server \
#     -run '^$$' -bench . -benchmem -benchtime 1s | $(GO) run ./cmd/benchdiff -update
# After -update, re-pin BenchmarkParallelKernel/n=4096/P=4 to 1 alloc/op:
# at the smoke benchtime that benchmark runs a single iteration, which can
# catch one runtime sudog allocation from channel parking (it amortizes to 0
# at any longer benchtime; the analyzer's own 0-alloc contract is enforced
# by the AllocsPerRun guard tests, not by this warn-only smoke pass).
bench-smoke:
	$(GO) test ./internal/sched/incremental ./internal/explore ./internal/engine \
	  ./internal/explore/pareto ./internal/wire ./internal/server \
	  -run '^$$' -bench . -benchmem -benchtime 100ms | $(GO) run ./cmd/benchdiff $(BENCHDIFF_FLAGS)

# Determinism gate for the multi-objective search (DESIGN §3.11): the smoke
# search's Pareto front must hash to the golden fingerprint pinned in
# pareto_test.go, and the cross-jobs/repeat-run byte-identity suite must
# hold under the race detector. An intentional change to the search (new
# mutation weights, different crowding tie-break, …) re-pins the golden by
# running the test once and copying the fingerprint from the failure.
pareto-smoke:
	$(GO) test -race ./internal/explore/pareto -run \
	  'TestSmokeGoldenFingerprint|TestByteIdenticalAcrossJobs|TestRepeatedSeededRunsIdentical' -v

# The tentpole's safety net, runnable on its own: the engine path (compile
# once, analyze through the façade — cold, warm, replay, both algorithms)
# must be bit-identical to the package-level Schedule entry points over the
# full differential corpus, and the rta screen must dominate the exact
# analysis. `make race` covers these too; this target is the fast loop while
# working on the image or a backend.
engine-diff:
	$(GO) test ./internal/engine -run \
	  'TestEngineBitIdentical|TestEditedReschedule|TestRTABoundDominates|TestParallelBitIdentical|TestMetamorphic' -v

# Parallel-kernel determinism under the race detector: corpus-wide
# bit-identity at Parallelism ∈ {1,2,4,8}, the metamorphic battery, and the
# kernel lifecycle tests (shared-image races, worker-leak, cancellation).
# CI runs this leg twice — GOMAXPROCS=1 and GOMAXPROCS=4 — because both the
# interleavings the race detector can observe and the partition scheduling
# differ; results must be bit-identical regardless.
engine-diff-parallel:
	$(GO) test -race ./internal/engine -run \
	  'TestParallelBitIdentical|TestMetamorphic|TestSharedImageConcurrentParallel|TestParallelKernelShutdownNoLeak|TestParallelCancellation' -v

# End-to-end smoke check for the analysis service: builds the real miaserve
# binary, boots it on an ephemeral port, round-trips analyze → reschedule
# over HTTP, then sends SIGINT and requires a clean drain (exit 0). Behind a
# build tag so `go test ./...` stays exec-free.
serve-smoke:
	$(GO) test -tags servesmoke -run TestServeSmoke -v ./cmd/miaserve

# Load-path smoke check: builds miaserve, boots it on an ephemeral port, and
# drives a short miaload run through every mode (wire analyze, unary
# reschedule, wire batch) under the race detector, then requires a clean
# SIGINT drain. Same build tag as serve-smoke so `go test ./...` stays
# exec-free.
serve-load-smoke:
	$(GO) test -race -tags servesmoke -run TestServeLoadSmoke -v ./cmd/miaload

# Sharded-tier smoke check: builds miaserve and miarouter (both with -race),
# boots three single-worker shards with a one-slot admission queue behind a
# router, and drives miaload through three regimes: steady-state batch
# traffic (zero errors), saturation (-saturate: overload must shed with 429
# and a bounded Retry-After in [1, 30] s), and a SIGINT drain of the whole
# fleet (exit 0 everywhere). Same build tag as serve-smoke so `go test
# ./...` stays exec-free.
serve-shard-smoke:
	$(GO) test -race -tags servesmoke -run TestServeShardSmoke -v ./cmd/miaload

ci: lint build race fuzz-smoke bench-smoke pareto-smoke serve-smoke serve-load-smoke serve-shard-smoke

clean:
	$(GO) clean ./...
	rm -f bin/mialint
