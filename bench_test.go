// Benchmarks regenerating the paper's evaluation artifacts with the Go
// testing harness — one benchmark family per Figure 3 panel (E3/E4), the
// headline configurations (E5), the scalability claim (E6), and the
// design-choice ablations (E7/E8). The full sweep with regression fits and
// timeout handling lives in cmd/miabench; these benches provide the
// `go test -bench` view of the same experiments.
//
// Baseline ("Old") sizes are capped so a default `go test -bench=.` run
// finishes in minutes; the incremental algorithm ("New") runs the same and
// larger sizes.
package mia_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/explore"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/noc"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/fixpoint"
	"github.com/mia-rt/mia/internal/sched/incremental"
	"github.com/mia-rt/mia/internal/sim"
)

// panelGraph generates one instance of a Figure 3 panel family at the given
// total size.
func panelGraph(b *testing.B, family string, fixed, tasks int) *model.Graph {
	b.Helper()
	if tasks%fixed != 0 {
		b.Fatalf("%d tasks not a multiple of %d", tasks, fixed)
	}
	var p gen.Params
	if family == "LS" {
		p = gen.NewParams(tasks/fixed, fixed)
	} else {
		p = gen.NewParams(fixed, tasks/fixed)
	}
	g, err := gen.Layered(p)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchSchedule(b *testing.B, g *model.Graph, run func(*model.Graph, sched.Options) (*sched.Result, error), opts sched.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPanel runs one Figure 3 panel family: the incremental algorithm
// ("New", matching the paper's Python implementation of the contribution)
// and the fixed-point baseline ("Old", the RTNS 2016 analysis).
func benchPanel(b *testing.B, family string, fixed int, newSizes, oldSizes []int) {
	b.Helper()
	rr := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	b.Run("New", func(b *testing.B) {
		for _, n := range newSizes {
			g := panelGraph(b, family, fixed, n)
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchSchedule(b, g, incremental.Schedule, rr)
			})
		}
	})
	b.Run("Old", func(b *testing.B) {
		for _, n := range oldSizes {
			g := panelGraph(b, family, fixed, n)
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
				benchSchedule(b, g, fixpoint.Schedule, rr)
			})
		}
	})
}

// E3: Figure 3, fixed-layer-size panels.

func BenchmarkLS4(b *testing.B) {
	benchPanel(b, "LS", 4, []int{64, 256, 1024, 4096}, []int{64, 128, 256})
}

func BenchmarkLS16(b *testing.B) {
	benchPanel(b, "LS", 16, []int{64, 256, 1024, 4096}, []int{64, 128, 256})
}

func BenchmarkLS64(b *testing.B) {
	benchPanel(b, "LS", 64, []int{128, 512, 2048, 8192}, []int{128, 256})
}

// E4: Figure 3, fixed-number-of-layers panels.

func BenchmarkNL4(b *testing.B) {
	benchPanel(b, "NL", 4, []int{64, 256, 1024, 4096}, []int{64, 128, 256})
}

func BenchmarkNL16(b *testing.B) {
	benchPanel(b, "NL", 16, []int{64, 256, 1024, 4096}, []int{64, 128, 256})
}

func BenchmarkNL64(b *testing.B) {
	benchPanel(b, "NL", 64, []int{128, 512, 2048, 8192}, []int{128, 256})
}

// E5: the two configurations quoted in the paper's text — LS64 @ 256 tasks
// (≈270× reported) and NL64 @ 384 tasks (≈593× reported). Comparing the
// New and Old times of the same sub-benchmark reproduces the ratio.
func BenchmarkHeadlineLS64_256(b *testing.B) {
	g := panelGraph(b, "LS", 64, 256)
	rr := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	b.Run("New", func(b *testing.B) { benchSchedule(b, g, incremental.Schedule, rr) })
	b.Run("Old", func(b *testing.B) { benchSchedule(b, g, fixpoint.Schedule, rr) })
}

func BenchmarkHeadlineNL64_384(b *testing.B) {
	g := panelGraph(b, "NL", 64, 384)
	rr := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	b.Run("New", func(b *testing.B) { benchSchedule(b, g, incremental.Schedule, rr) })
	b.Run("Old", func(b *testing.B) { benchSchedule(b, g, fixpoint.Schedule, rr) })
}

// E6: the conclusion's scalability claim — more than 8000 tasks in
// reasonable time (incremental only; the baseline needs hours there).
func BenchmarkScale8192(b *testing.B) {
	g := panelGraph(b, "LS", 64, 8192)
	benchSchedule(b, g, incremental.Schedule, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
}

// E7: ablation of the Section II.C merging hypothesis — treating same-core
// interferers as one big task (default) versus separately.
func BenchmarkAblationMerge(b *testing.B) {
	p := gen.NewParams(16, 16)
	p.Cores, p.Banks, p.SharedBank = 4, 1, true // many tasks per core, one bank
	g := gen.MustLayered(p)
	b.Run("Merged", func(b *testing.B) {
		benchSchedule(b, g, incremental.Schedule, sched.Options{})
	})
	b.Run("Separate", func(b *testing.B) {
		benchSchedule(b, g, incremental.Schedule, sched.Options{SeparateCompetitors: true})
	})
}

// E8: ablation of the additivity fast path — the same round-robin bound
// with and without the O(1) incremental update the additive property
// enables (Section II.C: "exploiting this could simplify and speed up the
// algorithm").
func BenchmarkAblationAdditive(b *testing.B) {
	g := panelGraph(b, "LS", 16, 2048)
	b.Run("FastPath", func(b *testing.B) {
		benchSchedule(b, g, incremental.Schedule, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	})
	b.Run("General", func(b *testing.B) {
		benchSchedule(b, g, incremental.Schedule,
			sched.Options{Arbiter: arbiter.NonAdditive{Inner: arbiter.NewRoundRobin(1)}})
	})
}

// E1 at benchmark scale: the worked example, as a nanobenchmark of the
// whole pipeline.
func BenchmarkFigure1(b *testing.B) {
	g := gen.Figure1()
	benchSchedule(b, g, incremental.Schedule, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
}

// E9's engine: the cycle-level simulator on a mid-size workload.
func BenchmarkSimulator(b *testing.B) {
	p := gen.NewParams(8, 8)
	g := gen.MustLayered(p)
	res, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, res.Release, sim.Config{Pattern: sim.Front}); err != nil {
			b.Fatal(err)
		}
	}
}

// Design-space exploration enablement: candidate schedules evaluated per
// second with the O(n²) analysis as inner loop — the practical payoff of
// the paper's speedup (at the baseline's per-evaluation cost, the same
// search would take days).
func BenchmarkExploreEvaluation(b *testing.B) {
	p := gen.NewParams(8, 16)
	g := gen.MustLayered(p)
	res, err := explore.Anneal(context.Background(), g, explore.Options{Seed: 1, MaxEvaluations: 2})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.Anneal(context.Background(), g, explore.Options{Seed: int64(i), MaxEvaluations: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// Multi-cluster composition: per-cluster analyses + NoC bounds to a global
// fixed point.
func BenchmarkMultiCluster(b *testing.B) {
	mk := func(seed int64) *model.Graph {
		p := gen.NewParams(4, 8)
		p.Seed = seed
		p.Cores, p.Banks = 8, 8
		return gen.MustLayered(p)
	}
	system := &noc.System{
		Topology: noc.MPPA256(),
		Graphs: map[noc.ClusterID]*model.Graph{
			0: mk(1), 1: mk(2), 4: mk(3), 5: mk(4),
		},
		Edges: []noc.InterEdge{
			{FromCluster: 0, FromTask: 31, ToCluster: 1, ToTask: 0, Flow: noc.Flow{Burst: 8, Rate: 0.2, PacketFlits: 32}},
			{FromCluster: 1, FromTask: 31, ToCluster: 5, ToTask: 0, Flow: noc.Flow{Burst: 8, Rate: 0.2, PacketFlits: 32}},
			{FromCluster: 4, FromTask: 31, ToCluster: 5, ToTask: 1, Flow: noc.Flow{Burst: 8, Rate: 0.2, PacketFlits: 32}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.Analyze(context.Background(), sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
