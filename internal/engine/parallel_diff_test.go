package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
)

// TestParallelBitIdenticalAcrossCorpus is the parallel kernel's safety net:
// over the full differential corpus, for every backend, analyses compiled
// with Parallelism ∈ {1, 2, 4, 8} are bit-identical — result arrays, makespan,
// iteration counts, and the per-bank interference split — to the sequential
// (Parallelism = 0) reference, cold and warm. The reduction order inside the
// kernel replays the sequential accumulation exactly, so this holds at any
// GOMAXPROCS; the CI matrix runs this test at GOMAXPROCS ∈ {1, 4} under
// -race.
func TestParallelBitIdenticalAcrossCorpus(t *testing.T) {
	ctx := context.Background()
	inc := engine.MustNew(engine.Incremental)
	fix := engine.MustNew(engine.Fixpoint)
	rta := engine.MustNew(engine.RTA)
	corpus := diffCorpus()
	if len(corpus) < 200 {
		t.Fatalf("corpus has %d instances, want ≥ 200", len(corpus))
	}
	for ci, p := range corpus {
		g := gen.MustLayered(p)
		opts := corpusOpts(ci)
		label := fmt.Sprintf("corpus[%d] %d layers × %d, %d×%d shared=%v separate=%v",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank, opts.SeparateCompetitors)

		// Sequential references, one per backend.
		seqImg, err := engine.Compile(g, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", label, err)
		}
		incRef, err := inc.Analyze(ctx, seqImg)
		if err != nil {
			t.Fatalf("%s: sequential incremental: %v", label, err)
		}
		fixRef, err := fix.Analyze(ctx, seqImg)
		if err != nil {
			t.Fatalf("%s: sequential fixpoint: %v", label, err)
		}
		rtaRef, err := rta.Analyze(ctx, seqImg)
		if err != nil {
			t.Fatalf("%s: sequential rta: %v", label, err)
		}

		for _, par := range []int{1, 2, 4, 8} {
			popts := opts
			popts.Parallelism = par
			img, err := engine.Compile(g, popts)
			if err != nil {
				t.Fatalf("%s P=%d: compile: %v", label, par, err)
			}
			plabel := fmt.Sprintf("%s P=%d", label, par)

			cold, err := inc.Analyze(ctx, img)
			if err != nil {
				t.Fatalf("%s: cold incremental: %v", plabel, err)
			}
			identical(t, plabel+" incremental-cold", cold, incRef)

			w := inc.NewWarm(img)
			warm, err := w.Analyze(ctx)
			if err != nil {
				t.Fatalf("%s: warm analyze: %v", plabel, err)
			}
			identical(t, plabel+" incremental-warm", warm, incRef)
			replay, err := w.Reschedule(ctx) // zero edits: replay from the last checkpoint
			if err != nil {
				t.Fatalf("%s: zero-edit replay: %v", plabel, err)
			}
			identical(t, plabel+" incremental-replay", replay, incRef)
			coldAgain, err := w.AnalyzeCold(ctx)
			if err != nil {
				t.Fatalf("%s: analyze cold: %v", plabel, err)
			}
			identical(t, plabel+" incremental-warm-cold", coldAgain, incRef)
			engine.CloseWarm(w) // park-worker shutdown is part of the contract

			fcold, err := fix.Analyze(ctx, img)
			if err != nil {
				t.Fatalf("%s: fixpoint: %v", plabel, err)
			}
			identical(t, plabel+" fixpoint", fcold, fixRef)

			rcold, err := rta.Analyze(ctx, img)
			if err != nil {
				t.Fatalf("%s: rta: %v", plabel, err)
			}
			identical(t, plabel+" rta", rcold, rtaRef)
		}
	}
}
