package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Edit requests a warm re-analysis after one adjacent swap on a per-core
// order: positions From and From+1 of core Core's order were exchanged
// since the analyzer's committed baseline.
type Edit struct {
	Core model.CoreID
	From int
}

// Backend is one analysis algorithm operating on compiled images. A
// backend must be stateless and safe for concurrent use: all per-run
// state lives either on the stack of Analyze or inside the Warm instances
// it creates.
type Backend interface {
	// Analyze runs one cold analysis of the image's baseline orders.
	// Cancellation comes from ctx when it is cancellable, else from the
	// image's compiled Options.Cancel (see Image.CancelWith).
	Analyze(ctx context.Context, img *Image) (*sched.Result, error)
	// NewWarm creates a reusable analyzer bound to the image, owning a
	// private Orders overlay and whatever incremental state the backend
	// keeps between runs. Warm instances are not safe for concurrent
	// use; create one per goroutine and share the Image.
	NewWarm(img *Image) Warm
}

// Warm is a reusable analyzer over one image. Backends without true
// warm-start support still implement it — every run is simply cold over
// the current Orders and Warm() stays false — so consumers can treat all
// backends uniformly.
type Warm interface {
	// Orders returns the analyzer's mutable order overlay. Callers
	// permute it (Swap) and then re-analyze.
	Orders() *Orders
	// Analyze runs a full analysis of the current orders and commits it
	// as the warm baseline where the backend supports one.
	Analyze(ctx context.Context) (*sched.Result, error)
	// AnalyzeCold runs a full analysis of the current orders without
	// touching the warm baseline — the oracle path for differential
	// comparisons against Reschedule.
	AnalyzeCold(ctx context.Context) (*sched.Result, error)
	// Reschedule re-analyzes after the given adjacent-swap edits were
	// applied to Orders since the committed baseline. Backends with warm
	// state replay from the latest safe checkpoint; others rerun cold.
	// Results are bit-identical to a cold analysis of the same orders.
	Reschedule(ctx context.Context, edits ...Edit) (*sched.Result, error)
	// Warm reports whether a committed baseline exists, i.e. whether
	// the next Reschedule can replay instead of starting cold.
	Warm() bool
}

// Canonical backend names. Backends self-register from their package
// init, so importing an algorithm package (even blank) makes its name
// resolvable here.
const (
	Incremental = "incremental" // the paper's O(n²) time-cursor algorithm
	Fixpoint    = "fixpoint"    // the O(n⁴) per-window fixed-point baseline
	RTA         = "rta"         // window-free compositional upper bound
)

var (
	regMu    sync.Mutex
	registry = map[string]Backend{}
)

// Register makes a backend resolvable by name. It panics on duplicate or
// empty registrations — both are wiring bugs, caught at init.
func Register(name string, b Backend) {
	if name == "" || b == nil {
		panic("engine: Register with empty name or nil backend")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("engine: duplicate backend registration: " + name)
	}
	registry[name] = b
}

// New resolves a registered backend into an Engine façade.
func New(name string) (*Engine, error) {
	regMu.Lock()
	b, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (registered: %s)", name, strings.Join(Backends(), ", "))
	}
	return &Engine{name: name, b: b}, nil
}

// MustNew is New for statically-known backend names; it panics when the
// backend package was not linked in.
func MustNew(name string) *Engine {
	e, err := New(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	//mialint:ignore determinism -- iteration order cannot be observed: names are sorted before being returned
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Engine is the façade consumers hold: a named, resolved backend.
type Engine struct {
	name string
	b    Backend
}

// Name returns the backend name the engine was resolved from.
func (e *Engine) Name() string { return e.name }

// Analyze runs one cold analysis of the image's baseline orders.
func (e *Engine) Analyze(ctx context.Context, img *Image) (*sched.Result, error) {
	return e.b.Analyze(ctx, img)
}

// NewWarm creates a reusable single-goroutine analyzer over img.
func (e *Engine) NewWarm(img *Image) Warm { return e.b.NewWarm(img) }
