package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Metamorphic properties of the analysis, checked on seeded random
// instances: transformations of the input with a known effect on the output.
// Unlike the differential suite, which needs a second implementation as the
// oracle, these tests need only the analysis itself — the oracle is the
// relation between two of its runs.

// metamorphicInstances is the seeded instance pool shared by the properties:
// both families, square and shared-bank platforms.
func metamorphicInstances() []gen.Params {
	var out []gen.Params
	for _, shape := range []struct{ layers, size int }{{6, 8}, {4, 12}} {
		for _, pl := range []struct {
			cores, banks int
			shared       bool
		}{{8, 8, false}, {4, 1, true}} {
			for seed := int64(1); seed <= 5; seed++ {
				p := gen.NewParams(shape.layers, shape.size)
				p.Seed = seed
				p.Cores, p.Banks, p.SharedBank = pl.cores, pl.banks, pl.shared
				out = append(out, p)
			}
		}
	}
	return out
}

// rebuild reconstructs g through the Builder with a task relabeling π
// (new ID of old task i is π[i]), a core relabeling σ (new core of old core
// k is σ[k]), and demands scaled by λ. Per-core execution orders and the
// core→bank association ride along: new core σ[k] keeps old core k's order
// (relabeled) and bank, so the schedule is the same up to names.
func rebuild(t *testing.T, g *model.Graph, π []model.TaskID, σ []model.CoreID, λ model.Accesses) *model.Graph {
	t.Helper()
	n := g.NumTasks()
	πinv := make([]model.TaskID, n)
	for old, new_ := range π {
		πinv[new_] = model.TaskID(old)
	}
	σinv := make([]model.CoreID, g.Cores)
	for old, new_ := range σ {
		σinv[new_] = model.CoreID(old)
	}
	b := model.NewBuilder(g.Cores, g.Banks)
	for j := 0; j < n; j++ {
		old := g.Task(πinv[j])
		b.AddTask(model.TaskSpec{
			Name:       old.Name,
			WCET:       old.WCET,
			Core:       σ[old.Core],
			MinRelease: old.MinRelease,
			Local:      old.Local * λ,
		})
	}
	for _, e := range g.Edges() {
		b.AddEdge(π[e.From], π[e.To], e.Words*λ)
	}
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		relabeled := make([]model.TaskID, len(order))
		for i, id := range order {
			relabeled[i] = π[id]
		}
		b.SetOrder(σ[model.CoreID(k)], relabeled)
	}
	// New core σ[k] uses old core k's bank, so each task's demand vector is
	// unchanged by the core relabeling.
	b.SetBankPolicy(func(c model.CoreID) model.BankID { return g.BankOf(σinv[c]) })
	out, err := b.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return out
}

// identityTasks and identityCores are the trivial relabelings.
func identityTasks(n int) []model.TaskID {
	π := make([]model.TaskID, n)
	for i := range π {
		π[i] = model.TaskID(i)
	}
	return π
}

func identityCores(c int) []model.CoreID {
	σ := make([]model.CoreID, c)
	for i := range σ {
		σ[i] = model.CoreID(i)
	}
	return σ
}

func analyze(t *testing.T, backend string, g *model.Graph, opts sched.Options) *sched.Result {
	t.Helper()
	img, err := engine.Compile(g, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := engine.MustNew(backend).Analyze(context.Background(), img)
	if err != nil {
		t.Fatalf("%s analyze: %v", backend, err)
	}
	return res
}

// TestMetamorphicTaskRelabel: renumbering the tasks (and relabeling edges
// and orders accordingly) permutes the result arrays and changes nothing
// else. The analysis must not depend on task IDs beyond indexing — only on
// cores, orders, dependencies and demands.
func TestMetamorphicTaskRelabel(t *testing.T) {
	for ii, p := range metamorphicInstances() {
		g := gen.MustLayered(p)
		n := g.NumTasks()
		rng := rand.New(rand.NewSource(int64(ii) + 100))
		π := identityTasks(n)
		rng.Shuffle(n, func(a, b int) { π[a], π[b] = π[b], π[a] })
		relabeled := rebuild(t, g, π, identityCores(g.Cores), 1)

		for _, backend := range []string{engine.Incremental, engine.Fixpoint, engine.RTA} {
			opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
			base := analyze(t, backend, g, opts)
			got := analyze(t, backend, relabeled, opts)
			label := fmt.Sprintf("instance[%d] %s", ii, backend)
			if got.Makespan != base.Makespan {
				t.Fatalf("%s: makespan %d != %d under task relabel", label, got.Makespan, base.Makespan)
			}
			for i := 0; i < n; i++ {
				j := π[i]
				if got.Release[j] != base.Release[i] || got.Response[j] != base.Response[i] ||
					got.Interference[j] != base.Interference[i] {
					t.Fatalf("%s: task %d (relabeled %d) diverges: rel %d/%d resp %d/%d inter %d/%d",
						label, i, j, got.Release[j], base.Release[i],
						got.Response[j], base.Response[i], got.Interference[j], base.Interference[i])
				}
				for b := range base.PerBank[i] {
					if got.PerBank[j][b] != base.PerBank[i][b] {
						t.Fatalf("%s: task %d bank %d: %d != %d", label, i, b, got.PerBank[j][b], base.PerBank[i][b])
					}
				}
			}
		}
	}
}

// TestMetamorphicCoreRelabel: renumbering the cores (each keeping its task
// sequence and its bank) leaves every per-task quantity unchanged under a
// core-symmetric arbiter. Interference exchange must depend on which tasks
// share banks, not on which integer names their cores carry.
func TestMetamorphicCoreRelabel(t *testing.T) {
	for ii, p := range metamorphicInstances() {
		g := gen.MustLayered(p)
		rng := rand.New(rand.NewSource(int64(ii) + 200))
		σ := identityCores(g.Cores)
		rng.Shuffle(len(σ), func(a, b int) { σ[a], σ[b] = σ[b], σ[a] })
		relabeled := rebuild(t, g, identityTasks(g.NumTasks()), σ, 1)

		for _, backend := range []string{engine.Incremental, engine.Fixpoint, engine.RTA} {
			opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
			base := analyze(t, backend, g, opts)
			got := analyze(t, backend, relabeled, opts)
			identical(t, fmt.Sprintf("instance[%d] %s core-relabel", ii, backend), got, base)
		}
	}
}

// TestMetamorphicDemandScaling: multiplying every memory demand (local
// accesses and edge volumes) by an integer λ > 1 can only increase makespan
// and every task's interference — the monotonicity direction of the paper's
// §II.C hypothesis, lifted to demands.
func TestMetamorphicDemandScaling(t *testing.T) {
	for ii, p := range metamorphicInstances() {
		g := gen.MustLayered(p)
		n := g.NumTasks()
		for _, λ := range []model.Accesses{2, 3} {
			scaled := rebuild(t, g, identityTasks(n), identityCores(g.Cores), λ)
			for _, backend := range []string{engine.Incremental, engine.Fixpoint, engine.RTA} {
				opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
				base := analyze(t, backend, g, opts)
				got := analyze(t, backend, scaled, opts)
				label := fmt.Sprintf("instance[%d] %s λ=%d", ii, backend, λ)
				if got.Makespan < base.Makespan {
					t.Fatalf("%s: makespan shrank %d → %d under demand scaling", label, base.Makespan, got.Makespan)
				}
				var baseTotal, gotTotal model.Cycles
				for i := 0; i < n; i++ {
					baseTotal += base.Interference[i]
					gotTotal += got.Interference[i]
				}
				if gotTotal < baseTotal {
					t.Fatalf("%s: total interference shrank %d → %d under demand scaling", label, baseTotal, gotTotal)
				}
			}
		}
	}
}

// TestMetamorphicParallelismInvariance: the worker count is a performance
// knob, not a semantic one — Parallelism ∈ {1, 2, 4, 8} yields bit-identical
// results on every instance and backend (the corpus-wide version lives in
// TestParallelBitIdenticalAcrossCorpus; this one covers the metamorphic
// instance pool, whose platform shapes differ).
func TestMetamorphicParallelismInvariance(t *testing.T) {
	for ii, p := range metamorphicInstances() {
		g := gen.MustLayered(p)
		for _, backend := range []string{engine.Incremental, engine.Fixpoint, engine.RTA} {
			base := analyze(t, backend, g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
			for _, par := range []int{1, 2, 4, 8} {
				got := analyze(t, backend, g, sched.Options{Arbiter: arbiter.NewRoundRobin(1), Parallelism: par})
				identical(t, fmt.Sprintf("instance[%d] %s P=%d", ii, backend, par), got, base)
			}
		}
	}
}
