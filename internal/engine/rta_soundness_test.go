package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/rta"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// TestRTABoundDominatesIncremental pins the precision spectrum: the
// window-free compositional backend charges every task the demand of all
// other-core bank-sharers, a superset of what any window-based analysis can
// see, so under the monotone round-robin arbiter family every analyzed
// quantity must dominate the incremental scheduler's exact-overlap result —
// per-bank interference, per-task interference and response, release dates,
// and the makespan. A single violation means the cheap screen is unsound.
func TestRTABoundDominatesIncremental(t *testing.T) {
	ctx := context.Background()
	eng := engine.MustNew(engine.RTA)
	for ci, p := range diffCorpus() {
		if ci%3 != 0 {
			continue // a third of the corpus: every shape×platform pair appears
		}
		g := gen.MustLayered(p)
		opts := corpusOpts(ci)
		label := fmt.Sprintf("corpus[%d]", ci)

		exact, err := incremental.Schedule(g, opts)
		if err != nil {
			t.Fatalf("%s: incremental: %v", label, err)
		}
		img, err := engine.Compile(g, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", label, err)
		}
		bound, err := eng.Analyze(ctx, img)
		if err != nil {
			t.Fatalf("%s: rta: %v", label, err)
		}
		if bound.Algorithm != rta.Algorithm {
			t.Fatalf("%s: algorithm %q, want %q", label, bound.Algorithm, rta.Algorithm)
		}

		for i := range exact.Interference {
			if bound.Interference[i] < exact.Interference[i] {
				t.Fatalf("%s: task %d interference bound %d < exact %d",
					label, i, bound.Interference[i], exact.Interference[i])
			}
			if bound.Response[i] < exact.Response[i] {
				t.Fatalf("%s: task %d response bound %d < exact %d",
					label, i, bound.Response[i], exact.Response[i])
			}
			if bound.Release[i] < exact.Release[i] {
				t.Fatalf("%s: task %d release bound %d < exact %d",
					label, i, bound.Release[i], exact.Release[i])
			}
			for b := range exact.PerBank[i] {
				if bound.PerBank[i][b] < exact.PerBank[i][b] {
					t.Fatalf("%s: task %d bank %d bound %d < exact %d",
						label, i, b, bound.PerBank[i][b], exact.PerBank[i][b])
				}
			}
		}
		if bound.Makespan < exact.Makespan {
			t.Fatalf("%s: makespan bound %d < exact %d", label, bound.Makespan, exact.Makespan)
		}

		// The backend has no warm state: its Warm adapter must be a plain
		// cold run, bit-identical to Analyze.
		w := eng.NewWarm(img)
		if w.Warm() {
			t.Fatalf("%s: rta analyzer claims warm state", label)
		}
		again, err := w.Analyze(ctx)
		if err != nil {
			t.Fatalf("%s: rta warm-adapter: %v", label, err)
		}
		identical(t, label+" rta cold-vs-adapter", again, bound)
	}
}
