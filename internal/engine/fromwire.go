package engine

import (
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/wire"
)

// CompileFromWire decodes a binary wire blob straight into a problem image.
// It is the hot ingest path of the analysis service: wire.Decode validates
// structure and values once (exactly as strictly as the JSON path — see
// wire's package comment), and the decoded flat arrays are the image's slab
// layout already, so they are adopted without copying. Only the derived
// structures the wire format deliberately omits are built here: the demand
// bitset masks and the CSR adjacency, both in linear time. No intermediate
// model.Graph is allocated; images needing one (NewGraph) materialize it
// lazily.
//
// The resulting image is indistinguishable from Compile on the same graph:
// identical Fingerprint, identical analysis output from every backend, cold
// and warm.
func CompileFromWire(data []byte, opts sched.Options) (*Image, error) {
	raw, err := wire.Decode(data)
	if err != nil {
		return nil, err
	}
	return CompileRaw(raw, opts)
}

// CompileRaw builds an image around an already-validated flat graph. The
// image adopts raw's backing arrays — the caller must not mutate raw after
// handing it over. Use CompileFromWire unless you already hold a decoded
// RawGraph.
func CompileRaw(raw *model.RawGraph, opts sched.Options) (*Image, error) {
	if err := raw.Validate(); err != nil {
		return nil, err
	}
	opts.Arbiter = opts.EffectiveArbiter()
	opts.Deadline = opts.EffectiveDeadline()

	n := raw.NumTasks()
	words := (raw.Banks + 63) / 64
	img := &Image{
		NumTasks:  n,
		Cores:     raw.Cores,
		Banks:     raw.Banks,
		MaskWords: words,
		Opts:      opts,
		raw:       raw,

		// Adopted wholesale: the wire layout is the slab layout.
		WCET:       raw.WCET,
		MinRelease: raw.MinRelease,
		CoreOf:     raw.Core,
		Local:      raw.Local,
		Demand:     raw.Demand,
		OrderStart: raw.OrderStart,
		OrderIDs:   raw.OrderIDs,
		BankTable:  raw.BankTable,

		DemandMask: make([]uint64, n*words),
		SuccStart:  make([]int32, n+1),
		PredStart:  make([]int32, n+1),
		Succ:       make([]model.TaskID, len(raw.Edges)),
		Pred:       make([]model.TaskID, len(raw.Edges)),
	}
	fillDemandMask(img.DemandMask, raw.Demand, raw.Banks, words)
	buildAdjacency(img, raw.Edges, n)
	return img, nil
}

// fillDemandMask sets bit b of each task's mask row iff the task's demand
// on bank b is positive.
//
//mia:hotpath
func fillDemandMask(mask []uint64, demand []model.Accesses, banks, words int) {
	n := len(demand) / banks
	for i := 0; i < n; i++ {
		row := mask[i*words : (i+1)*words]
		dem := demand[i*banks : (i+1)*banks]
		for b, d := range dem {
			if d > 0 {
				row[b>>6] |= 1 << (uint(b) & 63)
			}
		}
	}
}

// buildAdjacency fills the image's CSR successor/predecessor lists from the
// edge list with each neighbor list sorted by task ID — the determinism
// invariant every backend iterates under. Two passes of counting sort per
// direction (stable bucket-by-minor, then bucket-by-major) yield sorted
// groups in linear time with no comparison sort and no per-task slices.
func buildAdjacency(img *Image, edges []model.Edge, n int) {
	if len(edges) == 0 {
		return
	}
	// byTo: edge indices stably ordered by ascending To (counting sort).
	cnt := make([]int32, n+1)
	for _, e := range edges {
		cnt[e.To+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	byTo := make([]int32, len(edges))
	for i, e := range edges {
		byTo[cnt[e.To]] = int32(i)
		cnt[e.To]++
	}
	// Succ: bucket byTo by From. Stability keeps each From group in
	// ascending-To order, i.e. Succs(id) sorted by ID.
	for i := range cnt {
		cnt[i] = 0
	}
	for _, e := range edges {
		cnt[e.From+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
		img.SuccStart[i+1] = cnt[i+1]
	}
	for _, idx := range byTo {
		e := edges[idx]
		img.Succ[cnt[e.From]] = e.To
		cnt[e.From]++
	}
	// Pred: the mirror image — stably order by From, bucket by To.
	for i := range cnt {
		cnt[i] = 0
	}
	for _, e := range edges {
		cnt[e.From+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	byFrom := byTo // reuse: overwritten in full before it is read back
	for i, e := range edges {
		byFrom[cnt[e.From]] = int32(i)
		cnt[e.From]++
	}
	for i := range cnt {
		cnt[i] = 0
	}
	for _, e := range edges {
		cnt[e.To+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
		img.PredStart[i+1] = cnt[i+1]
	}
	for _, idx := range byFrom {
		e := edges[idx]
		img.Pred[cnt[e.To]] = e.From
		cnt[e.To]++
	}
}

// WireBytes encodes the compiled image back into a wire blob — the flat
// arrays are re-wrapped as a RawGraph view (no copying) and serialized.
// Decoding the blob yields an image with the same fingerprint and analysis
// behavior, which is the image↔wire invariant DESIGN §3.8 documents.
func (img *Image) WireBytes() []byte {
	if img.raw != nil {
		return wire.Encode(img.raw)
	}
	return wire.Encode(&model.RawGraph{
		Cores:      img.Cores,
		Banks:      img.Banks,
		WCET:       img.WCET,
		MinRelease: img.MinRelease,
		Core:       img.CoreOf,
		Local:      img.Local,
		Demand:     img.Demand,
		Edges:      img.g.Edges(),
		OrderStart: img.OrderStart,
		OrderIDs:   img.OrderIDs,
		BankTable:  img.BankTable,
	})
}
