package engine_test

import (
	"context"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// allocImage compiles the steady-state workload for the engine-level
// allocation guards: big enough that the event loop dominates, small enough
// to keep the guard fast.
func allocImage(t testing.TB) *engine.Image {
	t.Helper()
	p := gen.NewParams(8, 16)
	p.Seed = 3
	p.Cores, p.Banks = 8, 4
	img, err := engine.Compile(gen.MustLayered(p), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestWarmAnalyzeSteadyStateAllocationFree pins the façade's allocation
// contract: once a warm analyzer's pooled buffers have grown to their
// high-water mark, repeated Analyze calls through the engine interface —
// adapter, context plumbing and all — perform zero heap allocations.
func TestWarmAnalyzeSteadyStateAllocationFree(t *testing.T) {
	img := allocImage(t)
	w := engine.MustNew(engine.Incremental).NewWarm(img)
	ctx := context.Background()
	// Two warm-ups: the first grows the buffers, the second runs with the
	// steady-state checkpoint stride derived from the first run.
	for i := 0; i < 2; i++ {
		if _, err := w.Analyze(ctx); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := w.Analyze(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state engine Analyze allocates %.1f objects per run, want 0", avg)
	}
}

// TestWarmParallelAnalyzeSteadyStateAllocationFree pins the allocation
// contract for the parallel kernel: once the workers have been spawned (on
// the first parallel run) and the pooled buffers have grown, repeated
// parallel Analyze calls are allocation-free — the fork/join cycle is pure
// channel signaling over parked goroutines, with per-partition scratch
// reused across events.
func TestWarmParallelAnalyzeSteadyStateAllocationFree(t *testing.T) {
	p := gen.NewParams(8, 16)
	p.Seed = 3
	p.Cores, p.Banks = 8, 4
	img, err := engine.Compile(gen.MustLayered(p), sched.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := engine.MustNew(engine.Incremental).NewWarm(img)
	defer engine.CloseWarm(w)
	ctx := context.Background()
	// Two warm-ups: the first spawns the kernel workers and grows the
	// buffers, the second runs with the steady-state checkpoint stride.
	for i := 0; i < 2; i++ {
		if _, err := w.Analyze(ctx); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := w.Analyze(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state parallel Analyze allocates %.1f objects per run, want 0", avg)
	}
}

// TestWarmRescheduleSteadyStateAllocationFree pins the same contract for
// the neighborhood-evaluation cycle through the façade: overlay swap, warm
// Reschedule, swap back — exactly how the explorer and the serving layer
// drive it.
func TestWarmRescheduleSteadyStateAllocationFree(t *testing.T) {
	img := allocImage(t)
	w := engine.MustNew(engine.Incremental).NewWarm(img)
	ctx := context.Background()
	if _, err := w.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	core, pos, ok := legalSwap(img.NewGraph())
	if !ok {
		t.Fatal("no legal swap site")
	}
	ord := w.Orders()
	edits := []engine.Edit{{Core: model.CoreID(core), From: pos}}
	cycle := func() {
		ord.Swap(core, pos)
		if _, err := w.Reschedule(ctx, edits...); err != nil {
			t.Fatal(err)
		}
		ord.Swap(core, pos)
		if _, err := w.Reschedule(ctx, edits...); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm-up: replay suffix may grow buffer high-water marks
	avg := testing.AllocsPerRun(10, cycle)
	if avg != 0 {
		t.Fatalf("steady-state swap/Reschedule cycle allocates %.1f objects per run, want 0", avg)
	}
}
