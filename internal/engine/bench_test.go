package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// benchSizes are the compile-amortization measurement points: the paper's
// LS64-style shape (64-task layers) at the sizes where compile-per-run
// overhead is visible and where it must still matter (n ≥ 1024).
var benchSizes = []int{256, 1024}

func benchGraph(b *testing.B, n int) *model.Graph {
	b.Helper()
	p := gen.NewParams(n/64, 64)
	p.Seed = 7
	p.Cores, p.Banks = 16, 16
	return gen.MustLayered(p)
}

// BenchmarkCompilePerRun measures the pre-engine consumer shape: every
// evaluation pays validation, graph cloning and SoA flattening before the
// analysis proper — what incremental.Schedule does per call.
func BenchmarkCompilePerRun(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(b, n)
			opts := sched.Options{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := incremental.Schedule(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileOnce measures the engine consumer shape: one Compile
// amortized across runs, each run a cold analysis over the shared image
// through a long-lived analyzer (the explorer's DisableWarmStart oracle
// path — no checkpoint replay, so the comparison isolates compile
// amortization from warm-start reuse).
func BenchmarkCompileOnce(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			img, err := engine.Compile(benchGraph(b, n), sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
			w := engine.MustNew(engine.Incremental).NewWarm(img)
			ctx := context.Background()
			if _, err := w.AnalyzeCold(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.AnalyzeCold(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarmReplay measures the steady state the serving layer and the
// explorer actually run in: a pre-compiled image plus checkpointed
// warm-start replay of a single-swap edit.
func BenchmarkWarmReplay(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(b, n)
			img, err := engine.Compile(g, sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
			w := engine.MustNew(engine.Incremental).NewWarm(img)
			ctx := context.Background()
			if _, err := w.Analyze(ctx); err != nil {
				b.Fatal(err)
			}
			core, pos, ok := legalSwap(g)
			if !ok {
				b.Fatal("no legal swap site")
			}
			ord := w.Orders()
			edits := []engine.Edit{{Core: core, From: pos}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ord.Swap(core, pos)
				if _, err := w.Reschedule(ctx, edits...); err != nil {
					b.Fatal(err)
				}
				ord.Swap(core, pos)
				if _, err := w.Reschedule(ctx, edits...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelKernel measures the intra-analysis parallel speedup on
// single-instance latency: one cold incremental analysis over a precompiled
// 64-core/64-bank image, sequential (P=1) versus the four-way blocked kernel
// (P=4). The wide platform gives each event enough pairwise exchange work to
// amortize the fork/join signaling; results are bit-identical at both
// levels (pinned by the differential suite), so the seconds are the only
// thing this knob changes.
func BenchmarkParallelKernel(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		p := gen.NewParams(n/64, 64)
		p.Seed = 7
		p.Cores, p.Banks = 64, 64
		g := gen.MustLayered(p)
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/P=%d", n, par), func(b *testing.B) {
				img, err := engine.Compile(g, sched.Options{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				w := engine.MustNew(engine.Incremental).NewWarm(img)
				defer engine.CloseWarm(w)
				ctx := context.Background()
				// Two warm-ups: the first spawns the kernel workers, the
				// second flushes one-time runtime bookkeeping (sudog pools)
				// so short -benchtime runs don't report phantom allocs.
				for i := 0; i < 2; i++ {
					if _, err := w.AnalyzeCold(ctx); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.AnalyzeCold(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompile isolates what the other two differ by: validation,
// cloning, and SoA/CSR flattening for one graph.
func BenchmarkCompile(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Compile(g, sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
