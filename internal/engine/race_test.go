package engine_test

import (
	"context"
	"sync"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// TestSharedImageConcurrentAnalyzers is the immutability contract's teeth:
// one compiled image, eight concurrent warm analyzers hammering it with
// cold runs, warm replays, and swap-edit/undo cycles. Under -race this
// proves the image is never written after Compile; the result comparisons
// prove the analyzers do not leak state into each other through the shared
// arrays.
func TestSharedImageConcurrentAnalyzers(t *testing.T) {
	p := gen.NewParams(8, 8)
	p.Seed = 5
	p.Cores, p.Banks = 4, 4
	g := gen.MustLayered(p)
	opts := sched.Options{}

	img, err := engine.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	inc := engine.MustNew(engine.Incremental)
	ctx := context.Background()

	base, err := incremental.Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	core, pos, ok := legalSwap(g)
	if !ok {
		t.Fatal("no legal swap site")
	}
	edited := g.Clone()
	edited.SwapOrder(core, pos)
	want, err := incremental.Schedule(edited, opts)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			w := inc.NewWarm(img)
			res, err := w.Analyze(ctx)
			if err != nil {
				t.Errorf("g%d: analyze: %v", gi, err)
				return
			}
			if d := res.Diff(base); d != "" {
				t.Errorf("g%d: baseline diverges: %s", gi, d)
				return
			}
			ord := w.Orders()
			edit := engine.Edit{Core: core, From: pos}
			for r := 0; r < rounds; r++ {
				ord.Swap(core, pos)
				res, err := w.Reschedule(ctx, edit)
				if err != nil {
					t.Errorf("g%d round %d: edited reschedule: %v", gi, r, err)
					return
				}
				if d := res.Diff(want); d != "" {
					t.Errorf("g%d round %d: edited result diverges: %s", gi, r, d)
					return
				}
				ord.Swap(core, pos)
				res, err = w.Reschedule(ctx, edit)
				if err != nil {
					t.Errorf("g%d round %d: undo reschedule: %v", gi, r, err)
					return
				}
				if d := res.Diff(base); d != "" {
					t.Errorf("g%d round %d: undo result diverges: %s", gi, r, d)
					return
				}
			}
			// Interleave a cold run over the shared image for good measure.
			res, err = w.AnalyzeCold(ctx)
			if err != nil {
				t.Errorf("g%d: cold run: %v", gi, err)
				return
			}
			if d := res.Diff(base); d != "" {
				t.Errorf("g%d: cold result diverges: %s", gi, d)
			}
		}(gi)
	}
	wg.Wait()
}
