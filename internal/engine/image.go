// Package engine turns a validated task graph into an immutable,
// struct-of-arrays problem image and fronts the analysis algorithms with a
// single façade. Compile once, analyze many times: the image is the
// compile-once/run-many contract that lets sweep workers, search
// evaluators, and server-side warm schedulers share one problem instance
// per graph fingerprint instead of defensively deep-cloning graphs.
//
// An Image is immutable after Compile returns. Nothing in this repository
// writes to its arrays, every accessor returns either a value or a slice
// view the caller must treat as read-only, and the mutable piece of an
// analysis — the per-core execution orders a search permutes — lives in a
// separate per-analyzer Orders overlay. That is what makes sharing sound:
// any number of goroutines may analyze the same Image concurrently, each
// with its own Orders and its own backend state, with no locks.
package engine

import (
	"context"
	"sync"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Image is the compiled, immutable form of one analysis problem: the graph
// flattened into dense int-indexed arrays, adjacency in CSR form, per-bank
// demand in one flat backing array, and the analysis options normalized
// (arbiter and deadline resolved). All exported fields and every slice
// returned by an accessor are read-only by contract.
//
// Invariants established by Compile and relied on by every backend:
//
//   - the source graph passed Validate: dense task IDs, acyclic
//     dependencies, per-core orders consistent with same-core edges, all
//     magnitudes within model.MaxInput;
//   - Demand rows are zero-extended to exactly Banks entries, so
//     DemandRow(id)[b] is the task's demand on bank b with no bounds
//     checks against ragged per-task rows;
//   - CSR neighbor lists are sorted by task ID (inherited from the graph's
//     adjacency), so iteration order — and therefore every accumulated
//     result — is deterministic;
//   - Opts.Arbiter is non-nil and Opts.Deadline is positive (Infinity
//     when the caller set none).
type Image struct {
	NumTasks int
	Cores    int
	Banks    int

	// Per-task scalars, indexed by model.TaskID.
	WCET       []model.Cycles
	MinRelease []model.Cycles
	CoreOf     []model.CoreID
	Local      []model.Accesses

	// Demand is the per-bank access demand of every task in one flat
	// task-major backing array: task id's row is
	// Demand[id*Banks : (id+1)*Banks], zero-extended to full width.
	Demand []model.Accesses

	// DemandMask is the bitset form of Demand, one bit per bank: bit b of
	// task id's MaskWords-word row is set iff Demand[id*Banks+b] > 0. Two
	// tasks interfere on exactly the banks in the AND of their rows, so
	// the interference kernels intersect masks word-at-a-time (64 banks
	// per compare — the cache-block unit of the blocked passes) and only
	// touch the demand matrix on set bits, in ascending bank order.
	DemandMask []uint64
	// MaskWords is the per-task word count of DemandMask: ⌈Banks/64⌉.
	MaskWords int

	// CSR adjacency: task id's successors are
	// Succ[SuccStart[id]:SuccStart[id+1]], likewise Pred for the reverse
	// edges. Both neighbor lists are sorted by task ID.
	SuccStart []int32
	Succ      []model.TaskID
	PredStart []int32
	Pred      []model.TaskID

	// Baseline per-core execution orders in CSR form: core k's order is
	// OrderIDs[OrderStart[k]:OrderStart[k+1]]. Analyses that permute
	// orders work on a mutable copy — see NewOrders.
	OrderStart []int32
	OrderIDs   []model.TaskID

	// BankTable maps each core to its private bank.
	BankTable []model.BankID

	// Opts are the compiled analysis options with Arbiter and Deadline
	// resolved to their effective values.
	Opts sched.Options

	// Exactly one of g / raw is set at Compile time. JSON-path images
	// (Compile) carry a frozen private graph clone; wire-path images
	// (CompileFromWire) carry the decoded flat form and only materialize a
	// graph lazily, if NewGraph is ever called — fingerprints and edges are
	// served from the flat form directly, keeping graph assembly off the
	// hot ingest path. Methods branch on raw (never on g, which gOnce may
	// be concurrently populating).
	g     *model.Graph
	raw   *model.RawGraph
	gOnce sync.Once

	fpOnce sync.Once
	fp     string

	// oh fingerprints order overlays from a frozen digest midstate, built
	// once per image: servers and explorers hash an overlay per evaluated
	// scenario, and the static graph sections dominate a full rehash.
	ohOnce sync.Once
	oh     *model.OrderHasher
}

// Compile validates g and flattens it into an immutable problem image
// under the given options. The graph is cloned, so later mutations of g
// (order swaps, demand edits) do not reach the image; recompile to pick
// them up. Validation errors are returned as-is from model.Validate.
func Compile(g *model.Graph, opts sched.Options) (*Image, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts.Arbiter = opts.EffectiveArbiter()
	opts.Deadline = opts.EffectiveDeadline()

	n := g.NumTasks()
	words := (g.Banks + 63) / 64
	img := &Image{
		NumTasks:  n,
		Cores:     g.Cores,
		Banks:     g.Banks,
		MaskWords: words,
		Opts:      opts,
		g:         g.Clone(),

		WCET:       make([]model.Cycles, n),
		MinRelease: make([]model.Cycles, n),
		CoreOf:     make([]model.CoreID, n),
		Local:      make([]model.Accesses, n),
		Demand:     make([]model.Accesses, n*g.Banks),
		DemandMask: make([]uint64, n*words),
		SuccStart:  make([]int32, n+1),
		PredStart:  make([]int32, n+1),
		OrderStart: make([]int32, g.Cores+1),
		BankTable:  make([]model.BankID, g.Cores),
		// Edge and order totals are known up front, so the CSR payloads
		// are sized exactly — the appends below never reallocate.
		Succ:     make([]model.TaskID, 0, len(g.Edges())),
		Pred:     make([]model.TaskID, 0, len(g.Edges())),
		OrderIDs: make([]model.TaskID, 0, n),
	}
	for i, t := range g.Tasks() {
		img.WCET[i] = t.WCET
		img.MinRelease[i] = t.MinRelease
		img.CoreOf[i] = t.Core
		img.Local[i] = t.Local
		copy(img.Demand[i*g.Banks:(i+1)*g.Banks], t.Demand)
		mask := img.DemandMask[i*words : (i+1)*words]
		for b, d := range t.Demand {
			if d > 0 {
				mask[b>>6] |= 1 << (uint(b) & 63)
			}
		}
	}
	for i := 0; i < n; i++ {
		img.Succ = append(img.Succ, g.Successors(model.TaskID(i))...)
		img.SuccStart[i+1] = int32(len(img.Succ))
		img.Pred = append(img.Pred, g.Predecessors(model.TaskID(i))...)
		img.PredStart[i+1] = int32(len(img.Pred))
	}
	for k := 0; k < g.Cores; k++ {
		img.OrderIDs = append(img.OrderIDs, g.Order(model.CoreID(k))...)
		img.OrderStart[k+1] = int32(len(img.OrderIDs))
		img.BankTable[k] = g.BankOf(model.CoreID(k))
	}
	return img, nil
}

// DemandRow returns task id's per-bank demand: exactly Banks entries,
// zero-extended. Read-only.
//
//mia:hotpath
func (img *Image) DemandRow(id model.TaskID) []model.Accesses {
	return img.Demand[int(id)*img.Banks : (int(id)+1)*img.Banks]
}

// DemandMaskRow returns task id's per-bank demand bitset: MaskWords words,
// bit b set iff the task demands bank b. Read-only.
//
//mia:hotpath
func (img *Image) DemandMaskRow(id model.TaskID) []uint64 {
	return img.DemandMask[int(id)*img.MaskWords : (int(id)+1)*img.MaskWords]
}

// Succs returns task id's successors sorted by ID. Read-only.
//
//mia:hotpath
func (img *Image) Succs(id model.TaskID) []model.TaskID {
	return img.Succ[img.SuccStart[id]:img.SuccStart[id+1]]
}

// Preds returns task id's predecessors sorted by ID. Read-only.
//
//mia:hotpath
func (img *Image) Preds(id model.TaskID) []model.TaskID {
	return img.Pred[img.PredStart[id]:img.PredStart[id+1]]
}

// PredCount returns the number of direct predecessors of task id.
//
//mia:hotpath
func (img *Image) PredCount(id model.TaskID) int {
	return int(img.PredStart[id+1] - img.PredStart[id])
}

// Order returns core k's baseline execution order. Read-only; analyses
// that permute orders use a NewOrders overlay instead.
//
//mia:hotpath
func (img *Image) Order(k model.CoreID) []model.TaskID {
	return img.OrderIDs[img.OrderStart[k]:img.OrderStart[k+1]]
}

// Edges returns the dependency edges of the compiled graph. Read-only.
func (img *Image) Edges() []model.Edge {
	if img.raw != nil {
		return img.raw.Edges
	}
	return img.g.Edges()
}

// Fingerprint returns the canonical content hash of the compiled graph
// with its baseline orders (see model.Graph.Fingerprint). Computed once,
// lazily; safe for concurrent use. Wire-path and JSON-path images of the
// same graph hash identically — model.RawGraph.Fingerprint replicates
// model.Graph.Fingerprint byte for byte.
func (img *Image) Fingerprint() string {
	img.fpOnce.Do(func() {
		if img.raw != nil {
			img.fp = img.raw.Fingerprint()
		} else {
			img.fp = img.g.Fingerprint()
		}
	})
	return img.fp
}

// FingerprintOrders returns the canonical content hash the compiled graph
// would have if its per-core orders were replaced by o: byte-identical to
// cloning the graph, applying the same permutation, and fingerprinting it.
// The static graph sections are hashed once per image (frozen digest
// midstate); each call pays only for the orders section.
//
//mia:hotpath
func (img *Image) FingerprintOrders(o *Orders) string {
	return img.orderHasher().Sum(o.view)
}

// orderHasher lazily builds the image's frozen-midstate hasher. Off the
// hot path proper: the once-guard's fast path is a single atomic load and
// its closure does not escape, so steady-state calls stay allocation-free.
func (img *Image) orderHasher() *model.OrderHasher {
	//mialint:ignore hotpathalloc -- once-guard: the fast path is one atomic load and the non-escaping closure runs at most once per image
	img.ohOnce.Do(func() {
		if img.raw != nil {
			img.oh = img.raw.OrderHasher()
		} else {
			img.oh = img.g.OrderHasher()
		}
	})
	return img.oh
}

// graph returns the image's private graph, materializing it from the flat
// form on first use for wire-path images. The raw form passed full
// validation at decode time, so materialization cannot fail; an error here
// is a broken invariant, not an input condition.
func (img *Image) graph() *model.Graph {
	img.gOnce.Do(func() {
		if img.g != nil {
			return
		}
		g, err := img.raw.Graph()
		if err != nil {
			panic("engine: validated wire image failed graph materialization: " + err.Error())
		}
		img.g = g
	})
	return img.g
}

// NewGraph materializes a fresh mutable graph equal to the compiled one —
// the image-side replacement for defensive g.Clone() at consumer level.
func (img *Image) NewGraph() *model.Graph { return img.graph().Clone() }

// CancelWith resolves the cancellation channel for one analysis run: the
// context's Done channel when the context is cancellable, otherwise the
// channel compiled into the image's options (context.Background reports a
// nil Done channel, which would otherwise mask a caller-provided
// Options.Cancel).
func (img *Image) CancelWith(ctx context.Context) <-chan struct{} {
	if d := ctx.Done(); d != nil {
		return d
	}
	return img.Opts.Cancel
}
