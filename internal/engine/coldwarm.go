package engine

import (
	"context"

	"github.com/mia-rt/mia/internal/sched"
)

// ColdFunc is one cold analysis of an image under a given order overlay and
// cancellation channel — the shape backends without warm-start state expose
// to NewColdWarm.
type ColdFunc func(img *Image, ord *Orders, cancel <-chan struct{}) (*sched.Result, error)

// NewColdWarm wraps a cold analysis function into the Warm interface for
// backends without incremental state (fixpoint, rta): every run — Analyze,
// AnalyzeCold, or Reschedule — is a full cold analysis of the current
// Orders, edits carry no information, and Warm() stays false so serving
// layers report these runs as cold instead of pretending to replay.
func NewColdWarm(img *Image, run ColdFunc) Warm {
	return &coldWarm{img: img, ord: img.NewOrders(), run: run}
}

type coldWarm struct {
	img *Image
	ord *Orders
	run ColdFunc
}

func (w *coldWarm) Orders() *Orders { return w.ord }

func (w *coldWarm) Warm() bool { return false }

func (w *coldWarm) Analyze(ctx context.Context) (*sched.Result, error) {
	return w.run(w.img, w.ord, w.img.CancelWith(ctx))
}

func (w *coldWarm) AnalyzeCold(ctx context.Context) (*sched.Result, error) {
	return w.Analyze(ctx)
}

func (w *coldWarm) Reschedule(ctx context.Context, edits ...Edit) (*sched.Result, error) {
	return w.Analyze(ctx)
}
