package engine

import "sync"

// Kernel is a reusable fork-join worker group for intra-analysis
// parallelism: parts fixed partitions, parts-1 parked worker goroutines, and
// a Run barrier that executes one task over every partition and returns when
// all are done. It is the backends' shared execution primitive for the
// blocked interference passes (sched.Options.Parallelism).
//
// Determinism contract: the kernel never decides *what* a partition
// computes — callers derive partition boundaries from PartitionRange, which
// depends only on the problem size and the partition count, never on
// GOMAXPROCS, goroutine scheduling, or timing. The kernel only provides the
// barrier, so any two runs (and the sequential path) see identical
// partition contents in identical per-partition order.
//
// Lifecycle: workers are spawned lazily on the first Run that needs them
// and then park between runs on their start channels, so the steady state
// of a warm analyzer costs parts-1 channel sends and parts-1 receipts per
// Run and zero heap allocations (pinned by the engine's alloc guards).
// Close releases the workers; a closed kernel may Run again (it respawns).
// A Kernel is not safe for concurrent Run calls; it is owned by exactly one
// analyzer, like the rest of the analyzer's scratch state.
type Kernel struct {
	parts int
	task  func(part int)

	start   []chan struct{} // one per worker; start[p] fires partition p
	done    chan struct{}   // counted join: one receipt per worker per Run
	quit    chan struct{}   // closed by Close; workers exit
	wg      sync.WaitGroup
	running bool // workers currently spawned
}

// NewKernel builds a kernel with the given partition count (minimum 1). No
// goroutines are spawned until the first parallel Run.
func NewKernel(parts int) *Kernel {
	if parts < 1 {
		parts = 1
	}
	k := &Kernel{parts: parts}
	if parts > 1 {
		k.start = make([]chan struct{}, parts)
		for p := 1; p < parts; p++ {
			k.start[p] = make(chan struct{}, 1)
		}
		k.done = make(chan struct{}, parts-1)
		k.quit = make(chan struct{})
	}
	return k
}

// Parts returns the partition count.
func (k *Kernel) Parts() int { return k.parts }

// SetTask installs the per-partition task executed by Run. Install once at
// analyzer construction (the method-value closure is the kernel's single
// steady-state allocation); the task reads its inputs through the state it
// is bound to, so it needs no per-Run arguments.
func (k *Kernel) SetTask(fn func(part int)) { k.task = fn }

// spawn starts the parked workers. Cold path: runs once per lifecycle.
func (k *Kernel) spawn() {
	k.wg.Add(k.parts - 1)
	for p := 1; p < k.parts; p++ {
		//mialint:ignore hotpathalloc -- workers spawn once per kernel lifecycle, not per Run; steady state reuses the parked goroutines
		go func(p int) {
			defer k.wg.Done()
			for {
				select {
				case <-k.quit:
					return
				case <-k.start[p]:
					k.task(p)
					k.done <- struct{}{}
				}
			}
		}(p)
	}
	k.running = true
}

// Run executes the task over every partition and returns when all are done:
// workers 1..parts-1 run their partitions concurrently while the calling
// goroutine runs partition 0, then the counted join closes the barrier.
// With one partition it degenerates to a plain call.
//
//mia:hotpath steady state is channel signaling only; workers spawn once
func (k *Kernel) Run() {
	if k.parts <= 1 {
		k.task(0)
		return
	}
	if !k.running {
		k.spawn()
	}
	for p := 1; p < k.parts; p++ {
		k.start[p] <- struct{}{}
	}
	k.task(0)
	for p := 1; p < k.parts; p++ {
		<-k.done
	}
}

// Close stops and joins the parked workers. Idempotent; a closed kernel
// respawns on its next parallel Run. Analyzers owning a kernel expose Close
// themselves (reachable through engine.CloseWarm), so pool evictions and
// shutdowns do not strand parked goroutines.
func (k *Kernel) Close() {
	if !k.running {
		return
	}
	close(k.quit)
	k.wg.Wait()
	k.quit = make(chan struct{})
	k.running = false
}

// PartitionRange returns the half-open index range [lo, hi) of partition
// part when n items are split across parts partitions: fixed, contiguous,
// balanced boundaries derived from nothing but (n, parts, part). Sizes
// differ by at most one, with the remainder going to the lowest-numbered
// partitions. Empty ranges (lo == hi) are valid and occur when parts > n.
//
//mia:hotpath
func PartitionRange(n, parts, part int) (lo, hi int) {
	q, r := n/parts, n%parts
	lo = part * q
	if part < r {
		lo += part
	} else {
		lo += r
	}
	hi = lo + q
	if part < r {
		hi++
	}
	return lo, hi
}

// CloseWarm releases any resources a warm analyzer holds beyond garbage-
// collected memory — today, the parked worker goroutines of a parallel
// kernel. Backends without such resources simply do not implement Close and
// CloseWarm is a no-op, so serving layers can call it unconditionally on
// every evicted or retired analyzer.
func CloseWarm(w Warm) {
	if c, ok := w.(interface{ Close() }); ok {
		c.Close()
	}
}
