package engine_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// TestSharedImageConcurrentParallelAnalyzers extends the immutability race
// test to the parallel kernel: one compiled image (Parallelism = 4), eight
// concurrent *parallel* analyzers, each running its own four-worker kernel
// over the shared demand matrix and bitset masks. Under -race this proves
// the kernels touch only analyzer-private state; the result comparisons
// prove the partitioned reduction stays bit-identical to the sequential
// baseline while 32 workers hammer the same image.
func TestSharedImageConcurrentParallelAnalyzers(t *testing.T) {
	p := gen.NewParams(8, 8)
	p.Seed = 5
	p.Cores, p.Banks = 4, 4
	g := gen.MustLayered(p)

	base, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := engine.Compile(g, sched.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc := engine.MustNew(engine.Incremental)
	ctx := context.Background()

	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			w := inc.NewWarm(img)
			defer engine.CloseWarm(w)
			for r := 0; r < rounds; r++ {
				res, err := w.Analyze(ctx)
				if err != nil {
					t.Errorf("g%d round %d: analyze: %v", gi, r, err)
					return
				}
				if d := res.Diff(base); d != "" {
					t.Errorf("g%d round %d: warm result diverges: %s", gi, r, d)
					return
				}
				res, err = w.AnalyzeCold(ctx)
				if err != nil {
					t.Errorf("g%d round %d: cold run: %v", gi, r, err)
					return
				}
				if d := res.Diff(base); d != "" {
					t.Errorf("g%d round %d: cold result diverges: %s", gi, r, d)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
}

// waitForGoroutines polls until the live goroutine count drops back to at
// most want, tolerating the runtime's asynchronous bookkeeping, and fails
// the test if it never does.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, want ≤ %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelKernelShutdownNoLeak pins the kernel worker lifecycle: cold
// parallel analyses join their workers before returning, and closing a warm
// analyzer releases its parked workers — the goroutine count returns to the
// pre-test baseline in both cases. It also proves a closed analyzer is
// restartable: the next parallel run respawns workers and stays correct.
func TestParallelKernelShutdownNoLeak(t *testing.T) {
	p := gen.NewParams(8, 8)
	p.Seed = 7
	p.Cores, p.Banks = 8, 8
	g := gen.MustLayered(p)
	base, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := engine.Compile(g, sched.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc := engine.MustNew(engine.Incremental)
	ctx := context.Background()
	before := runtime.NumGoroutine()

	// Cold runs are self-contained: workers never outlive Analyze.
	for r := 0; r < 5; r++ {
		if _, err := inc.Analyze(ctx, img); err != nil {
			t.Fatalf("cold run %d: %v", r, err)
		}
	}
	waitForGoroutines(t, before)

	// A warm analyzer parks its workers between runs; CloseWarm releases
	// them, and the analyzer keeps working (respawning on demand).
	w := inc.NewWarm(img)
	for cycle := 0; cycle < 3; cycle++ {
		res, err := w.Analyze(ctx)
		if err != nil {
			t.Fatalf("cycle %d: analyze: %v", cycle, err)
		}
		if d := res.Diff(base); d != "" {
			t.Fatalf("cycle %d: result diverges after close/respawn: %s", cycle, d)
		}
		engine.CloseWarm(w)
		waitForGoroutines(t, before)
	}
}

// TestParallelCancellationMidAnalysis drives ctx cancellation into the
// parallel path: an expired context aborts the analysis with ErrCanceled
// without stranding kernel workers, and the same analyzer completes the
// next, uncancelled run bit-identically.
func TestParallelCancellationMidAnalysis(t *testing.T) {
	p := gen.NewParams(64, 16) // n = 1024: long enough to guarantee poll points
	p.Seed = 3
	p.Cores, p.Banks = 16, 16
	g := gen.MustLayered(p)
	img, err := engine.Compile(g, sched.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc := engine.MustNew(engine.Incremental)
	before := runtime.NumGoroutine()

	w := inc.NewWarm(img)
	defer engine.CloseWarm(w)

	// Already-expired deadline: the run must abort, not complete.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.AnalyzeCold(expired); err != sched.ErrCanceled {
		t.Fatalf("expired ctx: got error %v, want ErrCanceled", err)
	}

	// Deadline landing mid-run: either outcome is legal (completion when
	// the run wins the race), but an abort must report ErrCanceled.
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 500*time.Microsecond)
	defer cancel2()
	if _, err := w.AnalyzeCold(shortCtx); err != nil && err != sched.ErrCanceled {
		t.Fatalf("mid-run cancel: got error %v, want nil or ErrCanceled", err)
	}

	// The analyzer recovers: a background-context run completes and matches
	// the sequential reference.
	want, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Analyze(context.Background())
	if err != nil {
		t.Fatalf("post-cancel analyze: %v", err)
	}
	if d := res.Diff(want); d != "" {
		t.Fatalf("post-cancel result diverges: %s", d)
	}

	engine.CloseWarm(w)
	waitForGoroutines(t, before)
}
