package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/wire"
)

// TestWireIngestBitIdentical is the wire path's round-trip property test:
// over the full differential corpus, an image ingested from a binary wire
// blob (Graph → wire.EncodeGraph → CompileFromWire) is indistinguishable
// from one compiled off the JSON ingestion path (WriteJSON → ReadJSON →
// Compile) — same Fingerprint, and bit-identical analysis output from both
// backends, cold and warm.
func TestWireIngestBitIdentical(t *testing.T) {
	ctx := context.Background()
	backends := map[string]engine.Backend{
		"incremental": engine.MustNew(engine.Incremental),
		"fixpoint":    engine.MustNew(engine.Fixpoint),
	}
	corpus := diffCorpus()
	if len(corpus) < 200 {
		t.Fatalf("corpus has %d instances, want ≥ 200", len(corpus))
	}
	for ci, p := range corpus {
		g := gen.MustLayered(p)
		opts := corpusOpts(ci)
		label := fmt.Sprintf("corpus[%d] %d layers × %d, %d×%d shared=%v",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank)

		// JSON leg: serialize, re-read, compile — the service's JSON path.
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: WriteJSON: %v", label, err)
		}
		gj, err := model.ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadJSON: %v", label, err)
		}
		jsonImg, err := engine.Compile(gj, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", label, err)
		}

		// Wire leg: binary blob, zero-graph ingest.
		wireImg, err := engine.CompileFromWire(wire.EncodeGraph(g), opts)
		if err != nil {
			t.Fatalf("%s: CompileFromWire: %v", label, err)
		}

		if got, want := wireImg.Fingerprint(), jsonImg.Fingerprint(); got != want {
			t.Fatalf("%s: wire fingerprint %s, json %s", label, got, want)
		}

		for name, be := range backends {
			wantCold, err := be.Analyze(ctx, jsonImg)
			if err != nil {
				t.Fatalf("%s/%s: json cold: %v", label, name, err)
			}
			gotCold, err := be.Analyze(ctx, wireImg)
			if err != nil {
				t.Fatalf("%s/%s: wire cold: %v", label, name, err)
			}
			identical(t, label+"/"+name+"/cold", gotCold, wantCold)

			ww := be.NewWarm(wireImg)
			gotWarm, err := ww.Analyze(ctx)
			if err != nil {
				t.Fatalf("%s/%s: wire warm: %v", label, name, err)
			}
			identical(t, label+"/"+name+"/warm", gotWarm, wantCold)

			// Warm replay after an edit on both images must agree too —
			// the wire image's order overlay machinery is the same code,
			// but the CSR baselines it copies from were built differently.
			if core, pos, ok := legalSwapImage(wireImg); ok {
				wj := be.NewWarm(jsonImg)
				if _, err := wj.Analyze(ctx); err != nil {
					t.Fatalf("%s/%s: json warm baseline: %v", label, name, err)
				}
				wj.Orders().Swap(core, pos)
				ww.Orders().Swap(core, pos)
				edit := engine.Edit{Core: core, From: pos}
				wantEdit, err := wj.Reschedule(ctx, edit)
				if err != nil {
					t.Fatalf("%s/%s: json reschedule: %v", label, name, err)
				}
				gotEdit, err := ww.Reschedule(ctx, edit)
				if err != nil {
					t.Fatalf("%s/%s: wire reschedule: %v", label, name, err)
				}
				identical(t, label+"/"+name+"/edited", gotEdit, wantEdit)
				if got, want := wireImg.FingerprintOrders(ww.Orders()), jsonImg.FingerprintOrders(wj.Orders()); got != want {
					t.Fatalf("%s/%s: edited fingerprints diverge: %s vs %s", label, name, got, want)
				}
			}
		}
	}
}

// legalSwapImage finds an adjacent swap that keeps same-core dependency
// order intact on a compiled image: positions pos/pos+1 on some core with
// no dependency between the swapped tasks.
func legalSwapImage(img *engine.Image) (model.CoreID, int, bool) {
	for k := 0; k < img.Cores; k++ {
		order := img.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			a, b := order[pos], order[pos+1]
			dep := false
			for _, s := range img.Succs(a) {
				if s == b {
					dep = true
					break
				}
			}
			if !dep {
				return model.CoreID(k), pos, true
			}
		}
	}
	return 0, 0, false
}

// TestWireBytesRoundTrip: a compiled image re-encodes to a blob that
// decodes into an equivalent image, regardless of which path built it —
// the image↔wire invariant of DESIGN §3.8.
func TestWireBytesRoundTrip(t *testing.T) {
	g := gen.MustLayered(diffCorpus()[0])
	opts := corpusOpts(0)

	jsonImg, err := engine.Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	wireImg, err := engine.CompileFromWire(jsonImg.WireBytes(), opts)
	if err != nil {
		t.Fatalf("CompileFromWire of WireBytes: %v", err)
	}
	if got, want := wireImg.Fingerprint(), jsonImg.Fingerprint(); got != want {
		t.Fatalf("WireBytes round trip fingerprint %s, want %s", got, want)
	}
	// Second generation: wire-built image re-encodes to the same bytes.
	if !bytes.Equal(wireImg.WireBytes(), jsonImg.WireBytes()) {
		t.Fatal("wire-built image re-encodes to different bytes than its source")
	}
	// The lazily materialized graph is equal to the original.
	if got, want := wireImg.NewGraph().Fingerprint(), g.Fingerprint(); got != want {
		t.Fatalf("lazy NewGraph fingerprint %s, want %s", got, want)
	}
}

// TestCompileFromWireRejects: the ingest path refuses what the JSON path
// refuses, at the same layer (decode, before any image exists).
func TestCompileFromWireRejects(t *testing.T) {
	if _, err := engine.CompileFromWire([]byte("junk"), corpusOpts(0)); err == nil {
		t.Fatal("CompileFromWire accepted junk")
	}
	r := gen.Figure1().Raw()
	r.WCET[0] = model.MaxInput + 1
	if _, err := engine.CompileFromWire(wire.Encode(r), corpusOpts(0)); err == nil {
		t.Fatal("CompileFromWire accepted a past-MaxInput WCET")
	}
}
