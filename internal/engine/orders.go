package engine

import "github.com/mia-rt/mia/internal/model"

// Orders is the mutable overlay of an immutable Image: one private copy of
// the per-core execution orders, backed by a single flat allocation. Every
// analyzer that permutes orders (search evaluators, warm reschedulers)
// owns its own Orders; the Image underneath is never written. An Orders
// value is not safe for concurrent use — it belongs to exactly one
// analyzer, like the backend state it feeds.
type Orders struct {
	img  *Image
	flat []model.TaskID
	view [][]model.TaskID // per-core windows into flat
}

// NewOrders returns a fresh mutable copy of the image's baseline per-core
// execution orders.
func (img *Image) NewOrders() *Orders {
	flat := make([]model.TaskID, len(img.OrderIDs))
	copy(flat, img.OrderIDs)
	view := make([][]model.TaskID, img.Cores)
	for k := 0; k < img.Cores; k++ {
		view[k] = flat[img.OrderStart[k]:img.OrderStart[k+1]:img.OrderStart[k+1]]
	}
	return &Orders{img: img, flat: flat, view: view}
}

// Cores returns the number of per-core orders.
func (o *Orders) Cores() int { return len(o.view) }

// Order returns core k's current execution order. The slice aliases the
// overlay's backing array: it reflects later Swap/Set calls and must not
// be mutated directly.
//
//mia:hotpath
func (o *Orders) Order(k model.CoreID) []model.TaskID { return o.view[k] }

// View returns all per-core orders. Read-only, aliases the overlay.
func (o *Orders) View() [][]model.TaskID { return o.view }

// Swap exchanges the tasks at positions pos and pos+1 of core k's order —
// the adjacent-swap move the warm-start reschedulers replay. Swap is its
// own inverse.
//
//mia:hotpath
func (o *Orders) Swap(k model.CoreID, pos int) {
	ord := o.view[k]
	ord[pos], ord[pos+1] = ord[pos+1], ord[pos]
}

// SetOrder overwrites core k's order with a copy of order — the bulk
// counterpart of Swap for consumers that load whole candidate permutations
// (the Pareto search's per-worker genome loading). The length must match
// the compiled per-core order length: task migration requires a recompile,
// exactly as for CopyFrom.
//
//mia:hotpath
func (o *Orders) SetOrder(k model.CoreID, order []model.TaskID) {
	if len(order) != len(o.view[k]) {
		panic("engine: Orders.SetOrder: per-core order length changed since Compile (task migration requires a recompile)")
	}
	copy(o.view[k], order)
}

// CopyFrom overwrites the overlay with g's current per-core orders. The
// graph must have the compiled graph's task-to-core assignment (order
// permutations are the supported mutation; task migration requires a
// recompile), which keeps every per-core order length unchanged.
//
//mia:hotpath
func (o *Orders) CopyFrom(g *model.Graph) {
	for k := range o.view {
		src := g.Order(model.CoreID(k))
		if len(src) != len(o.view[k]) {
			panic("engine: Orders.CopyFrom: per-core order length changed since Compile (task migration requires a recompile)")
		}
		copy(o.view[k], src)
	}
}

// Reset restores the image's baseline orders.
func (o *Orders) Reset() { copy(o.flat, o.img.OrderIDs) }
