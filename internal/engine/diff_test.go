package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/fixpoint"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// diffCorpus mirrors the incremental scheduler's differential corpus: both
// benchmark families across platform geometries, bank layouts, and seeds,
// ≥ 200 instances. The engine façade must be unobservable — every backend,
// warm or cold, must produce bit-identical results to the package-level
// Schedule entry points on every instance.
func diffCorpus() []gen.Params {
	shapes := []struct {
		family       string
		layers, size int
	}{
		{"LS", 8, 4}, {"LS", 12, 4}, {"LS", 6, 8},
		{"NL", 4, 8}, {"NL", 4, 12}, {"NL", 6, 10},
	}
	platforms := []struct {
		cores, banks int
		shared       bool
	}{
		{4, 4, false},
		{8, 8, false},
		{4, 1, true},
	}
	var corpus []gen.Params
	for _, sh := range shapes {
		for _, pl := range platforms {
			for seed := int64(1); seed <= 12; seed++ {
				p := gen.NewParams(sh.layers, sh.size)
				p.Seed = seed
				p.Cores, p.Banks, p.SharedBank = pl.cores, pl.banks, pl.shared
				corpus = append(corpus, p)
			}
		}
	}
	return corpus
}

// corpusOpts rotates arbiters and competitor-merging modes across the
// corpus so every combination appears many times without multiplying the
// runtime.
func corpusOpts(ci int) sched.Options {
	arbiters := []arbiter.Arbiter{
		arbiter.NewRoundRobin(1),
		arbiter.NewRoundRobin(3),
		arbiter.NewWeightedRR(1, func(c model.CoreID) int64 { return int64(c)%2 + 1 }),
	}
	return sched.Options{Arbiter: arbiters[ci%len(arbiters)], SeparateCompetitors: ci%2 == 1}
}

// identical asserts every analyzed quantity matches bit-for-bit: releases,
// responses, makespan, iteration count, and the per-bank interference
// split, so an image-port bug cannot hide in an aggregate.
func identical(t *testing.T, label string, got, want *sched.Result) {
	t.Helper()
	if d := got.Diff(want); d != "" {
		t.Fatalf("%s: schedules diverge: %s", label, d)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %d vs %d", label, got.Makespan, want.Makespan)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, got.Iterations, want.Iterations)
	}
	for i := range got.Interference {
		if got.Interference[i] != want.Interference[i] {
			t.Fatalf("%s: task %d interference %d vs %d", label, i, got.Interference[i], want.Interference[i])
		}
		for b := range got.PerBank[i] {
			if got.PerBank[i][b] != want.PerBank[i][b] {
				t.Fatalf("%s: task %d bank %d: %d vs %d", label, i, b, got.PerBank[i][b], want.PerBank[i][b])
			}
		}
	}
}

// TestEngineBitIdenticalToDirectPath is the tentpole's safety net: over the
// full differential corpus, for both algorithms, the engine path (one
// Compile, then Analyze / warm Analyze / zero-edit Reschedule / AnalyzeCold
// over the shared image) is bit-identical to the package-level Schedule
// wrappers.
func TestEngineBitIdenticalToDirectPath(t *testing.T) {
	ctx := context.Background()
	inc := engine.MustNew(engine.Incremental)
	fix := engine.MustNew(engine.Fixpoint)
	corpus := diffCorpus()
	if len(corpus) < 200 {
		t.Fatalf("corpus has %d instances, want ≥ 200", len(corpus))
	}
	for ci, p := range corpus {
		g := gen.MustLayered(p)
		opts := corpusOpts(ci)
		label := fmt.Sprintf("corpus[%d] %d layers × %d, %d×%d shared=%v separate=%v",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank, opts.SeparateCompetitors)

		img, err := engine.Compile(g, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", label, err)
		}

		// Incremental: direct wrapper vs engine cold vs warm vs replay.
		direct, err := incremental.Schedule(g, opts)
		if err != nil {
			t.Fatalf("%s: direct incremental: %v", label, err)
		}
		cold, err := inc.Analyze(ctx, img)
		if err != nil {
			t.Fatalf("%s: engine incremental: %v", label, err)
		}
		identical(t, label+" engine-cold", cold, direct)

		w := inc.NewWarm(img)
		warm, err := w.Analyze(ctx)
		if err != nil {
			t.Fatalf("%s: warm analyze: %v", label, err)
		}
		identical(t, label+" warm-first", warm, direct)
		replay, err := w.Reschedule(ctx) // zero edits: replay from the last checkpoint
		if err != nil {
			t.Fatalf("%s: zero-edit replay: %v", label, err)
		}
		identical(t, label+" warm-replay", replay, direct)
		coldAgain, err := w.AnalyzeCold(ctx)
		if err != nil {
			t.Fatalf("%s: analyze cold: %v", label, err)
		}
		identical(t, label+" warm-cold-oracle", coldAgain, direct)

		// Fixpoint baseline: direct wrapper vs engine path.
		fdirect, err := fixpoint.Schedule(g, opts)
		if err != nil {
			t.Fatalf("%s: direct fixpoint: %v", label, err)
		}
		fcold, err := fix.Analyze(ctx, img)
		if err != nil {
			t.Fatalf("%s: engine fixpoint: %v", label, err)
		}
		identical(t, label+" fixpoint", fcold, fdirect)
	}
}

// legalSwap returns one adjacent swap site of g not contradicted by a
// direct dependency, or ok=false when none exists.
func legalSwap(g *model.Graph) (core model.CoreID, pos int, ok bool) {
	dep := make(map[[2]model.TaskID]bool, len(g.Edges()))
	for _, e := range g.Edges() {
		dep[[2]model.TaskID{e.From, e.To}] = true
	}
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		for p := 0; p+1 < len(order); p++ {
			if !dep[[2]model.TaskID{order[p], order[p+1]}] {
				return model.CoreID(k), p, true
			}
		}
	}
	return 0, 0, false
}

// TestEditedRescheduleMatchesDirectPath drives the warm edit path: apply an
// adjacent swap to the analyzer's order overlay, Reschedule with the edit
// hint, and require bit-identity with a cold direct Schedule of the edited
// graph — plus fingerprint equality between the overlay hash and the edited
// graph's canonical hash (the serving layer's response key).
func TestEditedRescheduleMatchesDirectPath(t *testing.T) {
	ctx := context.Background()
	inc := engine.MustNew(engine.Incremental)
	for ci, p := range diffCorpus() {
		if ci%4 != 0 {
			continue // a quarter of the corpus keeps the edit path fast but broad
		}
		g := gen.MustLayered(p)
		opts := corpusOpts(ci)
		core, pos, ok := legalSwap(g)
		if !ok {
			continue
		}
		label := fmt.Sprintf("corpus[%d] swap core %d pos %d", ci, core, pos)

		img, err := engine.Compile(g, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", label, err)
		}
		w := inc.NewWarm(img)
		if _, err := w.Analyze(ctx); err != nil {
			t.Fatalf("%s: baseline analyze: %v", label, err)
		}

		edited := g.Clone()
		edited.SwapOrder(core, pos)
		want, err := incremental.Schedule(edited, opts)
		if err != nil {
			t.Fatalf("%s: direct edited: %v", label, err)
		}

		ord := w.Orders()
		ord.Swap(core, pos)
		if gotFP, wantFP := img.FingerprintOrders(ord), edited.Fingerprint(); gotFP != wantFP {
			t.Fatalf("%s: overlay fingerprint %s != edited graph fingerprint %s", label, gotFP, wantFP)
		}
		got, err := w.Reschedule(ctx, engine.Edit{Core: core, From: pos})
		if err != nil {
			t.Fatalf("%s: edited reschedule: %v", label, err)
		}
		identical(t, label, got, want)

		// Undo restores the baseline bit-for-bit, including the hash.
		ord.Swap(core, pos)
		if gotFP := img.FingerprintOrders(ord); gotFP != img.Fingerprint() {
			t.Fatalf("%s: undo did not restore the baseline fingerprint", label)
		}
		back, err := w.Reschedule(ctx, engine.Edit{Core: core, From: pos})
		if err != nil {
			t.Fatalf("%s: undo reschedule: %v", label, err)
		}
		base, err := incremental.Schedule(g, opts)
		if err != nil {
			t.Fatalf("%s: direct baseline: %v", label, err)
		}
		identical(t, label+" undo", back, base)
	}
}

// TestImageFingerprintMatchesGraph pins the hash bridge: an image's
// fingerprint equals the source graph's canonical fingerprint, so image
// registries and graph registries key identically.
func TestImageFingerprintMatchesGraph(t *testing.T) {
	g := gen.Figure1()
	img, err := engine.Compile(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Fingerprint() != g.Fingerprint() {
		t.Fatalf("image fingerprint %s != graph fingerprint %s", img.Fingerprint(), g.Fingerprint())
	}
	if ng := img.NewGraph(); ng.Fingerprint() != g.Fingerprint() {
		t.Fatalf("NewGraph fingerprint diverges")
	}
}
