package engine_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/wire"
)

// The ingest benchmarks measure the full network-facing path from received
// request body to ready-to-analyze image: JSON decode + graph build +
// Compile versus binary decode + slab adoption (CompileFromWire). The wire
// path's contract is ≥ 5× fewer allocs/op and lower ns/op at n=1024.
func ingestPayloads(b *testing.B, n int) (jsonBody, wireBody []byte) {
	b.Helper()
	p := gen.NewParams(n/64, 64)
	p.Seed = 7
	g := gen.MustLayered(p)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), wire.EncodeGraph(g)
}

func BenchmarkIngestJSON(b *testing.B) {
	for _, n := range []int{256, 1024} {
		jsonBody, _ := ingestPayloads(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(jsonBody)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := model.ReadJSON(bytes.NewReader(jsonBody))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := engine.Compile(g, sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIngestWire(b *testing.B) {
	for _, n := range []int{256, 1024} {
		_, wireBody := ingestPayloads(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(wireBody)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.CompileFromWire(wireBody, sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
