package bench

import (
	"github.com/mia-rt/mia/internal/plot"
)

// LogLog converts the panel into a Figure 3-style log–log plot: one series
// per algorithm with its fitted power law, timed-out and skipped points
// omitted (they have no finite time).
func (p *Panel) LogLog() *plot.LogLog {
	ll := &plot.LogLog{
		Title:  p.Config.Name(),
		XLabel: "nodes",
		YLabel: "time (s)",
	}
	for _, s := range p.Series {
		series := plot.Series{Name: s.Algorithm}
		for _, pt := range s.Points {
			if pt.TimedOut || pt.Skipped || pt.Seconds <= 0 {
				continue
			}
			series.Xs = append(series.Xs, float64(pt.Tasks))
			series.Ys = append(series.Ys, pt.Seconds)
		}
		if s.FitOK {
			series.FitOK = true
			series.FitExponent = s.Fit.Exponent
			series.FitScale = s.Fit.Scale
		}
		ll.Series = append(ll.Series, series)
	}
	return ll
}
