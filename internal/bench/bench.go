// Package bench is the harness that regenerates the paper's evaluation
// (Section V): timed sweeps of both scheduling algorithms over random
// layer-by-layer DAGs, with per-run wall-clock timeouts, and log–log
// regression fits of the empirical complexity exponents — everything behind
// the six panels of Figure 3, the headline speedup numbers quoted in the
// text, and the 8000-task scalability claim of the conclusion.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/pool"
	"github.com/mia-rt/mia/internal/regress"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/fixpoint"    // registers the "fixpoint" engine backend
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

// Algorithm is a named analysis under measurement. Run analyzes a
// pre-compiled image: the harness compiles every sweep graph once outside
// the timed region, so the seconds measure the analysis itself, not input
// validation or layout flattening.
type Algorithm struct {
	Name string
	Run  func(context.Context, *engine.Image) (*sched.Result, error)
}

// Incremental returns the paper's O(n²) algorithm as a benchmark subject.
func Incremental() Algorithm {
	return Algorithm{Name: "incremental", Run: engine.MustNew(engine.Incremental).Analyze}
}

// Fixpoint returns the O(n⁴) baseline as a benchmark subject.
func Fixpoint() Algorithm {
	return Algorithm{Name: "fixpoint", Run: engine.MustNew(engine.Fixpoint).Analyze}
}

// Config describes one benchmark panel: a family (LS = fixed layer size,
// NL = fixed number of layers), the fixed dimension, and the series of
// total task counts to sweep.
type Config struct {
	// Family is "LS" (fixed layer size, growing layer count) or "NL"
	// (fixed number of layers, growing layer size) — the two input
	// generation approaches of Section V.
	Family string
	// Fixed is the value of the fixed dimension (4, 16 or 64 in Figure 3).
	Fixed int
	// Sizes lists the total task counts to measure. Each must be a
	// multiple of Fixed.
	Sizes []int
	// Timeout caps each individual run; an algorithm that times out at
	// some size is skipped for all larger sizes, like the paper's
	// benchmark. Zero means no timeout.
	Timeout time.Duration
	// Repeats measures each point this many times and keeps the fastest
	// (default 1).
	Repeats int
	// Seed drives graph generation (default 1).
	Seed int64
	// Cores and Banks describe the platform (default 16×16, one MPPA-256
	// compute cluster).
	Cores, Banks int
	// SharedBank compiles all demands onto one bank.
	SharedBank bool
	// Arbiter is the bus policy (default flat round-robin, latency 1 —
	// "the Kalray MPPA-256 RR").
	Arbiter arbiter.Arbiter
	// Jobs bounds the number of sweep points measured concurrently; values
	// ≤ 1 select the sequential path. The analysis outputs (makespan,
	// iterations, point statuses) are identical at every jobs level — only
	// wall-clock measurements, which are physical observations, vary.
	// Parallel measurement trades some timing fidelity (co-running points
	// share memory bandwidth) for sweep throughput, which is the right
	// trade for smoke sweeps and CI; use Jobs=1 when the seconds themselves
	// are the artifact.
	Jobs int

	// Parallelism is the intra-analysis worker count passed through to the
	// compiled images (sched.Options.Parallelism): it parallelizes each
	// single analysis internally, orthogonally to Jobs' cross-point
	// concurrency. Analysis outputs are bit-identical at every level; only
	// the seconds change.
	Parallelism int

	// stopwatch, when non-nil, replaces the wall-clock timer: it is called
	// at the start of a run and returns the elapsed-seconds reader. The
	// determinism tests inject a fake so CSV/report bytes can be compared
	// across jobs levels.
	stopwatch func() func() float64
}

// startTimer begins timing one run.
func (c Config) startTimer() func() float64 {
	if c.stopwatch != nil {
		return c.stopwatch()
	}
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Name renders the panel name in the paper's notation (LS64, NL4, ...).
func (c Config) Name() string { return fmt.Sprintf("%s%d", c.Family, c.Fixed) }

// params builds the generator parameters for a given total size.
func (c Config) params(tasks int) (gen.Params, error) {
	if c.Fixed <= 0 || tasks%c.Fixed != 0 {
		return gen.Params{}, fmt.Errorf("bench: size %d not a multiple of fixed dimension %d", tasks, c.Fixed)
	}
	var p gen.Params
	switch c.Family {
	case "LS":
		p = gen.NewParams(tasks/c.Fixed, c.Fixed)
	case "NL":
		p = gen.NewParams(c.Fixed, tasks/c.Fixed)
	default:
		return gen.Params{}, fmt.Errorf("bench: unknown family %q (want LS or NL)", c.Family)
	}
	if c.Seed != 0 {
		p.Seed = c.Seed
	}
	if c.Cores > 0 {
		p.Cores = c.Cores
	}
	if c.Banks > 0 {
		p.Banks = c.Banks
	}
	p.SharedBank = c.SharedBank
	return p, nil
}

// Point is one measured (size, time) sample.
type Point struct {
	Tasks      int
	Seconds    float64
	TimedOut   bool
	Skipped    bool
	Makespan   model.Cycles
	Iterations int
}

// Series is one algorithm's measurements across the panel plus its
// complexity fit.
type Series struct {
	Algorithm string
	Points    []Point
	Fit       regress.Fit
	FitOK     bool
}

// Panel is a completed benchmark panel: the reproduction of one subplot of
// Figure 3.
type Panel struct {
	Config Config
	Series []Series
	// Truncated marks a panel whose sweep was canceled before every point
	// ran: the measured points are valid, the rest are Skipped, and the
	// exports carry an explicit truncation marker so a partial CSV can never
	// be mistaken for a completed sweep.
	Truncated bool
}

// RunPanelContext sweeps every algorithm over the panel's sizes with
// caller-controlled cancellation. progress, when non-nil, receives one line
// per measurement for interactive feedback. There is deliberately no
// context-free variant: a sweep can run for minutes, and a library that
// invents its own root context detaches the whole panel from the caller's
// SIGINT handling (tests pass context.Background explicitly). Canceling
// ctx aborts in-flight scheduler runs (through their Options.Cancel hook)
// and stops launching further points. On cancellation the context error is
// returned together with a non-nil partial panel (Truncated set, unmeasured
// points Skipped), so callers can flush what was measured before exiting
// nonzero. Any other error returns a nil panel.
//
// When cfg.Jobs > 1 the (algorithm, size) points are measured concurrently
// on a bounded worker pool. The sweep's deterministic outputs — statuses,
// makespans, iteration counts, the skip-everything-after-a-timeout rule —
// are identical at every jobs level: points are identified by submission
// index, and the timeout-skip rule is applied as a deterministic post-pass
// over the collected points in size order rather than as scheduling-order
// side effects. Progress lines are emitted as measurements complete, so
// their interleaving (but not their count) depends on scheduling.
func RunPanelContext(ctx context.Context, cfg Config, algos []Algorithm, progress func(string)) (*Panel, error) {
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var sayMu sync.Mutex
	say := func(format string, args ...any) {
		if progress != nil {
			sayMu.Lock()
			progress(fmt.Sprintf(format, args...))
			sayMu.Unlock()
		}
	}

	// Generate and compile every sweep instance up front: all algorithms at
	// one size share one immutable image, and compilation (validation + SoA
	// flattening) stays outside every timed region.
	images := make(map[int]*engine.Image, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		p, err := cfg.params(size)
		if err != nil {
			return nil, err
		}
		g, err := gen.Layered(p)
		if err != nil {
			return nil, err
		}
		img, err := engine.Compile(g, sched.Options{Arbiter: cfg.Arbiter, Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, err
		}
		images[size] = img
	}

	// deadBelow[a] tracks the smallest size at which algorithm a has timed
	// out so far, letting workers cheaply refuse points that the post-pass
	// would discard anyway. It is an optimization only — correctness and
	// determinism come from the post-pass below.
	deadBelow := make([]atomic.Int64, len(algos))
	for a := range deadBelow {
		deadBelow[a].Store(math.MaxInt64)
	}

	nSizes := len(cfg.Sizes)
	points, runErr := pool.Map(ctx, cfg.Jobs, len(algos)*nSizes, func(ctx context.Context, i int) (Point, error) {
		algo, size := algos[i/nSizes], cfg.Sizes[i%nSizes]
		if int64(size) > deadBelow[i/nSizes].Load() {
			say("%s %s n=%d: skipped (timed out earlier)", cfg.Name(), algo.Name, size)
			return Point{Tasks: size, Skipped: true}, nil
		}
		pt := measure(ctx, algo, images[size], cfg, repeats)
		pt.Tasks = size
		if pt.TimedOut {
			for {
				cur := deadBelow[i/nSizes].Load()
				if int64(size) >= cur || deadBelow[i/nSizes].CompareAndSwap(cur, int64(size)) {
					break
				}
			}
			say("%s %s n=%d: TIMEOUT (> %v)", cfg.Name(), algo.Name, size, cfg.Timeout)
		} else if pt.Skipped {
			say("%s %s n=%d: skipped (canceled)", cfg.Name(), algo.Name, size)
		} else {
			say("%s %s n=%d: %.4fs", cfg.Name(), algo.Name, size, pt.Seconds)
		}
		return pt, nil
	})
	// A canceled sweep still yields its completed measurements: pool.Map
	// fills results in submission order and leaves unstarted points zeroed,
	// so the panel is assembled either way and the context error is returned
	// alongside it, with Truncated set. Task errors still abort panel-less.
	canceled := runErr != nil && errors.Is(runErr, ctx.Err())
	if runErr != nil && !canceled {
		return nil, runErr
	}

	panel := &Panel{Config: cfg, Truncated: canceled}
	for a, algo := range algos {
		series := Series{Algorithm: algo.Name}
		dead := false // timed out at a smaller size: discard the rest
		for s, size := range cfg.Sizes {
			pt := points[a*nSizes+s]
			if pt.Tasks == 0 {
				// Never launched (the sweep was canceled first): a measured
				// point always carries its size.
				pt = Point{Tasks: size, Skipped: true}
			}
			if dead {
				pt = Point{Tasks: size, Skipped: true}
			} else if pt.TimedOut {
				dead = true
			}
			series.Points = append(series.Points, pt)
		}
		ns := make([]int, 0, len(series.Points))
		ts := make([]float64, 0, len(series.Points))
		for _, pt := range series.Points {
			if !pt.TimedOut && !pt.Skipped {
				ns = append(ns, pt.Tasks)
				ts = append(ts, pt.Seconds)
			}
		}
		if fit, err := regress.LogLog(ns, ts); err == nil {
			series.Fit, series.FitOK = fit, true
		}
		panel.Series = append(panel.Series, series)
	}
	return panel, runErr
}

// measure times one algorithm on one graph, best of repeats, honoring the
// timeout through the scheduler's cancellation hook. A parent-context
// cancellation (as opposed to the point's own timeout) reports the point as
// Skipped.
func measure(ctx context.Context, algo Algorithm, img *engine.Image, cfg Config, repeats int) Point {
	best := Point{Seconds: -1}
	for r := 0; r < repeats; r++ {
		pt, timedOut := runOnce(ctx, algo, img, cfg)
		if timedOut {
			if ctx.Err() != nil {
				return Point{Skipped: true}
			}
			return Point{TimedOut: true}
		}
		if best.Seconds < 0 || pt.Seconds < best.Seconds {
			best = pt
		}
	}
	return best
}

// runOnce performs a single timed run. The per-point timeout is a context
// deadline layered on the caller's context, so a timed-out run is canceled
// synchronously inside the scheduler — it cannot leak work into the next
// point's measurement — and an external cancellation tears the run down the
// same way.
func runOnce(ctx context.Context, algo Algorithm, img *engine.Image, cfg Config) (Point, bool) {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	stop := cfg.startTimer()
	res, err := algo.Run(ctx, img)
	elapsed := stop()
	// A run is over budget when the scheduler observed the cancellation —
	// or when the deadline expired but the busy analysis loop outran the
	// timer goroutine (possible on starved single-CPU hosts): either way
	// the point must not be reported as a valid measurement.
	if errors.Is(err, sched.ErrCanceled) || ctx.Err() != nil {
		return Point{}, true
	}
	if err != nil {
		// Unschedulable graphs do not occur in the generated families;
		// still record the time the failed analysis took.
		return Point{Seconds: elapsed}, false
	}
	return Point{Seconds: elapsed, Makespan: res.Makespan, Iterations: res.Iterations}, false
}

// WriteTable renders the panel as an aligned text table with one column per
// algorithm and, when exactly two algorithms were measured, the speedup of
// the second-listed relative to the first (paper convention: old/new).
func (p *Panel) WriteTable(w io.Writer) error {
	cfg := p.Config
	arbName := "round-robin(L=1)"
	if cfg.Arbiter != nil {
		arbName = cfg.Arbiter.Name()
	}
	fmt.Fprintf(w, "# Panel %s — family %s, fixed %d, arbiter %s\n", cfg.Name(), cfg.Family, cfg.Fixed, arbName)
	fmt.Fprintf(w, "%-8s", "tasks")
	for _, s := range p.Series {
		fmt.Fprintf(w, " %14s", s.Algorithm+"(s)")
	}
	if len(p.Series) == 2 {
		fmt.Fprintf(w, " %10s", "speedup")
	}
	fmt.Fprintln(w)
	for i, size := range cfg.Sizes {
		fmt.Fprintf(w, "%-8d", size)
		var secs []float64
		for _, s := range p.Series {
			pt := s.Points[i]
			switch {
			case pt.Skipped:
				fmt.Fprintf(w, " %14s", "-")
				secs = append(secs, -1)
			case pt.TimedOut:
				fmt.Fprintf(w, " %14s", "timeout")
				secs = append(secs, -1)
			default:
				fmt.Fprintf(w, " %14.4f", pt.Seconds)
				secs = append(secs, pt.Seconds)
			}
		}
		if len(secs) == 2 && secs[0] > 0 && secs[1] > 0 {
			fmt.Fprintf(w, " %9.0fx", secs[1]/secs[0])
		}
		fmt.Fprintln(w)
	}
	for _, s := range p.Series {
		if s.FitOK {
			fmt.Fprintf(w, "fit %-12s %s\n", s.Algorithm, s.Fit)
		} else {
			fmt.Fprintf(w, "fit %-12s (not enough points)\n", s.Algorithm)
		}
	}
	if p.Truncated {
		fmt.Fprintln(w, "TRUNCATED: sweep interrupted before completion")
	}
	return nil
}

// WriteCSV exports the panel's raw measurement points as CSV
// (panel,algorithm,tasks,seconds,status), the machine-readable series
// behind each Figure 3 subplot for external plotting.
func (p *Panel) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "panel,algorithm,tasks,seconds,status"); err != nil {
		return err
	}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			status := "ok"
			secs := fmt.Sprintf("%.6f", pt.Seconds)
			switch {
			case pt.Skipped:
				status, secs = "skipped", ""
			case pt.TimedOut:
				status, secs = "timeout", ""
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s\n",
				p.Config.Name(), s.Algorithm, pt.Tasks, secs, status); err != nil {
				return err
			}
		}
	}
	if p.Truncated {
		// Explicit marker: a partial export must not pass for a full sweep.
		if _, err := fmt.Fprintln(w, "# TRUNCATED: sweep interrupted before completion; skipped rows were not measured"); err != nil {
			return err
		}
	}
	return nil
}

// Figure3Configs returns the six panels of the paper's Figure 3 with the
// given size lists (quick defaults live in cmd/miabench).
func Figure3Configs(lsSizes, nlSizes map[int][]int, timeout time.Duration) []Config {
	var configs []Config
	for _, fixed := range []int{4, 16, 64} {
		configs = append(configs, Config{Family: "LS", Fixed: fixed, Sizes: lsSizes[fixed], Timeout: timeout})
	}
	for _, fixed := range []int{4, 16, 64} {
		configs = append(configs, Config{Family: "NL", Fixed: fixed, Sizes: nlSizes[fixed], Timeout: timeout})
	}
	return configs
}
