package bench

import (
	"fmt"
	"io"
)

// WriteMarkdown renders the panel as a GitHub-flavored Markdown table with
// the fitted exponents, for inclusion in experiment reports
// (`miabench -report`).
func (p *Panel) WriteMarkdown(w io.Writer) error {
	cfg := p.Config
	arbName := "round-robin(L=1)"
	if cfg.Arbiter != nil {
		arbName = cfg.Arbiter.Name()
	}
	fmt.Fprintf(w, "### Panel %s (family %s, fixed %d, arbiter %s)\n\n", cfg.Name(), cfg.Family, cfg.Fixed, arbName)
	fmt.Fprintf(w, "| tasks |")
	for _, s := range p.Series {
		fmt.Fprintf(w, " %s (s) |", s.Algorithm)
	}
	if len(p.Series) == 2 {
		fmt.Fprintf(w, " speedup |")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range p.Series {
		fmt.Fprintf(w, "---|")
	}
	if len(p.Series) == 2 {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for i, size := range cfg.Sizes {
		fmt.Fprintf(w, "| %d |", size)
		var secs []float64
		for _, s := range p.Series {
			pt := s.Points[i]
			switch {
			case pt.Skipped:
				fmt.Fprintf(w, " — |")
				secs = append(secs, -1)
			case pt.TimedOut:
				fmt.Fprintf(w, " timeout |")
				secs = append(secs, -1)
			default:
				fmt.Fprintf(w, " %.4f |", pt.Seconds)
				secs = append(secs, pt.Seconds)
			}
		}
		if len(secs) == 2 {
			if secs[0] > 0 && secs[1] > 0 {
				fmt.Fprintf(w, " %.0f× |", secs[1]/secs[0])
			} else {
				fmt.Fprintf(w, " — |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	for _, s := range p.Series {
		if s.FitOK {
			fmt.Fprintf(w, "- fit `%s`: %s\n", s.Algorithm, s.Fit)
		} else {
			fmt.Fprintf(w, "- fit `%s`: not enough usable points\n", s.Algorithm)
		}
	}
	if p.Truncated {
		fmt.Fprintln(w, "- **TRUNCATED**: sweep interrupted before completion")
	}
	fmt.Fprintln(w)
	return nil
}
