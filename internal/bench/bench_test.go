package bench

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunPanelQuick(t *testing.T) {
	cfg := Config{
		Family: "LS", Fixed: 4,
		Sizes: []int{16, 32, 64},
		Cores: 4, Banks: 4,
		Seed: 1,
	}
	var progress []string
	panel, err := RunPanelContext(context.Background(), cfg, []Algorithm{Incremental(), Fixpoint()},
		func(s string) { progress = append(progress, s) })
	if err != nil {
		t.Fatalf("RunPanel: %v", err)
	}
	if len(panel.Series) != 2 {
		t.Fatalf("series = %d", len(panel.Series))
	}
	for _, s := range panel.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d points", s.Algorithm, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.TimedOut || pt.Skipped {
				t.Errorf("%s n=%d unexpectedly timed out", s.Algorithm, pt.Tasks)
			}
			if pt.Seconds < 0 {
				t.Errorf("%s n=%d negative time", s.Algorithm, pt.Tasks)
			}
			if pt.Makespan <= 0 {
				t.Errorf("%s n=%d makespan %d", s.Algorithm, pt.Tasks, pt.Makespan)
			}
		}
		if !s.FitOK {
			t.Errorf("%s: no fit", s.Algorithm)
		}
	}
	if len(progress) != 6 {
		t.Errorf("progress lines = %d, want 6", len(progress))
	}
	// Both algorithms must report the same makespan on the same instances
	// or differ only by the baseline's extra pessimism — never the other
	// direction.
	for i := range panel.Series[0].Points {
		inc, fix := panel.Series[0].Points[i], panel.Series[1].Points[i]
		if fix.Makespan < inc.Makespan {
			t.Errorf("n=%d: baseline makespan %d < incremental %d", inc.Tasks, fix.Makespan, inc.Makespan)
		}
	}
}

func TestRunPanelTimeoutSkipsLargerSizes(t *testing.T) {
	cfg := Config{
		Family: "NL", Fixed: 4,
		Sizes: []int{512, 1024, 2048},
		Cores: 4, Banks: 1,
		SharedBank: true,
		// A 1 µs budget is below any real n=512 run, so the deadline fires
		// mid-run on any hardware; a previous 10 ms budget raced machines
		// fast enough to finish inside it.
		Timeout: time.Microsecond,
		Seed:    1,
	}
	panel, err := RunPanelContext(context.Background(), cfg, []Algorithm{Fixpoint()}, nil)
	if err != nil {
		t.Fatalf("RunPanel: %v", err)
	}
	pts := panel.Series[0].Points
	if !pts[0].TimedOut {
		t.Fatalf("first point did not time out: %+v", pts[0])
	}
	for _, pt := range pts[1:] {
		if !pt.Skipped {
			t.Errorf("n=%d not skipped after timeout", pt.Tasks)
		}
	}
	if panel.Series[0].FitOK {
		t.Error("fit computed from zero usable points")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunPanelContext(context.Background(), Config{Family: "XX", Fixed: 4, Sizes: []int{8}}, []Algorithm{Incremental()}, nil); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := RunPanelContext(context.Background(), Config{Family: "LS", Fixed: 4, Sizes: []int{10}}, []Algorithm{Incremental()}, nil); err == nil {
		t.Error("non-multiple size accepted")
	}
	if _, err := RunPanelContext(context.Background(), Config{Family: "LS", Fixed: 0, Sizes: []int{8}}, []Algorithm{Incremental()}, nil); err == nil {
		t.Error("zero fixed dimension accepted")
	}
}

func TestConfigName(t *testing.T) {
	if n := (Config{Family: "LS", Fixed: 64}).Name(); n != "LS64" {
		t.Errorf("Name = %q", n)
	}
}

func TestWriteTable(t *testing.T) {
	cfg := Config{Family: "LS", Fixed: 4, Sizes: []int{16, 32}, Cores: 4, Banks: 4, Seed: 1}
	panel, err := RunPanelContext(context.Background(), cfg, []Algorithm{Incremental(), Fixpoint()}, nil)
	if err != nil {
		t.Fatalf("RunPanel: %v", err)
	}
	var buf bytes.Buffer
	if err := panel.WriteTable(&buf); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Panel LS4", "incremental(s)", "fixpoint(s)", "speedup", "fit incremental", "O(n^"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Configs(t *testing.T) {
	ls := map[int][]int{4: {16}, 16: {32}, 64: {64}}
	nl := map[int][]int{4: {16}, 16: {32}, 64: {64}}
	configs := Figure3Configs(ls, nl, time.Second)
	if len(configs) != 6 {
		t.Fatalf("%d configs, want 6", len(configs))
	}
	names := map[string]bool{}
	for _, c := range configs {
		names[c.Name()] = true
		if c.Timeout != time.Second {
			t.Errorf("%s timeout = %v", c.Name(), c.Timeout)
		}
	}
	for _, want := range []string{"LS4", "LS16", "LS64", "NL4", "NL16", "NL64"} {
		if !names[want] {
			t.Errorf("missing panel %s", want)
		}
	}
}

func TestLSAndNLFamiliesShapeGraphsDifferently(t *testing.T) {
	lsCfg := Config{Family: "LS", Fixed: 4}
	p, err := lsCfg.params(32)
	if err != nil {
		t.Fatal(err)
	}
	if p.LayerSize != 4 || p.Layers != 8 {
		t.Errorf("LS4 @32: %d layers × %d", p.Layers, p.LayerSize)
	}
	nlCfg := Config{Family: "NL", Fixed: 4}
	p, err = nlCfg.params(32)
	if err != nil {
		t.Fatal(err)
	}
	if p.Layers != 4 || p.LayerSize != 8 {
		t.Errorf("NL4 @32: %d layers × %d", p.Layers, p.LayerSize)
	}
}

// TestParallelSweepByteIdentical is the determinism contract behind the
// -jobs flag: with wall-clock noise removed (injected constant stopwatch),
// the rendered CSV and table bytes of a sweep must be identical at every
// jobs level — same point statuses, same makespans, same fitted exponents.
func TestParallelSweepByteIdentical(t *testing.T) {
	render := func(jobs int) (csv, table string, progress int) {
		cfg := Config{
			Family: "LS", Fixed: 4,
			Sizes: []int{16, 32, 64, 128},
			Cores: 4, Banks: 4,
			Seed: 1,
			Jobs: jobs,
			// Constant fake elapsed time: the only nondeterministic input
			// to the rendered bytes is the physical clock, so pin it.
			stopwatch: func() func() float64 {
				return func() float64 { return 0.25 }
			},
		}
		panel, err := RunPanelContext(context.Background(), cfg, []Algorithm{Incremental(), Fixpoint()},
			func(string) { progress++ })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var c, tb bytes.Buffer
		if err := panel.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := panel.WriteTable(&tb); err != nil {
			t.Fatal(err)
		}
		return c.String(), tb.String(), progress
	}
	refCSV, refTable, refLines := render(1)
	for _, jobs := range []int{4, 8} {
		csv, table, lines := render(jobs)
		if csv != refCSV {
			t.Errorf("jobs=%d: CSV differs from sequential sweep:\n--- jobs=1 ---\n%s--- jobs=%d ---\n%s", jobs, refCSV, jobs, csv)
		}
		if table != refTable {
			t.Errorf("jobs=%d: table differs from sequential sweep:\n--- jobs=1 ---\n%s--- jobs=%d ---\n%s", jobs, refTable, jobs, table)
		}
		if lines != refLines {
			t.Errorf("jobs=%d: %d progress lines, want %d", jobs, lines, refLines)
		}
	}
}

// TestParallelTimeoutSkipDeterministic checks the skip-after-timeout rule
// under concurrency: even when a larger size finishes before a smaller one
// times out, the post-pass must mark everything above the first timeout as
// skipped, exactly like the sequential sweep.
func TestParallelTimeoutSkipDeterministic(t *testing.T) {
	cfg := Config{
		Family: "NL", Fixed: 4,
		Sizes: []int{512, 1024, 2048},
		Cores: 4, Banks: 1,
		SharedBank: true,
		Timeout:    10 * time.Millisecond,
		Seed:       1,
		Jobs:       4,
	}
	panel, err := RunPanelContext(context.Background(), cfg, []Algorithm{Fixpoint()}, nil)
	if err != nil {
		t.Fatalf("RunPanel: %v", err)
	}
	pts := panel.Series[0].Points
	if !pts[0].TimedOut {
		t.Fatalf("first point did not time out: %+v", pts[0])
	}
	for _, pt := range pts[1:] {
		if !pt.Skipped {
			t.Errorf("n=%d not skipped after timeout", pt.Tasks)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	cfg := Config{Family: "NL", Fixed: 4, Sizes: []int{16, 32}, Cores: 4, Banks: 4, Seed: 1}
	panel, err := RunPanelContext(context.Background(), cfg, []Algorithm{Incremental()}, nil)
	if err != nil {
		t.Fatalf("RunPanel: %v", err)
	}
	var buf bytes.Buffer
	if err := panel.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 points:\n%s", len(lines), buf.String())
	}
	if lines[0] != "panel,algorithm,tasks,seconds,status" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "NL4,incremental,16,") || !strings.HasSuffix(lines[1], ",ok") {
		t.Errorf("row = %q", lines[1])
	}
}

// TestRunPanelContextCancellation pins the truncation contract: canceling
// mid-sweep returns the context error together with a partial panel whose
// measured points survive, whose unmeasured points are Skipped, and whose
// exports carry explicit truncation markers.
func TestRunPanelContextCancellation(t *testing.T) {
	cfg := Config{
		Family: "LS", Fixed: 4,
		Sizes: []int{16, 32, 64},
		Cores: 4, Banks: 4,
		Seed: 1,
		Jobs: 1, // sequential: cancellation after point 1 is deterministic
	}
	ctx, cancel := context.WithCancel(context.Background())
	panel, err := RunPanelContext(ctx, cfg, []Algorithm{Incremental()},
		func(string) { cancel() }) // fires after the first measurement
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if panel == nil || !panel.Truncated {
		t.Fatalf("canceled sweep must return a truncated panel, got %+v", panel)
	}
	pts := panel.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	if pts[0].Skipped || pts[0].Makespan <= 0 {
		t.Errorf("first point must be a completed measurement, got %+v", pts[0])
	}
	for _, pt := range pts[1:] {
		if !pt.Skipped {
			t.Errorf("unmeasured point n=%d must be Skipped, got %+v", pt.Tasks, pt)
		}
		if pt.Tasks == 0 {
			t.Errorf("skipped point lost its size: %+v", pt)
		}
	}

	var csv bytes.Buffer
	if err := panel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "# TRUNCATED") {
		t.Errorf("partial CSV missing truncation marker:\n%s", csv.String())
	}
	var table bytes.Buffer
	if err := panel.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "TRUNCATED") {
		t.Errorf("partial table missing truncation marker:\n%s", table.String())
	}
	var md bytes.Buffer
	if err := panel.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "TRUNCATED") {
		t.Errorf("partial markdown missing truncation marker:\n%s", md.String())
	}
}

// TestRunPanelContextPreCanceled: a context dead on arrival yields a fully
// skipped truncated panel and the context error — never a nil-panel surprise.
func TestRunPanelContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Family: "LS", Fixed: 4, Sizes: []int{16}, Cores: 4, Banks: 4}
	panel, err := RunPanelContext(ctx, cfg, []Algorithm{Incremental()}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if panel == nil || !panel.Truncated {
		t.Fatalf("want truncated panel, got %+v", panel)
	}
	if pt := panel.Series[0].Points[0]; !pt.Skipped || pt.Tasks != 16 {
		t.Errorf("pre-canceled point = %+v, want Skipped with size 16", pt)
	}
}
