// Package sens performs sensitivity analysis on interference-aware
// schedules: how much can execution times or memory demands grow before a
// deadline breaks, and which tasks are critical? Each probe is a full
// reanalysis, so the whole package is only practical on top of the paper's
// O(n²) algorithm — with the O(n⁴) baseline a single sensitivity sweep of a
// 384-task graph would cost hours instead of milliseconds.
//
// Every probe mutates WCETs or demands — the quantities a compiled
// engine.Image freezes — so probes compile a scaled instance and analyze it
// through the engine façade (there is nothing to warm-start across probes:
// consecutive probes differ in every task's parameters, not in an order
// suffix). Cancellation flows from the caller's context into each probe's
// analysis.
//
// Scales are expressed in permille (integer thousandths) to keep the
// analysis exact and deterministic: a scale of 1250 means every WCET (or
// demand) is multiplied by 1.25, rounding up.
package sens

import (
	"context"
	"fmt"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

// eng runs every probe: the O(n²) incremental analysis.
var eng = engine.MustNew(engine.Incremental)

// scaleCap bounds the search: growth beyond 64× means the deadline is
// effectively unconstraining.
const scaleCap = 64_000

// feasible reports whether the graph, transformed by apply(permille),
// meets the deadline.
func feasible(ctx context.Context, g *model.Graph, opts sched.Options, deadline model.Cycles, apply func(*model.Graph, int64), p int64) bool {
	c := g.Clone()
	apply(c, p)
	probe := opts
	probe.Deadline = deadline
	img, err := engine.Compile(c, probe)
	if err != nil {
		return false
	}
	_, err = eng.Analyze(ctx, img)
	return err == nil
}

// maxScale binary-searches the largest feasible permille for a monotone
// transformation. It returns 0 if even scale 0 is infeasible and scaleCap
// if the cap never becomes infeasible.
func maxScale(ctx context.Context, g *model.Graph, opts sched.Options, deadline model.Cycles, apply func(*model.Graph, int64)) (int64, error) {
	if deadline <= 0 {
		return 0, fmt.Errorf("sens: sensitivity needs a positive deadline")
	}
	if !feasible(ctx, g, opts, deadline, apply, 1000) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Below nominal: search [0, 1000).
		if !feasible(ctx, g, opts, deadline, apply, 0) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return 0, fmt.Errorf("sens: infeasible even at scale 0")
		}
		lo, hi := int64(0), int64(1000) // lo feasible, hi infeasible
		for lo+1 < hi {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			mid := (lo + hi) / 2
			if feasible(ctx, g, opts, deadline, apply, mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo, nil
	}
	// At or above nominal: double until infeasible, then bisect.
	lo, hi := int64(1000), int64(2000)
	for hi <= scaleCap && feasible(ctx, g, opts, deadline, apply, hi) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		lo, hi = hi, hi*2
	}
	if hi > scaleCap {
		return scaleCap, nil
	}
	for lo+1 < hi {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		mid := (lo + hi) / 2
		if feasible(ctx, g, opts, deadline, apply, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return lo, nil
}

// scaleWCETs multiplies every WCET by p/1000, rounding up.
func scaleWCETs(g *model.Graph, p int64) {
	for _, t := range g.Tasks() {
		t.WCET = model.Cycles((int64(t.WCET)*p + 999) / 1000)
	}
}

// scaleDemands multiplies every per-bank demand by p/1000, rounding up.
func scaleDemands(g *model.Graph, p int64) {
	for _, t := range g.Tasks() {
		for b := range t.Demand {
			if t.Demand[b] > 0 {
				t.Demand[b] = model.Accesses((int64(t.Demand[b])*p + 999) / 1000)
			}
		}
	}
}

// MaxWCETScale returns the largest permille factor by which all WCETs can
// be scaled while the schedule still meets the deadline (1000 = nominal).
func MaxWCETScale(ctx context.Context, g *model.Graph, opts sched.Options, deadline model.Cycles) (int64, error) {
	return maxScale(ctx, g, opts, deadline, scaleWCETs)
}

// MaxDemandScale returns the largest permille factor by which all memory
// demands can be scaled while meeting the deadline. Demands only influence
// interference, so this measures the system's robustness against
// underestimated access counts.
func MaxDemandScale(ctx context.Context, g *model.Graph, opts sched.Options, deadline model.Cycles) (int64, error) {
	return maxScale(ctx, g, opts, deadline, scaleDemands)
}

// TaskSlack is the per-task criticality metric: the extra WCET (in cycles)
// task id can absorb, alone, before the deadline breaks.
type TaskSlack struct {
	Task  model.TaskID
	Slack model.Cycles
}

// Criticality computes every task's individual WCET slack under the
// deadline and returns the list ordered by task ID. Tasks with zero slack
// are the critical ones: any overrun breaks the schedule.
func Criticality(ctx context.Context, g *model.Graph, opts sched.Options, deadline model.Cycles) ([]TaskSlack, error) {
	if deadline <= 0 {
		return nil, fmt.Errorf("sens: sensitivity needs a positive deadline")
	}
	probe := opts
	probe.Deadline = deadline
	nominal, err := engine.Compile(g, probe)
	if err != nil {
		return nil, fmt.Errorf("sens: nominal system invalid: %w", err)
	}
	if _, err := eng.Analyze(ctx, nominal); err != nil {
		return nil, fmt.Errorf("sens: nominal system infeasible: %w", err)
	}
	out := make([]TaskSlack, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		grow := func(c *model.Graph, extra int64) {
			c.Task(id).WCET += model.Cycles(extra)
		}
		ok := func(extra int64) bool {
			return feasible(ctx, g, opts, deadline, grow, extra)
		}
		// Doubling then bisection over absolute extra cycles.
		lo, hi := int64(0), int64(1)
		capExtra := int64(deadline) + 1
		for hi <= capExtra && ok(hi) {
			lo, hi = hi, hi*2
		}
		if hi > capExtra {
			lo = capExtra
		} else {
			for lo+1 < hi {
				mid := (lo + hi) / 2
				if ok(mid) {
					lo = mid
				} else {
					hi = mid
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = TaskSlack{Task: id, Slack: model.Cycles(lo)}
	}
	return out, nil
}
