package sens

import (
	"context"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func TestMaxWCETScaleFigure1(t *testing.T) {
	g := gen.Figure1() // makespan 7 under RR
	// Deadline 14 ≈ double the nominal makespan: the scale must land
	// between 1000 and the cap, and scaling by the result must be
	// feasible while result+1 is not.
	scale, err := MaxWCETScale(context.Background(), g, sched.Options{}, 14)
	if err != nil {
		t.Fatalf("MaxWCETScale: %v", err)
	}
	if scale < 1000 || scale >= scaleCap {
		t.Fatalf("scale = %d", scale)
	}
	check := func(p int64) bool {
		c := g.Clone()
		scaleWCETs(c, p)
		_, err := incremental.Schedule(c, sched.Options{Deadline: 14})
		return err == nil
	}
	if !check(scale) {
		t.Errorf("reported scale %d infeasible", scale)
	}
	if check(scale + 1) {
		t.Errorf("scale %d+1 still feasible — not maximal", scale)
	}
}

func TestMaxWCETScaleBelowNominal(t *testing.T) {
	g := gen.Figure1()
	// Deadline 5 < nominal makespan 7: only a shrunken system fits.
	scale, err := MaxWCETScale(context.Background(), g, sched.Options{}, 5)
	if err != nil {
		t.Fatalf("MaxWCETScale: %v", err)
	}
	if scale >= 1000 || scale == 0 {
		t.Fatalf("scale = %d, want in (0, 1000)", scale)
	}
}

func TestMaxWCETScaleInfeasible(t *testing.T) {
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 10, MinRelease: 100})
	g := b.MustBuild()
	// Even zero WCET cannot beat the minimal release.
	if _, err := MaxWCETScale(context.Background(), g, sched.Options{}, 50); err == nil || !strings.Contains(err.Error(), "scale 0") {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxWCETScaleUnconstrained(t *testing.T) {
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 1})
	g := b.MustBuild()
	scale, err := MaxWCETScale(context.Background(), g, sched.Options{}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if scale != scaleCap {
		t.Fatalf("scale = %d, want cap %d", scale, scaleCap)
	}
}

func TestMaxDemandScale(t *testing.T) {
	// Two contending tasks: growing demands grows interference only.
	b := model.NewBuilder(2, 1)
	b.AddTask(model.TaskSpec{WCET: 20, Core: 0, Local: 10})
	b.AddTask(model.TaskSpec{WCET: 20, Core: 1, Local: 10})
	g := b.MustBuild()
	// Nominal makespan: 20 + min(10,10) = 30. Deadline 40 allows demand
	// growth until interference adds 20: min(d, d) = 20 → demand 20 →
	// scale 2000.
	scale, err := MaxDemandScale(context.Background(), g, sched.Options{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 2000 {
		t.Fatalf("demand scale = %d, want 2000", scale)
	}
	if _, err := MaxDemandScale(context.Background(), g, sched.Options{}, 0); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestCriticality(t *testing.T) {
	g := gen.Figure1()
	slacks, err := Criticality(context.Background(), g, sched.Options{}, 10) // makespan 7, 3 spare
	if err != nil {
		t.Fatalf("Criticality: %v", err)
	}
	if len(slacks) != g.NumTasks() {
		t.Fatalf("%d entries", len(slacks))
	}
	// Every slack must be exact: adding slack is feasible, slack+1 is not
	// (unless capped).
	for _, s := range slacks {
		c := g.Clone()
		c.Task(s.Task).WCET += s.Slack
		if _, err := incremental.Schedule(c, sched.Options{Deadline: 10}); err != nil {
			t.Errorf("%s: slack %d infeasible", s.Task, s.Slack)
		}
		c = g.Clone()
		c.Task(s.Task).WCET += s.Slack + 1
		if _, err := incremental.Schedule(c, sched.Options{Deadline: 10}); err == nil {
			t.Errorf("%s: slack %d not maximal", s.Task, s.Slack)
		}
	}
	// n2 and n4 finish at 7 with deadline 10: their own growth is
	// bounded by 3; n3 (critical path into n4) likewise.
	if slacks[2].Slack != 3 {
		t.Errorf("slack[n2] = %d, want 3", slacks[2].Slack)
	}
}

func TestCriticalityInfeasibleNominal(t *testing.T) {
	g := gen.Figure1()
	if _, err := Criticality(context.Background(), g, sched.Options{}, 6); err == nil {
		t.Fatal("infeasible nominal accepted")
	}
}
