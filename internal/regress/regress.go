// Package regress fits empirical complexity exponents: the ordinary
// least-squares linear regression on a log×log scale that the paper uses to
// annotate Figure 3 (e.g. "O(n^1.03)" for the new algorithm on LS4 and
// "O(n^4.52)" for the old one on NL4).
//
// Fitting log t = α·log n + β over measured (n, t) pairs yields the
// empirical exponent α of a power-law runtime t ≈ e^β · n^α.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Fit is the result of a log–log least-squares regression.
type Fit struct {
	// Exponent is the slope α: the empirical complexity exponent.
	Exponent float64
	// Scale is e^β: the constant factor of the power law.
	Scale float64
	// R2 is the coefficient of determination of the fit in log space
	// (1 = perfect power law).
	R2 float64
	// Points is the number of samples used.
	Points int
}

// String renders the fit in the paper's notation.
func (f Fit) String() string {
	return fmt.Sprintf("O(n^%.2f) (R²=%.3f, %d points)", f.Exponent, f.R2, f.Points)
}

// ErrTooFewPoints reports a regression attempted on fewer than two usable
// samples.
var ErrTooFewPoints = errors.New("regress: need at least two positive samples")

// LogLog fits t ≈ Scale·n^Exponent over the given samples by least squares
// in log space. Samples with non-positive n or t are skipped (a timed-out
// or unmeasured point has no log); at least two usable samples are
// required.
func LogLog(ns []int, ts []float64) (Fit, error) {
	if len(ns) != len(ts) {
		return Fit{}, fmt.Errorf("regress: %d sizes vs %d times", len(ns), len(ts))
	}
	var xs, ys []float64
	for i := range ns {
		if ns[i] <= 0 || ts[i] <= 0 || math.IsNaN(ts[i]) || math.IsInf(ts[i], 0) {
			continue
		}
		xs = append(xs, math.Log(float64(ns[i])))
		ys = append(ys, math.Log(ts[i]))
	}
	if len(xs) < 2 {
		return Fit{}, ErrTooFewPoints
	}
	slope, intercept, r2, err := leastSquares(xs, ys)
	if err != nil {
		return Fit{}, err
	}
	return Fit{Exponent: slope, Scale: math.Exp(intercept), R2: r2, Points: len(xs)}, nil
}

// leastSquares performs ordinary least squares of y over x and returns the
// slope, intercept and R².
func leastSquares(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	n := float64(len(xs))
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("regress: all sample sizes identical")
	}
	slope = sxy / sxx
	intercept = meanY - slope*meanX
	if syy == 0 {
		// All y equal: the fit is exact and flat.
		return slope, intercept, 1, nil
	}
	ssRes := 0.0
	for i := range xs {
		resid := ys[i] - (slope*xs[i] + intercept)
		ssRes += resid * resid
	}
	r2 = 1 - ssRes/syy
	return slope, intercept, r2, nil
}

// Predict evaluates the fitted power law at n.
func (f Fit) Predict(n int) float64 {
	return f.Scale * math.Pow(float64(n), f.Exponent)
}
