package regress

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPerfectPowerLaw(t *testing.T) {
	// t = 2·n³ exactly.
	ns := []int{8, 16, 32, 64, 128}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 2 * math.Pow(float64(n), 3)
	}
	fit, err := LogLog(ns, ts)
	if err != nil {
		t.Fatalf("LogLog: %v", err)
	}
	if math.Abs(fit.Exponent-3) > 1e-9 {
		t.Errorf("exponent = %g, want 3", fit.Exponent)
	}
	if math.Abs(fit.Scale-2) > 1e-9 {
		t.Errorf("scale = %g, want 2", fit.Scale)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R² = %g, want ≈1", fit.R2)
	}
	if got := fit.Predict(256); math.Abs(got-2*math.Pow(256, 3)) > 1e-3 {
		t.Errorf("Predict(256) = %g", got)
	}
}

func TestNoisyPowerLaw(t *testing.T) {
	// Deterministic ±10% multiplicative noise must barely move the slope.
	ns := []int{10, 20, 40, 80, 160, 320}
	noise := []float64{1.1, 0.9, 1.05, 0.95, 1.08, 0.93}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 0.5 * math.Pow(float64(n), 2) * noise[i]
	}
	fit, err := LogLog(ns, ts)
	if err != nil {
		t.Fatalf("LogLog: %v", err)
	}
	if math.Abs(fit.Exponent-2) > 0.1 {
		t.Errorf("exponent = %g, want ≈2", fit.Exponent)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R² = %g", fit.R2)
	}
}

func TestSkipsUnusableSamples(t *testing.T) {
	// Timed-out points are encoded as non-positive times and skipped.
	ns := []int{8, 16, 32, 64}
	ts := []float64{8, 16, -1, math.NaN()}
	fit, err := LogLog(ns, ts)
	if err != nil {
		t.Fatalf("LogLog: %v", err)
	}
	if fit.Points != 2 {
		t.Errorf("Points = %d, want 2", fit.Points)
	}
	if math.Abs(fit.Exponent-1) > 1e-9 {
		t.Errorf("exponent = %g, want 1", fit.Exponent)
	}
}

func TestErrors(t *testing.T) {
	if _, err := LogLog([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LogLog([]int{8}, []float64{1}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("one point: err = %v", err)
	}
	if _, err := LogLog([]int{8, 8}, []float64{1, 2}); err == nil {
		t.Error("identical sizes accepted")
	}
	if _, err := LogLog(nil, nil); !errors.Is(err, ErrTooFewPoints) {
		t.Error("empty input accepted")
	}
}

func TestFlatSeries(t *testing.T) {
	fit, err := LogLog([]int{8, 16, 32}, []float64{5, 5, 5})
	if err != nil {
		t.Fatalf("LogLog: %v", err)
	}
	if fit.Exponent != 0 || fit.R2 != 1 {
		t.Errorf("flat series: exponent %g R² %g", fit.Exponent, fit.R2)
	}
}

func TestString(t *testing.T) {
	fit := Fit{Exponent: 1.03, R2: 0.998, Points: 7}
	if s := fit.String(); !strings.Contains(s, "O(n^1.03)") {
		t.Errorf("String = %q", s)
	}
}

func TestRecoversExponentProperty(t *testing.T) {
	// Property: for any exponent in [0.5, 5] and scale in (0, 10], the fit
	// recovers both from exact samples.
	check := func(e8, s8 uint8) bool {
		exp := 0.5 + float64(e8%46)/10    // 0.5 .. 5.0
		scale := 0.1 + float64(s8%100)/10 // 0.1 .. 10
		ns := []int{8, 16, 32, 64, 128, 256}
		ts := make([]float64, len(ns))
		for i, n := range ns {
			ts[i] = scale * math.Pow(float64(n), exp)
		}
		fit, err := LogLog(ns, ts)
		if err != nil {
			return false
		}
		return math.Abs(fit.Exponent-exp) < 1e-6 && math.Abs(fit.Scale-scale)/scale < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
