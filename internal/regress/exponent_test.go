// Empirical complexity-exponent tracking: the log–log fitter applied to the
// analysis it was built to characterize. This lives in an external test
// package so it can drive the engine without entangling regress (a leaf
// package) in the dependency graph.
package regress_test

import (
	"context"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/regress"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the backend under measurement
)

// measureIncremental times one cold incremental analysis of an LS64-shaped
// instance of n tasks (the scalability experiment's family), keeping the
// fastest of reps runs to suppress scheduler noise.
func measureIncremental(t *testing.T, n, reps int) float64 {
	t.Helper()
	p := gen.NewParams(n/64, 64)
	p.Seed = 1
	img, err := engine.Compile(gen.MustLayered(p), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := engine.MustNew(engine.Incremental).NewWarm(img)
	ctx := context.Background()
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := w.AnalyzeCold(ctx); err != nil {
			t.Fatal(err)
		}
		if s := time.Since(start).Seconds(); best == 0 || s < best {
			best = s
		}
	}
	return best
}

// TestIncrementalExponentTracking pins the empirical complexity of the
// paper's algorithm with the package's own fitter: over LS64 instances the
// measured exponent must stay far below the O(n²) worst case and the fit
// must actually be a power law (high R²). The default sweep tops out at
// n = 16384 — twice the paper's 8000-task scalability claim — and drops to
// n = 2048 under -short so the suite stays fast on constrained runners.
func TestIncrementalExponentTracking(t *testing.T) {
	sizes := []int{512, 1024, 2048, 4096, 16384}
	if testing.Short() {
		sizes = []int{512, 1024, 2048}
	}
	secs := make([]float64, len(sizes))
	for i, n := range sizes {
		secs[i] = measureIncremental(t, n, 2)
		t.Logf("n=%5d  %.4fs", n, secs[i])
	}
	fit, err := regress.LogLog(sizes, secs)
	if err != nil {
		t.Fatalf("LogLog: %v", err)
	}
	t.Logf("fit: %s", fit)
	// Wall-clock measurements on shared machines are noisy; the bounds are
	// generous. The exponent sat at ≈1.1 when this guard was written — an
	// excursion past 1.8 means the implementation lost its near-linear
	// empirical scaling, well before reaching the theoretical O(n²).
	if fit.Exponent > 1.8 {
		t.Errorf("empirical exponent %.2f exceeds 1.8 — scaling regressed (fit %s)", fit.Exponent, fit)
	}
	if fit.Exponent < 0.5 {
		t.Errorf("empirical exponent %.2f is implausibly low — measurement broken (fit %s)", fit.Exponent, fit)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R² %.3f too low for a power-law fit (fit %s)", fit.R2, fit)
	}
}
