package shard

import (
	"fmt"
	"reflect"
	"testing"
)

func testMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}
	return out
}

// TestRingDeterministic: the ring is a pure function of the member set —
// input order, duplicates, and repeated construction must not change any
// lookup.
func TestRingDeterministic(t *testing.T) {
	members := testMembers(5)
	shuffled := []string{members[3], members[0], members[4], members[0], members[2], members[1]}
	a := NewRing(members, 0)
	b := NewRing(shuffled, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		if got, want := a.Order(key), b.Order(key); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: order differs across construction orders\n a: %v\n b: %v", key, got, want)
		}
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Errorf("member sets differ: %v vs %v", a.Members(), b.Members())
	}
}

// TestRingOrderCoversAllMembersDistinctly: Order returns every member
// exactly once, and Replicas truncates it.
func TestRingOrderCoversAllMembersDistinctly(t *testing.T) {
	r := NewRing(testMembers(7), 16)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		ord := r.Order(key)
		if len(ord) != 7 {
			t.Fatalf("key %q: order has %d members, want 7", key, len(ord))
		}
		seen := map[string]bool{}
		for _, m := range ord {
			if seen[m] {
				t.Fatalf("key %q: member %s repeated in order %v", key, m, ord)
			}
			seen[m] = true
		}
		reps := r.Replicas(key, 2)
		if len(reps) != 2 || reps[0] != ord[0] || reps[1] != ord[1] {
			t.Fatalf("key %q: replicas %v disagree with order prefix %v", key, reps, ord[:2])
		}
		if got := r.Replicas(key, 99); len(got) != 7 {
			t.Fatalf("key %q: oversized replica request returned %d members", key, len(got))
		}
	}
}

// TestRingBalance: with default vnodes, primary assignment over many keys
// should not starve or drown any member (loose bound: every member owns
// between ¼× and 4× the fair share).
func TestRingBalance(t *testing.T) {
	members := testMembers(4)
	r := NewRing(members, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Order(fmt.Sprintf("graph-%d", i))[0]]++
	}
	fair := keys / len(members)
	for _, m := range members {
		if c := counts[m]; c < fair/4 || c > fair*4 {
			t.Errorf("member %s owns %d of %d keys (fair share %d): imbalance outside 4×", m, c, keys, fair)
		}
	}
}

// TestRingRemovalOnlyRemapsLostKeys: consistent hashing's defining
// property — dropping one member must not move keys between surviving
// members.
func TestRingRemovalOnlyRemapsLostKeys(t *testing.T) {
	members := testMembers(5)
	full := NewRing(members, 0)
	reduced := NewRing(members[:4], 0) // shard-4 removed
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("graph-%d", i)
		before := full.Order(key)[0]
		after := reduced.Order(key)[0]
		if before == members[4] {
			continue // lost member's keys must remap somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving members after removal, want 0", moved)
	}
}

// TestRingOrderBounded: accepted members keep ring order and precede
// rejected ones; the full fleet is always returned.
func TestRingOrderBounded(t *testing.T) {
	r := NewRing(testMembers(5), 0)
	key := "graph-under-test"
	ord := r.Order(key)
	overloaded := map[string]bool{ord[0]: true, ord[2]: true}
	bounded := r.OrderBounded(key, func(m string) bool { return !overloaded[m] })
	want := []string{ord[1], ord[3], ord[4], ord[0], ord[2]}
	if !reflect.DeepEqual(bounded, want) {
		t.Errorf("bounded order %v, want %v", bounded, want)
	}
	if all := r.OrderBounded(key, func(string) bool { return false }); !reflect.DeepEqual(all, ord) {
		t.Errorf("all-rejected bounded order %v, want plain order %v", all, ord)
	}
}

func TestWithinBound(t *testing.T) {
	cases := []struct {
		load, total, members int
		want                 bool
	}{
		{0, 0, 3, true},    // idle fleet admits anywhere
		{0, 30, 3, true},   // unloaded member of a busy fleet
		{12, 30, 3, true},  // cap = ceil(1.25·31/3) = 13; load+1 = 13 ≤ 13 admits
		{13, 30, 3, false}, // load+1 = 14 > 13 rejects
		{30, 30, 3, false},
		{1, 3, 0, false}, // no members: nothing is within bound
	}
	for _, tc := range cases {
		if got := WithinBound(tc.load, tc.total, tc.members, 0); got != tc.want {
			t.Errorf("WithinBound(%d,%d,%d) = %v, want %v", tc.load, tc.total, tc.members, got, tc.want)
		}
	}
	if !WithinBound(5, 30, 3, 2.0) { // looser factor: cap = ceil(2·31/3) = 21
		t.Errorf("WithinBound with c=2 rejected load 5 of 30 over 3 members")
	}
}
