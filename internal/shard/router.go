package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/wire"
)

// Router fronts a fleet of miaserve shards. It speaks the shards' own
// protocol on the client side — POST /v1/analyze, /v1/reschedule,
// /v1/batch (JSON or wire bodies), GET /healthz, /metrics — and places
// every request on the ring by its graph fingerprint, so each graph's warm
// engine image, analyzer checkpoints, and batch memo stay resident on the
// shard (and successor) that its traffic keeps landing on.
//
// Failure handling, in escalating order:
//
//   - Transient unary failures (connection errors, 503 from a draining
//     shard) retry on the next ring replica after a jittered backoff, and
//     passively mark the failed shard down until a health probe clears it.
//   - Analyze bodies are replicated: after the serving shard answers 200,
//     the same body is re-posted best-effort to the next ring replica, so
//     every registered image is pinned on its primary plus one successor
//     and a by-hash request surviving a primary death still resolves.
//   - A shard dying mid-batch fails over: the router re-admits exactly the
//     items whose result lines it has not yet streamed to the client, maps
//     the successor's line indices back to the original item indices, and
//     emits exactly one trailer for the whole batch — no result line is
//     duplicated (lines already streamed are never re-admitted) and none
//     is lost (un-streamed items are re-evaluated; shard results are
//     bit-identical, so a re-evaluated line equals the one that died in
//     the socket).
//
// Non-transient shard verdicts (400, 422, 429) pass through verbatim: they
// are statements about the request or about admission control, and retrying
// them elsewhere would either waste work or amplify an overload. A 404 is
// the one placement-dependent verdict — bounded-load reordering can put a
// shard outside the fingerprint's replica set first, and that shard
// legitimately lacks the image — so a 404 continues the ring walk and is
// replayed to the client only when every candidate returned it.
type Router struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	// batchClient has no overall timeout: a batch response streams for as
	// long as the shard produces lines, so only the response-header wait is
	// bounded (stalled shards are detected by the stream dying, not by a
	// wall clock on legitimate long streams).
	batchClient *http.Client
	mux         *http.ServeMux
	targets     map[string]*target
	met         routerMetrics

	rngMu sync.Mutex
	rng   *rand.Rand

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Config parameterizes a Router. Targets is required; everything else has
// serving-sensible defaults.
type Config struct {
	// Targets are the shard base URLs (e.g. "http://10.0.0.1:8080"). The
	// ring is built over this set; order does not matter.
	Targets []string
	// Replicas is each fingerprint's replica-set size: the primary plus
	// Replicas-1 successors that hold its image (default 2 — primary + one
	// successor, the replication policy's pin width).
	Replicas int
	// Vnodes is the ring's virtual-node count per shard (default
	// DefaultVnodes).
	Vnodes int
	// Retries bounds how many replica attempts one request makes (default:
	// Replicas; clamped to the fleet size).
	Retries int
	// Backoff is the base delay between replica attempts; each attempt
	// sleeps a uniformly jittered [Backoff/2, Backoff) so synchronized
	// failures do not produce synchronized retries (default 25ms).
	Backoff time.Duration
	// HealthEvery is the active health-probe interval. Zero disables the
	// background prober: health is then purely passive (errors mark a shard
	// down, CheckHealth marks it back up). Tests use zero for determinism.
	HealthEvery time.Duration
	// Timeout is the per-attempt client timeout for unary requests and the
	// response-header timeout for batches (default 30s). Batch bodies
	// stream for as long as the shard keeps producing lines.
	Timeout time.Duration
	// MaxRequestBytes bounds request bodies read for routing (default 32
	// MiB, the shard-side cap).
	MaxRequestBytes int64
	// LoadFactor is the bounded-load factor c: a shard already carrying
	// more than c times the mean in-flight load is deprioritized (not
	// excluded) in the ring walk (default 1.25).
	LoadFactor float64
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Targets) {
		c.Replicas = len(c.Targets)
	}
	if c.Retries < 1 {
		c.Retries = c.Replicas
	}
	if c.Retries > len(c.Targets) {
		c.Retries = len(c.Targets)
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 32 << 20
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	return c
}

// target is one shard's live state: health flag and in-flight counter (the
// bounded-load signal).
type target struct {
	url      string
	healthy  atomic.Bool
	inflight atomic.Int64
}

// routerMetrics are the router's own counters, exposed on /metrics.
type routerMetrics struct {
	forwarded      atomic.Int64 // requests forwarded to a shard (attempts)
	retries        atomic.Int64 // replica retries after a transient failure
	replications   atomic.Int64 // successful analyze-body replications
	batchFailovers atomic.Int64 // batches continued on a successor mid-stream
	linesStreamed  atomic.Int64 // batch result lines forwarded to clients
	shed           atomic.Int64 // 429/503 verdicts passed through
	noShard        atomic.Int64 // requests that exhausted every replica
}

// NewRouter builds a router over cfg.Targets and, when cfg.HealthEvery > 0,
// starts its background health prober (joined by Close). ctx bounds the
// prober's probes; canceling it is equivalent to Close for the background
// work.
func NewRouter(ctx context.Context, cfg Config) (*Router, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("shard: router needs at least one target")
	}
	cfg = cfg.withDefaults()
	rctx, cancel := context.WithCancel(ctx)
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Targets, cfg.Vnodes),
		client: &http.Client{Timeout: cfg.Timeout},
		batchClient: &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: cfg.Timeout,
		}},
		mux:     http.NewServeMux(),
		targets: make(map[string]*target, len(cfg.Targets)),
		//mialint:ignore determinism -- retry-backoff jitter only: the seed decorrelates concurrent routers and never touches routing or results
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		ctx:    rctx,
		cancel: cancel,
	}
	for _, m := range r.ring.Members() {
		t := &target{url: m}
		t.healthy.Store(true) // optimistic: first error or probe corrects it
		r.targets[m] = t
	}
	r.mux.HandleFunc("POST /v1/analyze", r.handleUnary)
	r.mux.HandleFunc("POST /v1/reschedule", r.handleUnary)
	r.mux.HandleFunc("POST /v1/batch", r.handleBatch)
	r.mux.HandleFunc("POST /v1/jobs", r.handleUnary)
	r.mux.HandleFunc("GET /v1/jobs/{id}", r.handleJobByID)
	r.mux.HandleFunc("GET /v1/jobs/{id}/stream", r.handleJobByID)
	r.mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleJobByID)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	if cfg.HealthEvery > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ticker := time.NewTicker(cfg.HealthEvery)
			defer ticker.Stop()
			for {
				select {
				case <-rctx.Done():
					return
				case <-ticker.C:
					r.CheckHealth(rctx)
				}
			}
		}()
	}
	return r, nil
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the background health prober and waits for it to exit.
func (r *Router) Close() {
	r.cancel()
	r.wg.Wait()
}

// CheckHealth probes every shard's /healthz once and updates the health
// flags: 200 marks a shard up (recovering it from a passive down-mark),
// anything else — including a 503 drain — marks it down.
func (r *Router) CheckHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range r.ring.Members() {
		t := r.targets[m]
		wg.Add(1)
		go func(t *target) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url+"/healthz", nil)
			if err != nil {
				t.healthy.Store(false)
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				t.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			t.healthy.Store(resp.StatusCode == http.StatusOK)
		}(t)
	}
	wg.Wait()
}

// candidates returns the fingerprint's replica attempt order: the first
// cfg.Retries members of the bounded-load ring walk, healthy and
// under-loaded shards first. The walk never returns an empty list — with
// the whole fleet marked down the ring order itself is the attempt order,
// and the requests fail over naturally when the attempts do.
func (r *Router) candidates(fp string) []string {
	total := 0
	for _, m := range r.ring.Members() {
		total += int(r.targets[m].inflight.Load())
	}
	ord := r.ring.OrderBounded(fp, func(m string) bool {
		t := r.targets[m]
		return t.healthy.Load() && WithinBound(int(t.inflight.Load()), total, len(r.targets), r.cfg.LoadFactor)
	})
	if len(ord) > r.cfg.Retries {
		ord = ord[:r.cfg.Retries]
	}
	return ord
}

// backoff sleeps the jittered inter-attempt delay, bailing early when ctx
// dies.
func (r *Router) backoff(ctx context.Context) {
	r.rngMu.Lock()
	d := r.cfg.Backoff/2 + time.Duration(r.rng.Int63n(int64(r.cfg.Backoff/2)+1))
	r.rngMu.Unlock()
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// markDown passively marks a shard down after a transport-level failure; a
// later health probe (or CheckHealth call) brings it back.
func (r *Router) markDown(url string) {
	if t, ok := r.targets[url]; ok {
		t.healthy.Store(false)
	}
}

// transientStatus reports whether a shard response status is worth retrying
// on another replica: only 502/503 — a dying or draining shard. 429 is
// admission control doing its job (the client owns the retry, guided by
// Retry-After), and 4xx/422 are verdicts about the request itself.
func transientStatus(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable
}

// errJSON writes the shard protocol's uniform error body.
func errJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(b)
}

// routeFingerprint derives the placement key for a request body. Precedence:
// the client's RouteHeader hint, then the body itself (hash field, wire
// blob, or graph JSON). A body no fingerprint can be derived from routes by
// its raw bytes — deterministic, and the shard will reject it with the
// proper error.
func (r *Router) routeFingerprint(req *http.Request, path string, body []byte) string {
	if fp := req.Header.Get(wire.RouteHeader); fp != "" {
		return fp
	}
	if isWireBody(req) {
		// Unary wire bodies are a whole blob; batch wire bodies are a blob
		// followed by the items object. Size tells us where the blob ends.
		n, err := wire.Size(body)
		if err == nil && n <= len(body) {
			if fp, err := wire.BlobFingerprint(body[:n]); err == nil {
				return fp
			}
		}
		return string(body)
	}
	switch path {
	case "/v1/reschedule", "/v1/batch", "/v1/jobs":
		var req struct {
			Hash  string          `json:"hash"`
			Graph json.RawMessage `json:"graph"`
		}
		if json.Unmarshal(body, &req) == nil {
			if req.Hash != "" {
				return req.Hash
			}
			if len(req.Graph) > 0 {
				if g, err := model.ReadJSON(bytes.NewReader(req.Graph)); err == nil {
					return g.Fingerprint()
				}
			}
		}
	default: // /v1/analyze
		if g, err := model.ReadJSON(bytes.NewReader(body)); err == nil {
			return g.Fingerprint()
		}
	}
	return string(body)
}

// isWireBody reports whether the request declares the binary wire media
// type (mirrors the shard-side check).
func isWireBody(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := bytes.IndexByte([]byte(ct), ';'); i >= 0 {
		ct = ct[:i]
	}
	return ct == "application/x-mia-wire"
}

// forward issues one attempt of a request to one shard and returns the
// response. The in-flight counter brackets only the attempt itself, not the
// body read — it is the admission-pressure signal for bounded-load
// placement, and a long batch stream is backpressure the shard already
// accounts for in its own queue.
func (r *Router) forward(ctx context.Context, client *http.Client, url, path, query, contentType string, body []byte) (*http.Response, error) {
	t := r.targets[url]
	t.inflight.Add(1)
	defer t.inflight.Add(-1)
	full := url + path
	if query != "" {
		full += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, full, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	r.met.forwarded.Add(1)
	return client.Do(req)
}

// handleUnary serves analyze and reschedule: pick the replica order for the
// body's fingerprint, try each with jittered backoff between attempts, copy
// the first non-transient response through, and replicate successful
// analyze bodies to the next replica.
func (r *Router) handleUnary(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		errJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	path := req.URL.Path
	contentType := req.Header.Get("Content-Type")
	if contentType == "" {
		contentType = "application/json"
	}
	fp := r.routeFingerprint(req, path, body)
	cands := r.candidates(fp)

	var lastErr error
	var notFound *savedVerdict
	for i, url := range cands {
		if i > 0 {
			r.met.retries.Add(1)
			r.backoff(req.Context())
			if req.Context().Err() != nil {
				break
			}
		}
		resp, err := r.forward(req.Context(), r.client, url, path, req.URL.RawQuery, contentType, body)
		if err != nil {
			if req.Context().Err() == nil {
				r.markDown(url) // shard failure, not our client going away
			}
			lastErr = err
			continue
		}
		if transientStatus(resp.StatusCode) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered %d", url, resp.StatusCode)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			// A 404 is a per-shard verdict, not a fleet one: bounded-load
			// reordering can put a shard outside the fingerprint's replica
			// set first, and that shard legitimately never got the image.
			// Keep walking the ring; replay the verdict only when no
			// candidate knows the graph.
			notFound = saveVerdict(resp)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered 404", url)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			r.met.shed.Add(1)
		}
		copyResponse(w, resp)
		resp.Body.Close()
		if path == "/v1/analyze" && resp.StatusCode == http.StatusOK {
			r.replicate(req.Context(), cands, url, contentType, body)
		}
		return
	}
	if notFound != nil {
		notFound.replay(w)
		return
	}
	r.met.noShard.Add(1)
	msg := "no shard available"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	errJSON(w, http.StatusBadGateway, msg)
}

// jobFingerprint extracts the placement key from a job id. Job ids are
// "<graph-fingerprint>-<seq>" (the shard mints them that way precisely so
// every request about a job hashes to the shard that owns the graph's
// traffic); an id without the separator routes by its raw bytes.
func jobFingerprint(id string) string {
	if i := bytes.LastIndexByte([]byte(id), '-'); i > 0 {
		return id[:i]
	}
	return id
}

// handleJobByID routes job status, stream, and cancel requests by the job
// id's fingerprint prefix. Jobs are shard-resident state (unlike stateless
// batch items there is nothing to fail over — a successor never ran the
// search), so a 404 continues the ring walk exactly like handleUnary's: a
// bounded-load detour can put the owning shard later in the order. Streams
// relay verbatim with per-chunk flushes; if the owning shard dies
// mid-stream the stream simply ends — the client re-GETs the job and sees
// the 404 or the final state.
func (r *Router) handleJobByID(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	path := "/v1/jobs/" + id
	stream := false
	if bytes.HasSuffix([]byte(req.URL.Path), []byte("/stream")) {
		path += "/stream"
		stream = true
	}
	cands := r.candidates(jobFingerprint(id))

	var lastErr error
	var notFound *savedVerdict
	for i, url := range cands {
		if i > 0 {
			r.met.retries.Add(1)
			r.backoff(req.Context())
			if req.Context().Err() != nil {
				break
			}
		}
		client := r.client
		if stream {
			client = r.batchClient // streams run as long as the job does
		}
		t := r.targets[url]
		t.inflight.Add(1)
		hreq, err := http.NewRequestWithContext(req.Context(), req.Method, url+path, nil)
		if err != nil {
			t.inflight.Add(-1)
			lastErr = err
			continue
		}
		r.met.forwarded.Add(1)
		resp, err := client.Do(hreq)
		t.inflight.Add(-1)
		if err != nil {
			if req.Context().Err() == nil {
				r.markDown(url)
			}
			lastErr = err
			continue
		}
		if transientStatus(resp.StatusCode) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered %d", url, resp.StatusCode)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			notFound = saveVerdict(resp)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered 404", url)
			continue
		}
		if stream && resp.StatusCode == http.StatusOK {
			relayStream(w, resp.Body)
			resp.Body.Close()
			return
		}
		copyResponse(w, resp)
		resp.Body.Close()
		return
	}
	if notFound != nil {
		notFound.replay(w)
		return
	}
	r.met.noShard.Add(1)
	msg := "no shard available"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	errJSON(w, http.StatusBadGateway, msg)
}

// relayStream copies an NDJSON stream through with a flush per read, so
// front updates reach the client as the shard emits them instead of
// pooling in a proxy buffer.
func relayStream(w http.ResponseWriter, body io.Reader) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// savedVerdict is a buffered non-200 shard response held while the ring
// walk continues, replayed verbatim if every candidate agrees.
type savedVerdict struct {
	status      int
	contentType string
	body        []byte
}

func saveVerdict(resp *http.Response) *savedVerdict {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return &savedVerdict{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        body,
	}
}

func (v *savedVerdict) replay(w http.ResponseWriter) {
	if v.contentType != "" {
		w.Header().Set("Content-Type", v.contentType)
	}
	w.WriteHeader(v.status)
	w.Write(v.body)
}

// replicate pins an analyzed graph on the rest of its replica set: the
// analyze body is re-posted, best-effort and synchronously, to every
// replica that did not already serve it. Failures are ignored beyond the
// passive down-mark — replication narrows the failover window, it is not a
// durability contract (a successor that missed a blob answers 404 on
// failover and the client re-analyzes).
func (r *Router) replicate(ctx context.Context, cands []string, served, contentType string, body []byte) {
	n := 0
	for _, url := range cands {
		if n >= r.cfg.Replicas {
			break
		}
		n++
		if url == served {
			continue
		}
		resp, err := r.forward(ctx, r.client, url, "/v1/analyze", "", contentType, body)
		if err != nil {
			r.markDown(url)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			r.met.replications.Add(1)
		}
	}
}

// copyResponse copies a shard response through: status, the protocol's
// payload headers, and the body verbatim (byte parity with a direct shard
// response is a tested contract).
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "X-Mia-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleHealthz answers the router's own liveness: 200 with the fleet's
// health summary while at least one shard is healthy, 503 otherwise.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy := 0
	for _, m := range r.ring.Members() {
		if r.targets[m].healthy.Load() {
			healthy++
		}
	}
	status := http.StatusOK
	state := "ok"
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		state = "no healthy shards"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"shards":%d,"healthy":%d}`, state, len(r.targets), healthy)
}

// routerSnapshot is the /metrics body.
type routerSnapshot struct {
	Targets []struct {
		URL      string `json:"url"`
		Healthy  bool   `json:"healthy"`
		InFlight int64  `json:"in_flight"`
	} `json:"targets"`
	Forwarded      int64 `json:"forwarded"`
	Retries        int64 `json:"retries"`
	Replications   int64 `json:"replications"`
	BatchFailovers int64 `json:"batch_failovers"`
	LinesStreamed  int64 `json:"lines_streamed"`
	Shed           int64 `json:"shed"`
	NoShard        int64 `json:"no_shard"`
}

// handleMetrics serves the router's own counters (shards keep their own
// /metrics; the router never aggregates them — scrape both layers).
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var s routerSnapshot
	for _, url := range r.ring.Members() {
		t := r.targets[url]
		s.Targets = append(s.Targets, struct {
			URL      string `json:"url"`
			Healthy  bool   `json:"healthy"`
			InFlight int64  `json:"in_flight"`
		}{URL: url, Healthy: t.healthy.Load(), InFlight: t.inflight.Load()})
	}
	s.Forwarded = r.met.forwarded.Load()
	s.Retries = r.met.retries.Load()
	s.Replications = r.met.replications.Load()
	s.BatchFailovers = r.met.batchFailovers.Load()
	s.LinesStreamed = r.met.linesStreamed.Load()
	s.Shed = r.met.shed.Load()
	s.NoShard = r.met.noShard.Load()
	b, err := json.Marshal(&s)
	if err != nil {
		errJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// parsedBatch is a batch request split into its routable parts: the graph
// part (hash, inline JSON graph, or wire blob) and the raw per-item
// scenarios, which failover re-admission slices.
type parsedBatch struct {
	fp        string
	hash      string            // set when the graph part is a hash reference
	graphJSON json.RawMessage   // set when the graph part is an inline JSON graph
	wireBlob  []byte            // set when the graph part is a wire blob
	items     []json.RawMessage // raw scenario objects, in request order
}

// parseBatchBody splits a batch request for routing. It mirrors the shard's
// own parse, but keeps items raw: the router re-serializes subsets, never
// interprets swaps.
func (r *Router) parseBatchBody(req *http.Request, body []byte) (*parsedBatch, error) {
	pb := &parsedBatch{}
	if isWireBody(req) {
		n, err := wire.Size(body)
		if err != nil || n > len(body) {
			return nil, errors.New("batch body must start with a wire graph blob")
		}
		pb.wireBlob = body[:n]
		var rest struct {
			Items []json.RawMessage `json:"items"`
		}
		if err := json.Unmarshal(body[n:], &rest); err != nil {
			return nil, fmt.Errorf("parsing batch items after wire blob: %w", err)
		}
		pb.items = rest.Items
		if fp := req.Header.Get(wire.RouteHeader); fp != "" {
			pb.fp = fp
		} else if fp, err := wire.BlobFingerprint(pb.wireBlob); err == nil {
			pb.fp = fp
		} else {
			pb.fp = string(body)
		}
		return pb, nil
	}
	var jreq struct {
		Hash  string            `json:"hash"`
		Graph json.RawMessage   `json:"graph"`
		Items []json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal(body, &jreq); err != nil {
		return nil, fmt.Errorf("parsing batch request: %w", err)
	}
	pb.hash, pb.graphJSON, pb.items = jreq.Hash, jreq.Graph, jreq.Items
	switch {
	case pb.fp == "" && req.Header.Get(wire.RouteHeader) != "":
		pb.fp = req.Header.Get(wire.RouteHeader)
	case pb.hash != "":
		pb.fp = pb.hash
	case len(pb.graphJSON) > 0:
		if g, err := model.ReadJSON(bytes.NewReader(pb.graphJSON)); err == nil {
			pb.fp = g.Fingerprint()
		} else {
			pb.fp = string(body)
		}
	default:
		pb.fp = string(body)
	}
	return pb, nil
}

// subBody builds the request body (and content type) for a sub-batch of the
// original items — the whole batch on the first attempt, the un-streamed
// remainder on failover. The graph part is always re-sent in its original
// form, so an inline-graph batch never depends on the failover shard's
// registry.
func (pb *parsedBatch) subBody(indices []int) (string, []byte) {
	var items bytes.Buffer
	items.WriteByte('[')
	for i, idx := range indices {
		if i > 0 {
			items.WriteByte(',')
		}
		items.Write(pb.items[idx])
	}
	items.WriteByte(']')
	if pb.wireBlob != nil {
		body := make([]byte, 0, len(pb.wireBlob)+items.Len()+16)
		body = append(body, pb.wireBlob...)
		body = append(body, `{"items":`...)
		body = append(body, items.Bytes()...)
		body = append(body, '}')
		return "application/x-mia-wire", body
	}
	var body bytes.Buffer
	body.WriteByte('{')
	if pb.hash != "" {
		fmt.Fprintf(&body, `"hash":%q,`, pb.hash)
	} else if len(pb.graphJSON) > 0 {
		body.WriteString(`"graph":`)
		body.Write(pb.graphJSON)
		body.WriteByte(',')
	}
	body.WriteString(`"items":`)
	body.Write(items.Bytes())
	body.WriteByte('}')
	return "application/json", body.Bytes()
}

// handleBatch streams a batch through the replica chain. The happy path is
// a verbatim relay: result lines and the trailer are forwarded as the shard
// wrote them (byte parity with a direct batch). When the stream dies
// mid-batch the router fails over: the un-streamed items are re-admitted to
// the next replica as a sub-batch, returned line indices are rewritten to
// the original item indices, and the router synthesizes the single final
// trailer itself.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		errJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	pb, err := r.parseBatchBody(req, body)
	if err != nil {
		errJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	cands := r.candidates(pb.fp)

	st := &batchStream{w: w, r: r, total: len(pb.items), streamed: make([]bool, len(pb.items))}
	remaining := make([]int, len(pb.items))
	for i := range remaining {
		remaining[i] = i
	}

	var lastErr error
	var notFound *savedVerdict
	for attempt, url := range cands {
		if len(remaining) == 0 && st.headerSent {
			break
		}
		if attempt > 0 {
			if st.headerSent {
				r.met.batchFailovers.Add(1)
			}
			r.met.retries.Add(1)
			r.backoff(req.Context())
			if req.Context().Err() != nil {
				break
			}
		}
		contentType, subBody := pb.subBody(remaining)
		resp, err := r.forward(req.Context(), r.batchClient, url, "/v1/batch", req.URL.RawQuery, contentType, subBody)
		if err != nil {
			if req.Context().Err() == nil {
				r.markDown(url)
			}
			lastErr = err
			continue
		}
		if transientStatus(resp.StatusCode) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered %d", url, resp.StatusCode)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Pre-stream verdict (bad request, unknown hash, 429 shed). On
			// the first attempt it passes through verbatim — except a 404,
			// which is placement-dependent (a bounded-load-reordered shard
			// outside the replica set never got the image) and continues
			// the walk like handleUnary. Mid-failover the client already
			// holds streamed lines, so the only legal ending is a truncated
			// trailer.
			if !st.headerSent {
				if resp.StatusCode == http.StatusNotFound {
					notFound = saveVerdict(resp)
					resp.Body.Close()
					lastErr = fmt.Errorf("shard %s answered 404", url)
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					r.met.shed.Add(1)
				}
				copyResponse(w, resp)
				resp.Body.Close()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("failover shard %s answered %d", url, resp.StatusCode)
			continue
		}
		done, err := st.relay(resp.Body, remaining)
		resp.Body.Close()
		if done {
			return // trailer delivered (relayed verbatim or synthesized complete)
		}
		if err != nil {
			if req.Context().Err() == nil {
				r.markDown(url) // the shard died or drained under the stream
			}
			lastErr = err
		}
		remaining = st.notStreamed()
		if req.Context().Err() != nil {
			break // client gone or deadline: stop failing over, end the stream
		}
	}

	if !st.headerSent && notFound != nil {
		notFound.replay(w)
		return
	}
	r.met.noShard.Add(1)
	if !st.headerSent {
		msg := "no shard available"
		if lastErr != nil {
			msg += ": " + lastErr.Error()
		}
		errJSON(w, http.StatusBadGateway, msg)
		return
	}
	st.writeTrailer(true, "shard failed")
}

// batchStream tracks one client-facing batch response across shard
// attempts: which original items have had their line streamed, whether the
// 200 header is out, and the single-trailer guarantee.
type batchStream struct {
	w           http.ResponseWriter
	r           *Router
	total       int
	streamed    []bool
	completed   int
	headerSent  bool
	trailerSent bool
}

// notStreamed returns the original indices still owed to the client.
func (st *batchStream) notStreamed() []int {
	var out []int
	for i, s := range st.streamed {
		if !s {
			out = append(out, i)
		}
	}
	return out
}

// relay copies one shard's NDJSON stream to the client, rewriting line
// indices through the sub-batch mapping. It returns done=true once the
// client-facing response is complete (trailer written). A shard trailer
// only finishes the batch when this attempt covered every remaining item
// and nothing was truncated; a truncated shard trailer (that shard began
// draining mid-batch) is swallowed and the un-streamed items fail over.
func (st *batchStream) relay(stream io.Reader, mapping []int) (bool, error) {
	flusher, _ := st.w.(http.Flusher)
	if !st.headerSent {
		st.headerSent = true
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
	}
	verbatim := len(mapping) == st.total // first attempt: indices line up, relay untouched
	dec := json.NewDecoder(stream)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return false, errors.New("shard stream ended without a trailer")
			}
			return false, err
		}
		var probe struct {
			Done      *bool `json:"done"`
			Index     *int  `json:"index"`
			Truncated bool  `json:"truncated"`
			Completed int   `json:"completed"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return false, err
		}
		switch {
		case probe.Done != nil && *probe.Done:
			if !probe.Truncated && st.completed == st.total && verbatim {
				// Whole batch served by one shard: its trailer is the
				// client's trailer, byte for byte.
				st.writeRaw(append(raw, '\n'), flusher)
				st.trailerSent = true
				return true, nil
			}
			if !probe.Truncated && st.completed == st.total {
				st.writeTrailer(false, "")
				return true, nil
			}
			// Truncated sub-batch (the shard drained or timed out under
			// us): not an error on the wire, but the batch is unfinished —
			// fail the remainder over.
			return false, fmt.Errorf("shard truncated sub-batch after %d lines", probe.Completed)
		case probe.Index != nil:
			sub := *probe.Index
			if sub < 0 || sub >= len(mapping) {
				return false, fmt.Errorf("shard returned out-of-range line index %d", sub)
			}
			orig := mapping[sub]
			if st.streamed[orig] {
				// Never forward a duplicate: the no-dup guarantee outranks
				// a misbehaving shard.
				continue
			}
			st.streamed[orig] = true
			st.completed++
			st.r.met.linesStreamed.Add(1)
			if verbatim {
				st.writeRaw(append(raw, '\n'), flusher)
			} else {
				st.writeRaw(append(rewriteIndex(raw, orig), '\n'), flusher)
			}
		default:
			return false, errors.New("shard line is neither a result nor a trailer")
		}
	}
}

// writeRaw writes one NDJSON line and flushes it (failover batches are
// long-lived streams; latency beats syscall coalescing here).
func (st *batchStream) writeRaw(line []byte, flusher http.Flusher) {
	st.w.Write(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// writeTrailer synthesizes the single client-facing trailer. Exactly one
// trailer per batch response is a protocol guarantee, so the sent flag is
// checked even on the failure paths.
func (st *batchStream) writeTrailer(truncated bool, reason string) {
	if st.trailerSent {
		return
	}
	st.trailerSent = true
	t := struct {
		Done      bool   `json:"done"`
		Items     int    `json:"items"`
		Completed int    `json:"completed"`
		Truncated bool   `json:"truncated"`
		Reason    string `json:"reason,omitempty"`
	}{Done: true, Items: st.total, Completed: st.completed, Truncated: truncated || st.completed < st.total}
	if t.Truncated {
		t.Reason = reason
		if t.Reason == "" {
			t.Reason = "interrupted"
		}
	}
	b, _ := json.Marshal(&t)
	flusher, _ := st.w.(http.Flusher)
	st.writeRaw(append(b, '\n'), flusher)
}

// rewriteIndex maps a result line's "index" field from sub-batch to
// original numbering by splicing the digits: every shard result line
// starts with the fixed prefix {"index":N, (the shard marshals the struct
// field order), so the rewrite is a prefix swap, not a re-marshal — the
// rest of the line, result bytes included, passes through untouched.
func rewriteIndex(line json.RawMessage, orig int) []byte {
	const prefix = `{"index":`
	if len(line) > len(prefix) && string(line[:len(prefix)]) == prefix {
		i := len(prefix)
		for i < len(line) && line[i] >= '0' && line[i] <= '9' {
			i++
		}
		if i > len(prefix) {
			out := make([]byte, 0, len(line)+4)
			out = append(out, prefix...)
			out = strconv.AppendInt(out, int64(orig), 10)
			out = append(out, line[i:]...)
			return out
		}
	}
	// Unexpected shape: fall back to a decode/re-encode of just the index.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err == nil {
		m["index"] = json.RawMessage(strconv.Itoa(orig))
		if b, err := json.Marshal(m); err == nil {
			return b
		}
	}
	return line
}
