// Package shard is the multi-node half of the serving tier: a deterministic
// consistent-hash ring that maps graph fingerprints to shard replicas, and
// an HTTP router that fronts a fleet of miaserve shards speaking the
// existing wire+batch protocol.
//
// The placement goal is residency, not balance alone: a shard that has
// served a fingerprint holds its compiled engine.Image and the warm
// analyzer checkpoints for it, so repeat traffic for the same graph must
// keep landing on the same shard (and, for failover, on the same successor)
// for the single-node warm-path economics to survive scale-out. A
// consistent-hash ring gives exactly that: the mapping depends only on the
// member set and the fingerprint, adding or removing one shard remaps only
// the keys that shard owned, and every router (or shard-aware client)
// computing the ring over the same member list lands on the same shard
// without coordination.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member used when a Ring is
// built with vnodes <= 0. 64 points per member keeps the expected load
// imbalance of a small fleet within a few percent while the ring stays tiny
// (a 16-shard ring is 1024 points, one binary search per lookup).
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a set of member
// identifiers (for the router: shard base URLs). Construction is
// deterministic — same members, same vnodes, same ring — and lookups are
// goroutine-safe.
type Ring struct {
	members []string
	vnodes  int
	points  []point // sorted by hash
}

// point is one virtual node: a position on the 64-bit ring owned by a
// member.
type point struct {
	hash   uint64
	member int32
}

// hash64 maps a string onto the ring. SHA-256 (truncated to 64 bits) rather
// than a fast non-cryptographic hash: ring placement must be stable across
// processes, architectures, and releases — it is part of the serving
// protocol, like the graph fingerprints it routes, which use the same
// digest.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// NewRing builds a ring over members with the given virtual-node count per
// member (vnodes <= 0 means DefaultVnodes). Duplicate members are
// collapsed; order of the input slice does not affect placement. NewRing
// panics on an empty member set — a ring with no members cannot answer any
// lookup, so constructing one is a configuration bug, not a runtime
// condition.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		panic("shard: NewRing needs at least one member")
	}
	// Sort the member list so the member→index assignment (and therefore the
	// ring) is independent of configuration order.
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   hash64(m + "#" + strconv.Itoa(v)),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare at 64 bits) break by member index so
		// the ring stays a deterministic function of the member set.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member set in canonical (sorted) order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Order returns every member in the key's ring-walk order: the member
// owning the first point clockwise of hash(key), then each subsequent
// distinct member. The first element is the key's primary, the second its
// replication successor, and the tail is the deterministic failover
// sequence — a router that exhausts the list has tried the whole fleet.
func (r *Ring) Order(key string) []string {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Replicas returns the first n members of Order(key) — the key's replica
// set. n past the member count is truncated.
func (r *Ring) Replicas(key string, n int) []string {
	ord := r.Order(key)
	if n < len(ord) {
		ord = ord[:n]
	}
	return ord
}

// OrderBounded is the bounded-load variant of Order: members accepted by
// the ok predicate (healthy, under the load bound) keep their ring order
// and come first; rejected members follow, also in ring order, as the
// last-resort tail. The full member list is always returned — bounded-load
// placement may *prefer* an underloaded shard, but a router that refuses to
// try an overloaded shard when every other one is dead has converted an
// overload signal into an outage.
func (r *Ring) OrderBounded(key string, ok func(member string) bool) []string {
	ord := r.Order(key)
	out := make([]string, 0, len(ord))
	var rest []string
	for _, m := range ord {
		if ok(m) {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	return append(out, rest...)
}

// WithinBound reports whether a member carrying load is within the
// bounded-load criterion c·(total+1)/members (the "consistent hashing with
// bounded loads" cap): admitting one more request onto it keeps it below c
// times the fleet's mean load. c <= 1 is treated as the canonical 1.25.
func WithinBound(load, total, members int, c float64) bool {
	if members <= 0 {
		return false
	}
	if c <= 1 {
		c = 1.25
	}
	cap := math.Ceil(c * float64(total+1) / float64(members))
	return float64(load+1) <= cap
}
