package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeShard is a scripted shard: it answers /v1/batch by emitting result
// lines for the items it receives (echoing each item's "tag" so tests can
// prove which evaluation produced a line), optionally dying after a set
// number of lines. It keeps the real protocol's framing — NDJSON lines,
// one trailer — so the router under test cannot tell it from miaserve.
type fakeShard struct {
	name     string
	dieAfter int32 // kill the connection after this many lines (<0: never)
	batches  atomic.Int32
	analyzes atomic.Int32
	healthy  atomic.Bool
	ts       *httptest.Server
}

type fakeItem struct {
	Tag string `json:"tag"`
}

func newFakeShard(t *testing.T, name string, dieAfter int32) *fakeShard {
	t.Helper()
	f := &fakeShard{name: name, dieAfter: dieAfter}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		f.analyzes.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"hash":"h","servedBy":%q}`, f.name)
	})
	mux.HandleFunc("POST /v1/reschedule", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"servedBy":%q}`, f.name)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		f.batches.Add(1)
		var req struct {
			Hash  string     `json:"hash"`
			Items []fakeItem `json:"items"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher := w.(http.Flusher)
		die := f.dieAfter
		for i, it := range req.Items {
			if die >= 0 && int32(i) >= die {
				// Simulate a crash mid-batch: abort the connection without
				// a trailer. Panicking with ErrAbortHandler kills just this
				// response.
				panic(http.ErrAbortHandler)
			}
			fmt.Fprintf(w, `{"index":%d,"status":200,"result":{"tag":%q,"by":%q}}`+"\n", i, it.Tag, f.name)
			flusher.Flush()
		}
		fmt.Fprintf(w, `{"done":true,"items":%d,"completed":%d,"truncated":false}`+"\n", len(req.Items), len(req.Items))
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	cfg.Backoff = time.Millisecond // keep failover tests fast
	r, err := NewRouter(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// shardFor returns the fake shard owning the given ring position.
func shardFor(shards []*fakeShard, url string) *fakeShard {
	for _, f := range shards {
		if f.ts.URL == url {
			return f
		}
	}
	return nil
}

func batchBody(hash string, n int) string {
	items := make([]string, n)
	for i := range items {
		items[i] = fmt.Sprintf(`{"tag":"item-%d"}`, i)
	}
	return fmt.Sprintf(`{"hash":%q,"items":[%s]}`, hash, strings.Join(items, ","))
}

// TestRouterBatchFailoverNoDupNoLoss is the protocol-level failover
// contract: the primary dies mid-batch after streaming some lines, and the
// client still receives every item's line exactly once — the un-streamed
// remainder re-admitted to the successor, indices mapped back — plus
// exactly one untruncated trailer.
func TestRouterBatchFailoverNoDupNoLoss(t *testing.T) {
	shards := []*fakeShard{
		newFakeShard(t, "a", -1),
		newFakeShard(t, "b", -1),
		newFakeShard(t, "c", -1),
	}
	urls := []string{shards[0].ts.URL, shards[1].ts.URL, shards[2].ts.URL}
	r := newTestRouter(t, Config{Targets: urls, Replicas: 2, Retries: 3})

	const hash, n = "deadbeef", 7
	order := r.ring.Order(hash)
	primary := shardFor(shards, order[0])
	successor := shardFor(shards, order[1])
	primary.dieAfter = 3 // stream 3 lines, then crash

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batchBody(hash, n)))
	r.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("batch through failing primary: %d (%s)", rr.Code, rr.Body.String())
	}

	lines := strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n")
	seen := make(map[int]string, n)
	trailers := 0
	for _, l := range lines {
		var v struct {
			Done      bool                      `json:"done"`
			Truncated bool                      `json:"truncated"`
			Completed int                       `json:"completed"`
			Items     int                       `json:"items"`
			Index     int                       `json:"index"`
			Status    int                       `json:"status"`
			Result    *struct{ Tag, By string } `json:"result"`
		}
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		if v.Done {
			trailers++
			if v.Truncated || v.Completed != n || v.Items != n {
				t.Errorf("trailer %s, want untruncated %d/%d", l, n, n)
			}
			continue
		}
		if _, dup := seen[v.Index]; dup {
			t.Errorf("index %d delivered twice", v.Index)
		}
		if want := fmt.Sprintf("item-%d", v.Index); v.Result == nil || v.Result.Tag != want {
			t.Errorf("index %d carries result %+v, want tag %q", v.Index, v.Result, want)
		}
		seen[v.Index] = v.Result.By
	}
	if trailers != 1 {
		t.Fatalf("%d trailers, want exactly 1", trailers)
	}
	if len(seen) != n {
		t.Fatalf("%d distinct result lines, want %d (lost items)", len(seen), n)
	}
	// The split must actually have crossed shards: some lines from the
	// primary (before the crash), the rest from the successor.
	fromPrimary, fromSuccessor := 0, 0
	for _, by := range seen {
		switch by {
		case primary.name:
			fromPrimary++
		case successor.name:
			fromSuccessor++
		}
	}
	if fromPrimary == 0 || fromSuccessor == 0 {
		t.Errorf("lines split primary=%d successor=%d, want both > 0 (failover did not engage)", fromPrimary, fromSuccessor)
	}
	if got := r.met.batchFailovers.Load(); got < 1 {
		t.Errorf("batch_failovers = %d, want >= 1", got)
	}
}

// TestRouterBatchAllShardsDead: when every replica attempt fails after the
// stream started, the router still ends the response with exactly one
// truncated trailer.
func TestRouterBatchAllShardsDead(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "a", -1), newFakeShard(t, "b", -1)}
	urls := []string{shards[0].ts.URL, shards[1].ts.URL}
	r := newTestRouter(t, Config{Targets: urls, Replicas: 2, Retries: 2})

	const hash = "feedface"
	shards[0].dieAfter = 2
	shards[1].dieAfter = 0 // successor dies before producing anything

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batchBody(hash, 5)))
	r.Handler().ServeHTTP(rr, req)

	lines := strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n")
	trailers := 0
	var last struct {
		Done      bool   `json:"done"`
		Truncated bool   `json:"truncated"`
		Reason    string `json:"reason"`
		Completed int    `json:"completed"`
	}
	for _, l := range lines {
		var v struct {
			Done bool `json:"done"`
		}
		json.Unmarshal([]byte(l), &v)
		if v.Done {
			trailers++
			json.Unmarshal([]byte(l), &last)
		}
	}
	if trailers != 1 {
		t.Fatalf("%d trailers, want exactly 1 (body %s)", trailers, rr.Body.String())
	}
	if !last.Truncated || last.Reason != "shard failed" {
		t.Errorf("trailer %+v, want truncated with reason \"shard failed\"", last)
	}
	if got := r.met.noShard.Load(); got != 1 {
		t.Errorf("no_shard = %d, want 1", got)
	}
}

// TestRouterUnaryRetryOnDeadShard: a dead primary's unary request lands on
// the successor after a retry, and the dead shard is passively marked down.
func TestRouterUnaryRetryOnDeadShard(t *testing.T) {
	live := newFakeShard(t, "live", -1)
	dead := newFakeShard(t, "dead", -1)
	dead.ts.Close() // connection refused from the start
	r := newTestRouter(t, Config{Targets: []string{live.ts.URL, dead.ts.URL}, Replicas: 2, Retries: 2})

	// Drive enough distinct keys that some route to the dead primary.
	served := 0
	for i := 0; i < 8; i++ {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/reschedule",
			strings.NewReader(fmt.Sprintf(`{"hash":"k%d","swaps":[]}`, i)))
		r.Handler().ServeHTTP(rr, req)
		if rr.Code == http.StatusOK {
			served++
		}
	}
	if served != 8 {
		t.Errorf("%d of 8 requests served with one dead shard, want all (retry failed)", served)
	}
	if r.targets[dead.ts.URL].healthy.Load() {
		t.Errorf("dead shard still marked healthy after connection failures")
	}
	if got := r.met.retries.Load(); got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
}

// notFoundShard answers every API request with the shard's 404 verdict, as
// a shard outside a fingerprint's replica set does for hash-routed work.
func notFoundShard(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown graph hash"}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRouter404ContinuesRingWalk: a 404 is placement-dependent (bounded-load
// reordering can try a shard that never got the image first), so the router
// must keep walking the ring instead of passing it through — and replay the
// 404 only when every candidate returns it.
func TestRouter404ContinuesRingWalk(t *testing.T) {
	missing := notFoundShard(t)
	knowing := newFakeShard(t, "knowing", -1)
	urls := []string{missing.URL, knowing.ts.URL}
	r := newTestRouter(t, Config{Targets: urls, Replicas: 2, Retries: 2})

	// Pin a fingerprint whose ring primary is the 404-ing shard, so the walk
	// is guaranteed to start there.
	fp := ""
	for i := 0; fp == ""; i++ {
		cand := fmt.Sprintf("fp-%d", i)
		if r.ring.Order(cand)[0] == missing.URL {
			fp = cand
		}
	}

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/reschedule", strings.NewReader(`{"hash":"h","swaps":[]}`))
	req.Header.Set("X-Mia-Fingerprint", fp)
	r.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "knowing") {
		t.Errorf("reschedule with a 404 primary: %d (%s), want 200 from the knowing shard", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batchBody("h", 3)))
	req.Header.Set("X-Mia-Fingerprint", fp)
	r.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK || strings.Count(rr.Body.String(), `"status":200`) != 3 {
		t.Errorf("batch with a 404 primary: %d (%s), want 3 result lines from the knowing shard", rr.Code, rr.Body.String())
	}

	// All candidates 404 → the shard verdict is replayed, not a 502.
	allMissing := newTestRouter(t, Config{Targets: []string{missing.URL}})
	rr = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/reschedule", strings.NewReader(`{"hash":"h","swaps":[]}`))
	allMissing.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound || !strings.Contains(rr.Body.String(), "unknown graph hash") {
		t.Errorf("all-404 fleet: %d (%s), want the shard's 404 replayed", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batchBody("h", 3)))
	allMissing.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound || !strings.Contains(rr.Body.String(), "unknown graph hash") {
		t.Errorf("all-404 fleet batch: %d (%s), want the shard's 404 replayed", rr.Code, rr.Body.String())
	}
}

// TestRouterReplicatesAnalyze: a successful analyze is re-posted to the
// successor, so both replicas of the fingerprint's set register the image.
func TestRouterReplicatesAnalyze(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "a", -1), newFakeShard(t, "b", -1), newFakeShard(t, "c", -1)}
	urls := []string{shards[0].ts.URL, shards[1].ts.URL, shards[2].ts.URL}
	r := newTestRouter(t, Config{Targets: urls, Replicas: 2, Retries: 3})

	body := `{"cores":1,"banks":1}` // fake shards accept anything
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(body))
	req.Header.Set("X-Mia-Fingerprint", "pinned-fp")
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze: %d (%s)", rr.Code, rr.Body.String())
	}

	order := r.ring.Order("pinned-fp")
	if got := shardFor(shards, order[0]).analyzes.Load(); got != 1 {
		t.Errorf("primary analyzes = %d, want 1", got)
	}
	if got := shardFor(shards, order[1]).analyzes.Load(); got != 1 {
		t.Errorf("successor analyzes = %d, want 1 (replication)", got)
	}
	if got := shardFor(shards, order[2]).analyzes.Load(); got != 0 {
		t.Errorf("third shard analyzes = %d, want 0 (outside the replica set)", got)
	}
	if got := r.met.replications.Load(); got != 1 {
		t.Errorf("replications = %d, want 1", got)
	}
}

// TestRouterHealthEndpoints: the router's own healthz tracks the fleet, and
// CheckHealth recovers a passively down-marked shard.
func TestRouterHealthEndpoints(t *testing.T) {
	f := newFakeShard(t, "only", -1)
	r := newTestRouter(t, Config{Targets: []string{f.ts.URL}})

	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz with healthy fleet: %d", rr.Code)
	}

	r.markDown(f.ts.URL)
	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with fleet down: %d, want 503", rr.Code)
	}

	r.CheckHealth(context.Background())
	if !r.targets[f.ts.URL].healthy.Load() {
		t.Errorf("health probe did not recover the shard")
	}

	f.healthy.Store(false) // shard now reports draining
	r.CheckHealth(context.Background())
	if r.targets[f.ts.URL].healthy.Load() {
		t.Errorf("health probe kept a draining shard marked up")
	}

	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"targets"`) {
		t.Errorf("metrics: %d body %s", rr.Code, rr.Body.String())
	}
}

// TestRewriteIndex pins the splice: only the index digits change, every
// other byte passes through.
func TestRewriteIndex(t *testing.T) {
	cases := []struct{ in, want string }{
		{`{"index":0,"status":200,"result":{"x":1}}`, `{"index":42,"status":200,"result":{"x":1}}`},
		{`{"index":17,"status":400,"error":"bad"}`, `{"index":42,"status":400,"error":"bad"}`},
	}
	for _, tc := range cases {
		if got := string(rewriteIndex([]byte(tc.in), 42)); got != tc.want {
			t.Errorf("rewriteIndex(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}
