package explore

import (
	"context"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// badOrderGraph builds a 1-core graph whose default order is deliberately
// overridden to a poor one: a long task with a distant consumer scheduled
// first would be better last.
func badOrderGraph(t testing.TB) *model.Graph {
	t.Helper()
	b := model.NewBuilder(2, 1)
	// Core 0 runs three independent tasks; core 1 runs a consumer of "a".
	a := b.AddTask(model.TaskSpec{Name: "a", WCET: 10, Core: 0, Local: 2})
	x := b.AddTask(model.TaskSpec{Name: "x", WCET: 50, Core: 0, Local: 2})
	y := b.AddTask(model.TaskSpec{Name: "y", WCET: 50, Core: 0, Local: 2})
	c := b.AddTask(model.TaskSpec{Name: "c", WCET: 30, Core: 1, Local: 2})
	b.AddEdge(a, c, 1)
	// Worst order: a last → c waits 110 before starting.
	b.SetOrder(0, []model.TaskID{x, y, a})
	return b.MustBuild()
}

func TestHillClimbImproves(t *testing.T) {
	g := badOrderGraph(t)
	res, err := HillClimb(context.Background(), g, Options{})
	if err != nil {
		t.Fatalf("HillClimb: %v", err)
	}
	if res.Improved >= res.Initial {
		t.Fatalf("no improvement: %d → %d", res.Initial, res.Improved)
	}
	// Optimal: a first (finish 10), c runs [10,40+I), x/y fill core 0 —
	// makespan near 110.
	if res.Improved > 115 {
		t.Errorf("improved makespan %d, expected ≈110", res.Improved)
	}
	// The reported best graph must actually achieve the reported makespan.
	check, err := incremental.Schedule(res.Best, sched.Options{})
	if err != nil {
		t.Fatalf("best graph unschedulable: %v", err)
	}
	if check.Makespan != res.Improved {
		t.Fatalf("best graph makespan %d, reported %d", check.Makespan, res.Improved)
	}
	if res.Gain() <= 0 {
		t.Errorf("gain = %.1f%%", res.Gain())
	}
}

func TestHillClimbRespectsDependencies(t *testing.T) {
	// Same-core dependency chain: no swap may break it; search must not
	// corrupt the order.
	b := model.NewBuilder(1, 1)
	p := b.AddTask(model.TaskSpec{Name: "p", WCET: 10, Local: 1})
	q := b.AddTask(model.TaskSpec{Name: "q", WCET: 10, Local: 1})
	r := b.AddTask(model.TaskSpec{Name: "r", WCET: 10, Local: 1})
	b.AddEdge(p, q, 1)
	b.AddEdge(q, r, 1)
	g := b.MustBuild()
	res, err := HillClimb(context.Background(), g, Options{})
	if err != nil {
		t.Fatalf("HillClimb: %v", err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("search corrupted the order: %v", err)
	}
	if res.Improved != res.Initial {
		t.Errorf("fully-ordered chain cannot improve: %d → %d", res.Initial, res.Improved)
	}
}

func TestAnnealImproves(t *testing.T) {
	g := badOrderGraph(t)
	res, err := Anneal(context.Background(), g, Options{Seed: 3, MaxEvaluations: 400})
	if err != nil {
		t.Fatalf("Anneal: %v", err)
	}
	if res.Improved >= res.Initial {
		t.Fatalf("no improvement: %d → %d", res.Initial, res.Improved)
	}
	check, err := incremental.Schedule(res.Best, sched.Options{})
	if err != nil {
		t.Fatalf("best graph unschedulable: %v", err)
	}
	if check.Makespan != res.Improved {
		t.Fatalf("best graph makespan %d, reported %d", check.Makespan, res.Improved)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g := badOrderGraph(t)
	a, err := Anneal(context.Background(), g, Options{Seed: 7, MaxEvaluations: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(context.Background(), g, Options{Seed: 7, MaxEvaluations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if a.Improved != b.Improved || a.Evaluations != b.Evaluations {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestBudgetRespected(t *testing.T) {
	p := gen.NewParams(6, 8)
	p.Cores, p.Banks = 4, 4
	g := gen.MustLayered(p)
	res, err := Anneal(context.Background(), g, Options{Seed: 1, MaxEvaluations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 50 {
		t.Fatalf("evaluations = %d, budget 50", res.Evaluations)
	}
}

func TestSearchOnPaperWorkload(t *testing.T) {
	// End-to-end on a layered benchmark DAG: the search must terminate,
	// never worsen, and the result must stay valid.
	p := gen.NewParams(5, 8)
	p.Cores, p.Banks = 4, 2
	g := gen.MustLayered(p)
	res, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Improved > res.Initial {
		t.Fatalf("hill climbing worsened: %d → %d", res.Initial, res.Improved)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	sres, err := incremental.Schedule(res.Best, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Check(res.Best, sched.Options{}, sres); err != nil {
		t.Fatal(err)
	}
}

// equalMoves compares two visit orders element by element.
func equalMoves(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHillClimbJobsInvariant is the exploration half of the -jobs
// determinism guarantee: the parallel neighborhood evaluation must reproduce
// the sequential search exactly — same final makespan, same evaluation
// count, and the same accepted moves in the same order.
func TestHillClimbJobsInvariant(t *testing.T) {
	p := gen.NewParams(5, 8)
	p.Cores, p.Banks = 4, 2
	g := gen.MustLayered(p)
	ref, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 300, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Moves) == 0 {
		t.Fatal("reference search accepted no moves; test would be vacuous")
	}
	for _, jobs := range []int{4, 8} {
		got, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 300, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got.Improved != ref.Improved || got.Evaluations != ref.Evaluations {
			t.Errorf("jobs=%d: makespan %d evals %d, sequential %d/%d",
				jobs, got.Improved, got.Evaluations, ref.Improved, ref.Evaluations)
		}
		if !equalMoves(got.Moves, ref.Moves) {
			t.Errorf("jobs=%d: visit order %v, sequential %v", jobs, got.Moves, ref.Moves)
		}
	}
}

// TestAnnealRestartsJobsInvariant checks the multi-chain reduce: with the
// same seed and restart count, every jobs level must elect the same winning
// chain — identical best makespan, identical walk, and an evaluation total
// summed over all chains.
func TestAnnealRestartsJobsInvariant(t *testing.T) {
	g := badOrderGraph(t)
	opts := Options{Seed: 7, MaxEvaluations: 150, Restarts: 4}
	o1 := opts
	o1.Jobs = 1
	ref, err := Anneal(context.Background(), g, o1)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{4, 8} {
		o := opts
		o.Jobs = jobs
		got, err := Anneal(context.Background(), g, o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got.Improved != ref.Improved || got.Evaluations != ref.Evaluations {
			t.Errorf("jobs=%d: makespan %d evals %d, sequential %d/%d",
				jobs, got.Improved, got.Evaluations, ref.Improved, ref.Evaluations)
		}
		if !equalMoves(got.Moves, ref.Moves) {
			t.Errorf("jobs=%d: winning walk differs from sequential run", jobs)
		}
	}
	// The total must count every chain's work, not just the winner's.
	solo := opts
	solo.Restarts, solo.Jobs = 1, 1
	one, err := Anneal(context.Background(), g, solo)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Evaluations <= one.Evaluations {
		t.Errorf("4-restart total %d not greater than single-chain %d",
			ref.Evaluations, one.Evaluations)
	}
}

func TestInputGraphUntouched(t *testing.T) {
	g := badOrderGraph(t)
	before := append([]model.TaskID(nil), g.Order(0)...)
	if _, err := HillClimb(context.Background(), g, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(context.Background(), g, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := g.Order(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("search mutated the input graph")
		}
	}
}
