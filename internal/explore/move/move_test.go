package move

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" backend
)

func testEngine() *engine.Engine { return engine.MustNew(engine.Incremental) }

// twoCoreGraph builds a small 2-core graph with reorderable tasks on both
// cores and one cross-core edge.
func twoCoreGraph(t testing.TB) *model.Graph {
	t.Helper()
	b := model.NewBuilder(2, 2)
	a := b.AddTask(model.TaskSpec{Name: "a", WCET: 10, Core: 0, Local: 4})
	x := b.AddTask(model.TaskSpec{Name: "x", WCET: 50, Core: 0, Local: 3})
	y := b.AddTask(model.TaskSpec{Name: "y", WCET: 50, Core: 0, Local: 2})
	c := b.AddTask(model.TaskSpec{Name: "c", WCET: 30, Core: 1, Local: 2})
	d := b.AddTask(model.TaskSpec{Name: "d", WCET: 20, Core: 1, Local: 5})
	b.AddEdge(a, c, 7)
	_ = d
	b.SetOrder(0, []model.TaskID{x, y, a})
	return b.MustBuild()
}

func compile(t testing.TB, g *model.Graph) *engine.Image {
	t.Helper()
	img, err := engine.Compile(g, sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return img
}

// identical asserts two schedules match bit-for-bit, per-bank splits
// included.
func identical(t *testing.T, label string, got, want *sched.Result) {
	t.Helper()
	if d := got.Diff(want); d != "" {
		t.Fatalf("%s: schedules diverge: %s", label, d)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %d vs %d", label, got.Makespan, want.Makespan)
	}
	for i := range got.Interference {
		if got.Interference[i] != want.Interference[i] {
			t.Fatalf("%s: task %d interference %d vs %d", label, i, got.Interference[i], want.Interference[i])
		}
		for bk := range got.PerBank[i] {
			if got.PerBank[i][bk] != want.PerBank[i][bk] {
				t.Fatalf("%s: task %d bank %d: %d vs %d", label, i, bk, got.PerBank[i][bk], want.PerBank[i][bk])
			}
		}
	}
}

// TestJournalInterleavedDivergenceErrors is the regression test for the old
// explorer's silent-divergence failure mode: interleaving apply, undo, and
// accept out of LIFO discipline must surface a clear error, never mutate
// state behind the search's back.
func TestJournalInterleavedDivergenceErrors(t *testing.T) {
	img := compile(t, twoCoreGraph(t))
	ev := NewEvaluator(img, testEngine(), false)
	defer ev.Close()
	st := ev.State()
	fp0 := st.Fingerprint()

	m1 := Swap{Core: 0, Pos: 0}
	m2 := Swap{Core: 0, Pos: 1}
	if err := st.Apply(m1); err != nil {
		t.Fatalf("Apply(m1): %v", err)
	}
	if err := st.Apply(m2); err != nil {
		t.Fatalf("Apply(m2): %v", err)
	}

	// Undoing m1 under m2 is out of order: the overlay has diverged from
	// what an m1-undo would assume.
	err := st.Undo(m1)
	if err == nil {
		t.Fatal("Undo out of LIFO order succeeded")
	}
	if !strings.Contains(err.Error(), "out of order") || !strings.Contains(err.Error(), m2.String()) {
		t.Errorf("undo error does not name the divergence: %v", err)
	}

	// Accepting a third move over the two pending ones is exactly the old
	// eager-rebase divergence bug; it must be refused.
	err = ev.Accept(context.Background(), Swap{Core: 1, Pos: 0})
	if err == nil {
		t.Fatal("Accept over pending moves succeeded")
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Errorf("accept error does not mention pending moves: %v", err)
	}

	// Committing the wrong move is refused too.
	if err := st.Commit(m1); err == nil {
		t.Fatal("Commit out of LIFO order succeeded")
	}

	// Proper LIFO unwind restores the initial configuration exactly.
	if err := st.Undo(m2); err != nil {
		t.Fatalf("Undo(m2): %v", err)
	}
	if err := st.Undo(m1); err != nil {
		t.Fatalf("Undo(m1): %v", err)
	}
	if err := st.Undo(m1); err == nil {
		t.Fatal("Undo on empty journal succeeded")
	} else if !strings.Contains(err.Error(), "journal is empty") {
		t.Errorf("empty-journal undo error unclear: %v", err)
	}
	if got := st.Fingerprint(); got != fp0 {
		t.Fatalf("fingerprint after unwind %s, want %s", got, fp0)
	}

	// And the state is still fully usable: accept a real move.
	if err := ev.Accept(context.Background(), m1); err != nil {
		t.Fatalf("Accept after recovery: %v", err)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending after accept = %d", st.Pending())
	}
}

// TestMoveApplyBoundsErrors checks every malformed move is rejected without
// touching the state.
func TestMoveApplyBoundsErrors(t *testing.T) {
	img := compile(t, twoCoreGraph(t))
	ev := NewEvaluator(img, testEngine(), false)
	defer ev.Close()
	st := ev.State()
	fp0 := st.Fingerprint()

	bad := []Move{
		Swap{Core: 9, Pos: 0},
		Swap{Core: 0, Pos: 2}, // core 0 has 3 tasks: pos 2 has no right neighbor
		Swap{Core: 0, Pos: -1},
		Remap{Task: 99, To: 1, At: 0},
		Remap{Task: 0, To: 9, At: 0},
		Remap{Task: 0, To: 0, At: 0}, // already on core 0
		Remap{Task: 0, To: 1, At: 5}, // core 1 has 2 tasks
		SetPolicy{Policy: Policy(42)},
	}
	for _, mv := range bad {
		if err := st.Apply(mv); err == nil {
			t.Errorf("Apply(%v) succeeded, want error", mv)
		}
	}
	if st.Pending() != 0 {
		t.Fatalf("pending after rejected applies = %d", st.Pending())
	}
	if got := st.Fingerprint(); got != fp0 {
		t.Fatalf("rejected applies changed the state: %s vs %s", got, fp0)
	}
}

// TestMoveEvalLeavesStateUnchanged: the one-shot neighbor probe restores
// the state and matches a from-scratch analysis of the neighbor.
func TestMoveEvalLeavesStateUnchanged(t *testing.T) {
	ctx := context.Background()
	g := twoCoreGraph(t)
	img := compile(t, g)
	ev := NewEvaluator(img, testEngine(), false)
	defer ev.Close()
	base := ev.Evaluate(ctx)
	if !base.Valid() {
		t.Fatal("baseline unschedulable")
	}
	fp0 := ev.State().Fingerprint()

	mv := Swap{Core: 0, Pos: 1}
	got, err := ev.MoveEval(ctx, mv)
	if err != nil {
		t.Fatalf("MoveEval: %v", err)
	}
	if ev.State().Pending() != 0 || ev.State().Fingerprint() != fp0 {
		t.Fatal("MoveEval left the state changed")
	}

	// Oracle: same swap on a fresh graph, cold.
	g2 := g.Clone()
	g2.SwapOrder(0, 1)
	res, err := testEngine().Analyze(ctx, compile(t, g2))
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	identical(t, "swap neighbor", got.Res, res)
}

// TestRemapUndoDematerializes: applying a structural move materializes the
// graph; undoing it returns the state to the warm order-only path with the
// exact original fingerprint and demand state.
func TestRemapUndoDematerializes(t *testing.T) {
	img := compile(t, twoCoreGraph(t))
	ev := NewEvaluator(img, testEngine(), false)
	defer ev.Close()
	st := ev.State()
	fp0 := st.Fingerprint()

	mv := Remap{Task: 3, To: 0, At: 1} // task c → core 0
	if err := st.Apply(mv); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !st.Structural() {
		t.Fatal("remap did not mark the state structural")
	}
	if st.CoreOf(3) != 0 {
		t.Fatalf("task 3 on core %d, want 0", st.CoreOf(3))
	}
	if err := st.Undo(mv); err != nil {
		t.Fatalf("Undo: %v", err)
	}
	if st.Structural() {
		t.Fatal("state still structural after undoing the only structural move")
	}
	if got := st.Fingerprint(); got != fp0 {
		t.Fatalf("fingerprint after undo %s, want %s", got, fp0)
	}
	if st.CoreOf(3) != 1 {
		t.Fatalf("task 3 on core %d after undo, want 1", st.CoreOf(3))
	}
}

// TestSetPolicyUndoRestoresDemands: a bank-policy flip re-derives every
// demand vector; undoing restores the originals bit-for-bit (via the
// fingerprint, which hashes demands).
func TestSetPolicyUndoRestoresDemands(t *testing.T) {
	ctx := context.Background()
	g := twoCoreGraph(t) // built under the default per-core policy
	img := compile(t, g)
	ev := NewEvaluator(img, testEngine(), false)
	defer ev.Close()
	st := ev.State()
	fp0 := st.Fingerprint()

	mv := SetPolicy{Policy: Shared}
	if err := st.Apply(mv); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got := ev.Evaluate(ctx)
	if !got.Valid() {
		t.Fatal("shared-bank candidate unschedulable")
	}
	// Oracle: recompile the demands of a fresh clone under the shared
	// policy and analyze cold.
	g2 := g.Clone()
	g2.CompileDemands(model.SharedBank)
	res, err := testEngine().Analyze(ctx, compile(t, g2))
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	identical(t, "shared-bank candidate", got.Res, res)
	if st.Fingerprint() != g2.Fingerprint() {
		t.Fatalf("structural fingerprint %s, want oracle %s", st.Fingerprint(), g2.Fingerprint())
	}

	if err := st.Undo(mv); err != nil {
		t.Fatalf("Undo: %v", err)
	}
	if st.Structural() {
		t.Fatal("state still structural after undo")
	}
	if st.Fingerprint() != fp0 {
		t.Fatalf("fingerprint after undo %s, want %s", st.Fingerprint(), fp0)
	}
}

// TestAcceptStructuralRebindsImage: accepting a remap recompiles the edited
// graph and rebinds the evaluator, after which warm order-only evaluation
// continues over the new image.
func TestAcceptStructuralRebindsImage(t *testing.T) {
	ctx := context.Background()
	g := twoCoreGraph(t)
	img := compile(t, g)
	ev := NewEvaluator(img, testEngine(), false)
	defer ev.Close()

	mv := Remap{Task: 4, To: 0, At: 0} // independent task d → front of core 0
	if err := ev.Accept(ctx, mv); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if ev.Image() == img {
		t.Fatal("structural accept did not rebind the image")
	}
	if ev.State().Structural() {
		t.Fatal("state still structural after rebind")
	}
	if got := ev.Image().CoreOf[4]; got != 0 {
		t.Fatalf("rebased image maps task 4 to core %d, want 0", got)
	}
	got := ev.Evaluate(ctx)
	if !got.Valid() {
		t.Fatal("rebased baseline unschedulable")
	}
}

// remapCorpus is the 50-instance corpus of the remap warm-vs-cold proof:
// two layered shapes on two platform configurations, seeds rotating.
func remapCorpus() []gen.Params {
	shapes := [][2]int{{6, 4}, {4, 6}}
	var corpus []gen.Params
	for seed := int64(1); seed <= 25; seed++ {
		for si, sh := range shapes {
			p := gen.NewParams(sh[0], sh[1])
			p.Seed = seed
			p.Cores, p.Banks = 4, 4
			p.SharedBank = (seed+int64(si))%2 == 0
			corpus = append(corpus, p)
		}
	}
	return corpus
}

// layerOf recovers a generated task's layer from its ID (gen assigns IDs
// layer-major).
func layerOf(id model.TaskID, layerSize int) int { return int(id) / layerSize }

// layerInsertPos returns the position in order at which a task of layer l
// belongs, keeping the order layer-sorted (which keeps the layered graph
// trivially deadlock-free: every precedence crosses layers forward).
func layerInsertPos(order []model.TaskID, l, layerSize int) int {
	for i, id := range order {
		if layerOf(id, layerSize) > l {
			return i
		}
	}
	return len(order)
}

// TestRemapWarmRescheduleMatchesColdCorpus is the mapper/platform-edit
// proof over a 50-instance corpus: remap a task across cores through the
// move layer, accept it (recompile + rebind), then evaluate an adjacent
// swap through the rebased warm analyzer's Reschedule — and require both
// the remapped baseline and the warm-replayed neighbor to be bit-identical
// to cold analyses of independently edited graphs.
func TestRemapWarmRescheduleMatchesColdCorpus(t *testing.T) {
	ctx := context.Background()
	eng := testEngine()
	corpus := remapCorpus()
	if len(corpus) != 50 {
		t.Fatalf("corpus has %d instances, want 50", len(corpus))
	}
	for ci, p := range corpus {
		g := gen.MustLayered(p)
		label := fmt.Sprintf("corpus[%d] %dx%d seed=%d shared=%v", ci, p.Layers, p.LayerSize, p.Seed, p.SharedBank)
		img := compile(t, g)
		ev := NewEvaluator(img, eng, false)

		rng := rand.New(rand.NewSource(p.Seed * 101))
		// Pick a task and a different target core; insert layer-sorted so
		// the remapped instance stays acyclic and schedulable.
		task := model.TaskID(rng.Intn(img.NumTasks))
		to := model.CoreID(rng.Intn(img.Cores - 1))
		if to >= img.CoreOf[task] {
			to++
		}
		at := layerInsertPos(ev.State().Order(to), layerOf(task, p.LayerSize), p.LayerSize)
		mv := Remap{Task: task, To: to, At: at}

		// Oracle 1: the remapped instance, edited independently and
		// analyzed cold.
		g2 := g.Clone()
		tab := make([]model.BankID, g2.Cores)
		for k := range tab {
			tab[k] = g2.BankOf(model.CoreID(k))
		}
		from := g2.Task(task).Core
		fromPos := -1
		for i, id := range g2.Order(from) {
			if id == task {
				fromPos = i
			}
		}
		src := append([]model.TaskID(nil), g2.Order(from)...)
		g2.SetOrder(from, append(src[:fromPos:fromPos], src[fromPos+1:]...))
		dst := append([]model.TaskID(nil), g2.Order(to)[:at]...)
		dst = append(dst, task)
		dst = append(dst, g2.Order(to)[at:]...)
		g2.SetOrder(to, dst)
		g2.Task(task).Core = to
		g2.CompileDemands(func(k model.CoreID) model.BankID { return tab[k] })
		img2 := compile(t, g2)
		want, err := eng.Analyze(ctx, img2)
		if err != nil {
			t.Fatalf("%s: remapped oracle unschedulable: %v", label, err)
		}

		got, err := ev.MoveEval(ctx, mv)
		if err != nil {
			t.Fatalf("%s: MoveEval(%v): %v", label, mv, err)
		}
		if !got.Valid() {
			t.Fatalf("%s: remap candidate scored unschedulable", label)
		}
		identical(t, label+" remap candidate", got.Res, want)

		// Accept the remap: the evaluator recompiles and rebinds. The
		// rebased image must equal the oracle's edit.
		if err := ev.Accept(ctx, mv); err != nil {
			t.Fatalf("%s: Accept(%v): %v", label, mv, err)
		}
		if gotFP, wantFP := ev.Image().Fingerprint(), img2.Fingerprint(); gotFP != wantFP {
			t.Fatalf("%s: rebased image fingerprint %s, want %s", label, gotFP, wantFP)
		}
		// Re-establish the warm baseline on the rebased image so the next
		// probe goes through Reschedule, and cross-check it while at it.
		rebased := ev.Evaluate(ctx)
		if !rebased.Valid() {
			t.Fatalf("%s: rebased baseline unschedulable", label)
		}
		identical(t, label+" rebased baseline", rebased.Res, want)

		// Now an order move on the rebased image, evaluated through warm
		// Reschedule, against oracle 2: a cold analysis of the doubly
		// edited graph.
		swap, ok := legalSwap(g2, ev.State())
		if !ok {
			ev.Close()
			continue // no dependency-free adjacent pair in this instance
		}
		g3 := g2.Clone()
		g3.SwapOrder(swap.Core, swap.Pos)
		want2, oracleErr := eng.Analyze(ctx, compile(t, g3))
		got2, err := ev.MoveEval(ctx, swap)
		if err != nil {
			t.Fatalf("%s: MoveEval(%v): %v", label, swap, err)
		}
		if oracleErr != nil {
			// The swap deadlocks across cores: the warm path must agree
			// that the candidate is unschedulable.
			if got2.Valid() {
				t.Fatalf("%s: cold analysis deadlocks (%v) but warm replay produced a schedule", label, oracleErr)
			}
			ev.Close()
			continue
		}
		if !got2.Valid() {
			t.Fatalf("%s: swap candidate scored unschedulable", label)
		}
		identical(t, label+" warm swap after remap", got2.Res, want2)
		ev.Close()
	}
}

// legalSwap returns the first adjacent pair of st's orders not linked by a
// direct dependency in g.
func legalSwap(g *model.Graph, st *State) (Swap, bool) {
	for k := 0; k < g.Cores; k++ {
		order := st.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			dep := false
			for _, s := range g.Successors(order[pos]) {
				if s == order[pos+1] {
					dep = true
					break
				}
			}
			if !dep {
				return Swap{Core: model.CoreID(k), Pos: pos}, true
			}
		}
	}
	return Swap{}, false
}
