package move

import (
	"fmt"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
)

// State is one worker's mutable view of the design space over a shared
// compiled image. While only order moves are in play it is exactly the
// image's order overlay — cheap, warm-replayable, fingerprinted from the
// image's frozen digest midstate. The first structural move (Remap,
// SetPolicy) materializes a private mutable graph; from then on every move
// edits the graph and candidates are evaluated by recompile + cold
// analysis, until either all structural moves are undone (the State
// dematerializes back to the overlay) or a structural configuration is
// committed and the Evaluator rebinds to a freshly compiled image.
//
// Every applied move is pushed on an explicit LIFO journal. Undo and
// Commit name the move they expect on top; a mismatch means the caller's
// bookkeeping and the actual overlay diverged, and the State reports it as
// an error instead of silently producing results for a configuration the
// search does not think it is in. A State belongs to one goroutine, like
// the order overlay and warm analyzer under it.
type State struct {
	img *engine.Image
	ord *engine.Orders
	g   *model.Graph // non-nil while structural moves are in play

	journal []entry
	// structPending counts structural moves currently in the journal;
	// structCommitted counts structural moves committed since the last
	// rebind. The graph dematerializes only when both are zero.
	structPending   int
	structCommitted int
}

// entry is one journal record: the applied move and the revert closure its
// apply returned.
type entry struct {
	mv   Move
	undo func(*State)
}

// NewState builds a standalone state over img with a fresh order overlay.
// Searches that analyze candidates use an Evaluator instead, whose state
// shares the warm analyzer's overlay.
func NewState(img *engine.Image) *State {
	return &State{img: img, ord: img.NewOrders()}
}

// newState binds a state to an existing overlay (the Evaluator's warm
// analyzer owns it).
func newState(img *engine.Image, ord *engine.Orders) *State {
	return &State{img: img, ord: ord}
}

// Image returns the compiled image the state is based on.
func (st *State) Image() *engine.Image { return st.img }

// Order returns core k's current execution order, read from wherever the
// truth currently lives (graph when structural moves are in play, overlay
// otherwise). Read-only; valid until the next move.
func (st *State) Order(k model.CoreID) []model.TaskID {
	if st.g != nil {
		return st.g.Order(k)
	}
	return st.ord.Order(k)
}

// CoreOf returns the core task id is currently mapped to.
func (st *State) CoreOf(id model.TaskID) model.CoreID {
	if st.g != nil {
		return st.g.Task(id).Core
	}
	return st.img.CoreOf[id]
}

// Structural reports whether the state currently carries structural edits
// (a materialized graph), meaning candidates need recompile + cold
// analysis instead of warm replay.
func (st *State) Structural() bool { return st.g != nil }

// Pending returns the number of applied-but-uncommitted moves.
func (st *State) Pending() int { return len(st.journal) }

// Fingerprint returns the canonical content hash of the configuration the
// state currently describes — byte-identical to compiling the edited graph
// and fingerprinting it. Order-only states pay O(tasks) via the image's
// frozen digest midstate; structural states pay a full graph hash.
func (st *State) Fingerprint() string {
	if st.g != nil {
		return st.g.Fingerprint()
	}
	return st.img.FingerprintOrders(st.ord)
}

// Apply performs mv and pushes it on the journal. On error the state is
// unchanged and nothing is journaled.
func (st *State) Apply(mv Move) error {
	undo, err := mv.apply(st)
	if err != nil {
		return err
	}
	st.journal = append(st.journal, entry{mv: mv, undo: undo})
	if mv.structural() {
		st.structPending++
	}
	return nil
}

// Undo reverts mv, which must be the most recently applied uncommitted
// move. Naming the expected move makes interleaving bugs — the old
// explorer's silent-divergence failure mode — loud: undoing out of LIFO
// order or undoing a move that was never applied (or already committed)
// returns an error and changes nothing.
func (st *State) Undo(mv Move) error {
	if len(st.journal) == 0 {
		return fmt.Errorf("move: Undo(%v): journal is empty — the move was never applied or already committed", mv)
	}
	top := st.journal[len(st.journal)-1]
	if top.mv != mv {
		return fmt.Errorf("move: Undo(%v): out of order — the last applied move is %v (undo LIFO, or the overlay has diverged from the search's bookkeeping)", mv, top.mv)
	}
	st.journal = st.journal[:len(st.journal)-1]
	top.undo(st)
	if mv.structural() {
		st.structPending--
	}
	st.dematerialize()
	return nil
}

// Commit makes mv permanent: it is removed from the journal (no longer
// undoable) and becomes part of the configuration later moves build on.
// Like Undo it must name the journal's top entry.
func (st *State) Commit(mv Move) error {
	if len(st.journal) == 0 {
		return fmt.Errorf("move: Commit(%v): journal is empty — the move was never applied or already committed", mv)
	}
	top := st.journal[len(st.journal)-1]
	if top.mv != mv {
		return fmt.Errorf("move: Commit(%v): out of order — the last applied move is %v (commit LIFO, or the overlay has diverged from the search's bookkeeping)", mv, top.mv)
	}
	st.journal = st.journal[:len(st.journal)-1]
	if mv.structural() {
		st.structPending--
		st.structCommitted++
	}
	return nil
}

// swap routes an adjacent swap to wherever the truth currently lives.
func (st *State) swap(k model.CoreID, pos int) {
	if st.g != nil {
		st.g.SwapOrder(k, pos)
		return
	}
	st.ord.Swap(k, pos)
}

// graph returns the state's mutable graph, materializing it on the first
// structural move: a fresh clone of the compiled graph with the overlay's
// current orders copied in, so the graph picks up exactly where the
// order-only walk stood.
func (st *State) graph() *model.Graph {
	if st.g == nil {
		g := st.img.NewGraph()
		for k := 0; k < st.img.Cores; k++ {
			g.SetOrder(model.CoreID(k), st.ord.Order(model.CoreID(k)))
		}
		st.g = g
	}
	return st.g
}

// dematerialize drops the graph once no structural edit remains (every
// structural move undone, none committed): the surviving order moves are
// copied back into the overlay — per-core lengths are guaranteed unchanged
// — and candidates return to the warm-replay path.
func (st *State) dematerialize() {
	if st.g == nil || st.structPending > 0 || st.structCommitted > 0 {
		return
	}
	st.ord.CopyFrom(st.g)
	st.g = nil
}

// rebind resets the state onto a freshly compiled image after a structural
// commit (see Evaluator.Rebase). Any journal the caller left behind is
// gone; Evaluator enforces an empty journal before committing structurally.
func (st *State) rebind(img *engine.Image, ord *engine.Orders) {
	st.img = img
	st.ord = ord
	st.g = nil
	st.journal = st.journal[:0]
	st.structPending = 0
	st.structCommitted = 0
}
