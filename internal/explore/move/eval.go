package move

import (
	"context"
	"fmt"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/explore/objective"
	"github.com/mia-rt/mia/internal/model"
)

// maxPendingEdits is the number of divergence sites an evaluator tolerates
// between its order overlay and its scheduler's checkpoint baseline before
// rebasing with a cold run. Two sites cover the steady state of every
// search (the last accepted move plus the candidate under evaluation);
// beyond that, each extra site can only push the restart checkpoint
// earlier, so a rebase — whose cold run doubles as the candidate's
// evaluation — is the better deal.
const maxPendingEdits = 2

// Evaluator owns one worker's long-lived analysis resources: a warm
// analyzer over the search's shared image, whose private order overlay
// doubles as the worker's State, plus the engine used to analyze
// recompiled structural candidates cold. Results do not depend on which
// evaluator analyzed a candidate — warm replays are bit-identical to cold
// runs, and structural candidates are compiled and analyzed from scratch —
// which is what keeps the searches deterministic at every jobs level.
type Evaluator struct {
	eng     *engine.Engine
	img     *engine.Image // current committed image (rebinds on structural commits)
	w       engine.Warm
	st      *State
	disable bool

	warm bool // w's checkpoints describe baseOrder
	// baseOrder mirrors the overlay's per-core orders as of the last
	// rebase (the scheduler's checkpoint baseline); divergence diffs the
	// overlay against it.
	baseOrder [][]model.TaskID
	edits     []engine.Edit
}

// NewEvaluator builds one worker's analyzer over the shared image.
// disableWarm forces every order-only evaluation to run cold from t=0 —
// bit-identical results, differential-oracle/benchmark-baseline use only.
func NewEvaluator(img *engine.Image, eng *engine.Engine, disableWarm bool) *Evaluator {
	w := eng.NewWarm(img)
	e := &Evaluator{eng: eng, img: img, w: w, disable: disableWarm}
	e.st = newState(img, w.Orders())
	if !e.disable {
		e.baseOrder = make([][]model.TaskID, img.Cores)
	}
	return e
}

// State returns the evaluator's mutable design-space state. Searches apply,
// undo, and commit moves through it; the evaluator analyzes whatever
// configuration it currently describes.
func (e *Evaluator) State() *State { return e.st }

// Image returns the evaluator's current committed image. It changes when a
// structural configuration is committed (Rebase recompiles and rebinds).
func (e *Evaluator) Image() *engine.Image { return e.img }

// Close releases the warm analyzer's non-memory resources (parked kernel
// workers). The evaluator must not be used afterwards.
func (e *Evaluator) Close() { engine.CloseWarm(e.w) }

// Evaluate analyzes the state's current configuration, returning an eval
// whose Res is nil for unschedulable (or structurally invalid) candidates.
// Order-only configurations replay warm from the nearest checkpoint
// unaffected by the positions that diverged since the last rebase, rebasing
// cold when the divergence grows beyond what replay exploits well;
// structural configurations are recompiled and analyzed cold.
func (e *Evaluator) Evaluate(ctx context.Context) objective.Eval {
	if e.st.Structural() {
		img, err := engine.Compile(e.st.g, e.img.Opts)
		if err != nil {
			// Invalid structure (e.g. an order-inconsistent remap
			// position): scored unschedulable, like a deadlocked order.
			return objective.Eval{Img: e.img}
		}
		res, err := e.eng.Analyze(ctx, img)
		if err != nil {
			return objective.Eval{Img: img}
		}
		return objective.Eval{Img: img, Res: res}
	}
	if e.disable {
		res, err := e.w.AnalyzeCold(ctx)
		if err != nil {
			return objective.Eval{Img: e.img}
		}
		return objective.Eval{Img: e.img, Res: res}
	}
	if e.warm {
		edits := e.divergence()
		if len(edits) <= maxPendingEdits {
			res, err := e.w.Reschedule(ctx, edits...)
			if err != nil {
				return objective.Eval{Img: e.img} // baseline checkpoints stay valid
			}
			return objective.Eval{Img: e.img, Res: res}
		}
	}
	// Cold run doubling as a rebase: it records fresh checkpoints for the
	// overlay as currently ordered, so the work is the candidate's
	// evaluation and the new baseline in one pass.
	res, err := e.w.Analyze(ctx)
	if err != nil {
		e.warm = false
		return objective.Eval{Img: e.img}
	}
	e.warm = true
	e.rebase()
	return objective.Eval{Img: e.img, Res: res}
}

// MoveEval evaluates the neighbor reached by one move, leaving the state as
// it found it. Apply errors surface as an invalid eval plus the error.
func (e *Evaluator) MoveEval(ctx context.Context, mv Move) (objective.Eval, error) {
	if err := e.st.Apply(mv); err != nil {
		return objective.Eval{Img: e.img}, err
	}
	ev := e.Evaluate(ctx)
	if err := e.st.Undo(mv); err != nil {
		return objective.Eval{Img: e.img}, err
	}
	return ev, nil
}

// Accept applies a move the search committed to and eagerly rebases the
// analysis baseline onto the new incumbent: order-only commits re-anchor
// the warm checkpoints with one cold run that amortizes over the whole next
// neighborhood (keeping each later candidate single-edit); structural
// commits recompile the edited graph and rebind the evaluator to the new
// image. Accept requires an empty journal — accepting over uncommitted
// moves is exactly the divergence bug the journal exists to catch.
func (e *Evaluator) Accept(ctx context.Context, mv Move) error {
	if p := e.st.Pending(); p != 0 {
		return fmt.Errorf("move: Accept(%v): %d uncommitted move(s) pending — undo or commit them first (accepting over a diverged overlay)", mv, p)
	}
	if err := e.st.Apply(mv); err != nil {
		return err
	}
	if err := e.st.Commit(mv); err != nil {
		return err
	}
	return e.Rebase(ctx)
}

// Rebase re-anchors the evaluator on the state's committed configuration
// after Commit-without-Accept flows (annealing-style lazy acceptance calls
// it never; divergence tracking absorbs order commits there). Structural
// committed state is recompiled into a fresh image and the evaluator
// rebinds its warm analyzer to it; a compile failure means the search
// committed an invalid configuration, which is a caller bug and an error.
func (e *Evaluator) Rebase(ctx context.Context) error {
	if e.st.Structural() {
		if p := e.st.Pending(); p != 0 {
			return fmt.Errorf("move: Rebase: %d uncommitted move(s) pending on a structural state", p)
		}
		img, err := engine.Compile(e.st.g, e.img.Opts)
		if err != nil {
			return fmt.Errorf("move: Rebase: committed structural state does not compile: %w", err)
		}
		engine.CloseWarm(e.w)
		e.img = img
		e.w = e.eng.NewWarm(img)
		e.st.rebind(img, e.w.Orders())
		e.warm = false
		if !e.disable {
			e.baseOrder = make([][]model.TaskID, img.Cores)
		}
		return nil
	}
	if e.disable {
		return nil
	}
	if _, err := e.w.Analyze(ctx); err == nil {
		e.warm = true
		e.rebase()
	} else {
		e.warm = false // next Evaluate rebases via its cold run
	}
	return nil
}

// rebase records the overlay's current orders as the scheduler's checkpoint
// baseline.
func (e *Evaluator) rebase() {
	for k := range e.baseOrder {
		e.baseOrder[k] = append(e.baseOrder[k][:0], e.st.ord.Order(model.CoreID(k))...)
	}
}

// divergence lists, per core, the first order position where the overlay
// differs from the checkpoint baseline. Diffing against the baseline —
// rather than logging mutations — makes apply/undo pairs cancel exactly, so
// the steady state of a neighborhood sweep stays at one or two sites.
func (e *Evaluator) divergence() []engine.Edit {
	e.edits = e.edits[:0]
	for k := range e.baseOrder {
		cur, base := e.st.ord.Order(model.CoreID(k)), e.baseOrder[k]
		for i := range cur {
			if cur[i] != base[i] {
				e.edits = append(e.edits, engine.Edit{Core: model.CoreID(k), From: i})
				break
			}
		}
	}
	return e.edits
}
