// Package move is the bottom layer of the design-space search framework:
// typed, undoable edits over one shared engine.Image. A search holds a
// State per worker, applies Moves to walk the design space, undoes the ones
// it rejects, and commits the ones it accepts; the Evaluator in this
// package analyzes whatever configuration the State currently describes —
// warm through the image's order overlay when only orders changed, via
// recompile+cold analysis when the structure (mapping, bank policy) did.
//
// Three move kinds cover the design space the ROADMAP's search items call
// for:
//
//   - Swap — exchange two adjacent tasks of one core's execution order
//     (the pre-framework explorer's only move). Order-only: the image's
//     per-core order overlay absorbs it and warm replay applies.
//   - Remap — migrate a task to another core at a chosen order position.
//     Structural: per-core order lengths change and per-bank demands must
//     be re-derived, so the candidate needs a recompile.
//   - SetPolicy — switch the bank-assignment policy (shared / per-core /
//     striped). Structural: every task's demand vector is re-derived.
//
// Moves are small comparable values. The State keeps an explicit LIFO
// journal of applied moves: Undo and Commit name the move they expect on
// top and fail loudly when the caller's bookkeeping diverged from the
// actual overlay state — the silent-divergence failure mode of the old
// eager-rebase/undo path is now a returned error, never a wrong result.
package move

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Move is one typed, undoable edit of a search State. Implementations are
// small comparable values (the journal matches them by equality) and do not
// carry undo state — apply returns the undo closure, capturing exactly what
// it changed.
type Move interface {
	fmt.Stringer
	// structural reports whether the move invalidates the compiled image
	// (mapping or demand changes), as opposed to permuting per-core orders
	// only.
	structural() bool
	// apply performs the edit on st and returns the closure that reverts
	// it. It must either complete the edit fully or return an error having
	// changed nothing.
	apply(st *State) (undo func(*State), err error)
}

// Swap exchanges the tasks at positions Pos and Pos+1 of core Core's
// execution order — the adjacent-swap move warm replay is built around.
type Swap struct {
	Core model.CoreID
	Pos  int
}

// String implements fmt.Stringer.
func (m Swap) String() string { return fmt.Sprintf("swap(core=%d, pos=%d)", m.Core, m.Pos) }

func (m Swap) structural() bool { return false }

func (m Swap) apply(st *State) (func(*State), error) {
	if m.Core < 0 || int(m.Core) >= st.img.Cores {
		return nil, fmt.Errorf("move: %v: core out of range (platform has %d cores)", m, st.img.Cores)
	}
	order := st.Order(m.Core)
	if m.Pos < 0 || m.Pos+1 >= len(order) {
		return nil, fmt.Errorf("move: %v: position out of range (core has %d tasks)", m, len(order))
	}
	st.swap(m.Core, m.Pos)
	return func(st *State) { st.swap(m.Core, m.Pos) }, nil
}

// Remap migrates task Task to core To, inserted at position At of To's
// execution order (0 ≤ At ≤ len(order(To)); positions count after the task
// left its old core). Structural: the per-core order partition and the
// per-bank demand vectors both change, so candidates carrying a Remap are
// evaluated by recompile + cold analysis. Dependency consistency of the
// insertion position is not checked here; an inconsistent choice fails
// image compilation and the evaluator scores the candidate unschedulable.
type Remap struct {
	Task model.TaskID
	To   model.CoreID
	At   int
}

// String implements fmt.Stringer.
func (m Remap) String() string {
	return fmt.Sprintf("remap(task=%d, to=%d, at=%d)", m.Task, m.To, m.At)
}

func (m Remap) structural() bool { return true }

func (m Remap) apply(st *State) (func(*State), error) {
	if m.Task < 0 || int(m.Task) >= st.img.NumTasks {
		return nil, fmt.Errorf("move: %v: task out of range (graph has %d tasks)", m, st.img.NumTasks)
	}
	if m.To < 0 || int(m.To) >= st.img.Cores {
		return nil, fmt.Errorf("move: %v: target core out of range (platform has %d cores)", m, st.img.Cores)
	}
	g := st.graph()
	t := g.Task(m.Task)
	from := t.Core
	if from == m.To {
		return nil, fmt.Errorf("move: %v: task already on core %d (reorder with Swap instead)", m, from)
	}
	if m.At < 0 || m.At > len(g.Order(m.To)) {
		return nil, fmt.Errorf("move: %v: position out of range (core %d has %d tasks)", m, m.To, len(g.Order(m.To)))
	}
	fromPos := -1
	for i, id := range g.Order(from) {
		if id == m.Task {
			fromPos = i
			break
		}
	}
	if fromPos < 0 {
		return nil, fmt.Errorf("move: %v: task missing from core %d's order (corrupt state)", m, from)
	}
	tab := bankTableOf(g)
	migrate(g, m.Task, from, fromPos, m.To, m.At, tab)
	return func(st *State) { migrate(st.g, m.Task, m.To, m.At, from, fromPos, tab) }, nil
}

// migrate moves task id from position fromPos of core from's order to
// position at of core to's order, updates the task's mapping, and
// re-derives every demand vector under the (unchanged) bank table — the
// consumer cores of the task's edges moved, so the producers' per-bank
// charges move with them. Called with swapped src/dst arguments it is its
// own inverse: CompileDemands is a pure function of (tasks, edges, policy).
func migrate(g *model.Graph, id model.TaskID, from model.CoreID, fromPos int, to model.CoreID, at int, tab []model.BankID) {
	src := g.Order(from)
	newSrc := make([]model.TaskID, 0, len(src)-1)
	newSrc = append(newSrc, src[:fromPos]...)
	newSrc = append(newSrc, src[fromPos+1:]...)
	dst := g.Order(to)
	newDst := make([]model.TaskID, 0, len(dst)+1)
	newDst = append(newDst, dst[:at]...)
	newDst = append(newDst, id)
	newDst = append(newDst, dst[at:]...)
	g.SetOrder(from, newSrc)
	g.SetOrder(to, newDst)
	g.Task(id).Core = to
	g.CompileDemands(tableFunc(tab))
}

// Policy identifies a bank-assignment policy a SetPolicy move can switch
// to. The three values mirror the model package's policy functions; Striped
// and PerCore coincide when the platform has at least one bank per core
// (CompileDemands folds the table modulo the bank count either way).
type Policy int

const (
	// Shared maps every core to bank 0 — maximal contention.
	Shared Policy = iota
	// PerCore reserves bank k (mod banks) for core k.
	PerCore
	// Striped maps core k to bank k mod banks.
	Striped
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Shared:
		return "shared"
	case PerCore:
		return "per-core"
	case Striped:
		return "striped"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Table materializes the policy as an explicit core→bank table. Searches
// and moves always work from tables, never from policy closures: a closure
// reading live graph state (the g.CompileDemands(g.BankOf) trap) would
// observe its own partial updates.
func (p Policy) Table(cores, banks int) []model.BankID {
	tab := make([]model.BankID, cores)
	for k := range tab {
		switch p {
		case Shared:
			tab[k] = 0
		default: // PerCore and Striped both stripe modulo the bank count
			tab[k] = model.BankID(k % banks)
		}
	}
	return tab
}

// SetPolicy switches the bank-assignment policy and re-derives every
// task's per-bank demand vector. Structural: the demand matrix baked into
// the compiled image changes.
type SetPolicy struct {
	Policy Policy
}

// String implements fmt.Stringer.
func (m SetPolicy) String() string { return fmt.Sprintf("set-policy(%v)", m.Policy) }

func (m SetPolicy) structural() bool { return true }

func (m SetPolicy) apply(st *State) (func(*State), error) {
	if m.Policy < Shared || m.Policy > Striped {
		return nil, fmt.Errorf("move: %v: unknown policy", m)
	}
	g := st.graph()
	oldTab := bankTableOf(g)
	g.CompileDemands(tableFunc(m.Policy.Table(g.Cores, g.Banks)))
	return func(st *State) { st.g.CompileDemands(tableFunc(oldTab)) }, nil
}

// bankTableOf snapshots the graph's current core→bank assignment into an
// explicit table.
func bankTableOf(g *model.Graph) []model.BankID {
	tab := make([]model.BankID, g.Cores)
	for k := range tab {
		tab[k] = g.BankOf(model.CoreID(k))
	}
	return tab
}

// tableFunc adapts a snapshot table to the CompileDemands callback shape.
func tableFunc(tab []model.BankID) func(model.CoreID) model.BankID {
	return func(k model.CoreID) model.BankID { return tab[k] }
}
