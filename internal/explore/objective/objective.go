// Package objective defines the pluggable evaluation criteria of the
// design-space search framework: each Objective maps one analyzed candidate
// — a compiled problem image plus the schedule the engine computed for it —
// to a scalar score to minimize. The search layers above are generic over
// objectives: the scalarized hill-climb/anneal walk a single exact-integer
// objective, and the NSGA-II portfolio search optimizes a vector of them at
// once, reporting the Pareto front.
//
// All objectives are computed from ONE analysis per candidate: the engine
// run produces the schedule (makespan, per-bank interference split), and the
// candidate's compiled image carries the structural quantities (per-bank
// demand under the candidate's mapping and bank policy, core assignment,
// DAG edge volumes). Nothing here re-runs the analysis.
//
// Determinism: every objective iterates tasks, banks, and edges in fixed
// index order, so scores — including the float64 accumulations — are pure
// functions of the candidate, bit-identical across runs, worker counts, and
// evaluation order. That is the premise of the byte-identical Pareto fronts
// the pareto package pins.
package objective

import (
	"fmt"
	"sort"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Eval is one analyzed candidate: the compiled image the analysis ran on
// and its schedule. Res is nil when the candidate is unschedulable (or
// structurally invalid); objectives must treat that as the worst possible
// score, which the search layers encode as "never enters a Pareto front".
type Eval struct {
	Img *engine.Image
	Res *sched.Result
}

// Valid reports whether the candidate produced a schedule at all.
func (e Eval) Valid() bool { return e.Res != nil }

// Objective scores one analyzed candidate; lower is better. Implementations
// must be stateless and safe for concurrent use.
type Objective interface {
	// Name is the stable identifier used in CLIs, job requests, and
	// serialized fronts.
	Name() string
	// Score maps an analyzed candidate to a scalar to minimize. Score is
	// only called on valid evals (Res != nil).
	Score(e Eval) float64
}

// Scalar is an objective with an exact integer form, used by the scalarized
// searches (hill climbing, annealing) whose accept decisions must stay
// bit-identical to the pre-framework explorer: integer comparisons cannot
// pick up float rounding at any magnitude.
type Scalar interface {
	Objective
	// Cost is the exact integer score of a valid eval. Invalid candidates
	// are scored model.Infinity by the search layer, never passed here.
	Cost(e Eval) model.Cycles
}

// Makespan is the paper's objective: the global worst-case response time
// max_i (release_i + response_i).
type Makespan struct{}

// Name implements Objective.
func (Makespan) Name() string { return "makespan" }

// Score implements Objective.
func (Makespan) Score(e Eval) float64 { return float64(e.Res.Makespan) }

// Cost implements Scalar.
func (Makespan) Cost(e Eval) model.Cycles { return e.Res.Makespan }

// PeakBankInterference is the SINTEO-style memory objective: the largest
// per-bank interference total, max_b Σ_i PerBank[i][b]. Minimizing it
// spreads contention across banks instead of letting one DDR/SMEM bank
// become the fleet-wide bottleneck.
type PeakBankInterference struct{}

// Name implements Objective.
func (PeakBankInterference) Name() string { return "peak-interference" }

// Score implements Objective.
func (PeakBankInterference) Score(e Eval) float64 {
	banks := e.Img.Banks
	var peak float64
	for b := 0; b < banks; b++ {
		var sum float64
		for i := range e.Res.PerBank {
			sum += float64(e.Res.PerBank[i][b])
		}
		if sum > peak {
			peak = sum
		}
	}
	return peak
}

// BankVariance measures bank-load balance: the population variance of the
// per-bank total access demand under the candidate's mapping and bank
// policy. A perfectly balanced configuration scores 0; concentration on few
// banks scores high. This is the workload-variance half of the SINTEO
// trade-off pair, computed from the image's compiled demand matrix — it
// needs no schedule beyond validity.
type BankVariance struct{}

// Name implements Objective.
func (BankVariance) Name() string { return "bank-variance" }

// Score implements Objective.
func (BankVariance) Score(e Eval) float64 {
	banks := e.Img.Banks
	if banks == 0 {
		return 0
	}
	load := make([]float64, banks)
	for i := 0; i < e.Img.NumTasks; i++ {
		row := e.Img.DemandRow(model.TaskID(i))
		for b, d := range row {
			load[b] += float64(d)
		}
	}
	var mean float64
	for _, l := range load {
		mean += l
	}
	mean /= float64(banks)
	var v float64
	for _, l := range load {
		d := l - mean
		v += d * d
	}
	return v / float64(banks)
}

// CommAffinity is the Zaourar–Jan communication-affinity objective: the
// DAG's edge volumes weighted by placement distance. An edge whose endpoints
// share a core costs nothing (the data never crosses the bus for
// synchronization), a cross-core edge whose endpoint cores share a bank
// costs its word volume once, and a cross-core cross-bank edge costs it
// twice. Minimizing it clusters heavily communicating tasks onto cores
// sharing banks and pushes antagonists apart.
type CommAffinity struct{}

// Name implements Objective.
func (CommAffinity) Name() string { return "comm-affinity" }

// Score implements Objective.
func (CommAffinity) Score(e Eval) float64 {
	var cost float64
	for _, edge := range e.Img.Edges() {
		from := e.Img.CoreOf[edge.From]
		to := e.Img.CoreOf[edge.To]
		if from == to {
			continue
		}
		w := float64(edge.Words)
		cost += w
		if e.Img.BankTable[from] != e.Img.BankTable[to] {
			cost += w
		}
	}
	return cost
}

// registry maps stable names to objective values. Objectives are stateless,
// so one shared value per name suffices.
var registry = map[string]Objective{
	Makespan{}.Name():             Makespan{},
	PeakBankInterference{}.Name(): PeakBankInterference{},
	BankVariance{}.Name():         BankVariance{},
	CommAffinity{}.Name():         CommAffinity{},
}

// ByName resolves a registered objective.
func ByName(name string) (Objective, error) {
	if o, ok := registry[name]; ok {
		return o, nil
	}
	names := Names()
	return nil, fmt.Errorf("objective: unknown objective %q (registered: %v)", name, names)
}

// Names returns the registered objective names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	//mialint:ignore determinism -- iteration order cannot be observed: names are sorted before being returned
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Default is the Pareto search's default objective vector: the trade-off
// triple of the ROADMAP's item 3 deliverable.
func Default() []Objective {
	return []Objective{Makespan{}, PeakBankInterference{}, BankVariance{}}
}

// NamesOf renders an objective vector's names in order.
func NamesOf(objs []Objective) []string {
	names := make([]string, len(objs))
	for i, o := range objs {
		names[i] = o.Name()
	}
	return names
}
