package objective

import (
	"context"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" backend
)

// analyzed compiles and analyzes a small 2-core graph with one cross-core
// edge (a on core 0 writes 7 words into c's bank on core 1).
func analyzed(t *testing.T) Eval {
	t.Helper()
	b := model.NewBuilder(2, 2)
	a := b.AddTask(model.TaskSpec{Name: "a", WCET: 10, Core: 0, Local: 4})
	b.AddTask(model.TaskSpec{Name: "x", WCET: 50, Core: 0, Local: 3})
	c := b.AddTask(model.TaskSpec{Name: "c", WCET: 30, Core: 1, Local: 2})
	b.AddEdge(a, c, 7)
	img, err := engine.Compile(b.MustBuild(), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := engine.MustNew(engine.Incremental).Analyze(context.Background(), img)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return Eval{Img: img, Res: res}
}

func TestMakespanScalar(t *testing.T) {
	e := analyzed(t)
	if !e.Valid() {
		t.Fatal("eval invalid")
	}
	var m Scalar = Makespan{}
	if got := m.Cost(e); got != e.Res.Makespan {
		t.Fatalf("Cost = %d, want %d", got, e.Res.Makespan)
	}
	if got := m.Score(e); got != float64(e.Res.Makespan) {
		t.Fatalf("Score = %g, want %g", got, float64(e.Res.Makespan))
	}
}

func TestPeakBankInterferenceMatchesPerBankSplit(t *testing.T) {
	e := analyzed(t)
	want := 0.0
	for b := 0; b < e.Img.Banks; b++ {
		var sum float64
		for i := range e.Res.PerBank {
			sum += float64(e.Res.PerBank[i][b])
		}
		if sum > want {
			want = sum
		}
	}
	if got := (PeakBankInterference{}).Score(e); got != want {
		t.Fatalf("peak interference %g, want %g", got, want)
	}
}

func TestBankVariance(t *testing.T) {
	e := analyzed(t)
	// Per-core banks: bank 0 carries a+x local (4+3) plus nothing remote;
	// bank 1 carries c's local (2) plus a's 7 written words. Loads {7, 9}:
	// mean 8, variance 1.
	if got := (BankVariance{}).Score(e); got != 1 {
		t.Fatalf("bank variance %g, want 1", got)
	}
}

func TestCommAffinity(t *testing.T) {
	e := analyzed(t)
	// One cross-core edge of 7 words between cores on different banks:
	// charged twice.
	if got := (CommAffinity{}).Score(e); got != 14 {
		t.Fatalf("comm affinity %g, want 14", got)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v, want 4 objectives", names)
	}
	for _, name := range names {
		o, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if o.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, o.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName on unknown objective succeeded")
	}
	if got := NamesOf(Default()); len(got) != 3 || got[0] != "makespan" {
		t.Fatalf("default vector names %v", got)
	}
}
