// Package explore performs design-space exploration over per-core execution
// orders, using the paper's O(n²) incremental analysis as its inner
// evaluator. This is the practical payoff of the paper's speedup: with the
// O(n⁴) baseline, every candidate evaluation of a 384-task application cost
// ~minutes (the paper measures 535 s), making any search hopeless; at
// ~milliseconds per evaluation, local search over thousands of candidate
// schedules becomes routine. The ablation benchmark quantifies exactly
// that enablement.
//
// The search space: for a fixed mapping, each core's execution order may be
// any linearization of its tasks consistent with the dependency DAG. Moves
// swap two adjacent tasks of one core when the swap does not contradict a
// dependency; the objective is the analyzed makespan. Two searchers are
// provided: greedy hill climbing and simulated annealing (deterministic,
// seeded). Both can spread their candidate evaluations over a bounded
// worker pool (Options.Jobs) without changing any reported result: each
// analysis instance stays single-threaded, and the search decisions are
// functions of submission order, never completion order.
//
// Candidate evaluation is warm-started: every worker owns one long-lived
// graph clone, mutated in place by apply/undo swaps, and one
// incremental.Scheduler whose checkpoints let a neighbor that differs from
// the incumbent by an adjacent swap replay only the schedule suffix behind
// the swapped position instead of re-analyzing from t=0. Warm-started
// replays are bit-identical to cold analyses (differentially tested), so
// search walks are byte-identical with warm-start on and off, at every jobs
// level; Options.DisableWarmStart keeps the cold path reachable as the
// oracle and benchmark baseline.
package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/pool"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// Options configures a search.
type Options struct {
	// Sched is passed to every evaluation (arbiter, merging, ...).
	Sched sched.Options
	// MaxEvaluations bounds the number of schedules analyzed (default
	// 1000).
	MaxEvaluations int
	// Seed drives the deterministic random source.
	Seed int64
	// Temperature and Cooling parameterize annealing: the initial
	// acceptance temperature as a fraction of the initial makespan
	// (default 0.05) and the geometric cooling factor per evaluation
	// (default 0.995).
	Temperature float64
	Cooling     float64
	// Jobs bounds concurrent candidate evaluations (≤ 1 is sequential).
	// The search itself stays deterministic at every jobs level: hill
	// climbing evaluates whole swap neighborhoods on the worker pool and
	// selects moves by enumeration order, and annealing parallelizes
	// across independent restart chains, never inside one chain (each
	// chain's accept/reject walk is RNG-sequential by nature).
	Jobs int
	// Restarts runs this many independent annealing chains (seeds Seed,
	// Seed+1, ...) and returns the best schedule found, ties broken by
	// the lowest chain index. Values ≤ 1 mean a single chain. Ignored by
	// hill climbing, which is deterministic from the start order.
	Restarts int
	// DisableWarmStart forces every candidate evaluation to run the
	// incremental analysis cold from t=0 instead of replaying from the
	// nearest checkpoint. Warm and cold evaluations produce bit-identical
	// schedules, so this flag changes wall-clock time only; it exists as
	// the differential-testing oracle and the benchmark baseline that
	// quantifies the warm-start speedup.
	DisableWarmStart bool
}

func (o Options) maxEvals() int {
	if o.MaxEvaluations <= 0 {
		return 1000
	}
	return o.MaxEvaluations
}

// Result reports a search outcome.
type Result struct {
	// Best is the improved graph (a clone; the input is untouched).
	Best *model.Graph
	// Initial and Improved are the makespans before and after.
	Initial  model.Cycles
	Improved model.Cycles
	// Evaluations counts analyzed candidates (including rejected ones,
	// summed over all chains for multi-restart annealing).
	Evaluations int
	// Moves is the visit order: the accepted (core, position) swaps in the
	// order they were applied (for annealing, the winning chain's walk).
	// The determinism tests assert it is identical at every jobs level.
	Moves [][2]int
}

// Gain returns the relative makespan reduction in percent.
func (r *Result) Gain() float64 {
	if r.Initial == 0 {
		return 0
	}
	return 100 * float64(r.Initial-r.Improved) / float64(r.Initial)
}

// maxPendingEdits is the number of divergence sites an evaluator tolerates
// between its graph and its scheduler's checkpoint baseline before rebasing
// with a cold run. Two sites cover the steady state of both searches (the
// last accepted move plus the candidate under evaluation); beyond that, each
// extra site can only push the restart checkpoint earlier, so a rebase —
// whose cold run doubles as the candidate's evaluation — is the better deal.
const maxPendingEdits = 2

// evaluator owns one worker's long-lived analysis resources: a private clone
// of the search's incumbent graph, mutated in place by apply/undo swaps, and
// a warm-start scheduler whose checkpoints are reused across the candidate
// evaluations the worker performs. Results do not depend on which evaluator
// analyzed a candidate — warm replays are bit-identical to cold runs — which
// is what keeps the searches deterministic at every jobs level.
type evaluator struct {
	g       *model.Graph
	opts    sched.Options
	disable bool

	sch  *incremental.Scheduler
	warm bool // sch's checkpoints describe baseOrder
	// baseOrder mirrors g's per-core orders as of the last rebase (the
	// scheduler's checkpoint baseline); divergence diffs g against it.
	baseOrder [][]model.TaskID
	edits     []incremental.Edit
}

// newEvaluator clones g for exclusive use by one worker.
func newEvaluator(g *model.Graph, opts Options) *evaluator {
	e := &evaluator{g: g.Clone(), opts: opts.Sched, disable: opts.DisableWarmStart}
	if !e.disable {
		e.sch = incremental.NewScheduler(e.g, opts.Sched)
		e.baseOrder = make([][]model.TaskID, e.g.Cores)
	}
	return e
}

// evaluate analyzes the evaluator's graph as currently ordered, returning
// Infinity for unschedulable candidates. With warm-start enabled it replays
// from the nearest checkpoint unaffected by the order positions that changed
// since the last rebase, and rebases cold when the divergence grows beyond
// what replay exploits well.
func (e *evaluator) evaluate() model.Cycles {
	if e.disable {
		res, err := incremental.Schedule(e.g, e.opts)
		if err != nil {
			return model.Infinity
		}
		return res.Makespan
	}
	if e.warm {
		edits := e.divergence()
		if len(edits) <= maxPendingEdits {
			res, err := e.sch.Reschedule(edits...)
			if err != nil {
				return model.Infinity // baseline checkpoints stay valid
			}
			return res.Makespan
		}
	}
	// Cold run doubling as a rebase: it records fresh checkpoints for the
	// graph as currently ordered, so the work is the candidate's evaluation
	// and the new baseline in one pass.
	res, err := e.sch.Schedule()
	if err != nil {
		e.warm = false
		return model.Infinity
	}
	e.warm = true
	e.rebase()
	return res.Makespan
}

// swapEval evaluates the neighbor reached by one adjacent swap, leaving the
// evaluator's graph as it found it.
func (e *evaluator) swapEval(mv [2]int) model.Cycles {
	applySwap(e.g, mv[0], mv[1])
	m := e.evaluate()
	applySwap(e.g, mv[0], mv[1])
	return m
}

// accept applies a move the search committed to, so the evaluator's graph
// keeps tracking the incumbent, and eagerly rebases the checkpoint baseline
// onto it. Without the rebase every later candidate would carry the accepted
// move as a second divergence site, forcing replays to restart before the
// *earlier* of the two positions; one cold run here amortizes over the whole
// next neighborhood and keeps each candidate single-edit.
func (e *evaluator) accept(mv [2]int) {
	applySwap(e.g, mv[0], mv[1])
	if e.disable {
		return
	}
	if _, err := e.sch.Schedule(); err == nil {
		e.warm = true
		e.rebase()
	} else {
		e.warm = false // next evaluate rebases via its cold run
	}
}

// rebase records g's current orders as the scheduler's checkpoint baseline.
func (e *evaluator) rebase() {
	for k := 0; k < e.g.Cores; k++ {
		e.baseOrder[k] = append(e.baseOrder[k][:0], e.g.Order(model.CoreID(k))...)
	}
}

// divergence lists, per core, the first order position where g differs from
// the checkpoint baseline. Diffing against the baseline — rather than
// logging mutations — makes apply/undo pairs cancel exactly, so the steady
// state of a neighborhood sweep stays at one or two sites.
func (e *evaluator) divergence() []incremental.Edit {
	e.edits = e.edits[:0]
	for k := 0; k < e.g.Cores; k++ {
		cur, base := e.g.Order(model.CoreID(k)), e.baseOrder[k]
		for i := range cur {
			if cur[i] != base[i] {
				e.edits = append(e.edits, incremental.Edit{Core: model.CoreID(k), From: i})
				break
			}
		}
	}
	return e.edits
}

// moveSet caches what neighborhood enumeration needs across a whole search:
// the dependency-pair set (the edge set never changes, only orders do) and a
// reusable moves buffer, so per-round enumeration is map-build-free and
// allocation-free in steady state.
type moveSet struct {
	dep map[[2]model.TaskID]bool
	buf [][2]int
}

func newMoveSet(g *model.Graph) *moveSet {
	ms := &moveSet{dep: make(map[[2]model.TaskID]bool, len(g.Edges()))}
	for _, e := range g.Edges() {
		ms.dep[[2]model.TaskID{e.From, e.To}] = true
	}
	return ms
}

// legal enumerates (core, position) pairs where order[pos] and order[pos+1]
// may exchange without violating a direct dependency. The returned slice is
// valid until the next call.
func (ms *moveSet) legal(g *model.Graph) [][2]int {
	ms.buf = ms.buf[:0]
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			if !ms.dep[[2]model.TaskID{order[pos], order[pos+1]}] {
				ms.buf = append(ms.buf, [2]int{k, pos})
			}
		}
	}
	return ms.buf
}

// legalAdjacentSwaps is the one-shot form of moveSet.legal.
func legalAdjacentSwaps(g *model.Graph) [][2]int {
	return newMoveSet(g).legal(g)
}

// applySwap exchanges the two tasks at (core, pos) and (core, pos+1) in
// place; applying it twice restores the original order. Mutating in place
// (instead of copy-and-set) is what lets workers reuse one clone across a
// whole search at zero allocations per candidate.
func applySwap(g *model.Graph, core, pos int) {
	g.SwapOrder(model.CoreID(core), pos)
}

// HillClimb repeatedly applies the best improving adjacent swap until no
// swap improves the makespan or the evaluation budget is exhausted.
//
// With Options.Jobs > 1, each round's candidate neighborhood is evaluated
// concurrently on the worker pool. The outcome is identical to the
// sequential search: the candidate list is fixed by enumeration order
// before any evaluation starts, results come back indexed by candidate,
// and the applied move is the first maximal-gain candidate in that order —
// none of which depends on evaluation completion order. Each worker owns
// one evaluator (graph clone + warm scheduler) for the whole search instead
// of receiving a fresh clone per candidate; accepted moves are applied to
// every clone between rounds, so neighbors are always one swap away from a
// checkpointed baseline.
//
// Cancellation flows from ctx: between rounds the search stops with
// ctx.Err(), and a cancellation during a round is reported by the worker
// pool after the in-flight candidates drain.
func HillClimb(ctx context.Context, g *model.Graph, opts Options) (*Result, error) {
	cur := g.Clone()
	if err := cur.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Jobs
	if workers < 1 {
		workers = 1
	}
	evs := make([]*evaluator, workers)
	for w := range evs {
		evs[w] = newEvaluator(cur, opts)
	}
	base := evs[0].evaluate()
	if base == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	res := &Result{Initial: base, Improved: base, Evaluations: 1}
	budget := opts.maxEvals()
	moves := newMoveSet(cur)
	for res.Evaluations < budget {
		// Fix the round's candidates first: every legal swap in enumeration
		// order, truncated to the remaining evaluation budget. No per-swap
		// re-validation is needed: on a valid incumbent, an adjacent swap can
		// only break same-core ordering via a direct edge between the swapped
		// pair (already filtered — a same-core transitive path would need an
		// intermediate between two adjacent entries), and cross-core
		// deadlocks are outside Validate's remit anyway; the schedulers
		// report those and the evaluation scores them Infinity.
		cands := moves.legal(cur)
		if left := budget - res.Evaluations; len(cands) > left {
			cands = cands[:left]
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		makespans, err := pool.MapWith(ctx, evs, len(cands),
			func(_ context.Context, ev *evaluator, i int) (model.Cycles, error) {
				return ev.swapEval(cands[i]), nil
			})
		if err != nil {
			return nil, err
		}
		res.Evaluations += len(cands)
		bestGain := model.Cycles(0)
		bestMove := [2]int{-1, -1}
		for i, m := range makespans {
			if res.Improved-m > bestGain {
				bestGain = res.Improved - m
				bestMove = cands[i]
			}
		}
		if bestMove[0] < 0 {
			break // local optimum (or no candidate fit the budget)
		}
		applySwap(cur, bestMove[0], bestMove[1])
		for _, ev := range evs {
			ev.accept(bestMove)
		}
		res.Improved -= bestGain
		res.Moves = append(res.Moves, bestMove)
	}
	res.Best = cur
	return res, nil
}

// Anneal runs simulated annealing over adjacent swaps: random legal moves,
// always accepted when improving, accepted with probability
// exp(−Δ/temperature) otherwise, geometric cooling per evaluation. The best
// candidate ever seen is returned.
//
// With Options.Restarts > 1, that many independent chains run — seeded
// Seed, Seed+1, ... and evaluated concurrently up to Options.Jobs — and the
// best chain wins, ties broken by the lowest chain index. One chain's walk
// is inherently sequential (every accept feeds the next RNG draw), so the
// chains themselves are the parallelism grain; the outcome is a pure
// function of (graph, Options) regardless of the jobs level.
//
// Cancellation flows from ctx: chains not yet started are never launched
// and Anneal returns ctx.Err() once the running chains drain.
func Anneal(ctx context.Context, g *model.Graph, opts Options) (*Result, error) {
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	chains, err := pool.Map(ctx, opts.Jobs, restarts,
		func(_ context.Context, i int) (*Result, error) {
			o := opts
			o.Seed = opts.Seed + int64(i)
			return annealChain(g, o)
		})
	if err != nil {
		return nil, err
	}
	winner := chains[0]
	total := 0
	for _, c := range chains {
		total += c.Evaluations
		if c.Improved < winner.Improved {
			winner = c
		}
	}
	winner.Evaluations = total
	return winner, nil
}

// annealChain is one seeded annealing walk — the pre-parallelism Anneal.
// The chain owns a single evaluator: the walk mutates the evaluator's clone
// in place (accepted swaps stay, rejected swaps are undone) and each
// candidate is analyzed warm from the last rebased baseline.
func annealChain(g *model.Graph, opts Options) (*Result, error) {
	ev := newEvaluator(g, opts)
	cur := ev.g
	if err := cur.Validate(); err != nil {
		return nil, err
	}
	curCost := ev.evaluate()
	if curCost == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	best := cur.Clone()
	res := &Result{Initial: curCost, Improved: curCost, Evaluations: 1}

	rng := rand.New(rand.NewSource(opts.Seed))
	temp := opts.Temperature
	if temp <= 0 {
		temp = 0.05
	}
	temperature := temp * float64(curCost)
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}

	budget := opts.maxEvals()
	ms := newMoveSet(cur)
	for res.Evaluations < budget {
		moves := ms.legal(cur)
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		// No re-validation after the swap: legal adjacent swaps preserve
		// Validate-validity on a valid incumbent (see HillClimb), and a
		// cross-core deadlock simply evaluates to Infinity and is rejected.
		applySwap(cur, mv[0], mv[1])
		cand := ev.evaluate()
		res.Evaluations++
		delta := float64(cand - curCost)
		if delta <= 0 || (temperature > 0 && rng.Float64() < math.Exp(-delta/temperature)) {
			curCost = cand
			res.Moves = append(res.Moves, mv)
			if cand < res.Improved {
				res.Improved = cand
				best = cur.Clone()
			}
		} else {
			applySwap(cur, mv[0], mv[1]) // reject
		}
		temperature *= cooling
	}
	res.Best = best
	return res, nil
}
