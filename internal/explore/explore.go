// Package explore performs design-space exploration over per-core execution
// orders, using the paper's O(n²) incremental analysis as its inner
// evaluator. This is the practical payoff of the paper's speedup: with the
// O(n⁴) baseline, every candidate evaluation of a 384-task application cost
// ~minutes (the paper measures 535 s), making any search hopeless; at
// ~milliseconds per evaluation, local search over thousands of candidate
// schedules becomes routine. The ablation benchmark quantifies exactly
// that enablement.
//
// The search space: for a fixed mapping, each core's execution order may be
// any linearization of its tasks consistent with the dependency DAG. Moves
// swap two adjacent tasks of one core when the swap does not contradict a
// dependency; the objective is the analyzed makespan. Two searchers are
// provided: greedy hill climbing and simulated annealing (deterministic,
// seeded). Both can spread their candidate evaluations over a bounded
// worker pool (Options.Jobs) without changing any reported result: each
// analysis instance stays single-threaded, and the search decisions are
// functions of submission order, never completion order.
package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/pool"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// Options configures a search.
type Options struct {
	// Sched is passed to every evaluation (arbiter, merging, ...).
	Sched sched.Options
	// MaxEvaluations bounds the number of schedules analyzed (default
	// 1000).
	MaxEvaluations int
	// Seed drives the deterministic random source.
	Seed int64
	// Temperature and Cooling parameterize annealing: the initial
	// acceptance temperature as a fraction of the initial makespan
	// (default 0.05) and the geometric cooling factor per evaluation
	// (default 0.995).
	Temperature float64
	Cooling     float64
	// Jobs bounds concurrent candidate evaluations (≤ 1 is sequential).
	// The search itself stays deterministic at every jobs level: hill
	// climbing evaluates whole swap neighborhoods on the worker pool and
	// selects moves by enumeration order, and annealing parallelizes
	// across independent restart chains, never inside one chain (each
	// chain's accept/reject walk is RNG-sequential by nature).
	Jobs int
	// Restarts runs this many independent annealing chains (seeds Seed,
	// Seed+1, ...) and returns the best schedule found, ties broken by
	// the lowest chain index. Values ≤ 1 mean a single chain. Ignored by
	// hill climbing, which is deterministic from the start order.
	Restarts int
}

func (o Options) maxEvals() int {
	if o.MaxEvaluations <= 0 {
		return 1000
	}
	return o.MaxEvaluations
}

// Result reports a search outcome.
type Result struct {
	// Best is the improved graph (a clone; the input is untouched).
	Best *model.Graph
	// Initial and Improved are the makespans before and after.
	Initial  model.Cycles
	Improved model.Cycles
	// Evaluations counts analyzed candidates (including rejected ones,
	// summed over all chains for multi-restart annealing).
	Evaluations int
	// Moves is the visit order: the accepted (core, position) swaps in the
	// order they were applied (for annealing, the winning chain's walk).
	// The determinism tests assert it is identical at every jobs level.
	Moves [][2]int
}

// Gain returns the relative makespan reduction in percent.
func (r *Result) Gain() float64 {
	if r.Initial == 0 {
		return 0
	}
	return 100 * float64(r.Initial-r.Improved) / float64(r.Initial)
}

// evaluate analyzes a candidate, returning Infinity for unschedulable ones.
func evaluate(g *model.Graph, opts sched.Options) model.Cycles {
	res, err := incremental.Schedule(g, opts)
	if err != nil {
		return model.Infinity
	}
	return res.Makespan
}

// legalAdjacentSwaps enumerates (core, position) pairs where order[pos] and
// order[pos+1] may exchange without violating a direct dependency.
func legalAdjacentSwaps(g *model.Graph) [][2]int {
	dep := make(map[[2]model.TaskID]bool)
	for _, e := range g.Edges() {
		dep[[2]model.TaskID{e.From, e.To}] = true
	}
	var moves [][2]int
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			if !dep[[2]model.TaskID{order[pos], order[pos+1]}] {
				moves = append(moves, [2]int{k, pos})
			}
		}
	}
	return moves
}

// applySwap exchanges the two tasks at (core, pos) and (core, pos+1).
func applySwap(g *model.Graph, core, pos int) {
	order := append([]model.TaskID(nil), g.Order(model.CoreID(core))...)
	order[pos], order[pos+1] = order[pos+1], order[pos]
	g.SetOrder(model.CoreID(core), order)
}

// HillClimb repeatedly applies the best improving adjacent swap until no
// swap improves the makespan or the evaluation budget is exhausted.
//
// With Options.Jobs > 1, each round's candidate neighborhood is evaluated
// concurrently on the worker pool. The outcome is identical to the
// sequential search: the candidate list is fixed by enumeration order
// before any evaluation starts, results come back indexed by candidate,
// and the applied move is the first maximal-gain candidate in that order —
// none of which depends on evaluation completion order.
func HillClimb(g *model.Graph, opts Options) (*Result, error) {
	cur := g.Clone()
	if err := cur.Validate(); err != nil {
		return nil, err
	}
	base := evaluate(cur, opts.Sched)
	if base == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	res := &Result{Initial: base, Improved: base, Evaluations: 1}
	budget := opts.maxEvals()
	for res.Evaluations < budget {
		// Fix the round's candidates first: every legal, DAG-valid swap in
		// enumeration order, truncated to the remaining evaluation budget.
		// Validation mutates cur transiently, so it stays in this
		// goroutine; only the pure evaluations fan out.
		type candidate struct {
			mv [2]int
			g  *model.Graph
		}
		var cands []candidate
		for _, mv := range legalAdjacentSwaps(cur) {
			if res.Evaluations+len(cands) >= budget {
				break
			}
			applySwap(cur, mv[0], mv[1])
			if cur.Validate() == nil {
				cands = append(cands, candidate{mv: mv, g: cur.Clone()})
			}
			applySwap(cur, mv[0], mv[1]) // undo
		}
		makespans, err := pool.Map(context.Background(), opts.Jobs, len(cands),
			func(_ context.Context, i int) (model.Cycles, error) {
				return evaluate(cands[i].g, opts.Sched), nil
			})
		if err != nil {
			return nil, err
		}
		res.Evaluations += len(cands)
		bestGain := model.Cycles(0)
		bestMove := [2]int{-1, -1}
		for i, m := range makespans {
			if res.Improved-m > bestGain {
				bestGain = res.Improved - m
				bestMove = cands[i].mv
			}
		}
		if bestMove[0] < 0 {
			break // local optimum (or no candidate fit the budget)
		}
		applySwap(cur, bestMove[0], bestMove[1])
		res.Improved -= bestGain
		res.Moves = append(res.Moves, bestMove)
	}
	res.Best = cur
	return res, nil
}

// Anneal runs simulated annealing over adjacent swaps: random legal moves,
// always accepted when improving, accepted with probability
// exp(−Δ/temperature) otherwise, geometric cooling per evaluation. The best
// candidate ever seen is returned.
//
// With Options.Restarts > 1, that many independent chains run — seeded
// Seed, Seed+1, ... and evaluated concurrently up to Options.Jobs — and the
// best chain wins, ties broken by the lowest chain index. One chain's walk
// is inherently sequential (every accept feeds the next RNG draw), so the
// chains themselves are the parallelism grain; the outcome is a pure
// function of (graph, Options) regardless of the jobs level.
func Anneal(g *model.Graph, opts Options) (*Result, error) {
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	chains, err := pool.Map(context.Background(), opts.Jobs, restarts,
		func(_ context.Context, i int) (*Result, error) {
			o := opts
			o.Seed = opts.Seed + int64(i)
			return annealChain(g, o)
		})
	if err != nil {
		return nil, err
	}
	winner := chains[0]
	total := 0
	for _, c := range chains {
		total += c.Evaluations
		if c.Improved < winner.Improved {
			winner = c
		}
	}
	winner.Evaluations = total
	return winner, nil
}

// annealChain is one seeded annealing walk — the pre-parallelism Anneal.
func annealChain(g *model.Graph, opts Options) (*Result, error) {
	cur := g.Clone()
	if err := cur.Validate(); err != nil {
		return nil, err
	}
	curCost := evaluate(cur, opts.Sched)
	if curCost == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	best := cur.Clone()
	res := &Result{Initial: curCost, Improved: curCost, Evaluations: 1}

	rng := rand.New(rand.NewSource(opts.Seed))
	temp := opts.Temperature
	if temp <= 0 {
		temp = 0.05
	}
	temperature := temp * float64(curCost)
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}

	budget := opts.maxEvals()
	for res.Evaluations < budget {
		moves := legalAdjacentSwaps(cur)
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		applySwap(cur, mv[0], mv[1])
		if cur.Validate() != nil {
			applySwap(cur, mv[0], mv[1])
			continue
		}
		cand := evaluate(cur, opts.Sched)
		res.Evaluations++
		delta := float64(cand - curCost)
		if delta <= 0 || (temperature > 0 && rng.Float64() < math.Exp(-delta/temperature)) {
			curCost = cand
			res.Moves = append(res.Moves, mv)
			if cand < res.Improved {
				res.Improved = cand
				best = cur.Clone()
			}
		} else {
			applySwap(cur, mv[0], mv[1]) // reject
		}
		temperature *= cooling
	}
	res.Best = best
	return res, nil
}
