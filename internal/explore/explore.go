// Package explore performs design-space exploration over per-core execution
// orders, using the paper's O(n²) incremental analysis as its inner
// evaluator. This is the practical payoff of the paper's speedup: with the
// O(n⁴) baseline, every candidate evaluation of a 384-task application cost
// ~minutes (the paper measures 535 s), making any search hopeless; at
// ~milliseconds per evaluation, local search over thousands of candidate
// schedules becomes routine. The ablation benchmark quantifies exactly
// that enablement.
//
// The package is the scalarized search layer of the layered framework:
//
//   - internal/explore/move — typed, undoable edits (order swaps, task
//     remapping, bank-policy flips) over a shared engine.Image, plus the
//     Evaluator that analyzes whatever configuration a move walk reaches;
//   - internal/explore/objective — pluggable scoring of analyzed
//     candidates (makespan, peak per-bank interference, bank-load
//     variance, communication affinity);
//   - this package — greedy hill climbing and simulated annealing walking
//     adjacent-swap moves against one exact-integer objective;
//   - internal/explore/pareto — NSGA-II multi-objective portfolio search
//     over the full move set, reporting Pareto fronts.
//
// The search space here: for a fixed mapping, each core's execution order
// may be any linearization of its tasks consistent with the dependency DAG.
// Moves swap two adjacent tasks of one core when the swap does not
// contradict a dependency; the objective defaults to the analyzed makespan.
// Both searchers can spread their candidate evaluations over a bounded
// worker pool (Options.Jobs) without changing any reported result: each
// analysis instance stays single-threaded, and the search decisions are
// functions of submission order, never completion order.
//
// The search compiles its graph into one immutable engine.Image shared by
// every worker. Each worker owns a move.Evaluator over that image — a
// mutable order overlay permuted in place by apply/undo moves, plus an
// incremental scheduler whose checkpoints let a neighbor that differs from
// the incumbent by an adjacent swap replay only the schedule suffix behind
// the swapped position instead of re-analyzing from t=0. No graph is ever
// cloned per worker or per improvement; mutable graphs materialize exactly
// once per search, for the returned Result.Best. Warm-started replays are
// bit-identical to cold analyses (differentially tested), so search walks
// are byte-identical with warm-start on and off, at every jobs level;
// Options.DisableWarmStart keeps the cold path reachable as the oracle and
// benchmark baseline.
package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/explore/move"
	"github.com/mia-rt/mia/internal/explore/objective"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/pool"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

// Options configures a search.
type Options struct {
	// Sched is passed to every evaluation (arbiter, merging, ...).
	Sched sched.Options
	// Objective is the exact-integer objective the search minimizes; nil
	// means the analyzed makespan. Scalar (not float) by design: accept
	// decisions compare exact model.Cycles, so results cannot pick up
	// rounding at any magnitude.
	Objective objective.Scalar
	// MaxEvaluations bounds the number of schedules analyzed (default
	// 1000).
	MaxEvaluations int
	// Seed drives the deterministic random source.
	Seed int64
	// Temperature and Cooling parameterize annealing: the initial
	// acceptance temperature as a fraction of the initial makespan
	// (default 0.05) and the geometric cooling factor per evaluation
	// (default 0.995).
	Temperature float64
	Cooling     float64
	// Jobs bounds concurrent candidate evaluations (≤ 1 is sequential).
	// The search itself stays deterministic at every jobs level: hill
	// climbing evaluates whole swap neighborhoods on the worker pool and
	// selects moves by enumeration order, and annealing parallelizes
	// across independent restart chains, never inside one chain (each
	// chain's accept/reject walk is RNG-sequential by nature).
	Jobs int
	// Restarts runs this many independent annealing chains (seeds Seed,
	// Seed+1, ...) and returns the best schedule found, ties broken by
	// the lowest chain index. Values ≤ 1 mean a single chain. Ignored by
	// hill climbing, which is deterministic from the start order.
	Restarts int
	// DisableWarmStart forces every candidate evaluation to run the
	// incremental analysis cold from t=0 instead of replaying from the
	// nearest checkpoint. Warm and cold evaluations produce bit-identical
	// schedules, so this flag changes wall-clock time only; it exists as
	// the differential-testing oracle and the benchmark baseline that
	// quantifies the warm-start speedup.
	DisableWarmStart bool
}

func (o Options) maxEvals() int {
	if o.MaxEvaluations <= 0 {
		return 1000
	}
	return o.MaxEvaluations
}

func (o Options) objective() objective.Scalar {
	if o.Objective == nil {
		return objective.Makespan{}
	}
	return o.Objective
}

// Result reports a search outcome.
type Result struct {
	// Best is the improved graph (a fresh graph; the input is untouched).
	Best *model.Graph
	// Initial and Improved are the objective values (default: makespans)
	// before and after.
	Initial  model.Cycles
	Improved model.Cycles
	// Evaluations counts analyzed candidates (including rejected ones,
	// summed over all chains for multi-restart annealing).
	Evaluations int
	// Moves is the visit order: the accepted (core, position) swaps in the
	// order they were applied (for annealing, the winning chain's walk).
	// The determinism tests assert it is identical at every jobs level.
	Moves [][2]int
}

// Gain returns the relative objective reduction in percent.
func (r *Result) Gain() float64 {
	if r.Initial == 0 {
		return 0
	}
	return 100 * float64(r.Initial-r.Improved) / float64(r.Initial)
}

// searchEngine resolves the incremental backend the searches evaluate with
// (registered by the blank import above).
func searchEngine() *engine.Engine { return engine.MustNew(engine.Incremental) }

// cost scalarizes one analyzed candidate: the objective's exact integer
// value, Infinity for unschedulable candidates.
func cost(obj objective.Scalar, e objective.Eval) model.Cycles {
	if !e.Valid() {
		return model.Infinity
	}
	return obj.Cost(e)
}

// orderSource is any holder of per-core execution orders the move
// enumeration can read — a mutable graph, an engine order overlay, or a
// move.State.
type orderSource interface {
	Order(k model.CoreID) []model.TaskID
}

// moveSet caches what neighborhood enumeration needs across a whole search:
// the dependency-pair set (the edge set never changes, only orders do) and a
// reusable moves buffer, so per-round enumeration is map-build-free and
// allocation-free in steady state.
type moveSet struct {
	cores int
	dep   map[[2]model.TaskID]bool
	buf   [][2]int
}

func newMoveSet(cores int, edges []model.Edge) *moveSet {
	ms := &moveSet{cores: cores, dep: make(map[[2]model.TaskID]bool, len(edges))}
	for _, e := range edges {
		ms.dep[[2]model.TaskID{e.From, e.To}] = true
	}
	return ms
}

// legal enumerates (core, position) pairs where order[pos] and order[pos+1]
// may exchange without violating a direct dependency. The returned slice is
// valid until the next call.
func (ms *moveSet) legal(src orderSource) [][2]int {
	ms.buf = ms.buf[:0]
	for k := 0; k < ms.cores; k++ {
		order := src.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			if !ms.dep[[2]model.TaskID{order[pos], order[pos+1]}] {
				ms.buf = append(ms.buf, [2]int{k, pos})
			}
		}
	}
	return ms.buf
}

// legalAdjacentSwaps is the one-shot, graph-level form of moveSet.legal.
func legalAdjacentSwaps(g *model.Graph) [][2]int {
	return newMoveSet(g.Cores, g.Edges()).legal(g)
}

// replayMoves materializes a mutable graph equal to the image's baseline
// with the given accepted swaps applied in order — the only place a search
// allocates a graph.
func replayMoves(img *engine.Image, moves [][2]int) *model.Graph {
	g := img.NewGraph()
	for _, mv := range moves {
		g.SwapOrder(model.CoreID(mv[0]), mv[1])
	}
	return g
}

// asSwap converts the search's (core, position) pair into the move layer's
// typed form.
func asSwap(mv [2]int) move.Swap { return move.Swap{Core: model.CoreID(mv[0]), Pos: mv[1]} }

// HillClimb repeatedly applies the best improving adjacent swap until no
// swap improves the objective or the evaluation budget is exhausted.
//
// With Options.Jobs > 1, each round's candidate neighborhood is evaluated
// concurrently on the worker pool. The outcome is identical to the
// sequential search: the candidate list is fixed by enumeration order
// before any evaluation starts, results come back indexed by candidate,
// and the applied move is the first maximal-gain candidate in that order —
// none of which depends on evaluation completion order. Each worker owns
// one move.Evaluator (order overlay + warm scheduler over the shared
// image) for the whole search; accepted moves are applied to every
// evaluator between rounds, so neighbors are always one swap away from a
// checkpointed baseline.
//
// Cancellation flows from ctx: between rounds the search stops with
// ctx.Err(), and a cancellation during a round is reported by the worker
// pool after the in-flight candidates drain.
func HillClimb(ctx context.Context, g *model.Graph, opts Options) (*Result, error) {
	img, err := engine.Compile(g, opts.Sched)
	if err != nil {
		return nil, err
	}
	obj := opts.objective()
	workers := opts.Jobs
	if workers < 1 {
		workers = 1
	}
	evs := make([]*move.Evaluator, workers)
	for w := range evs {
		evs[w] = move.NewEvaluator(img, searchEngine(), opts.DisableWarmStart)
		defer evs[w].Close()
	}
	// inc is the incumbent's order state, mirrored by every evaluator's
	// overlay as moves are accepted.
	inc := img.NewOrders()
	base := cost(obj, evs[0].Evaluate(ctx))
	if base == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	res := &Result{Initial: base, Improved: base, Evaluations: 1}
	budget := opts.maxEvals()
	moves := newMoveSet(img.Cores, img.Edges())
	for res.Evaluations < budget {
		// Fix the round's candidates first: every legal swap in enumeration
		// order, truncated to the remaining evaluation budget. No per-swap
		// re-validation is needed: on a valid incumbent, an adjacent swap can
		// only break same-core ordering via a direct edge between the swapped
		// pair (already filtered — a same-core transitive path would need an
		// intermediate between two adjacent entries), and cross-core
		// deadlocks are outside Validate's remit anyway; the schedulers
		// report those and the evaluation scores them Infinity.
		cands := moves.legal(inc)
		if left := budget - res.Evaluations; len(cands) > left {
			cands = cands[:left]
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		costs, err := pool.MapWith(ctx, evs, len(cands),
			func(c context.Context, ev *move.Evaluator, i int) (model.Cycles, error) {
				e, err := ev.MoveEval(c, asSwap(cands[i]))
				if err != nil {
					return 0, err
				}
				return cost(obj, e), nil
			})
		if err != nil {
			return nil, err
		}
		res.Evaluations += len(cands)
		bestGain := model.Cycles(0)
		bestMove := [2]int{-1, -1}
		for i, m := range costs {
			if res.Improved-m > bestGain {
				bestGain = res.Improved - m
				bestMove = cands[i]
			}
		}
		if bestMove[0] < 0 {
			break // local optimum (or no candidate fit the budget)
		}
		inc.Swap(model.CoreID(bestMove[0]), bestMove[1])
		for _, ev := range evs {
			if err := ev.Accept(ctx, asSwap(bestMove)); err != nil {
				return nil, err
			}
		}
		res.Improved -= bestGain
		res.Moves = append(res.Moves, bestMove)
	}
	res.Best = replayMoves(img, res.Moves)
	return res, nil
}

// Anneal runs simulated annealing over adjacent swaps: random legal moves,
// always accepted when improving, accepted with probability
// exp(−Δ/temperature) otherwise, geometric cooling per evaluation. The best
// candidate ever seen is returned.
//
// With Options.Restarts > 1, that many independent chains run — seeded
// Seed, Seed+1, ... and evaluated concurrently up to Options.Jobs — and the
// best chain wins, ties broken by the lowest chain index. One chain's walk
// is inherently sequential (every accept feeds the next RNG draw), so the
// chains themselves are the parallelism grain; the outcome is a pure
// function of (graph, Options) regardless of the jobs level. All chains
// share one compiled image; a chain's best-so-far is tracked as a prefix
// length of its accepted-move log and only the winner's graph is
// materialized, replacing the former per-improvement graph clone.
//
// Cancellation flows from ctx: chains not yet started are never launched
// and Anneal returns ctx.Err() once the running chains drain.
func Anneal(ctx context.Context, g *model.Graph, opts Options) (*Result, error) {
	img, err := engine.Compile(g, opts.Sched)
	if err != nil {
		return nil, err
	}
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	chains, err := pool.Map(ctx, opts.Jobs, restarts,
		func(c context.Context, i int) (chain, error) {
			o := opts
			o.Seed = opts.Seed + int64(i)
			return annealChain(c, img, o)
		})
	if err != nil {
		return nil, err
	}
	winner := chains[0]
	total := 0
	for _, c := range chains {
		total += c.res.Evaluations
		if c.res.Improved < winner.res.Improved {
			winner = c
		}
	}
	winner.res.Evaluations = total
	winner.res.Best = replayMoves(img, winner.res.Moves[:winner.bestLen])
	return winner.res, nil
}

// chain is one annealing walk's outcome: the result plus the length of the
// accepted-move prefix that reaches the best objective ever seen (the walk
// may accept worsening moves after it).
type chain struct {
	res     *Result
	bestLen int
}

// annealChain is one seeded annealing walk — the pre-parallelism Anneal.
// The chain owns a single move.Evaluator over the shared image: the walk
// permutes the evaluator's state in place (accepted swaps are committed,
// rejected swaps undone through the journal) and each candidate is
// analyzed warm from the last rebased baseline. The best schedule is
// recorded as a prefix of the accepted-move log, not as a graph clone;
// Anneal materializes the winning graph once.
func annealChain(ctx context.Context, img *engine.Image, opts Options) (chain, error) {
	obj := opts.objective()
	ev := move.NewEvaluator(img, searchEngine(), opts.DisableWarmStart)
	defer ev.Close()
	st := ev.State()
	curCost := cost(obj, ev.Evaluate(ctx))
	if curCost == model.Infinity {
		return chain{}, fmt.Errorf("explore: initial order is unschedulable")
	}
	res := &Result{Initial: curCost, Improved: curCost, Evaluations: 1}
	c := chain{res: res}

	rng := rand.New(rand.NewSource(opts.Seed))
	temp := opts.Temperature
	if temp <= 0 {
		temp = 0.05
	}
	temperature := temp * float64(curCost)
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}

	budget := opts.maxEvals()
	ms := newMoveSet(img.Cores, img.Edges())
	for res.Evaluations < budget {
		if err := ctx.Err(); err != nil {
			return chain{}, err
		}
		moves := ms.legal(st)
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		// No re-validation after the swap: legal adjacent swaps preserve
		// Validate-validity on a valid incumbent (see HillClimb), and a
		// cross-core deadlock simply evaluates to Infinity and is rejected.
		sw := asSwap(mv)
		if err := st.Apply(sw); err != nil {
			return chain{}, err
		}
		cand := cost(obj, ev.Evaluate(ctx))
		res.Evaluations++
		delta := float64(cand - curCost)
		if delta <= 0 || (temperature > 0 && rng.Float64() < math.Exp(-delta/temperature)) {
			if err := st.Commit(sw); err != nil {
				return chain{}, err
			}
			curCost = cand
			res.Moves = append(res.Moves, mv)
			if cand < res.Improved {
				res.Improved = cand
				c.bestLen = len(res.Moves)
			}
		} else {
			if err := st.Undo(sw); err != nil {
				return chain{}, err
			}
		}
		temperature *= cooling
	}
	return c, nil
}
