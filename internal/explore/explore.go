// Package explore performs design-space exploration over per-core execution
// orders, using the paper's O(n²) incremental analysis as its inner
// evaluator. This is the practical payoff of the paper's speedup: with the
// O(n⁴) baseline, every candidate evaluation of a 384-task application cost
// ~minutes (the paper measures 535 s), making any search hopeless; at
// ~milliseconds per evaluation, local search over thousands of candidate
// schedules becomes routine. The ablation benchmark quantifies exactly
// that enablement.
//
// The search space: for a fixed mapping, each core's execution order may be
// any linearization of its tasks consistent with the dependency DAG. Moves
// swap two adjacent tasks of one core when the swap does not contradict a
// dependency; the objective is the analyzed makespan. Two searchers are
// provided: greedy hill climbing and simulated annealing (deterministic,
// seeded).
package explore

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// Options configures a search.
type Options struct {
	// Sched is passed to every evaluation (arbiter, merging, ...).
	Sched sched.Options
	// MaxEvaluations bounds the number of schedules analyzed (default
	// 1000).
	MaxEvaluations int
	// Seed drives the deterministic random source.
	Seed int64
	// Temperature and Cooling parameterize annealing: the initial
	// acceptance temperature as a fraction of the initial makespan
	// (default 0.05) and the geometric cooling factor per evaluation
	// (default 0.995).
	Temperature float64
	Cooling     float64
}

func (o Options) maxEvals() int {
	if o.MaxEvaluations <= 0 {
		return 1000
	}
	return o.MaxEvaluations
}

// Result reports a search outcome.
type Result struct {
	// Best is the improved graph (a clone; the input is untouched).
	Best *model.Graph
	// Initial and Improved are the makespans before and after.
	Initial  model.Cycles
	Improved model.Cycles
	// Evaluations counts analyzed candidates (including rejected ones).
	Evaluations int
}

// Gain returns the relative makespan reduction in percent.
func (r *Result) Gain() float64 {
	if r.Initial == 0 {
		return 0
	}
	return 100 * float64(r.Initial-r.Improved) / float64(r.Initial)
}

// evaluate analyzes a candidate, returning Infinity for unschedulable ones.
func evaluate(g *model.Graph, opts sched.Options) model.Cycles {
	res, err := incremental.Schedule(g, opts)
	if err != nil {
		return model.Infinity
	}
	return res.Makespan
}

// legalAdjacentSwaps enumerates (core, position) pairs where order[pos] and
// order[pos+1] may exchange without violating a direct dependency.
func legalAdjacentSwaps(g *model.Graph) [][2]int {
	dep := make(map[[2]model.TaskID]bool)
	for _, e := range g.Edges() {
		dep[[2]model.TaskID{e.From, e.To}] = true
	}
	var moves [][2]int
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			if !dep[[2]model.TaskID{order[pos], order[pos+1]}] {
				moves = append(moves, [2]int{k, pos})
			}
		}
	}
	return moves
}

// applySwap exchanges the two tasks at (core, pos) and (core, pos+1).
func applySwap(g *model.Graph, core, pos int) {
	order := append([]model.TaskID(nil), g.Order(model.CoreID(core))...)
	order[pos], order[pos+1] = order[pos+1], order[pos]
	g.SetOrder(model.CoreID(core), order)
}

// HillClimb repeatedly applies the best improving adjacent swap until no
// swap improves the makespan or the evaluation budget is exhausted.
func HillClimb(g *model.Graph, opts Options) (*Result, error) {
	cur := g.Clone()
	if err := cur.Validate(); err != nil {
		return nil, err
	}
	base := evaluate(cur, opts.Sched)
	if base == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	res := &Result{Initial: base, Improved: base, Evaluations: 1}
	budget := opts.maxEvals()
	for res.Evaluations < budget {
		bestGain := model.Cycles(0)
		bestMove := [2]int{-1, -1}
		for _, mv := range legalAdjacentSwaps(cur) {
			if res.Evaluations >= budget {
				break
			}
			applySwap(cur, mv[0], mv[1])
			if cur.Validate() == nil {
				m := evaluate(cur, opts.Sched)
				res.Evaluations++
				if res.Improved-m > bestGain {
					bestGain = res.Improved - m
					bestMove = mv
				}
			}
			applySwap(cur, mv[0], mv[1]) // undo
		}
		if bestMove[0] < 0 {
			break // local optimum
		}
		applySwap(cur, bestMove[0], bestMove[1])
		res.Improved -= bestGain
	}
	res.Best = cur
	return res, nil
}

// Anneal runs simulated annealing over adjacent swaps: random legal moves,
// always accepted when improving, accepted with probability
// exp(−Δ/temperature) otherwise, geometric cooling per evaluation. The best
// candidate ever seen is returned.
func Anneal(g *model.Graph, opts Options) (*Result, error) {
	cur := g.Clone()
	if err := cur.Validate(); err != nil {
		return nil, err
	}
	curCost := evaluate(cur, opts.Sched)
	if curCost == model.Infinity {
		return nil, fmt.Errorf("explore: initial order is unschedulable")
	}
	best := cur.Clone()
	res := &Result{Initial: curCost, Improved: curCost, Evaluations: 1}

	rng := rand.New(rand.NewSource(opts.Seed))
	temp := opts.Temperature
	if temp <= 0 {
		temp = 0.05
	}
	temperature := temp * float64(curCost)
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}

	budget := opts.maxEvals()
	for res.Evaluations < budget {
		moves := legalAdjacentSwaps(cur)
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		applySwap(cur, mv[0], mv[1])
		if cur.Validate() != nil {
			applySwap(cur, mv[0], mv[1])
			continue
		}
		cand := evaluate(cur, opts.Sched)
		res.Evaluations++
		delta := float64(cand - curCost)
		if delta <= 0 || (temperature > 0 && rng.Float64() < math.Exp(-delta/temperature)) {
			curCost = cand
			if cand < res.Improved {
				res.Improved = cand
				best = cur.Clone()
			}
		} else {
			applySwap(cur, mv[0], mv[1]) // reject
		}
		temperature *= cooling
	}
	res.Best = best
	return res, nil
}
