package explore

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// warmCorpus yields a few structurally different search inputs: the
// hand-built pathological order, a wide shallow DAG (large per-core orders →
// deep warm-start suffixes), and a deep narrow DAG with a shared bank.
func warmCorpus(t testing.TB) []*model.Graph {
	t.Helper()
	wide := gen.NewParams(4, 16)
	wide.Seed = 11
	wide.Cores, wide.Banks = 4, 2
	deep := gen.NewParams(10, 4)
	deep.Seed = 5
	deep.Cores, deep.Banks = 4, 4
	deep.SharedBank = true
	return []*model.Graph{badOrderGraph(t), gen.MustLayered(wide), gen.MustLayered(deep)}
}

// TestHillClimbWarmStartInvariant is the exploration half of the warm-start
// differential contract: disabling warm start changes only wall-clock, never
// the walk. Every (warm on/off) × (jobs level) combination must report the
// same makespans, evaluation count and accepted move sequence.
func TestHillClimbWarmStartInvariant(t *testing.T) {
	for gi, g := range warmCorpus(t) {
		ref, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 300, Jobs: 1, DisableWarmStart: true})
		if err != nil {
			t.Fatalf("graph[%d]: cold reference: %v", gi, err)
		}
		for _, jobs := range []int{1, 4, 8} {
			for _, disable := range []bool{false, true} {
				label := fmt.Sprintf("graph[%d] jobs=%d warm=%v", gi, jobs, !disable)
				got, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 300, Jobs: jobs, DisableWarmStart: disable})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got.Initial != ref.Initial || got.Improved != ref.Improved || got.Evaluations != ref.Evaluations {
					t.Errorf("%s: %d→%d in %d evals, cold sequential %d→%d in %d",
						label, got.Initial, got.Improved, got.Evaluations,
						ref.Initial, ref.Improved, ref.Evaluations)
				}
				if !equalMoves(got.Moves, ref.Moves) {
					t.Errorf("%s: visit order %v, cold sequential %v", label, got.Moves, ref.Moves)
				}
			}
		}
	}
}

// TestAnnealWarmStartInvariant pins the same contract for the annealing
// chains, including the multi-restart reduce across jobs levels.
func TestAnnealWarmStartInvariant(t *testing.T) {
	for gi, g := range warmCorpus(t) {
		base := Options{Seed: 9, MaxEvaluations: 150, Restarts: 3}
		refOpts := base
		refOpts.Jobs, refOpts.DisableWarmStart = 1, true
		ref, err := Anneal(context.Background(), g, refOpts)
		if err != nil {
			t.Fatalf("graph[%d]: cold reference: %v", gi, err)
		}
		for _, jobs := range []int{1, 4, 8} {
			for _, disable := range []bool{false, true} {
				label := fmt.Sprintf("graph[%d] jobs=%d warm=%v", gi, jobs, !disable)
				o := base
				o.Jobs, o.DisableWarmStart = jobs, disable
				got, err := Anneal(context.Background(), g, o)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got.Initial != ref.Initial || got.Improved != ref.Improved || got.Evaluations != ref.Evaluations {
					t.Errorf("%s: %d→%d in %d evals, cold sequential %d→%d in %d",
						label, got.Initial, got.Improved, got.Evaluations,
						ref.Initial, ref.Improved, ref.Evaluations)
				}
				if !equalMoves(got.Moves, ref.Moves) {
					t.Errorf("%s: winning walk differs from cold sequential run", label)
				}
			}
		}
	}
}

// TestWarmStartWithSchedulerOptions crosses warm start with the scheduler
// option axes the checkpoint machinery interacts with (competitor separation
// and the uncached oracle path): the walks must still match.
func TestWarmStartWithSchedulerOptions(t *testing.T) {
	p := gen.NewParams(5, 8)
	p.Seed = 2
	p.Cores, p.Banks = 4, 2
	g := gen.MustLayered(p)
	for _, so := range []sched.Options{
		{SeparateCompetitors: true},
		{DisableFastPath: true},
	} {
		ref, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 200, Jobs: 1, Sched: so, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := HillClimb(context.Background(), g, Options{MaxEvaluations: 200, Jobs: 4, Sched: so})
		if err != nil {
			t.Fatal(err)
		}
		if got.Improved != ref.Improved || got.Evaluations != ref.Evaluations || !equalMoves(got.Moves, ref.Moves) {
			t.Errorf("separate=%v oracle=%v: warm parallel walk diverged from cold sequential",
				so.SeparateCompetitors, so.DisableFastPath)
		}
	}
}
