package explore

// The scalarized-search differential suite: the layered implementation
// (move.Evaluator + objective.Scalar, warm replay, worker pools) must make
// byte-identical decisions to a from-first-principles reference — the
// pre-refactor algorithm re-implemented here sequentially over a mutable
// graph clone with one cold package-level analysis per candidate. Any
// divergence in Initial, Improved, Evaluations, the accepted-move log, or
// the returned graph fails; the corpus is the engine suite's 216-instance
// recipe (6 layered shapes × 3 platform configs × 12 seeds).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// diffCorpus is the engine differential suite's 216-instance recipe.
func diffCorpus() []gen.Params {
	shapes := []struct {
		layers, size int
	}{
		{8, 4}, {12, 4}, {6, 8},
		{4, 8}, {4, 12}, {6, 10},
	}
	platforms := []struct {
		cores, banks int
		shared       bool
	}{
		{4, 4, false},
		{8, 8, false},
		{4, 1, true},
	}
	var corpus []gen.Params
	for _, sh := range shapes {
		for _, pl := range platforms {
			for seed := int64(1); seed <= 12; seed++ {
				p := gen.NewParams(sh.layers, sh.size)
				p.Seed = seed
				p.Cores, p.Banks, p.SharedBank = pl.cores, pl.banks, pl.shared
				corpus = append(corpus, p)
			}
		}
	}
	return corpus
}

// corpusOpts rotates arbiters and competitor-merging modes across the
// corpus so every combination appears many times without multiplying the
// runtime.
func corpusOpts(ci int) sched.Options {
	arbiters := []arbiter.Arbiter{
		arbiter.NewRoundRobin(1),
		arbiter.NewRoundRobin(3),
		arbiter.NewWeightedRR(1, func(c model.CoreID) int64 { return int64(c)%2 + 1 }),
	}
	return sched.Options{Arbiter: arbiters[ci%len(arbiters)], SeparateCompetitors: ci%2 == 1}
}

// refCost is the reference evaluator: one cold package-level analysis.
func refCost(g *model.Graph, opts sched.Options) model.Cycles {
	res, err := incremental.Schedule(g, opts)
	if err != nil {
		return model.Infinity
	}
	return res.Makespan
}

// refHillClimb is the pre-refactor hill climb, sequential and cold.
func refHillClimb(g *model.Graph, opts Options) (*Result, error) {
	cur := g.Clone()
	base := refCost(cur, opts.Sched)
	if base == model.Infinity {
		return nil, fmt.Errorf("ref: initial order is unschedulable")
	}
	res := &Result{Initial: base, Improved: base, Evaluations: 1}
	budget := opts.maxEvals()
	ms := newMoveSet(cur.Cores, cur.Edges())
	for res.Evaluations < budget {
		cands := append([][2]int(nil), ms.legal(cur)...)
		if left := budget - res.Evaluations; len(cands) > left {
			cands = cands[:left]
		}
		makespans := make([]model.Cycles, len(cands))
		for i, mv := range cands {
			cur.SwapOrder(model.CoreID(mv[0]), mv[1])
			makespans[i] = refCost(cur, opts.Sched)
			cur.SwapOrder(model.CoreID(mv[0]), mv[1])
		}
		res.Evaluations += len(cands)
		bestGain := model.Cycles(0)
		bestMove := [2]int{-1, -1}
		for i, m := range makespans {
			if res.Improved-m > bestGain {
				bestGain = res.Improved - m
				bestMove = cands[i]
			}
		}
		if bestMove[0] < 0 {
			break
		}
		cur.SwapOrder(model.CoreID(bestMove[0]), bestMove[1])
		res.Improved -= bestGain
		res.Moves = append(res.Moves, bestMove)
	}
	res.Best = cur
	return res, nil
}

// refAnneal is the pre-refactor multi-restart annealing, sequential and
// cold.
func refAnneal(g *model.Graph, opts Options) (*Result, error) {
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	type refChain struct {
		res     *Result
		bestLen int
	}
	chains := make([]refChain, restarts)
	for i := range chains {
		cur := g.Clone()
		curCost := refCost(cur, opts.Sched)
		if curCost == model.Infinity {
			return nil, fmt.Errorf("ref: initial order is unschedulable")
		}
		res := &Result{Initial: curCost, Improved: curCost, Evaluations: 1}
		c := refChain{res: res}
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
		temp := opts.Temperature
		if temp <= 0 {
			temp = 0.05
		}
		temperature := temp * float64(curCost)
		cooling := opts.Cooling
		if cooling <= 0 || cooling >= 1 {
			cooling = 0.995
		}
		budget := opts.maxEvals()
		ms := newMoveSet(cur.Cores, cur.Edges())
		for res.Evaluations < budget {
			moves := ms.legal(cur)
			if len(moves) == 0 {
				break
			}
			mv := moves[rng.Intn(len(moves))]
			cur.SwapOrder(model.CoreID(mv[0]), mv[1])
			cand := refCost(cur, opts.Sched)
			res.Evaluations++
			delta := float64(cand - curCost)
			if delta <= 0 || (temperature > 0 && rng.Float64() < math.Exp(-delta/temperature)) {
				curCost = cand
				res.Moves = append(res.Moves, mv)
				if cand < res.Improved {
					res.Improved = cand
					c.bestLen = len(res.Moves)
				}
			} else {
				cur.SwapOrder(model.CoreID(mv[0]), mv[1])
			}
			temperature *= cooling
		}
		chains[i] = c
	}
	winner := chains[0]
	total := 0
	for _, c := range chains {
		total += c.res.Evaluations
		if c.res.Improved < winner.res.Improved {
			winner = c
		}
	}
	winner.res.Evaluations = total
	best := g.Clone()
	for _, mv := range winner.res.Moves[:winner.bestLen] {
		best.SwapOrder(model.CoreID(mv[0]), mv[1])
	}
	winner.res.Best = best
	return winner.res, nil
}

// equalResult compares every decision-bearing field of two results,
// including the returned graph's canonical fingerprint.
func equalResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Initial != want.Initial || got.Improved != want.Improved {
		t.Fatalf("%s: objective %d→%d, want %d→%d", label, got.Initial, got.Improved, want.Initial, want.Improved)
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("%s: evaluations %d, want %d", label, got.Evaluations, want.Evaluations)
	}
	if len(got.Moves) != len(want.Moves) {
		t.Fatalf("%s: %d accepted moves, want %d\n got: %v\nwant: %v", label, len(got.Moves), len(want.Moves), got.Moves, want.Moves)
	}
	for i := range got.Moves {
		if got.Moves[i] != want.Moves[i] {
			t.Fatalf("%s: move[%d] = %v, want %v", label, i, got.Moves[i], want.Moves[i])
		}
	}
	if gf, wf := got.Best.Fingerprint(), want.Best.Fingerprint(); gf != wf {
		t.Fatalf("%s: best graph fingerprint %s, want %s", label, gf, wf)
	}
}

// TestScalarizedBitIdenticalToReference is the refactor's pin: over the
// 216-instance corpus, hill climbing and annealing through the layered
// move/objective implementation — warm replay, worker pools, restart
// parallelism rotating across instances — reproduce the sequential cold
// reference bit for bit.
func TestScalarizedBitIdenticalToReference(t *testing.T) {
	ctx := context.Background()
	corpus := diffCorpus()
	if len(corpus) != 216 {
		t.Fatalf("corpus has %d instances, want 216", len(corpus))
	}
	for ci, p := range corpus {
		g := gen.MustLayered(p)
		label := fmt.Sprintf("corpus[%d] %dx%d %dc%db shared=%v seed=%d",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank, p.Seed)

		// Hill climb: jobs level and warm-start rotate across instances;
		// neither may change a single decision.
		hcOpts := Options{
			Sched:            corpusOpts(ci),
			MaxEvaluations:   40,
			Jobs:             1 + ci%4,
			DisableWarmStart: ci%5 == 0,
		}
		want, err := refHillClimb(g, hcOpts)
		if err != nil {
			t.Fatalf("%s: refHillClimb: %v", label, err)
		}
		got, err := HillClimb(ctx, g, hcOpts)
		if err != nil {
			t.Fatalf("%s: HillClimb: %v", label, err)
		}
		equalResult(t, label+" hillclimb", got, want)

		// Annealing: restart count, jobs level, and seed rotate.
		anOpts := Options{
			Sched:          corpusOpts(ci + 1),
			MaxEvaluations: 30,
			Seed:           int64(ci),
			Restarts:       1 + ci%3,
			Jobs:           1 + ci%3,
		}
		wantA, err := refAnneal(g, anOpts)
		if err != nil {
			t.Fatalf("%s: refAnneal: %v", label, err)
		}
		gotA, err := Anneal(ctx, g, anOpts)
		if err != nil {
			t.Fatalf("%s: Anneal: %v", label, err)
		}
		equalResult(t, label+" anneal", gotA, wantA)
	}
}
