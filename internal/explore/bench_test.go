package explore

import (
	"context"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
)

// benchGraph is an NL-shaped instance (few wide layers → long per-core
// orders) of n = layers × layerSize tasks, the regime ISSUE 2 targets for
// the ≥2x warm-start speedup on neighborhood evaluation.
func benchGraph(b *testing.B, layers, layerSize int) *model.Graph {
	b.Helper()
	p := gen.NewParams(layers, layerSize)
	p.Seed = 1
	p.Cores, p.Banks = 8, 4
	return gen.MustLayered(p)
}

// BenchmarkHillClimbWarmStart times a fixed hill-climb evaluation budget
// with warm start on and off. The walks are bit-identical (pinned by
// TestHillClimbWarmStartInvariant), so the ratio isolates the warm-start
// win on real neighborhood evaluation.
func BenchmarkHillClimbWarmStart(b *testing.B) {
	for _, size := range []struct{ layers, layerSize int }{
		{4, 32},  // n=128
		{4, 64},  // n=256
		{4, 128}, // n=512
	} {
		n := size.layers * size.layerSize
		g := benchGraph(b, size.layers, size.layerSize)
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"warm", false}, {"cold", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				opts := Options{MaxEvaluations: 600, Jobs: 1, DisableWarmStart: mode.disable}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := HillClimb(context.Background(), g, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
