package pareto

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"sort"
)

// Point is one member of a Pareto front: the candidate's canonical graph
// fingerprint, its bank-assignment policy, and its objective values in the
// search's objective order. The genome is carried for offline consumers
// (miaopt's result materialization) but stays out of the serialized form.
type Point struct {
	Fingerprint string    `json:"fingerprint"`
	Policy      string    `json:"policy"`
	Values      []float64 `json:"values"`
	Genome      *Genome   `json:"-"`
}

// dominates reports Pareto dominance: a is no worse than b everywhere and
// strictly better somewhere (all objectives minimized).
func dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// archive is the search's global non-dominated set, deduplicated by
// candidate fingerprint. Merging only ever removes dominated points, so
// the front reported after each generation is monotonically non-dominated:
// every earlier point is either still present or dominated by a newer one.
type archive struct {
	points []Point
	seen   map[string]bool // fingerprints ever admitted (dedup, incl. pruned)
}

func newArchive() *archive {
	return &archive{seen: make(map[string]bool)}
}

// add merges one candidate, returning whether the front changed.
func (a *archive) add(p Point) bool {
	if a.seen[p.Fingerprint] {
		return false
	}
	a.seen[p.Fingerprint] = true
	for i := range a.points {
		if dominates(a.points[i].Values, p.Values) || equalValues(a.points[i].Values, p.Values) {
			return false
		}
	}
	kept := a.points[:0]
	for _, q := range a.points {
		if !dominates(p.Values, q.Values) {
			kept = append(kept, q)
		}
	}
	a.points = append(kept, p)
	return true
}

// front returns the current front in canonical order: objective values
// lexicographically ascending, fingerprint as the tie-break.
func (a *archive) front() []Point {
	out := append([]Point(nil), a.points...)
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Values, out[j].Values
		for k := range vi {
			if vi[k] != vj[k] {
				return vi[k] < vj[k]
			}
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

func equalValues(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nonDominatedSort is NSGA-II's fast non-dominated sort: it partitions the
// population (by index) into fronts F₀, F₁, ... where F₀ is the
// non-dominated set, F₁ is non-dominated once F₀ is removed, and so on.
// Indices within a front stay in ascending order, one of the determinism
// anchors of the search.
func nonDominatedSort(values [][]float64) [][]int {
	n := len(values)
	domCount := make([]int, n)    // how many dominate i
	dominated := make([][]int, n) // whom i dominates
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case dominates(values[i], values[j]):
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			case dominates(values[j], values[i]):
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	var fronts [][]int
	var cur []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			cur = append(cur, i)
		}
	}
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next)
		cur = next
	}
	return fronts
}

// crowdingDistance computes NSGA-II's crowding metric for one front:
// boundary points get +Inf, interior points the normalized perimeter of
// the hyper-box spanned by their neighbors per objective. Sorting within
// each objective breaks value ties by population index, and degenerate
// ranges (zero spread, or the ±Inf values of unschedulable candidates)
// contribute nothing — both keep the metric a pure function of the values.
func crowdingDistance(front []int, values [][]float64) map[int]float64 {
	dist := make(map[int]float64, len(front))
	for _, i := range front {
		dist[i] = 0
	}
	if len(front) == 0 {
		return dist
	}
	m := len(values[front[0]])
	idx := make([]int, len(front))
	for obj := 0; obj < m; obj++ {
		copy(idx, front)
		sort.Slice(idx, func(a, b int) bool {
			va, vb := values[idx[a]][obj], values[idx[b]][obj]
			if va != vb {
				return va < vb
			}
			return idx[a] < idx[b]
		})
		lo, hi := values[idx[0]][obj], values[idx[len(idx)-1]][obj]
		span := hi - lo
		dist[idx[0]] = math.Inf(1)
		dist[idx[len(idx)-1]] = math.Inf(1)
		if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
			continue
		}
		for p := 1; p+1 < len(idx); p++ {
			d := (values[idx[p+1]][obj] - values[idx[p-1]][obj]) / span
			if !math.IsInf(dist[idx[p]], 1) {
				dist[idx[p]] += d
			}
		}
	}
	return dist
}

// encodedFront is the canonical serialized form of a search outcome.
type encodedFront struct {
	Objectives  []string `json:"objectives"`
	Generations int      `json:"generations"`
	Evaluations int      `json:"evaluations"`
	Front       []Point  `json:"front"`
}

// Encode renders the result as canonical JSON: fixed key order, points in
// canonical front order, no whitespace variance. Byte-identical across
// worker counts and repeated seeded runs — the property the determinism
// suite pins.
func (r *Result) Encode() []byte {
	b, err := json.MarshalIndent(encodedFront{
		Objectives:  r.Objectives,
		Generations: r.Generations,
		Evaluations: r.Evaluations,
		Front:       r.Front,
	}, "", "  ")
	if err != nil {
		panic("pareto: front encoding failed: " + err.Error())
	}
	return append(b, '\n')
}

// FrontFingerprint is the sha256 hex digest of the canonical encoding —
// the golden value the pareto-smoke CI gate compares against.
func (r *Result) FrontFingerprint() string {
	sum := sha256.Sum256(r.Encode())
	return hex.EncodeToString(sum[:])
}
