package pareto

import (
	"math/rand"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/explore/move"
	"github.com/mia-rt/mia/internal/model"
)

// PolicyBaseline marks a genome that keeps the bank-assignment policy the
// image was compiled under (whatever table that was), as opposed to one of
// the explicit move.Policy values a mutation switched to.
const PolicyBaseline move.Policy = -1

// Genome is one candidate configuration: a full task→core assignment, the
// per-core execution orders of that assignment, and the bank-assignment
// policy. The baseline genome mirrors the compiled image; mutations walk
// all three dimensions.
type Genome struct {
	Assign []model.CoreID
	Orders [][]model.TaskID
	// Policy is PolicyBaseline or an explicit move.Policy the demands are
	// re-derived under.
	Policy move.Policy
	// structural is true when Assign or Policy differ from the compiled
	// image, forcing recompile+cold evaluation instead of the warm
	// order-overlay path.
	structural bool
}

// baselineGenome snapshots the compiled image's configuration.
func baselineGenome(img *engine.Image) *Genome {
	g := &Genome{
		Assign: append([]model.CoreID(nil), img.CoreOf...),
		Orders: make([][]model.TaskID, img.Cores),
		Policy: PolicyBaseline,
	}
	for k := 0; k < img.Cores; k++ {
		g.Orders[k] = append([]model.TaskID(nil), img.Order(model.CoreID(k))...)
	}
	return g
}

// clone deep-copies the genome.
func (g *Genome) clone() *Genome {
	c := &Genome{
		Assign:     append([]model.CoreID(nil), g.Assign...),
		Orders:     make([][]model.TaskID, len(g.Orders)),
		Policy:     g.Policy,
		structural: g.structural,
	}
	for k, ord := range g.Orders {
		c.Orders[k] = append([]model.TaskID(nil), ord...)
	}
	return c
}

// mutator holds the immutable legality context of the variation operators:
// the direct-dependency pair set and geometry. All randomness comes from
// the caller's seeded rng, drawn sequentially in the main search goroutine.
type mutator struct {
	img *engine.Image
	dep map[[2]model.TaskID]bool
}

func newMutator(img *engine.Image) *mutator {
	m := &mutator{img: img, dep: make(map[[2]model.TaskID]bool, len(img.Edges()))}
	for _, e := range img.Edges() {
		m.dep[[2]model.TaskID{e.From, e.To}] = true
	}
	return m
}

// mutationRetries bounds how often an operator redraws before giving up
// and leaving the child identical to its parent (a duplicate is harmless:
// it evaluates to a known point and never enters the archive twice).
const mutationRetries = 8

// mutate derives a child from parent by one random move: adjacent order
// swap (70%), task remap (20%), or bank-policy flip (10%).
func (m *mutator) mutate(parent *Genome, rng *rand.Rand) *Genome {
	child := parent.clone()
	switch r := rng.Float64(); {
	case r < 0.7:
		m.mutateSwap(child, rng)
	case r < 0.9:
		m.mutateRemap(child, rng)
	default:
		m.mutatePolicy(child, rng)
	}
	return child
}

// mutateSwap exchanges a random dependency-free adjacent pair on a random
// core.
func (m *mutator) mutateSwap(g *Genome, rng *rand.Rand) {
	for try := 0; try < mutationRetries; try++ {
		k := rng.Intn(len(g.Orders))
		ord := g.Orders[k]
		if len(ord) < 2 {
			continue
		}
		pos := rng.Intn(len(ord) - 1)
		if m.dep[[2]model.TaskID{ord[pos], ord[pos+1]}] {
			continue
		}
		ord[pos], ord[pos+1] = ord[pos+1], ord[pos]
		return
	}
}

// mutateRemap migrates a random task to a random other core, inserted
// uniformly within the window that keeps the target order consistent with
// the task's direct same-core dependencies (after all predecessors, before
// all successors present on that core). Cross-core cycles can still arise;
// those candidates evaluate as unschedulable and never reach the front.
func (m *mutator) mutateRemap(g *Genome, rng *rand.Rand) {
	if m.img.Cores < 2 {
		return
	}
	for try := 0; try < mutationRetries; try++ {
		task := model.TaskID(rng.Intn(len(g.Assign)))
		to := model.CoreID(rng.Intn(m.img.Cores - 1))
		if to >= g.Assign[task] {
			to++
		}
		dst := g.Orders[to]
		lo, hi := 0, len(dst)
		for i, id := range dst {
			if m.dep[[2]model.TaskID{id, task}] {
				lo = i + 1
			}
			if m.dep[[2]model.TaskID{task, id}] && i < hi {
				hi = i
			}
		}
		if lo > hi {
			continue
		}
		at := lo + rng.Intn(hi-lo+1)
		from := g.Assign[task]
		src := g.Orders[from]
		fromPos := -1
		for i, id := range src {
			if id == task {
				fromPos = i
				break
			}
		}
		g.Orders[from] = append(src[:fromPos:fromPos], src[fromPos+1:]...)
		newDst := make([]model.TaskID, 0, len(dst)+1)
		newDst = append(newDst, dst[:at]...)
		newDst = append(newDst, task)
		newDst = append(newDst, dst[at:]...)
		g.Orders[to] = newDst
		g.Assign[task] = to
		g.structural = true
		return
	}
}

// mutatePolicy switches to a random explicit bank-assignment policy.
func (m *mutator) mutatePolicy(g *Genome, rng *rand.Rand) {
	g.Policy = move.Policy(rng.Intn(3))
	g.structural = true
}
