package pareto

import (
	"bytes"
	"context"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
)

// smokeImage is the instance the determinism suite and the pareto-smoke CI
// gate share: a 20-task layered graph on a 4-core/4-bank platform.
func smokeImage(t testing.TB) *engine.Image {
	t.Helper()
	p := gen.NewParams(5, 4)
	p.Seed = 11
	p.Cores, p.Banks = 4, 4
	img, err := engine.Compile(gen.MustLayered(p), sched.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return img
}

func smokeOptions(jobs int) Options {
	return Options{PopSize: 12, Generations: 8, Seed: 7, Jobs: jobs}
}

// TestByteIdenticalAcrossJobs pins the determinism contract: the canonical
// encoding of the front is byte-identical at every worker count.
func TestByteIdenticalAcrossJobs(t *testing.T) {
	img := smokeImage(t)
	ctx := context.Background()
	ref, err := Search(ctx, img, smokeOptions(1))
	if err != nil {
		t.Fatalf("Search(jobs=1): %v", err)
	}
	if len(ref.Front) == 0 {
		t.Fatalf("empty front")
	}
	want := ref.Encode()
	for _, jobs := range []int{2, 3, 8} {
		got, err := Search(ctx, img, smokeOptions(jobs))
		if err != nil {
			t.Fatalf("Search(jobs=%d): %v", jobs, err)
		}
		if !bytes.Equal(got.Encode(), want) {
			t.Fatalf("front at jobs=%d diverges from jobs=1:\n%s\nvs\n%s",
				jobs, got.Encode(), want)
		}
	}
}

// TestRepeatedSeededRunsIdentical reruns the same seeded search and demands
// byte-identical output; a different seed must still produce a valid
// (non-empty, mutually non-dominated) front.
func TestRepeatedSeededRunsIdentical(t *testing.T) {
	img := smokeImage(t)
	ctx := context.Background()
	a, err := Search(ctx, img, smokeOptions(2))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	b, err := Search(ctx, img, smokeOptions(2))
	if err != nil {
		t.Fatalf("Search (rerun): %v", err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("repeated seeded runs diverge:\n%s\nvs\n%s", a.Encode(), b.Encode())
	}
	opts := smokeOptions(2)
	opts.Seed = 99
	c, err := Search(ctx, img, opts)
	if err != nil {
		t.Fatalf("Search (seed 99): %v", err)
	}
	assertMutuallyNonDominated(t, "seed 99", c.Front)
}

func assertMutuallyNonDominated(t *testing.T, label string, pts []Point) {
	t.Helper()
	if len(pts) == 0 {
		t.Fatalf("%s: empty front", label)
	}
	for i := range pts {
		for j := range pts {
			if i != j && dominates(pts[i].Values, pts[j].Values) {
				t.Fatalf("%s: front not non-dominated: %v dominates %v",
					label, pts[i].Values, pts[j].Values)
			}
		}
	}
}

// TestFrontUpdatesMonotone replays the OnFront stream and checks the served
// contract: generations and evaluation counts never decrease, every
// snapshot is mutually non-dominated, and every point of an earlier
// snapshot is either still present later or dominated by a successor —
// the front only ever improves.
func TestFrontUpdatesMonotone(t *testing.T) {
	img := smokeImage(t)
	var updates []FrontUpdate
	opts := smokeOptions(2)
	opts.OnFront = func(u FrontUpdate) { updates = append(updates, u) }
	res, err := Search(context.Background(), img, opts)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(updates) == 0 {
		t.Fatalf("no front updates emitted")
	}
	for n, u := range updates {
		assertMutuallyNonDominated(t, "update", u.Points)
		if n == 0 {
			continue
		}
		prev := updates[n-1]
		if u.Generation < prev.Generation || u.Evaluations <= prev.Evaluations {
			t.Fatalf("update %d not monotone: gen %d→%d evals %d→%d",
				n, prev.Generation, u.Generation, prev.Evaluations, u.Evaluations)
		}
		for _, p := range prev.Points {
			if !survivedOrDominated(p, u.Points) {
				t.Fatalf("update %d dropped point %v (%s) without dominating it",
					n, p.Values, p.Fingerprint[:12])
			}
		}
	}
	last := updates[len(updates)-1]
	if !bytes.Equal(encodePoints(last.Points), encodePoints(res.Front)) {
		t.Fatalf("final update differs from result front")
	}
}

func survivedOrDominated(p Point, later []Point) bool {
	for _, q := range later {
		if q.Fingerprint == p.Fingerprint || dominates(q.Values, p.Values) || equalValues(q.Values, p.Values) {
			return true
		}
	}
	return false
}

func encodePoints(pts []Point) []byte {
	r := Result{Front: pts}
	return r.Encode()
}

// TestCancellationStopsSearch cancels the context from the first front
// update; the search must return promptly with the context's error.
func TestCancellationStopsSearch(t *testing.T) {
	img := smokeImage(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := smokeOptions(2)
	opts.OnFront = func(FrontUpdate) { cancel() }
	if _, err := Search(ctx, img, opts); err == nil {
		t.Fatalf("Search ignored cancellation")
	}
}

// TestFrontExploresStructuralMoves checks the portfolio actually leaves the
// order-only subspace: with enough generations at this size the front or
// archive history includes at least one remapped or repolicied candidate.
func TestFrontExploresStructuralMoves(t *testing.T) {
	img := smokeImage(t)
	opts := Options{PopSize: 16, Generations: 12, Seed: 3, Jobs: 4}
	structural := false
	opts.OnFront = func(u FrontUpdate) {
		for _, p := range u.Points {
			if p.Genome != nil && p.Genome.structural {
				structural = true
			}
		}
	}
	if _, err := Search(context.Background(), img, opts); err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !structural {
		t.Fatalf("no structural candidate ever reached the front")
	}
}

// TestSmokeGoldenFingerprint is the pareto-smoke CI gate: the canonical
// front fingerprint of the fixed smoke search is pinned. A legitimate
// algorithm change must update the golden value consciously.
func TestSmokeGoldenFingerprint(t *testing.T) {
	const golden = "58840b77696f24e872d221df89c7859879e7b8569a1f0ece265931bbb6978e7f"
	img := smokeImage(t)
	res, err := Search(context.Background(), img, smokeOptions(4))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if fp := res.FrontFingerprint(); fp != golden {
		t.Fatalf("front fingerprint drifted:\n  got  %s\n  want %s\nfront:\n%s",
			fp, golden, res.Encode())
	}
}

// BenchmarkParetoGeneration measures one full smoke-scale NSGA-II search —
// the perf pin benchdiff tracks in BENCH_baseline.json.
func BenchmarkParetoGeneration(b *testing.B) {
	img := smokeImage(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(ctx, img, smokeOptions(4)); err != nil {
			b.Fatalf("Search: %v", err)
		}
	}
}
