// Package pareto is the multi-objective search layer of the design-space
// framework: an NSGA-II portfolio search over the full move set — per-core
// order permutations, task→core remapping, bank-policy flips — optimizing
// a vector of pluggable objectives at once and reporting the global Pareto
// front (makespan vs. peak per-bank interference vs. bank balance by
// default, the SINTEO-style trade-off the ROADMAP's search item calls for).
//
// Determinism is load-bearing: fronts must be byte-identical across worker
// counts and repeated runs of the same seed, because golden front
// fingerprints gate CI and served jobs stream front updates that clients
// may replay. The search achieves it the same way the scalarized layer
// does — every random draw (initialization, tournament selection,
// variation) happens sequentially in the search goroutine against one
// seeded source; only candidate evaluation fans out, over pool.MapWith
// with one long-lived evaluation worker per slot, and results return in
// submission order. Non-dominated sorting, crowding, and environmental
// selection break all ties by population index; the archive orders its
// front canonically by objective values, then fingerprint.
//
// Each evaluation worker owns a warm analyzer over the shared compiled
// image: order-only genomes load their permutation into the worker's order
// overlay and analyze without any recompile or graph materialization;
// structural genomes (remapped or repolicied) materialize a graph, rebuild
// demands from an explicit bank table, recompile, and analyze cold. Both
// paths are pure functions of the genome, so results never depend on which
// worker evaluated what.
package pareto

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/explore/objective"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/pool"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

// Options configures one NSGA-II search.
type Options struct {
	// Objectives is the vector to minimize; nil means the default
	// makespan / peak-interference / bank-variance triple.
	Objectives []objective.Objective
	// PopSize is the population size (default 24, minimum 2).
	PopSize int
	// Generations is the number of NSGA-II generations (default 30).
	Generations int
	// Seed drives the single deterministic random source.
	Seed int64
	// Jobs bounds concurrent candidate evaluations (≤ 1 is sequential).
	// The front is byte-identical at every jobs level.
	Jobs int
	// OnFront, when set, is called from the search goroutine after every
	// generation whose archive changed, with the current global front in
	// canonical order. Served jobs stream these updates.
	OnFront func(FrontUpdate)
}

func (o Options) popSize() int {
	if o.PopSize < 2 {
		if o.PopSize != 0 {
			return 2
		}
		return 24
	}
	return o.PopSize
}

func (o Options) generations() int {
	if o.Generations <= 0 {
		return 30
	}
	return o.Generations
}

func (o Options) objectives() []objective.Objective {
	if len(o.Objectives) == 0 {
		return objective.Default()
	}
	return o.Objectives
}

// FrontUpdate is one streamed snapshot of the global front.
type FrontUpdate struct {
	Generation  int     `json:"generation"`
	Evaluations int     `json:"evaluations"`
	Points      []Point `json:"points"`
}

// Result is a finished search: the global Pareto front in canonical order
// plus the search's accounting.
type Result struct {
	Objectives  []string
	Generations int
	Evaluations int
	Front       []Point
}

// worker is one evaluation slot: a warm analyzer over the shared image for
// order-only genomes, and the engine façade for cold analyses of
// recompiled structural genomes.
type worker struct {
	img  *engine.Image
	eng  *engine.Engine
	w    engine.Warm
	objs []objective.Objective
}

func (wk *worker) close() { engine.CloseWarm(wk.w) }

// evalOut is one candidate's evaluation: objective values (all +Inf when
// the candidate is unschedulable or structurally invalid), the candidate's
// canonical fingerprint, and its policy label.
type evalOut struct {
	values []float64
	fp     string
	policy string
	valid  bool
}

// eval analyzes one genome. Pure function of the genome: warm order-only
// evaluations are bit-identical to cold ones, and structural evaluations
// recompile from scratch.
func (wk *worker) eval(ctx context.Context, g *Genome) evalOut {
	policy := "baseline"
	if g.Policy != PolicyBaseline {
		policy = g.Policy.String()
	}
	if !g.structural {
		ord := wk.w.Orders()
		for k := range g.Orders {
			ord.SetOrder(model.CoreID(k), g.Orders[k])
		}
		out := evalOut{fp: wk.img.FingerprintOrders(ord), policy: policy}
		res, err := wk.w.Analyze(ctx)
		if err != nil {
			out.values = infValues(len(wk.objs))
			return out
		}
		out.valid = true
		out.values = scores(wk.objs, objective.Eval{Img: wk.img, Res: res})
		return out
	}
	gg := wk.img.NewGraph()
	for id, core := range g.Assign {
		gg.Task(model.TaskID(id)).Core = core
	}
	for k := range g.Orders {
		gg.SetOrder(model.CoreID(k), g.Orders[k])
	}
	tab := append([]model.BankID(nil), wk.img.BankTable...)
	if g.Policy != PolicyBaseline {
		tab = g.Policy.Table(gg.Cores, gg.Banks)
	}
	gg.CompileDemands(func(k model.CoreID) model.BankID { return tab[k] })
	img, err := engine.Compile(gg, wk.img.Opts)
	if err != nil {
		return evalOut{values: infValues(len(wk.objs)), fp: gg.Fingerprint(), policy: policy}
	}
	out := evalOut{fp: img.Fingerprint(), policy: policy}
	res, err := wk.eng.Analyze(ctx, img)
	if err != nil {
		out.values = infValues(len(wk.objs))
		return out
	}
	out.valid = true
	out.values = scores(wk.objs, objective.Eval{Img: img, Res: res})
	return out
}

func infValues(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Inf(1)
	}
	return v
}

func scores(objs []objective.Objective, e objective.Eval) []float64 {
	v := make([]float64, len(objs))
	for i, o := range objs {
		v[i] = o.Score(e)
	}
	return v
}

// indiv is one population member with its NSGA-II bookkeeping.
type indiv struct {
	g     *Genome
	out   evalOut
	rank  int
	crowd float64
}

// Search runs the NSGA-II portfolio search over the compiled image and
// returns the global Pareto front. The outcome is a pure function of
// (image, Options) at every Jobs level.
func Search(ctx context.Context, img *engine.Image, opts Options) (*Result, error) {
	objs := opts.objectives()
	popSize := opts.popSize()
	gens := opts.generations()
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}
	eng := engine.MustNew(engine.Incremental)
	workers := make([]*worker, jobs)
	for i := range workers {
		workers[i] = &worker{img: img, eng: eng, w: eng.NewWarm(img), objs: objs}
		defer workers[i].close()
	}
	evaluate := func(gs []*Genome) ([]evalOut, error) {
		return pool.MapWith(ctx, workers, len(gs),
			func(c context.Context, wk *worker, i int) (evalOut, error) {
				return wk.eval(c, gs[i]), nil
			})
	}

	mut := newMutator(img)
	rng := rand.New(rand.NewSource(opts.Seed))

	// Initial population: the baseline configuration plus seeded mutants
	// at increasing edit distance.
	genomes := make([]*Genome, popSize)
	genomes[0] = baselineGenome(img)
	for i := 1; i < popSize; i++ {
		child := genomes[0]
		for s := 1 + rng.Intn(3); s > 0; s-- {
			child = mut.mutate(child, rng)
		}
		genomes[i] = child
	}
	outs, err := evaluate(genomes)
	if err != nil {
		return nil, err
	}
	totalEvals := len(genomes)

	arch := newArchive()
	anyValid := false
	for i, out := range outs {
		if out.valid {
			anyValid = true
			arch.add(point(genomes[i], out, objs))
		}
	}
	if !anyValid {
		return nil, fmt.Errorf("pareto: no schedulable candidate in the initial population")
	}
	emit(opts, FrontUpdate{Generation: 0, Evaluations: totalEvals, Points: arch.front()})

	pop := make([]indiv, popSize)
	for i := range pop {
		pop[i] = indiv{g: genomes[i], out: outs[i]}
	}
	rerank(pop)

	for gen := 1; gen <= gens; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Variation: all randomness drawn sequentially here, before the
		// parallel evaluation fan-out.
		offspring := make([]*Genome, popSize)
		for i := range offspring {
			offspring[i] = mut.mutate(pop[tournament(rng, pop)].g, rng)
		}
		offOuts, err := evaluate(offspring)
		if err != nil {
			return nil, err
		}
		totalEvals += len(offspring)
		changed := false
		for i, out := range offOuts {
			if out.valid && arch.add(point(offspring[i], out, objs)) {
				changed = true
			}
		}
		if changed {
			emit(opts, FrontUpdate{Generation: gen, Evaluations: totalEvals, Points: arch.front()})
		}

		// Environmental selection over parents ∪ offspring.
		combined := make([]indiv, 0, 2*popSize)
		combined = append(combined, pop...)
		for i := range offspring {
			combined = append(combined, indiv{g: offspring[i], out: offOuts[i]})
		}
		values := make([][]float64, len(combined))
		for i := range combined {
			values[i] = combined[i].out.values
		}
		fronts := nonDominatedSort(values)
		next := make([]indiv, 0, popSize)
		for _, f := range fronts {
			if len(next)+len(f) <= popSize {
				for _, i := range f {
					next = append(next, combined[i])
				}
				if len(next) == popSize {
					break
				}
				continue
			}
			// Truncate the split front by crowding distance, most
			// isolated first, population index as the tie-break.
			crowd := crowdingDistance(f, values)
			trunc := append([]int(nil), f...)
			sort.Slice(trunc, func(a, b int) bool {
				ca, cb := crowd[trunc[a]], crowd[trunc[b]]
				if ca != cb {
					return ca > cb
				}
				return trunc[a] < trunc[b]
			})
			for _, i := range trunc[:popSize-len(next)] {
				next = append(next, combined[i])
			}
			break
		}
		pop = next
		rerank(pop)
	}

	return &Result{
		Objectives:  objective.NamesOf(objs),
		Generations: gens,
		Evaluations: totalEvals,
		Front:       arch.front(),
	}, nil
}

func point(g *Genome, out evalOut, objs []objective.Objective) Point {
	return Point{
		Fingerprint: out.fp,
		Policy:      out.policy,
		Values:      append([]float64(nil), out.values...),
		Genome:      g,
	}
}

func emit(opts Options, u FrontUpdate) {
	if opts.OnFront != nil {
		opts.OnFront(u)
	}
}

// rerank recomputes ranks and crowding distances of the current population
// (the tournament operator's fitness).
func rerank(pop []indiv) {
	values := make([][]float64, len(pop))
	for i := range pop {
		values[i] = pop[i].out.values
	}
	for rank, f := range nonDominatedSort(values) {
		crowd := crowdingDistance(f, values)
		for _, i := range f {
			pop[i].rank = rank
			pop[i].crowd = crowd[i]
		}
	}
}

// tournament is binary tournament selection on (rank, crowding distance),
// ties broken by the lower population index.
func tournament(rng *rand.Rand, pop []indiv) int {
	i, j := rng.Intn(len(pop)), rng.Intn(len(pop))
	switch {
	case pop[i].rank != pop[j].rank:
		if pop[i].rank < pop[j].rank {
			return i
		}
		return j
	case pop[i].crowd != pop[j].crowd:
		if pop[i].crowd > pop[j].crowd {
			return i
		}
		return j
	case i <= j:
		return i
	}
	return j
}
