package sim

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/fixpoint"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func allPatterns() []Pattern { return []Pattern{Front, Back, Spread, Shuffled} }

func TestIsolatedTaskMatchesWCET(t *testing.T) {
	// A single task with no contention must take exactly its WCET,
	// whatever the access pattern.
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 100, Local: 30})
	g := b.MustBuild()
	for _, p := range allPatterns() {
		out, err := Run(g, []model.Cycles{0}, Config{Pattern: p, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if out.Finish[0] != 100 || out.Stall[0] != 0 {
			t.Errorf("%v: finish %d stall %d, want 100/0", p, out.Finish[0], out.Stall[0])
		}
	}
}

func TestPaperRoundRobinExample(t *testing.T) {
	// Section II.A: three cores each writing 8 words through a 1-word
	// round-robin bus. Simulated stalls must not exceed the analytic 16,
	// and with back-to-back accesses contention must actually appear.
	b := model.NewBuilder(3, 1)
	for i := 0; i < 3; i++ {
		b.AddTask(model.TaskSpec{WCET: 24, Core: model.CoreID(i), Local: 8})
	}
	g := b.MustBuild()
	out, err := Run(g, []model.Cycles{0, 0, 0}, Config{Pattern: Front})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	totalStall := model.Cycles(0)
	for i := 0; i < 3; i++ {
		if out.Stall[i] > 16 {
			t.Errorf("core %d stalled %d > analytic bound 16", i, out.Stall[i])
		}
		totalStall += out.Stall[i]
	}
	if totalStall == 0 {
		t.Error("no contention simulated for three cores hammering one bank")
	}
}

func TestTimeTriggeredStarts(t *testing.T) {
	// Tasks must start exactly at their release dates even when inputs
	// are ready earlier.
	b := model.NewBuilder(2, 2)
	p := b.AddTask(model.TaskSpec{WCET: 5, Core: 0})
	c := b.AddTask(model.TaskSpec{WCET: 5, Core: 1})
	b.AddEdge(p, c, 0)
	g := b.MustBuild()
	out, err := Run(g, []model.Cycles{0, 50}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Start[c] != 50 {
		t.Errorf("consumer started at %d, want exactly 50", out.Start[c])
	}
}

func TestTimeTriggeredViolationDetected(t *testing.T) {
	// Two tasks on one core with overlapping declared windows: invalid
	// schedule, must be reported.
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 10})
	b.AddTask(model.TaskSpec{WCET: 10})
	g := b.MustBuild()
	_, err := Run(g, []model.Cycles{0, 5}, Config{})
	if err == nil || !strings.Contains(err.Error(), "time-triggered violation") {
		t.Fatalf("err = %v, want time-triggered violation", err)
	}
}

func TestReleaseLengthMismatch(t *testing.T) {
	g := gen.Figure1()
	if _, err := Run(g, []model.Cycles{0}, Config{}); err == nil {
		t.Fatal("mismatched release slice accepted")
	}
}

func TestHorizonAbort(t *testing.T) {
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 1000})
	g := b.MustBuild()
	_, err := Run(g, []model.Cycles{0}, Config{Horizon: 10})
	if err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("err = %v, want horizon abort", err)
	}
}

func TestDemandBeyondWCETClamped(t *testing.T) {
	// Declared demand larger than the WCET can physically issue: the task
	// must still take exactly its WCET in isolation.
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 10, Local: 500})
	g := b.MustBuild()
	out, err := Run(g, []model.Cycles{0}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Finish[0] != 10 {
		t.Errorf("finish = %d, want 10", out.Finish[0])
	}
}

func TestScaledExecution(t *testing.T) {
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 100, Local: 10})
	g := b.MustBuild()
	out, err := Run(g, []model.Cycles{0}, Config{ExecNumerator: 1, ExecDenominator: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Finish[0] != 50 {
		t.Errorf("finish = %d, want 50 (half WCET)", out.Finish[0])
	}
}

// TestSoundnessAgainstIncremental is experiment E9: on random paper-style
// workloads, for every access pattern and for executions at and below the
// WCET, every simulated task must finish within its analyzed window.
func TestSoundnessAgainstIncremental(t *testing.T) {
	soundnessAgainst(t, "incremental", incremental.Schedule)
}

// TestSoundnessAgainstFixpoint repeats E9 for the baseline analysis.
func TestSoundnessAgainstFixpoint(t *testing.T) {
	soundnessAgainst(t, "fixpoint", fixpoint.Schedule)
}

func soundnessAgainst(t *testing.T, name string, analyze func(*model.Graph, sched.Options) (*sched.Result, error)) {
	t.Helper()
	configs := []struct {
		layers, size, cores, banks int
		shared                     bool
	}{
		{4, 4, 4, 4, false},
		{4, 4, 4, 1, true},
		{3, 8, 8, 8, false},
		{6, 2, 2, 1, true},
	}
	execs := []struct{ num, den int64 }{{0, 0}, {3, 4}, {1, 3}}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 4; seed++ {
			p := gen.NewParams(cfg.layers, cfg.size)
			p.Seed, p.Cores, p.Banks, p.SharedBank = seed, cfg.cores, cfg.banks, cfg.shared
			g := gen.MustLayered(p)
			opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
			res, err := analyze(g, opts)
			if err != nil {
				t.Fatalf("%s cfg %+v seed %d: %v", name, cfg, seed, err)
			}
			for _, pat := range allPatterns() {
				for _, ex := range execs {
					out, err := Run(g, res.Release, Config{
						Pattern: pat, Seed: seed,
						ExecNumerator: ex.num, ExecDenominator: ex.den,
					})
					if err != nil {
						t.Fatalf("%s cfg %+v seed %d %v: %v", name, cfg, seed, pat, err)
					}
					for i := range out.Finish {
						id := model.TaskID(i)
						if out.Finish[i] > res.Finish(id) {
							t.Fatalf("%s cfg %+v seed %d %v exec %d/%d: %s finished at %d, analysis bound %d — UNSOUND",
								name, cfg, seed, pat, ex.num, ex.den, id, out.Finish[i], res.Finish(id))
						}
						if out.Start[i] != res.Release[i] {
							t.Fatalf("%s: %s started at %d, release %d", name, id, out.Start[i], res.Release[i])
						}
					}
					if out.Makespan > res.Makespan {
						t.Fatalf("%s: simulated makespan %d > analyzed %d", name, out.Makespan, res.Makespan)
					}
				}
			}
		}
	}
}

// TestInterferenceIsReal shows the converse of soundness: scheduling with
// interference ignored (the None arbiter, Figure 1 top) yields windows that
// the simulated contention actually violates — the motivation for the whole
// analysis.
func TestInterferenceIsReal(t *testing.T) {
	b := model.NewBuilder(2, 1)
	b.AddTask(model.TaskSpec{WCET: 20, Core: 0, Local: 15})
	b.AddTask(model.TaskSpec{WCET: 20, Core: 1, Local: 15})
	g := b.MustBuild()
	naive, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewNone()})
	if err != nil {
		t.Fatalf("naive schedule: %v", err)
	}
	out, err := Run(g, naive.Release, Config{Pattern: Front})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	violated := false
	for i := range out.Finish {
		if out.Finish[i] > naive.Finish(model.TaskID(i)) {
			violated = true
		}
	}
	if !violated {
		t.Fatal("contention did not break the interference-blind schedule; the example is too weak")
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range allPatterns() {
		if p.String() == "" || strings.HasPrefix(p.String(), "Pattern(") {
			t.Errorf("pattern %d has no name", int(p))
		}
	}
	if !strings.HasPrefix(Pattern(99).String(), "Pattern(") {
		t.Error("unknown pattern String wrong")
	}
}

func TestStallAccounting(t *testing.T) {
	// Finish - Start must equal scaled WCET + stalls for every task.
	p := gen.NewParams(3, 4)
	p.Cores, p.Banks, p.SharedBank = 4, 1, true
	g := gen.MustLayered(p)
	res, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	out, err := Run(g, res.Release, Config{Pattern: Front})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, task := range g.Tasks() {
		got := out.Finish[i] - out.Start[i]
		want := task.WCET + out.Stall[i]
		if got != want {
			t.Errorf("%s: duration %d ≠ WCET %d + stall %d", task.ID, got, task.WCET, out.Stall[i])
		}
	}
}

// TestRoundRobinFairness verifies the arbiter hardware model itself:
// while cores are continuously requesting, between two consecutive grants
// to the same core on a bank every other core is granted at most once —
// the invariant that makes the analytic min(w, d) bound per competitor
// sound. The scenario saturates the bank (pure-access tasks, no compute
// gaps) so every unfinished core is pending at all times; round-robin may
// legitimately serve idle-period cores unboundedly, which this setup
// excludes by construction.
func TestRoundRobinFairness(t *testing.T) {
	b := model.NewBuilder(4, 1)
	for i := 0; i < 4; i++ {
		b.AddTask(model.TaskSpec{WCET: 25, Core: model.CoreID(i), Local: 25})
	}
	g := b.MustBuild()
	type grant struct {
		t    model.Cycles
		core model.CoreID
	}
	var grants []grant
	_, err := Run(g, []model.Cycles{0, 0, 0, 0}, Config{Pattern: Front, TraceGrant: func(tm model.Cycles, b model.BankID, c model.CoreID) {
		grants = append(grants, grant{tm, c})
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(grants) == 0 {
		t.Fatal("no grants recorded")
	}
	// For every pair of consecutive grants to the same core, count grants
	// to each other core in between.
	lastIdx := map[model.CoreID]int{}
	for i, gr := range grants {
		if prev, ok := lastIdx[gr.core]; ok {
			between := map[model.CoreID]int{}
			for _, mid := range grants[prev+1 : i] {
				between[mid.core]++
				if between[mid.core] > 1 {
					t.Fatalf("core %d granted twice between consecutive grants of core %d (around cycle %d)",
						mid.core, gr.core, gr.t)
				}
			}
		}
		lastIdx[gr.core] = i
	}
}

// TestGrantsServiceOneWordPerCycle sanity-checks the grant trace: a
// single-bank simulation never grants twice in the same cycle with unit
// latency.
func TestGrantsServiceOneWordPerCycle(t *testing.T) {
	b := model.NewBuilder(3, 1)
	for i := 0; i < 3; i++ {
		b.AddTask(model.TaskSpec{WCET: 30, Core: model.CoreID(i), Local: 10})
	}
	g := b.MustBuild()
	seen := map[model.Cycles]int{}
	_, err := Run(g, []model.Cycles{0, 0, 0}, Config{TraceGrant: func(tm model.Cycles, _ model.BankID, _ model.CoreID) {
		seen[tm]++
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for tm, n := range seen {
		if n > 1 {
			t.Fatalf("%d grants at cycle %d on one bank", n, tm)
		}
	}
}
