// Package sim is a cycle-level discrete simulator of the modeled platform:
// cores executing the time-triggered schedule and pushing their memory
// accesses through per-bank round-robin arbiters, one word per service
// slot. It stands in for the Kalray MPPA-256 hardware the paper targets
// (the paper itself never measures hardware — it analyzes against the
// arbiter model — so the simulator's role here is validation, not
// evaluation).
//
// Its purpose is experiment E9: demonstrating that the analytic worst-case
// response times are sound — for any access pattern, any actual execution
// time up to the WCET, and any seed, every simulated task finishes no later
// than its analyzed release + response time, and the time-triggered release
// discipline is respected exactly.
//
// The simulator executes tasks at their *declared* release dates (tasks
// never start early even when inputs are ready — the time-triggered
// property that makes the analysis compositional) and models each core as a
// sequence of unit operations: compute cycles and bank accesses. A task
// with WCET C and compiled demand D issues min(ΣD, ⌊C/L⌋) accesses — a task
// cannot physically perform more bus transactions than fit in its isolated
// execution time — while the analysis conservatively charges the full
// declared demand.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/mia-rt/mia/internal/model"
)

// Pattern selects when a task issues its memory accesses within its
// execution.
type Pattern int

const (
	// Front issues all accesses back-to-back at the start of the task:
	// the pattern that maximizes burst contention.
	Front Pattern = iota
	// Back issues all accesses at the end of the task.
	Back
	// Spread interleaves accesses uniformly with compute cycles.
	Spread
	// Shuffled permutes the operation sequence pseudo-randomly (seeded).
	Shuffled
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Front:
		return "front"
	case Back:
		return "back"
	case Spread:
		return "spread"
	case Shuffled:
		return "shuffled"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Pattern is the access-issue pattern (default Front).
	Pattern Pattern
	// Seed drives Shuffled patterns and ExecJitter.
	Seed int64
	// WordLatency is the bank service time per access (default 1). It must
	// match the latency the analysis arbiter used for the comparison to be
	// meaningful.
	WordLatency model.Cycles
	// ExecNumerator/ExecDenominator scale actual execution demand below
	// the WCET (e.g. 3/4 runs every task at 75% of its worst case; both 0
	// means full WCET). The analysis must stay sound for any actual
	// duration up to the WCET.
	ExecNumerator, ExecDenominator int64
	// Horizon aborts a runaway simulation (0 picks a generous bound from
	// the workload: releases + total work + total service, times four).
	Horizon model.Cycles
	// TraceGrant, when non-nil, observes every bank grant: the cycle it
	// starts, the bank, and the granted core. Used by the fairness tests
	// to verify the arbiter's round-robin property.
	TraceGrant func(t model.Cycles, b model.BankID, core model.CoreID)
}

// Outcome reports the simulated execution.
type Outcome struct {
	// Start and Finish are each task's simulated execution window.
	Start  []model.Cycles
	Finish []model.Cycles
	// Stall is the number of cycles the task spent waiting for bank
	// grants: its actually-suffered interference.
	Stall []model.Cycles
	// Makespan is the last finish.
	Makespan model.Cycles
	// Cycles is the number of simulated clock cycles.
	Cycles model.Cycles
}

// op is one unit step of a task: compute (bank == -1) or an access.
type op struct {
	bank model.BankID // -1 for compute
}

// coreState is one core walking its task list.
type coreState struct {
	tasks []model.TaskID // execution order
	idx   int            // current task index
	ops   []op           // remaining ops of the current task
	opPos int
	start model.Cycles // current task start
	stall model.Cycles
}

// bankState is one round-robin arbitrated bank.
type bankState struct {
	busyUntil model.Cycles
	lastCore  int // last granted core, for the round-robin pointer
	servingTo int // core whose access completes at busyUntil, -1 if none
}

// Run simulates g under the time-triggered schedule given by release. The
// release slice must hold one entry per task (typically sched.Result.Release).
func Run(g *model.Graph, release []model.Cycles, cfg Config) (*Outcome, error) {
	n := g.NumTasks()
	if len(release) != n {
		return nil, fmt.Errorf("sim: %d release dates for %d tasks", len(release), n)
	}
	latency := cfg.WordLatency
	if latency < 1 {
		latency = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	out := &Outcome{
		Start:  make([]model.Cycles, n),
		Finish: make([]model.Cycles, n),
		Stall:  make([]model.Cycles, n),
	}

	cores := make([]coreState, g.Cores)
	for k := range cores {
		cores[k] = coreState{tasks: g.Order(model.CoreID(k)), idx: -1}
	}
	banks := make([]bankState, g.Banks)
	for b := range banks {
		banks[b] = bankState{servingTo: -1}
	}

	horizon := cfg.Horizon
	if horizon <= 0 {
		var work model.Cycles
		for _, task := range g.Tasks() {
			work += task.WCET + model.ScaleAccesses(task.TotalDemand(), latency)
			if task.MinRelease > horizon {
				horizon = task.MinRelease
			}
		}
		for _, r := range release {
			if r > horizon {
				horizon = r
			}
		}
		horizon = 4 * (horizon + work + 16)
	}

	remaining := n
	for t := model.Cycles(0); remaining > 0; t++ {
		if t > horizon {
			return nil, fmt.Errorf("sim: horizon %d exceeded with %d tasks unfinished", horizon, remaining)
		}

		// 1. Complete bank services due at t.
		for b := range banks {
			bank := &banks[b]
			if bank.servingTo >= 0 && bank.busyUntil == t {
				core := &cores[bank.servingTo]
				bank.servingTo = -1
				core.opPos++
			}
		}

		// 2. Finalize finished tasks and start tasks whose release date is
		// t (time-triggered: exactly at the declared release, never
		// earlier). The inner loop handles chains of zero-length tasks
		// releasing at the same instant.
		for k := range cores {
			core := &cores[k]
			for {
				if core.ops != nil && core.opPos >= len(core.ops) {
					// Current task finished (its last op completed at or
					// before this cycle boundary).
					id := core.tasks[core.idx]
					out.Finish[id] = t
					out.Stall[id] = core.stall
					core.ops = nil
					remaining--
				}
				if core.ops != nil {
					break // task in progress
				}
				next := core.idx + 1
				if next >= len(core.tasks) {
					break // core done
				}
				id := core.tasks[next]
				if release[id] > t {
					break // not released yet
				}
				if release[id] < t {
					// The core was still busy at the task's release date:
					// the schedule is not a valid time-triggered schedule
					// for this execution.
					return nil, fmt.Errorf("sim: core %d busy past release %d of %s (time-triggered violation)",
						k, release[id], id)
				}
				core.idx = next
				core.ops = buildOps(g.Task(id), cfg, latency, rng)
				core.opPos = 0
				core.start = t
				core.stall = 0
				out.Start[id] = t
				if len(core.ops) > 0 {
					break
				}
				// Zero-work task: finalize in the next loop turn.
			}
		}

		// 3. Collect access requests and grant one per free bank in
		// round-robin order.
		for b := range banks {
			bank := &banks[b]
			if bank.servingTo >= 0 {
				continue // busy
			}
			// Scan cores starting after the last granted one.
			for i := 1; i <= len(cores); i++ {
				k := (bank.lastCore + i) % len(cores)
				core := &cores[k]
				if core.ops == nil || core.opPos >= len(core.ops) {
					continue
				}
				o := core.ops[core.opPos]
				if o.bank != model.BankID(b) {
					continue
				}
				bank.servingTo = k
				bank.lastCore = k
				bank.busyUntil = t + latency
				if cfg.TraceGrant != nil {
					cfg.TraceGrant(t, model.BankID(b), model.CoreID(k))
				}
				break
			}
		}

		// 4. Advance compute ops; count stall cycles for ungranted
		// requests.
		for k := range cores {
			core := &cores[k]
			if core.ops == nil || core.opPos >= len(core.ops) {
				continue
			}
			o := core.ops[core.opPos]
			if o.bank < 0 {
				core.opPos++
				continue
			}
			// Access op: if no bank is serving this core right now, it is
			// stalled this cycle.
			granted := false
			for b := range banks {
				if banks[b].servingTo == k {
					granted = true
					break
				}
			}
			if !granted {
				core.stall++
			}
		}
	}

	for i := range out.Finish {
		if out.Finish[i] > out.Makespan {
			out.Makespan = out.Finish[i]
		}
		out.Cycles = out.Makespan
	}
	return out, nil
}

// buildOps expands a task into its operation sequence under the config.
func buildOps(task *model.Task, cfg Config, latency model.Cycles, rng *rand.Rand) []op {
	wcet := task.WCET
	if cfg.ExecDenominator > 0 {
		wcet = model.Cycles(int64(wcet) * cfg.ExecNumerator / cfg.ExecDenominator)
	}
	// Accesses the task can physically issue within its execution time.
	budget := model.Accesses(int64(wcet) / int64(latency))
	var accesses []op
	for b, d := range task.Demand {
		for j := model.Accesses(0); j < d && model.Accesses(len(accesses)) < budget; j++ {
			accesses = append(accesses, op{bank: model.BankID(b)})
		}
	}
	compute := wcet - model.ScaleAccesses(model.Accesses(len(accesses)), latency)
	ops := make([]op, 0, int(compute)+len(accesses))
	switch cfg.Pattern {
	case Back:
		for c := model.Cycles(0); c < compute; c++ {
			ops = append(ops, op{bank: -1})
		}
		ops = append(ops, accesses...)
	case Spread:
		// Interleave: distribute compute evenly between accesses.
		na := len(accesses)
		if na == 0 {
			for c := model.Cycles(0); c < compute; c++ {
				ops = append(ops, op{bank: -1})
			}
			break
		}
		per := int(compute) / na
		extra := int(compute) % na
		for i, a := range accesses {
			run := per
			if i < extra {
				run++
			}
			for c := 0; c < run; c++ {
				ops = append(ops, op{bank: -1})
			}
			ops = append(ops, a)
		}
	case Shuffled:
		ops = append(ops, accesses...)
		for c := model.Cycles(0); c < compute; c++ {
			ops = append(ops, op{bank: -1})
		}
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	default: // Front
		ops = append(ops, accesses...)
		for c := model.Cycles(0); c < compute; c++ {
			ops = append(ops, op{bank: -1})
		}
	}
	return ops
}
