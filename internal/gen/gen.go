// Package gen produces the task graphs of the paper's evaluation: random
// layer-by-layer DAGs following the method of Tobita and Kasahara ("A
// standard task graph set for fair evaluation of multiprocessor scheduling
// algorithms", Journal of Scheduling 2002) as instantiated by Rihani's
// thesis and Section V of the DATE 2020 paper, plus the hand-written graphs
// of the paper's figures.
//
// Layer-by-layer generation: tasks are arranged in L layers of S tasks;
// every edge goes from a task of layer i to a task of layer i+1, carrying a
// random number of written words. Tasks of the same layer are assigned to
// cores cyclically — the n-th task of a layer runs on core (n mod cores).
// Task WCETs, per-task memory accesses and per-edge write volumes are drawn
// uniformly from the paper's ranges: [550, 650], [250, 550] and [0, 100].
//
// All generation is deterministic for a given seed.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/mia-rt/mia/internal/model"
)

// Params configures the layer-by-layer generator. NewParams returns the
// paper's defaults; zero values in a hand-built Params are rejected by
// Layered rather than silently defaulted.
type Params struct {
	// Layers is the number of layers (NL benchmarks fix this).
	Layers int
	// LayerSize is the number of tasks per layer (LS benchmarks fix this).
	LayerSize int

	// Cores and Banks describe the target platform geometry.
	Cores int
	Banks int

	// WCETMin/WCETMax bound the per-task WCET in isolation ([550, 650]).
	WCETMin, WCETMax model.Cycles
	// AccMin/AccMax bound the per-task local memory accesses ([250, 550]).
	AccMin, AccMax model.Accesses
	// WriteMin/WriteMax bound the per-edge written words ([0, 100]).
	WriteMin, WriteMax model.Accesses

	// EdgeProb is the probability of an edge between a task and each task
	// of the next layer. Regardless of EdgeProb, every non-first-layer
	// task receives at least one predecessor so the layering is real.
	EdgeProb float64

	// SharedBank compiles all demands onto a single bank (maximal
	// contention) instead of the default per-core reserved banks.
	SharedBank bool

	// Seed drives the deterministic random source.
	Seed int64
}

// NewParams returns the evaluation defaults: the paper's parameter ranges
// on one Kalray MPPA-256 compute cluster (16 cores, 16 banks).
func NewParams(layers, layerSize int) Params {
	return Params{
		Layers:    layers,
		LayerSize: layerSize,
		Cores:     16,
		Banks:     16,
		WCETMin:   550,
		WCETMax:   650,
		AccMin:    250,
		AccMax:    550,
		WriteMin:  0,
		WriteMax:  100,
		EdgeProb:  0.5,
		Seed:      1,
	}
}

// Tasks returns the total task count the parameters will generate.
func (p Params) Tasks() int { return p.Layers * p.LayerSize }

// validate rejects degenerate parameters.
func (p Params) validate() error {
	switch {
	case p.Layers < 1 || p.LayerSize < 1:
		return fmt.Errorf("gen: need at least 1 layer of 1 task, got %d×%d", p.Layers, p.LayerSize)
	case p.Cores < 1 || p.Banks < 1:
		return fmt.Errorf("gen: need at least 1 core and 1 bank, got %d cores, %d banks", p.Cores, p.Banks)
	case p.WCETMin < 0 || p.WCETMax < p.WCETMin:
		return fmt.Errorf("gen: bad WCET range [%d, %d]", p.WCETMin, p.WCETMax)
	case p.AccMin < 0 || p.AccMax < p.AccMin:
		return fmt.Errorf("gen: bad access range [%d, %d]", p.AccMin, p.AccMax)
	case p.WriteMin < 0 || p.WriteMax < p.WriteMin:
		return fmt.Errorf("gen: bad write range [%d, %d]", p.WriteMin, p.WriteMax)
	case p.EdgeProb < 0 || p.EdgeProb > 1:
		return fmt.Errorf("gen: edge probability %g outside [0, 1]", p.EdgeProb)
	}
	return nil
}

// Layered generates a random layer-by-layer DAG according to p.
func Layered(p Params) (*model.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := model.NewBuilder(p.Cores, p.Banks)
	if p.SharedBank {
		b.SetBankPolicy(model.SharedBank)
	}

	ids := make([][]model.TaskID, p.Layers)
	for layer := 0; layer < p.Layers; layer++ {
		ids[layer] = make([]model.TaskID, p.LayerSize)
		for i := 0; i < p.LayerSize; i++ {
			ids[layer][i] = b.AddTask(model.TaskSpec{
				Name:  fmt.Sprintf("l%dt%d", layer, i),
				WCET:  randCycles(rng, p.WCETMin, p.WCETMax),
				Core:  model.CoreID(i % p.Cores),
				Local: randAccesses(rng, p.AccMin, p.AccMax),
			})
		}
	}
	for layer := 0; layer+1 < p.Layers; layer++ {
		for _, to := range ids[layer+1] {
			hasPred := false
			for _, from := range ids[layer] {
				if rng.Float64() < p.EdgeProb {
					b.AddEdge(from, to, randAccesses(rng, p.WriteMin, p.WriteMax))
					hasPred = true
				}
			}
			if !hasPred {
				from := ids[layer][rng.Intn(len(ids[layer]))]
				b.AddEdge(from, to, randAccesses(rng, p.WriteMin, p.WriteMax))
			}
		}
	}
	return b.Build()
}

// MustLayered is Layered panicking on error, for benchmarks with
// known-good parameters.
func MustLayered(p Params) *model.Graph {
	g, err := Layered(p)
	if err != nil {
		panic(err)
	}
	return g
}

func randCycles(rng *rand.Rand, lo, hi model.Cycles) model.Cycles {
	if hi == lo {
		return lo
	}
	return lo + model.Cycles(rng.Int63n(int64(hi-lo+1)))
}

func randAccesses(rng *rand.Rand, lo, hi model.Accesses) model.Accesses {
	if hi == lo {
		return lo
	}
	return lo + model.Accesses(rng.Int63n(int64(hi-lo+1)))
}
