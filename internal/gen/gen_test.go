package gen

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
)

func TestLayeredShape(t *testing.T) {
	p := NewParams(6, 8)
	g, err := Layered(p)
	if err != nil {
		t.Fatalf("Layered: %v", err)
	}
	if g.NumTasks() != 48 || p.Tasks() != 48 {
		t.Fatalf("tasks = %d, want 48", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	depth, err := g.Depths()
	if err != nil {
		t.Fatalf("Depths: %v", err)
	}
	// Edges only connect adjacent layers, so depth(task) == its layer.
	for i, task := range g.Tasks() {
		wantLayer := i / p.LayerSize
		if depth[i] != wantLayer {
			t.Errorf("%s: depth %d, want layer %d", task.ID, depth[i], wantLayer)
		}
	}
}

func TestLayeredCyclicCoreAssignment(t *testing.T) {
	p := NewParams(3, 20)
	p.Cores, p.Banks = 6, 6
	g := MustLayered(p)
	for i, task := range g.Tasks() {
		inLayer := i % p.LayerSize
		if want := model.CoreID(inLayer % p.Cores); task.Core != want {
			t.Fatalf("task %d: core %d, want %d (cyclic rule)", i, task.Core, want)
		}
	}
}

func TestLayeredEdgesAdjacentLayersOnly(t *testing.T) {
	p := NewParams(5, 7)
	g := MustLayered(p)
	for _, e := range g.Edges() {
		fromLayer := int(e.From) / p.LayerSize
		toLayer := int(e.To) / p.LayerSize
		if toLayer != fromLayer+1 {
			t.Fatalf("edge %v→%v crosses layers %d→%d", e.From, e.To, fromLayer, toLayer)
		}
	}
}

func TestLayeredEveryTaskHasPredecessor(t *testing.T) {
	p := NewParams(8, 5)
	p.EdgeProb = 0.01 // force the fallback connection path
	g := MustLayered(p)
	for i := p.LayerSize; i < g.NumTasks(); i++ {
		if len(g.Predecessors(model.TaskID(i))) == 0 {
			t.Fatalf("task %d in layer %d has no predecessor", i, i/p.LayerSize)
		}
	}
}

func TestLayeredRangesRespected(t *testing.T) {
	p := NewParams(6, 10)
	g := MustLayered(p)
	for _, task := range g.Tasks() {
		if task.WCET < p.WCETMin || task.WCET > p.WCETMax {
			t.Errorf("%s: WCET %d outside [%d, %d]", task.ID, task.WCET, p.WCETMin, p.WCETMax)
		}
		if task.Local < p.AccMin || task.Local > p.AccMax {
			t.Errorf("%s: local %d outside [%d, %d]", task.ID, task.Local, p.AccMin, p.AccMax)
		}
	}
	for _, e := range g.Edges() {
		if e.Words < p.WriteMin || e.Words > p.WriteMax {
			t.Errorf("edge %v→%v: words %d outside [%d, %d]", e.From, e.To, e.Words, p.WriteMin, p.WriteMax)
		}
	}
}

func TestLayeredDeterminism(t *testing.T) {
	p := NewParams(4, 6)
	p.Seed = 42
	a, b := MustLayered(p), MustLayered(p)
	if len(a.Edges()) != len(b.Edges()) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	for i := range a.Tasks() {
		if a.Task(model.TaskID(i)).WCET != b.Task(model.TaskID(i)).WCET {
			t.Fatal("same seed produced different WCETs")
		}
	}
	p.Seed = 43
	c := MustLayered(p)
	same := len(a.Edges()) == len(c.Edges())
	if same {
		for i := range a.Edges() {
			if a.Edges()[i] != c.Edges()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestLayeredSharedBank(t *testing.T) {
	p := NewParams(3, 4)
	p.SharedBank = true
	g := MustLayered(p)
	for _, task := range g.Tasks() {
		for b := 1; b < g.Banks; b++ {
			if task.Demand[b] != 0 {
				t.Fatalf("%s has demand on bank %d in shared mode", task.ID, b)
			}
		}
	}
}

func TestLayeredPerCoreBanksDefault(t *testing.T) {
	p := NewParams(3, 4)
	g := MustLayered(p)
	// Demands must not all sit on bank 0: communication spreads across
	// consumer banks.
	spread := false
	for _, task := range g.Tasks() {
		for b := 1; b < g.Banks; b++ {
			if task.Demand[b] > 0 {
				spread = true
			}
		}
	}
	if !spread {
		t.Fatal("per-core bank policy produced no demand outside bank 0")
	}
}

func TestLayeredValidation(t *testing.T) {
	bad := []Params{
		{Layers: 0, LayerSize: 1, Cores: 1, Banks: 1},
		{Layers: 1, LayerSize: 0, Cores: 1, Banks: 1},
		{Layers: 1, LayerSize: 1, Cores: 0, Banks: 1},
		{Layers: 1, LayerSize: 1, Cores: 1, Banks: 1, WCETMin: 5, WCETMax: 2},
		{Layers: 1, LayerSize: 1, Cores: 1, Banks: 1, AccMin: 5, AccMax: 2},
		{Layers: 1, LayerSize: 1, Cores: 1, Banks: 1, WriteMin: 5, WriteMax: 2},
		{Layers: 1, LayerSize: 1, Cores: 1, Banks: 1, EdgeProb: 1.5},
	}
	for i, p := range bad {
		if _, err := Layered(p); err == nil {
			t.Errorf("case %d: bad params %+v accepted", i, p)
		}
	}
}

func TestMustLayeredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLayered did not panic")
		}
	}()
	MustLayered(Params{})
}

func TestFigure1Shape(t *testing.T) {
	g := Figure1()
	if g.NumTasks() != 5 || len(g.Edges()) != 5 {
		t.Fatalf("figure 1: %d tasks, %d edges", g.NumTasks(), len(g.Edges()))
	}
	if g.Cores != 4 || g.Banks != 1 {
		t.Fatalf("figure 1 platform: %d cores, %d banks", g.Cores, g.Banks)
	}
	wantWCET := []model.Cycles{2, 2, 1, 3, 2}
	wantCore := []model.CoreID{0, 1, 1, 2, 3}
	wantMinRel := []model.Cycles{0, 2, 4, 0, 4}
	for i := range wantWCET {
		task := g.Task(model.TaskID(i))
		if task.WCET != wantWCET[i] || task.Core != wantCore[i] || task.MinRelease != wantMinRel[i] {
			t.Errorf("n%d = %+v", i, task)
		}
	}
	if cp, _ := g.CriticalPath(); cp != 6 { // n4 waits for its min release 4, then runs 2
		t.Errorf("critical path = %d, want 6", cp)
	}
}

func TestFigure2Shape(t *testing.T) {
	g := Figure2()
	if g.NumTasks() != 11 || g.Cores != 4 {
		t.Fatalf("figure 2: %d tasks on %d cores", g.NumTasks(), g.Cores)
	}
	perCore := map[model.CoreID]int{}
	for _, task := range g.Tasks() {
		perCore[task.Core]++
	}
	want := map[model.CoreID]int{0: 3, 1: 2, 2: 3, 3: 3}
	for k, n := range want {
		if perCore[k] != n {
			t.Errorf("core %d has %d tasks, want %d", k, perCore[k], n)
		}
	}
	if g.Task(10).Name != "n10" {
		t.Errorf("task 10 name = %q", g.Task(10).Name)
	}
}

func TestAvionicsShape(t *testing.T) {
	g := Avionics()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumTasks() != 13 {
		t.Fatalf("avionics: %d tasks", g.NumTasks())
	}
	names := map[string]bool{}
	for _, task := range g.Tasks() {
		names[task.Name] = true
	}
	for _, want := range []string{"aircraft_dyn", "altitude_hold", "vz_control", "engine'"} {
		if !names[want] {
			t.Errorf("missing task %q", want)
		}
	}
	if !strings.HasPrefix(g.Task(0).Name, "engine") {
		t.Errorf("task 0 = %q", g.Task(0).Name)
	}
}
