package gen

import "github.com/mia-rt/mia/internal/model"

// Figure1 builds the worked example of the paper's Figure 1: five tasks on
// four cores of a shared-bank round-robin platform.
//
//	mapping:      n0→PE0; n1, n2→PE1; n3→PE2; n4→PE3
//	WCETs:        2, 2, 1, 3, 2
//	min releases: n0, n3: 0; n1: 2; n2, n4: 4
//	edges (1 written word each): n0→n1, n0→n2, n0→n4, n1→n2, n3→n4
//
// Ignoring interference the schedule spans 6 cycles; under the Kalray
// round-robin arbiter the paper's final schedule shows interference 1 on
// n0, 1 on n1 and 2 on n3, for a global WCRT of 7 cycles. The tests in
// sched/incremental reproduce those exact numbers.
func Figure1() *model.Graph {
	b := model.NewBuilder(4, 1)
	b.SetBankPolicy(model.SharedBank)
	n0 := b.AddTask(model.TaskSpec{Name: "n0", WCET: 2, Core: 0})
	n1 := b.AddTask(model.TaskSpec{Name: "n1", WCET: 2, Core: 1, MinRelease: 2})
	n2 := b.AddTask(model.TaskSpec{Name: "n2", WCET: 1, Core: 1, MinRelease: 4})
	n3 := b.AddTask(model.TaskSpec{Name: "n3", WCET: 3, Core: 2})
	n4 := b.AddTask(model.TaskSpec{Name: "n4", WCET: 2, Core: 3, MinRelease: 4})
	b.AddEdge(n0, n1, 1)
	b.AddEdge(n0, n2, 1)
	b.AddEdge(n0, n4, 1)
	b.AddEdge(n1, n2, 1)
	b.AddEdge(n3, n4, 1)
	return b.MustBuild()
}

// Figure2 builds the task set of the paper's Figure 2, which illustrates
// the incremental algorithm's cursor mechanism: eleven tasks on four cores
// (n0, n1, n2→PE0; n3, n4→PE1; n5, n6, n7→PE2; n8, n9, n10→PE3). WCETs are
// chosen so that at the cursor event t = 5 the algorithm performs exactly
// the step of the paper's running example: C = {n6}, A = {n0, n4, n9},
// O = {n7}. The tasks exchange no memory accesses — the figure illustrates
// the Closed/Alive/Future partition, not interference.
func Figure2() *model.Graph {
	b := model.NewBuilder(4, 4)
	wcets := map[string]struct {
		core model.CoreID
		wcet model.Cycles
	}{
		"n0": {0, 10}, "n1": {0, 3}, "n2": {0, 4},
		"n3": {1, 2}, "n4": {1, 8},
		"n5": {2, 2}, "n6": {2, 3}, "n7": {2, 4},
		"n8": {3, 1}, "n9": {3, 9}, "n10": {3, 5},
	}
	for i := 0; i <= 10; i++ {
		name := "n" + itoa(i)
		spec := wcets[name]
		b.AddTask(model.TaskSpec{Name: name, WCET: spec.wcet, Core: spec.core})
	}
	return b.MustBuild()
}

// Avionics builds a realistic dataflow application in the style of the
// ROSACE longitudinal flight-controller case study often used with this
// analysis framework: sensor filters feeding control laws feeding actuator
// commands, iterated over two control periods, mapped on four cores with
// per-core memory banks. It is the "domain" example exercised by
// examples/avionics and the integration tests; WCETs and access counts are
// representative, not measured.
func Avionics() *model.Graph {
	b := model.NewBuilder(4, 4)

	add := func(name string, core model.CoreID, wcet model.Cycles, local model.Accesses) model.TaskID {
		return b.AddTask(model.TaskSpec{Name: name, Core: core, WCET: wcet, Local: local})
	}

	// Period 1.
	eng := add("engine", 0, 300, 120)
	elev := add("elevator", 1, 280, 110)
	dyn := add("aircraft_dyn", 2, 900, 400)
	hF := add("h_filter", 0, 220, 90)
	azF := add("az_filter", 1, 210, 85)
	vzF := add("vz_filter", 2, 215, 88)
	qF := add("q_filter", 3, 205, 80)
	vaF := add("va_filter", 3, 208, 82)
	alt := add("altitude_hold", 0, 250, 100)
	vzC := add("vz_control", 1, 260, 105)
	vaC := add("va_control", 2, 255, 102)

	b.AddEdge(eng, dyn, 40)
	b.AddEdge(elev, dyn, 40)
	b.AddEdge(dyn, hF, 30)
	b.AddEdge(dyn, azF, 30)
	b.AddEdge(dyn, vzF, 30)
	b.AddEdge(dyn, qF, 30)
	b.AddEdge(dyn, vaF, 30)
	b.AddEdge(hF, alt, 20)
	b.AddEdge(azF, vzC, 20)
	b.AddEdge(vzF, vzC, 20)
	b.AddEdge(qF, vzC, 20)
	b.AddEdge(alt, vzC, 15)
	b.AddEdge(vaF, vaC, 20)
	b.AddEdge(qF, vaC, 20)

	// Period 2: the control outputs drive the next actuator step.
	eng2 := add("engine'", 0, 300, 120)
	elev2 := add("elevator'", 1, 280, 110)
	b.AddEdge(vaC, eng2, 25)
	b.AddEdge(vzC, elev2, 25)

	return b.MustBuild()
}

// itoa converts a small non-negative int without pulling in strconv for a
// two-digit use case.
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}
