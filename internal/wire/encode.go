package wire

import (
	"encoding/binary"

	"github.com/mia-rt/mia/internal/model"
)

// Encode serializes the flattened graph into a version-1 blob. The input is
// assumed structurally well-formed (as produced by (*model.Graph).Raw or a
// prior Decode); Encode panics on shape violations rather than silently
// writing a blob Decode would reject.
func Encode(r *model.RawGraph) []byte {
	tasks, edges := r.NumTasks(), len(r.Edges)
	sizes := sectionSizes(tasks, edges, r.Cores, r.Banks)
	total := uint64(payloadStart)
	for id := 1; id <= sectionCount; id++ {
		total += sizes[id]
	}
	buf := make([]byte, total)

	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint16(buf[4:6], Version)
	binary.LittleEndian.PutUint16(buf[6:8], sectionCount)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(r.Cores))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(r.Banks))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(tasks))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(edges))
	binary.LittleEndian.PutUint64(buf[32:40], total)

	off := uint64(payloadStart)
	for id := 1; id <= sectionCount; id++ {
		d := headerSize + (id-1)*sectionDesc
		binary.LittleEndian.PutUint32(buf[d:d+4], uint32(id))
		binary.LittleEndian.PutUint64(buf[d+8:d+16], off)
		binary.LittleEndian.PutUint64(buf[d+16:d+24], sizes[id])
		payload := buf[off : off+sizes[id]]
		switch id {
		case secWCET:
			encodeCycles(payload, r.WCET)
		case secMinRelease:
			encodeCycles(payload, r.MinRelease)
		case secCore:
			for i, v := range r.Core {
				binary.LittleEndian.PutUint32(payload[i*size32:], uint32(int32(v)))
			}
		case secLocal:
			encodeAccesses(payload, r.Local)
		case secDemand:
			encodeAccesses(payload, r.Demand)
		case secEdges:
			for i, e := range r.Edges {
				p := payload[i*sizeEdge:]
				binary.LittleEndian.PutUint32(p[0:4], uint32(int32(e.From)))
				binary.LittleEndian.PutUint32(p[4:8], uint32(int32(e.To)))
				binary.LittleEndian.PutUint64(p[8:16], uint64(e.Words))
			}
		case secOrderStart:
			for i, v := range r.OrderStart {
				binary.LittleEndian.PutUint32(payload[i*size32:], uint32(v))
			}
		case secOrderIDs:
			for i, v := range r.OrderIDs {
				binary.LittleEndian.PutUint32(payload[i*size32:], uint32(int32(v)))
			}
		case secBankTable:
			for i, v := range r.BankTable {
				binary.LittleEndian.PutUint32(payload[i*size32:], uint32(int32(v)))
			}
		}
		off += sizes[id]
	}
	return buf
}

// EncodeGraph flattens and serializes a built graph: the convenience entry
// point for clients that assemble graphs through Builder or JSON and want
// to ship them in wire form.
func EncodeGraph(g *model.Graph) []byte {
	return Encode(g.Raw())
}

func encodeCycles(dst []byte, src []model.Cycles) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*size64:], uint64(v))
	}
}

func encodeAccesses(dst []byte, src []model.Accesses) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*size64:], uint64(v))
	}
}
