package wire

import (
	"encoding/binary"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
)

// FuzzDecodeWire checks the binary decoder never panics and that every blob
// it accepts is a fully validated graph that survives an encode/decode
// round trip with an unchanged fingerprint. The seed corpus covers valid
// blobs of several shapes plus the malformed classes the table-driven tests
// pin down: truncation at every structural boundary, corrupted header
// fields, section-table geometry violations, and past-model.MaxInput
// magnitudes (which must be rejected exactly like stg.Read rejects them).
func FuzzDecodeWire(f *testing.F) {
	valid := [][]byte{
		EncodeGraph(gen.Figure1()),
		EncodeGraph(gen.Figure2()),
		EncodeGraph(gen.Avionics()),
	}
	p := gen.NewParams(4, 8)
	p.Cores, p.Banks = 4, 4
	p.Seed = 11
	valid = append(valid, EncodeGraph(gen.MustLayered(p)))
	for _, blob := range valid {
		f.Add(blob)
	}

	base := valid[1]
	mutate := func(mut func(b []byte)) []byte {
		c := append([]byte(nil), base...)
		mut(c)
		return c
	}
	// Truncations at structural boundaries.
	f.Add([]byte{})
	f.Add(base[:4])
	f.Add(base[:headerSize-1])
	f.Add(base[:headerSize])
	f.Add(base[:payloadStart])
	f.Add(base[:len(base)-1])
	f.Add(append(append([]byte(nil), base...), 0))
	// Header corruption.
	f.Add(mutate(func(b []byte) { b[0] = 'J' }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint16(b[4:6], 2) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 3) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[8:12], 0) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], maxTasks+1) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[24:32], 1<<60) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[32:40], 1<<50) }))
	// Section table corruption.
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[headerSize:], 9) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[headerSize+8:], 0) }))
	f.Add(mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[headerSize+16:], 1<<40) }))
	// Magnitude overflow: 2^40+1 (past model.MaxInput) planted in the WCET
	// section; the value exactly at the bound as the legal twin.
	f.Add(mutate(func(b []byte) {
		binary.LittleEndian.PutUint64(b[payloadStart:], uint64(model.MaxInput)+1)
	}))
	f.Add(mutate(func(b []byte) {
		binary.LittleEndian.PutUint64(b[payloadStart:], uint64(model.MaxInput))
	}))
	// Negative magnitude (sign bit set).
	f.Add(mutate(func(b []byte) {
		binary.LittleEndian.PutUint64(b[payloadStart:], ^uint64(0))
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		fp := r.Fingerprint()
		r2, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if r2.Fingerprint() != fp {
			t.Fatal("round trip changed the fingerprint")
		}
		// Everything Decode accepts must materialize into a valid Graph:
		// the two ingestion paths admit exactly the same set of graphs.
		if _, err := r.Graph(); err != nil {
			t.Fatalf("accepted graph fails materialization: %v", err)
		}
	})
}
