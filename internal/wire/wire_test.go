package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
)

func testGraphs() map[string]*model.Graph {
	graphs := map[string]*model.Graph{
		"figure1":  gen.Figure1(),
		"figure2":  gen.Figure2(),
		"avionics": gen.Avionics(),
	}
	shapes := []struct {
		name   string
		layers int
		size   int
		cores  int
		banks  int
		shared bool
	}{
		{"ls8x4", 8, 4, 4, 4, false},
		{"ls6x8", 6, 8, 8, 8, false},
		{"nl4x12", 4, 12, 4, 1, true},
		{"nl6x10", 6, 10, 16, 16, false},
	}
	for _, s := range shapes {
		p := gen.NewParams(s.layers, s.size)
		p.Cores, p.Banks, p.SharedBank = s.cores, s.banks, s.shared
		p.Seed = int64(101 + s.layers*s.size)
		graphs[s.name] = gen.MustLayered(p)
	}
	return graphs
}

func TestLayoutConstants(t *testing.T) {
	// The documented layout: payload begins right after header + table.
	if payloadStart != 256 {
		t.Fatalf("payloadStart = %d, documented layout says 256", payloadStart)
	}
	if headerSize+sectionCount*sectionDesc != payloadStart {
		t.Fatalf("header %d + table %d×%d ≠ payload start %d",
			headerSize, sectionCount, sectionDesc, payloadStart)
	}
}

func TestRoundTrip(t *testing.T) {
	for name, g := range testGraphs() {
		blob := EncodeGraph(g)
		if n, err := Size(blob); err != nil || n != len(blob) {
			t.Fatalf("%s: Size = %d, %v; want %d, nil", name, n, err, len(blob))
		}
		r, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if got, want := r.Fingerprint(), g.Fingerprint(); got != want {
			t.Errorf("%s: decoded fingerprint %s, want %s", name, got, want)
		}
		// Encode must be deterministic: same graph, same bytes.
		if !bytes.Equal(blob, Encode(r)) {
			t.Errorf("%s: re-encoding the decoded graph changed the bytes", name)
		}
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	g := gen.Figure1()
	blob := EncodeGraph(g)
	r, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	fp := r.Fingerprint()
	for i := range blob {
		blob[i] = 0xff
	}
	if r.Fingerprint() != fp {
		t.Fatal("mutating the input buffer changed the decoded graph")
	}
}

// corrupt returns a copy of blob with mut applied.
func corrupt(blob []byte, mut func([]byte)) []byte {
	c := append([]byte(nil), blob...)
	mut(c)
	return c
}

func TestDecodeRejectsMalformed(t *testing.T) {
	blob := EncodeGraph(gen.Figure2())
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "header"},
		{"truncated header", blob[:headerSize-1], "header"},
		{"truncated payload", blob[:len(blob)-1], "declares"},
		{"trailing garbage", append(append([]byte(nil), blob...), 0), "declares"},
		{"bad magic", corrupt(blob, func(b []byte) { b[0] = 'X' }), "magic"},
		{"future version", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint16(b[4:6], Version+1)
		}), "version"},
		{"section count", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint16(b[6:8], sectionCount+1)
		}), "sections"},
		{"zero cores", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], 0)
		}), "core count"},
		{"huge tasks", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], maxTasks+1)
		}), "task count"},
		{"huge edges", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:32], maxEdges+1)
		}), "edge count"},
		{"declared size mismatch", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:40], uint64(len(blob))+8)
		}), "declares"},
		{"section id out of order", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint32(b[headerSize:headerSize+4], secMinRelease)
		}), "canonical order"},
		{"section padding", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint32(b[headerSize+4:headerSize+8], 1)
		}), "padding"},
		{"section offset", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint64(b[headerSize+8:headerSize+16], payloadStart+1)
		}), "offset"},
		{"section length", corrupt(blob, func(b []byte) {
			binary.LittleEndian.PutUint64(b[headerSize+16:headerSize+24], 0)
		}), "bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("Decode accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeRejectsOverflow plants a past-MaxInput value in each magnitude
// section of an otherwise valid blob: the decoder must reject it exactly
// like stg.Read and the JSON path do (satellite contract).
func TestDecodeRejectsOverflow(t *testing.T) {
	g := gen.Figure1() // has edges, so the edge-words plant lands in a real section
	r := g.Raw()
	over := uint64(model.MaxInput + 1)

	plant := map[string]func(b []byte){
		"wcet": func(b []byte) {
			off := sectionOffset(t, b, secWCET)
			binary.LittleEndian.PutUint64(b[off:], over)
		},
		"minRelease": func(b []byte) {
			off := sectionOffset(t, b, secMinRelease)
			binary.LittleEndian.PutUint64(b[off:], over)
		},
		"local": func(b []byte) {
			off := sectionOffset(t, b, secLocal)
			binary.LittleEndian.PutUint64(b[off:], over)
		},
		"demand": func(b []byte) {
			off := sectionOffset(t, b, secDemand)
			binary.LittleEndian.PutUint64(b[off:], over)
		},
		"edge words": func(b []byte) {
			off := sectionOffset(t, b, secEdges)
			binary.LittleEndian.PutUint64(b[off+8:], over)
		},
	}
	for name, mut := range plant {
		t.Run(name, func(t *testing.T) {
			blob := corrupt(Encode(r), mut)
			_, err := Decode(blob)
			if err == nil {
				t.Fatal("Decode accepted a past-MaxInput magnitude")
			}
			if !strings.Contains(err.Error(), "MaxInput") {
				t.Fatalf("error %q does not mention MaxInput", err)
			}
		})
	}

	// The value exactly at the bound is legal, as in every other reader.
	atBound := g.Raw()
	atBound.WCET[0] = model.MaxInput
	if _, err := Decode(Encode(atBound)); err != nil {
		t.Fatalf("Decode rejected WCET exactly at MaxInput: %v", err)
	}
}

// sectionOffset reads a section's payload offset out of a blob's table.
func sectionOffset(t *testing.T, blob []byte, id int) uint64 {
	t.Helper()
	d := headerSize + (id-1)*sectionDesc
	if got := binary.LittleEndian.Uint32(blob[d : d+4]); got != uint32(id) {
		t.Fatalf("table slot %d holds section %d", id-1, got)
	}
	return binary.LittleEndian.Uint64(blob[d+8 : d+16])
}

// TestDecodeRejectsSemanticBreakage: structural bytes fine, graph invalid —
// the RawGraph.Validate layer must catch what the geometry checks cannot.
func TestDecodeRejectsSemanticBreakage(t *testing.T) {
	r := gen.Figure1().Raw()
	// Introduce a 2-cycle.
	e := r.Edges[0]
	r.Edges = append(r.Edges, model.Edge{From: e.To, To: e.From, Words: 1})
	if _, err := Decode(Encode(r)); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Decode of cyclic graph: %v, want cycle rejection", err)
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, n := range []int{256, 1024} {
		p := gen.NewParams(n/64, 64)
		p.Seed = 7
		blob := EncodeGraph(gen.MustLayered(p))
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
