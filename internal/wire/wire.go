// Package wire defines the flat binary graph format of the analysis
// service: a versioned, little-endian encoding of model.RawGraph whose
// sections are exactly the arrays of the compiled engine image (flat WCET /
// MinRelease / Core / Local vectors, the task-major demand matrix, the edge
// list, the CSR execution orders, and the core→bank table). Because the
// layout already is the slab layout, engine.CompileFromWire ingests a blob
// with bounds-checked copies instead of JSON decode → Graph build →
// Compile — no intermediate per-task object graph on the hot path.
//
// # Layout (version 1)
//
// All integers are little-endian. A blob is header, section table, payload:
//
//	offset  size  field
//	     0     4  magic "MIAW"
//	     4     2  version (currently 1)
//	     6     2  section count (currently 9)
//	     8     4  cores (uint32)
//	    12     4  banks (uint32)
//	    16     8  tasks (uint64)
//	    24     8  edges (uint64)
//	    32     8  total blob size in bytes (uint64)
//	    40   216  section table: 9 × {id uint32, pad uint32, off uint64, len uint64}
//	   256     —  payload (sections, in table order, densely packed)
//
// The nine sections, in their fixed canonical order:
//
//	id  name        element                 size
//	 1  WCET        int64 cycles            tasks × 8
//	 2  MinRelease  int64 cycles            tasks × 8
//	 3  Core        int32 core id           tasks × 4
//	 4  Local       int64 accesses          tasks × 8
//	 5  Demand      int64 accesses          tasks × banks × 8 (task-major)
//	 6  Edges       {from,to int32; words int64}  edges × 16
//	 7  OrderStart  int32 CSR index         (cores+1) × 4
//	 8  OrderIDs    int32 task id           tasks × 4
//	 9  BankTable   int32 bank id           cores × 4
//
// # Compatibility rule
//
// The format is versioned, not self-describing: a version-1 decoder rejects
// any other version and any blob whose section table deviates from the
// canonical ids, order, offsets, or lengths above. Evolving the format
// means bumping the version and teaching the decoder both shapes; it never
// means silently skipping unknown sections (a graph with a section the
// decoder ignores would analyze differently than the encoder intended,
// which for a safety analysis is worse than an error).
//
// # Strictness
//
// Decode is exactly as strict as the JSON ingestion path: after the
// structural checks (magic, version, counts against hard limits, section
// table geometry, CSR monotonicity) the decoded RawGraph runs
// model.RawGraph.Validate, which enforces the same value-level rules as
// model.Graph.Validate — including rejection of any magnitude past
// model.MaxInput, the repository-wide overflow guard.
package wire

// Format identification and geometry. headerSize + sectionCount×sectionDesc
// lands the payload at offset 256; the constants are spelled out (and
// cross-checked by a test) rather than derived so the documented layout is
// the code.
const (
	// Magic is the four-byte signature opening every blob.
	Magic = "MIAW"

	// Version is the format version this package encodes and decodes.
	Version = 1

	headerSize   = 40
	sectionCount = 9
	sectionDesc  = 24 // uint32 id + uint32 pad + uint64 off + uint64 len
	payloadStart = headerSize + sectionCount*sectionDesc

	// MinBlobSize is the size of the smallest structurally possible blob:
	// header plus full section table (an empty-graph payload is 8 bytes of
	// OrderStart and BankTable even with zero tasks, so real blobs are
	// larger; Decode checks exact sizes, this is the floor for reading the
	// header at all).
	MinBlobSize = payloadStart
)

// Section ids, in canonical table order.
const (
	secWCET       = 1
	secMinRelease = 2
	secCore       = 3
	secLocal      = 4
	secDemand     = 5
	secEdges      = 6
	secOrderStart = 7
	secOrderIDs   = 8
	secBankTable  = 9
)

// Hard limits on declared counts, checked before any size arithmetic so a
// hostile header cannot drive multiplication overflow or absurd
// allocations. maxTasks matches the stg reader's bound; cores and banks are
// bounded by the task limit (a platform wider than its largest workload is
// meaningless here), and edges by the quadratic blowup cap below.
const (
	maxTasks = 1 << 20
	maxCores = 1 << 16
	maxBanks = 1 << 16
	maxEdges = 1 << 24
)

// elemSize gives each section's element size in bytes.
const (
	size64   = 8
	size32   = 4
	sizeEdge = 16
)

// sectionSizes returns the exact required payload length of every section
// for the given counts, indexed by section id. Counts are pre-checked
// against the limits above, so the products cannot overflow.
func sectionSizes(tasks, edges, cores, banks int) [sectionCount + 1]uint64 {
	var s [sectionCount + 1]uint64
	s[secWCET] = uint64(tasks) * size64
	s[secMinRelease] = uint64(tasks) * size64
	s[secCore] = uint64(tasks) * size32
	s[secLocal] = uint64(tasks) * size64
	s[secDemand] = uint64(tasks) * uint64(banks) * size64
	s[secEdges] = uint64(edges) * sizeEdge
	s[secOrderStart] = uint64(cores+1) * size32
	s[secOrderIDs] = uint64(tasks) * size32
	s[secBankTable] = uint64(cores) * size32
	return s
}
