package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Size reads only the header of a blob and returns the total encoded size
// it declares. Batch framing uses it to split a stream carrying a blob
// followed by further payload (the rest of an HTTP body) without scanning:
// the size is at a fixed offset. The header is sanity-checked (magic,
// version, size floor) but the payload is not — only Decode vets a graph.
func Size(data []byte) (int, error) {
	if len(data) < headerSize {
		return 0, fmt.Errorf("wire: %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[0:4]) != Magic {
		return 0, fmt.Errorf("wire: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return 0, fmt.Errorf("wire: version %d, this decoder understands only version %d", v, Version)
	}
	total := binary.LittleEndian.Uint64(data[32:40])
	if total < MinBlobSize || total > uint64(maxBlobSize()) {
		return 0, fmt.Errorf("wire: declared size %d outside [%d, %d]", total, MinBlobSize, maxBlobSize())
	}
	return int(total), nil
}

// maxBlobSize is the largest size a blob at the count limits could declare;
// anything above it is rejected before allocation.
func maxBlobSize() uint64 {
	s := sectionSizes(maxTasks, maxEdges, maxCores, maxBanks)
	total := uint64(payloadStart)
	for id := 1; id <= sectionCount; id++ {
		total += s[id]
	}
	return total
}

// Decode parses and fully validates a version-1 blob. data must be exactly
// one blob — a declared size shorter or longer than len(data) is an error
// (use Size to frame blobs out of a larger stream). The returned RawGraph
// is freshly allocated and does not alias data; it has passed
// model.RawGraph.Validate, so it is exactly as vetted as a graph built by
// the JSON path — in particular, any magnitude past model.MaxInput is
// rejected here, matching stg.Read and model.Validate.
func Decode(data []byte) (*model.RawGraph, error) {
	total, err := Size(data)
	if err != nil {
		return nil, err
	}
	if total != len(data) {
		return nil, fmt.Errorf("wire: blob declares %d bytes, have %d", total, len(data))
	}
	if n := binary.LittleEndian.Uint16(data[6:8]); n != sectionCount {
		return nil, fmt.Errorf("wire: %d sections, version %d has exactly %d", n, Version, sectionCount)
	}
	cores := int(binary.LittleEndian.Uint32(data[8:12]))
	banks := int(binary.LittleEndian.Uint32(data[12:16]))
	tasks64 := binary.LittleEndian.Uint64(data[16:24])
	edges64 := binary.LittleEndian.Uint64(data[24:32])
	switch {
	case cores < 1 || cores > maxCores:
		return nil, fmt.Errorf("wire: core count %d outside [1, %d]", cores, maxCores)
	case banks < 1 || banks > maxBanks:
		return nil, fmt.Errorf("wire: bank count %d outside [1, %d]", banks, maxBanks)
	case tasks64 > maxTasks:
		return nil, fmt.Errorf("wire: task count %d exceeds limit %d", tasks64, maxTasks)
	case edges64 > maxEdges:
		return nil, fmt.Errorf("wire: edge count %d exceeds limit %d", edges64, maxEdges)
	}
	tasks, edges := int(tasks64), int(edges64)

	// The section table must match the canonical geometry exactly: ids in
	// order, zero padding, densely packed payload starting at payloadStart,
	// lengths equal to what the header counts dictate.
	sizes := sectionSizes(tasks, edges, cores, banks)
	wantTotal := uint64(payloadStart)
	for id := 1; id <= sectionCount; id++ {
		wantTotal += sizes[id]
	}
	if uint64(total) != wantTotal {
		return nil, fmt.Errorf("wire: blob size %d, header counts require %d", total, wantTotal)
	}
	sections := make([][]byte, sectionCount+1)
	off := uint64(payloadStart)
	for id := 1; id <= sectionCount; id++ {
		d := headerSize + (id-1)*sectionDesc
		gotID := binary.LittleEndian.Uint32(data[d : d+4])
		pad := binary.LittleEndian.Uint32(data[d+4 : d+8])
		gotOff := binary.LittleEndian.Uint64(data[d+8 : d+16])
		gotLen := binary.LittleEndian.Uint64(data[d+16 : d+24])
		switch {
		case gotID != uint32(id):
			return nil, fmt.Errorf("wire: section %d in table slot %d, canonical order requires %d", gotID, id-1, id)
		case pad != 0:
			return nil, fmt.Errorf("wire: section %d has nonzero padding %#x", id, pad)
		case gotOff != off:
			return nil, fmt.Errorf("wire: section %d at offset %d, dense packing requires %d", id, gotOff, off)
		case gotLen != sizes[id]:
			return nil, fmt.Errorf("wire: section %d is %d bytes, header counts require %d", id, gotLen, sizes[id])
		}
		sections[id] = data[off : off+sizes[id]]
		off += sizes[id]
	}

	r := &model.RawGraph{
		Cores:      cores,
		Banks:      banks,
		WCET:       make([]model.Cycles, tasks),
		MinRelease: make([]model.Cycles, tasks),
		Core:       make([]model.CoreID, tasks),
		Local:      make([]model.Accesses, tasks),
		Demand:     make([]model.Accesses, tasks*banks),
		Edges:      make([]model.Edge, edges),
		OrderStart: make([]int32, cores+1),
		OrderIDs:   make([]model.TaskID, tasks),
		BankTable:  make([]model.BankID, cores),
	}
	decodeCycles(r.WCET, sections[secWCET])
	decodeCycles(r.MinRelease, sections[secMinRelease])
	decodeCoreIDs(r.Core, sections[secCore])
	decodeAccesses(r.Local, sections[secLocal])
	decodeAccesses(r.Demand, sections[secDemand])
	decodeEdges(r.Edges, sections[secEdges])
	decodeInt32s(r.OrderStart, sections[secOrderStart])
	decodeTaskIDs(r.OrderIDs, sections[secOrderIDs])
	decodeBankIDs(r.BankTable, sections[secBankTable])

	// Value-level vetting: magnitudes (MaxInput), index ranges, acyclicity,
	// order/mapping consistency — the same rules Graph.Validate enforces on
	// the JSON path.
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return r, nil
}

// The fill helpers below are the decode fast path: straight-line loops over
// pre-allocated destinations, no allocation, no branching beyond the loop.

//mia:hotpath
func decodeCycles(dst []model.Cycles, src []byte) {
	for i := range dst {
		dst[i] = model.Cycles(binary.LittleEndian.Uint64(src[i*size64:]))
	}
}

//mia:hotpath
func decodeAccesses(dst []model.Accesses, src []byte) {
	for i := range dst {
		dst[i] = model.Accesses(binary.LittleEndian.Uint64(src[i*size64:]))
	}
}

//mia:hotpath
func decodeCoreIDs(dst []model.CoreID, src []byte) {
	for i := range dst {
		dst[i] = model.CoreID(int32(binary.LittleEndian.Uint32(src[i*size32:])))
	}
}

//mia:hotpath
func decodeTaskIDs(dst []model.TaskID, src []byte) {
	for i := range dst {
		dst[i] = model.TaskID(int32(binary.LittleEndian.Uint32(src[i*size32:])))
	}
}

//mia:hotpath
func decodeBankIDs(dst []model.BankID, src []byte) {
	for i := range dst {
		dst[i] = model.BankID(int32(binary.LittleEndian.Uint32(src[i*size32:])))
	}
}

//mia:hotpath
func decodeInt32s(dst []int32, src []byte) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[i*size32:]))
	}
}

//mia:hotpath
func decodeEdges(dst []model.Edge, src []byte) {
	for i := range dst {
		p := src[i*sizeEdge:]
		dst[i] = model.Edge{
			From:  model.TaskID(int32(binary.LittleEndian.Uint32(p[0:4]))),
			To:    model.TaskID(int32(binary.LittleEndian.Uint32(p[4:8]))),
			Words: model.Accesses(binary.LittleEndian.Uint64(p[8:16])),
		}
	}
}
