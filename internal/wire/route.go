package wire

// RouteHeader is the HTTP header a shard-aware client may set to the
// canonical graph fingerprint of the request body. It is a routing hint for
// the multi-node tier: a router that finds it skips decoding the body to
// place the request on the ring. It is never trusted for anything beyond
// placement — every shard computes the true fingerprint from the body it
// ingests, so a wrong hint costs cache locality (the request lands on a
// shard that is not warm for the graph), never correctness.
const RouteHeader = "X-Mia-Fingerprint"

// BlobFingerprint returns the canonical graph fingerprint of a wire blob —
// the same string a JSON analyze of the equivalent graph reports — without
// compiling it. Routers use it to place wire-ingest requests whose client
// did not send RouteHeader; the blob is fully decoded and validated, so a
// malformed body fails here instead of on the shard.
func BlobFingerprint(data []byte) (string, error) {
	rg, err := Decode(data)
	if err != nil {
		return "", err
	}
	return rg.Fingerprint(), nil
}
