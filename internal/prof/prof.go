// Package prof wires Go's built-in pprof profilers into the command-line
// tools. It exists so every binary exposes the same two flags with the same
// semantics instead of each main() hand-rolling the start/stop dance:
//
//	stop, err := prof.Start(*cpuprofile, *memprofile)
//	if err != nil { return err }
//	defer stop()
//
// and the resulting files feed straight into `go tool pprof`. Profiling is
// strictly opt-in: with both paths empty, Start is a no-op returning a no-op
// stop, so the flags cost nothing when unused.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges for a heap profile to
// be written to memPath when the returned stop function runs. Either path may
// be empty to skip that profile. stop is idempotent and safe to both defer
// and call explicitly before reading the files; it returns the first error
// encountered while finishing the profiles (errors from the deferred second
// call are lost, so call it explicitly when the profile matters).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("mem profile: %w", err)
				}
				return firstErr
			}
			// Materialize a current picture of live heap objects: the
			// allocation-free hot paths are only visible against up-to-date
			// statistics.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
