package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal("second stop must be a no-op, got", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0
	buf := make([]byte, 1<<16)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal("stop not idempotent:", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartCPUOnly(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpu); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu path")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err != nil {
		t.Fatal("mem path is only opened at stop time:", err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected error for unwritable mem path at stop")
	}
}
