// Package platform describes the hardware targets of the analysis: number
// of processing elements, number of arbitrated shared-memory banks, bank
// service latency, and the default arbitration policy.
//
// The reference target is one compute cluster of the Kalray MPPA-256
// ("Andey"/"Bostan" family): 16 user processing elements sharing a
// multi-banked static memory (16 banks of 128 KiB) through round-robin
// arbitration with single-cycle word service — the platform of the paper's
// evaluation. Platforms are plain data; the analysis is parameterized by
// them, so new architectures are integrated by declaring a new Platform
// value (the generalization the paper's introduction calls out).
package platform

import (
	"fmt"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/model"
)

// Platform is a many-core target of the interference analysis.
type Platform struct {
	// Name identifies the platform in logs and benchmark tables.
	Name string
	// Cores is the number of processing elements available to tasks.
	Cores int
	// Banks is the number of independently arbitrated shared-memory banks.
	Banks int
	// WordLatency is the bank service time per access, in cycles.
	WordLatency model.Cycles
	// RRGroupSize is the first-level arbitration group size for platforms
	// with a hierarchical round-robin tree (2 on the MPPA-256, where PEs
	// reach the memory through paired arbiters). Zero or one means flat
	// round-robin.
	RRGroupSize int
}

// MPPA256Cluster returns one compute cluster of the Kalray MPPA-256: 16
// PEs, 16 memory banks, single-cycle bank service, paired first-level
// round-robin arbitration.
func MPPA256Cluster() *Platform {
	return &Platform{
		Name:        "kalray-mppa256-cluster",
		Cores:       16,
		Banks:       16,
		WordLatency: 1,
		RRGroupSize: 2,
	}
}

// Quad returns a small 4-core, 4-bank platform with flat round-robin
// arbitration: the configuration of the paper's Figures 1 and 2 and the
// convenient unit-test target.
func Quad() *Platform {
	return &Platform{Name: "quad", Cores: 4, Banks: 4, WordLatency: 1}
}

// Generic returns a flat round-robin platform with the given geometry.
func Generic(cores, banks int, wordLatency model.Cycles) *Platform {
	return &Platform{
		Name:        fmt.Sprintf("generic-%dc%db", cores, banks),
		Cores:       cores,
		Banks:       banks,
		WordLatency: wordLatency,
	}
}

// Validate checks the platform geometry.
func (p *Platform) Validate() error {
	switch {
	case p.Cores < 1:
		return fmt.Errorf("platform %q: %d cores", p.Name, p.Cores)
	case p.Banks < 1:
		return fmt.Errorf("platform %q: %d banks", p.Name, p.Banks)
	case p.WordLatency < 1:
		return fmt.Errorf("platform %q: word latency %d", p.Name, p.WordLatency)
	}
	return nil
}

// DefaultArbiter returns the platform's native arbitration policy: flat
// round-robin, or the hierarchical round-robin tree when RRGroupSize > 1.
func (p *Platform) DefaultArbiter() arbiter.Arbiter {
	if p.RRGroupSize > 1 {
		return arbiter.NewHierarchicalRR(p.WordLatency, p.RRGroupSize)
	}
	return arbiter.NewRoundRobin(p.WordLatency)
}

// FlatRR returns the platform's flat round-robin arbiter regardless of
// RRGroupSize — the policy the paper's benchmarks use ("the Kalray MPPA-256
// RR from [6]").
func (p *Platform) FlatRR() arbiter.Arbiter {
	return arbiter.NewRoundRobin(p.WordLatency)
}

// BankPolicy returns the demand-compilation bank policy natural for the
// platform: one reserved bank per core when enough banks exist, striped
// otherwise.
func (p *Platform) BankPolicy() func(model.CoreID) model.BankID {
	if p.Banks >= p.Cores {
		return model.BankPerCore
	}
	return model.StripedBanks(p.Banks)
}

// String renders a one-line description.
func (p *Platform) String() string {
	return fmt.Sprintf("%s{cores=%d banks=%d L=%d}", p.Name, p.Cores, p.Banks, p.WordLatency)
}
