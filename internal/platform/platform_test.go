package platform

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
)

func TestMPPA256Cluster(t *testing.T) {
	p := MPPA256Cluster()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Cores != 16 || p.Banks != 16 || p.WordLatency != 1 || p.RRGroupSize != 2 {
		t.Fatalf("MPPA256Cluster = %+v", p)
	}
	if name := p.DefaultArbiter().Name(); !strings.Contains(name, "hier-rr") {
		t.Errorf("default arbiter = %q, want hierarchical RR", name)
	}
	if name := p.FlatRR().Name(); !strings.Contains(name, "round-robin") {
		t.Errorf("FlatRR = %q", name)
	}
}

func TestQuad(t *testing.T) {
	p := Quad()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if name := p.DefaultArbiter().Name(); !strings.Contains(name, "round-robin") {
		t.Errorf("quad default arbiter = %q, want flat RR", name)
	}
}

func TestGeneric(t *testing.T) {
	p := Generic(3, 2, 5)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Cores != 3 || p.Banks != 2 || p.WordLatency != 5 {
		t.Fatalf("Generic = %+v", p)
	}
	if !strings.Contains(p.String(), "cores=3") {
		t.Errorf("String = %q", p.String())
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []*Platform{
		{Name: "x", Cores: 0, Banks: 1, WordLatency: 1},
		{Name: "x", Cores: 1, Banks: 0, WordLatency: 1},
		{Name: "x", Cores: 1, Banks: 1, WordLatency: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad platform %+v accepted", i, p)
		}
	}
}

func TestBankPolicy(t *testing.T) {
	// Enough banks: per-core policy.
	p := Generic(4, 8, 1)
	policy := p.BankPolicy()
	for k := 0; k < 4; k++ {
		if got := policy(model.CoreID(k)); got != model.BankID(k) {
			t.Errorf("perCore policy(%d) = %d", k, got)
		}
	}
	// Fewer banks than cores: striped.
	p = Generic(4, 2, 1)
	policy = p.BankPolicy()
	if policy(2) != 0 || policy(3) != 1 {
		t.Error("striped policy wrong")
	}
}
