// Package rta implements the analysis lineage the paper descends from:
// reference [1] (Altmeyer, Davis, Indrusiak, Maiza, Nelis, Reineke — "A
// generic and compositional framework for multicore response time
// analysis", RTNS 2015), which "served as an inspiration" for Rihani's
// RTNS 2016 algorithm that the DATE 2020 paper then made scalable.
//
// The setting differs from the rest of this repository: *sporadic* tasks
// with minimum inter-arrival times, scheduled by fixed-priority preemptive
// scheduling on each core, instead of a time-triggered DAG. The framework
// composes, per task, a classical uniprocessor response-time recurrence
// with a memory-interference term parameterized by the bus arbiter:
//
//	R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i/T_j⌉·C_j + IBUS(window = R_i)
//
// where the bus term for round-robin arbitration bounds the collisions
// between the accesses issued on the task's core during the window (its own
// plus preempting jobs') and the accesses each other core can issue in the
// same window. The recurrence is monotone in R_i and iterated to a fixed
// point; exceeding the deadline is unschedulability.
//
// The package exists as the "baseline of the baseline": it grounds the
// repository's interference vocabulary in the compositional framework the
// papers cite, and its tests double as documentation of how the DAG
// analyses' IBUS relates to the sporadic one.
package rta

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Task is a sporadic task under fixed-priority preemptive scheduling.
type Task struct {
	Name string
	// Core the task is statically assigned to.
	Core model.CoreID
	// C is the WCET in isolation, T the minimum inter-arrival time, D the
	// relative deadline (D ≤ T assumed, constrained-deadline model).
	C, T, D model.Cycles
	// Accesses is the number of shared-memory accesses per job.
	Accesses model.Accesses
	// Priority: lower value = higher priority. Ties are broken by order.
	Priority int
}

// System is a set of sporadic tasks on a shared-memory multicore with a
// round-robin bus of the given word latency.
type System struct {
	Cores       int
	WordLatency model.Cycles
	Tasks       []Task
}

// Result reports per-task response times.
type Result struct {
	// Response[i] is task i's worst-case response time; tasks that miss
	// their deadline have Schedulable[i] == false and Response capped at
	// the value that crossed the deadline.
	Response    []model.Cycles
	Schedulable []bool
}

// AllSchedulable reports whether every task meets its deadline.
func (r *Result) AllSchedulable() bool {
	for _, ok := range r.Schedulable {
		if !ok {
			return false
		}
	}
	return true
}

func (s *System) validate() error {
	if s.Cores < 1 {
		return fmt.Errorf("rta: %d cores", s.Cores)
	}
	for i, t := range s.Tasks {
		switch {
		case t.C <= 0:
			return fmt.Errorf("rta: task %d (%q) has WCET %d", i, t.Name, t.C)
		case t.T < t.C:
			return fmt.Errorf("rta: task %d (%q) has period %d < WCET %d", i, t.Name, t.T, t.C)
		case t.D <= 0 || t.D > t.T:
			return fmt.Errorf("rta: task %d (%q) has deadline %d outside (0, T=%d]", i, t.Name, t.D, t.T)
		case t.Core < 0 || int(t.Core) >= s.Cores:
			return fmt.Errorf("rta: task %d (%q) on core %d of %d", i, t.Name, t.Core, s.Cores)
		case t.Accesses < 0:
			return fmt.Errorf("rta: task %d (%q) has negative demand", i, t.Name)
		}
	}
	return nil
}

// ceilDiv computes ⌈a/b⌉ for positive b.
func ceilDiv(a, b model.Cycles) model.Cycles { return (a + b - 1) / b }

// coreDemand bounds the memory accesses core k can issue within a window
// of length w: every task of the core contributes one job per started
// period plus the carry-in job.
func (s *System) coreDemand(k model.CoreID, w model.Cycles) model.Accesses {
	var demand model.Accesses
	for _, t := range s.Tasks {
		if t.Core != k {
			continue
		}
		jobs := ceilDiv(w, t.T) + 1 // +1 carry-in
		demand += model.SatMulAccesses(model.Accesses(jobs), t.Accesses)
	}
	return demand
}

// hp reports whether a has strictly higher priority than b (same core).
func hp(a, b Task, ai, bi int) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return ai < bi
}

// Analyze computes worst-case response times for every task.
func (s *System) Analyze() (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	latency := s.WordLatency
	if latency < 1 {
		latency = 1
	}
	n := len(s.Tasks)
	res := &Result{Response: make([]model.Cycles, n), Schedulable: make([]bool, n)}
	for i, task := range s.Tasks {
		r := task.C
		for iter := 0; ; iter++ {
			if iter > 1_000_000 {
				return nil, fmt.Errorf("rta: response-time recurrence for %q did not converge", task.Name)
			}
			// Same-core preemption.
			next := task.C
			ownAccesses := task.Accesses
			for j, other := range s.Tasks {
				if j == i || other.Core != task.Core || !hp(other, task, j, i) {
					continue
				}
				jobs := ceilDiv(r, other.T)
				next += model.SatMulCycles(jobs, other.C)
				ownAccesses += model.SatMulAccesses(model.Accesses(jobs), other.Accesses)
			}
			// Round-robin bus interference: each access issued on this
			// core during the window can be delayed once per other core,
			// bounded by that core's own demand in the window.
			var busSlots model.Accesses
			for k := 0; k < s.Cores; k++ {
				if model.CoreID(k) == task.Core {
					continue
				}
				if d := s.coreDemand(model.CoreID(k), r); d < ownAccesses {
					busSlots += d
				} else {
					busSlots += ownAccesses
				}
			}
			next += model.ScaleAccesses(busSlots, latency)
			if next > task.D {
				res.Response[i] = next
				res.Schedulable[i] = false
				break
			}
			if next == r {
				res.Response[i] = r
				res.Schedulable[i] = true
				break
			}
			r = next
		}
	}
	return res, nil
}
