package rta

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
)

func TestSingleTaskNoBus(t *testing.T) {
	s := &System{Cores: 1, Tasks: []Task{
		{Name: "only", C: 10, T: 100, D: 100},
	}}
	res, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Response[0] != 10 || !res.Schedulable[0] {
		t.Fatalf("response = %d schedulable=%v", res.Response[0], res.Schedulable[0])
	}
}

func TestClassicPreemption(t *testing.T) {
	// Textbook uniprocessor example: hp task (C=2, T=5), lp task (C=4,
	// T=20): R_lp = 4 + ⌈R/5⌉·2 → fixed point 8.
	s := &System{Cores: 1, Tasks: []Task{
		{Name: "hp", C: 2, T: 5, D: 5, Priority: 0},
		{Name: "lp", C: 4, T: 20, D: 20, Priority: 1},
	}}
	res, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Response[0] != 2 {
		t.Errorf("hp response = %d, want 2", res.Response[0])
	}
	if res.Response[1] != 8 {
		t.Errorf("lp response = %d, want 8", res.Response[1])
	}
	if !res.AllSchedulable() {
		t.Error("system wrongly unschedulable")
	}
}

func TestDeadlineMiss(t *testing.T) {
	s := &System{Cores: 1, Tasks: []Task{
		{Name: "hog", C: 9, T: 10, D: 10, Priority: 0},
		{Name: "victim", C: 5, T: 40, D: 12, Priority: 1},
	}}
	res, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable[1] {
		t.Fatalf("victim schedulable with response %d despite 90%% hp load", res.Response[1])
	}
	if res.AllSchedulable() {
		t.Error("AllSchedulable wrong")
	}
}

func TestBusInterferenceAcrossCores(t *testing.T) {
	// Two single-task cores sharing the bus: responses grow beyond C by
	// the round-robin collision bound.
	s := &System{Cores: 2, WordLatency: 1, Tasks: []Task{
		{Name: "a", Core: 0, C: 20, T: 100, D: 100, Accesses: 8},
		{Name: "b", Core: 1, C: 20, T: 100, D: 100, Accesses: 8},
	}}
	res, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res.Response[i] <= 20 {
			t.Errorf("task %d: response %d shows no bus interference", i, res.Response[i])
		}
		if !res.Schedulable[i] {
			t.Errorf("task %d unschedulable", i)
		}
	}
	// The collision bound is min(own, other) per core pair; with carry-in
	// the competitor demand is 2×8, own window demand 8 → 8 slots.
	if res.Response[0] != 28 {
		t.Errorf("response = %d, want 28", res.Response[0])
	}
}

func TestIsolatedCoresNoInterference(t *testing.T) {
	// Tasks with zero memory demand never interfere across cores.
	s := &System{Cores: 2, Tasks: []Task{
		{Name: "a", Core: 0, C: 10, T: 50, D: 50},
		{Name: "b", Core: 1, C: 10, T: 50, D: 50},
	}}
	res, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Response[0] != 10 || res.Response[1] != 10 {
		t.Fatalf("responses = %v", res.Response)
	}
}

func TestMonotoneInDemand(t *testing.T) {
	base := func(acc model.Accesses) model.Cycles {
		s := &System{Cores: 2, Tasks: []Task{
			{Name: "a", Core: 0, C: 30, T: 200, D: 200, Accesses: 10},
			{Name: "b", Core: 1, C: 30, T: 200, D: 200, Accesses: acc},
		}}
		res, err := s.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return res.Response[0]
	}
	prev := base(0)
	for acc := model.Accesses(2); acc <= 20; acc += 2 {
		cur := base(acc)
		if cur < prev {
			t.Fatalf("response decreased when competitor demand grew: %d → %d", prev, cur)
		}
		prev = cur
	}
}

func TestValidation(t *testing.T) {
	cases := []System{
		{Cores: 0},
		{Cores: 1, Tasks: []Task{{C: 0, T: 10, D: 10}}},
		{Cores: 1, Tasks: []Task{{C: 20, T: 10, D: 10}}},
		{Cores: 1, Tasks: []Task{{C: 5, T: 10, D: 0}}},
		{Cores: 1, Tasks: []Task{{C: 5, T: 10, D: 20}}},
		{Cores: 1, Tasks: []Task{{C: 5, T: 10, D: 10, Core: 3}}},
		{Cores: 1, Tasks: []Task{{C: 5, T: 10, D: 10, Accesses: -1}}},
	}
	for i, s := range cases {
		if _, err := s.Analyze(); err == nil {
			t.Errorf("case %d: invalid system accepted", i)
		}
	}
}

func TestPriorityTieBreak(t *testing.T) {
	// Equal priorities: earlier index wins.
	s := &System{Cores: 1, Tasks: []Task{
		{Name: "first", C: 3, T: 10, D: 10},
		{Name: "second", C: 3, T: 10, D: 10},
	}}
	res, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Response[0] != 3 || res.Response[1] != 6 {
		t.Fatalf("responses = %v, want [3 6]", res.Response)
	}
}

func TestErrorMessagesNameTask(t *testing.T) {
	s := &System{Cores: 1, Tasks: []Task{{Name: "broken", C: 0, T: 10, D: 10}}}
	_, err := s.Analyze()
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v", err)
	}
}
