package rta

import (
	"context"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Algorithm is the name recorded in results produced by the DAG backend.
const Algorithm = "rta"

// backend adapts the RTNS 2015 compositional style to the engine's DAG
// images: a *window-free* upper bound. Where the incremental scheduler
// charges a task only the demand of tasks it is actually co-alive with, and
// the fixpoint baseline only the demand of window-overlapping tasks, this
// backend charges every task the full demand of *all* tasks on other cores
// that share a bank with it — the coarsest, composition-friendly
// over-approximation, computable in one pass with no fixed point over
// windows. Release dates are then the least solution of the release
// equations under those frozen (inflated) response times, exactly like the
// baseline's release pass.
//
// For monotone arbiters (a competitor set that dominates another, entry for
// entry, never yields a smaller bound — true of the round-robin family this
// repository ships), every per-bank competitor set used here dominates the
// set any window-based analysis can see, so per-task interference, response
// times, release dates and makespan are all ≥ the incremental scheduler's:
// a sound but pessimistic bound, useful as a cheap schedulability screen
// and as the third point of the precision spectrum (engine_test pins the
// ordering). It intentionally does NOT satisfy the window-consistency
// invariant of sched.Check — tasks are charged for interferers they never
// overlap — which is the price of compositionality.
type backend struct{}

func init() { engine.Register(engine.RTA, backend{}) }

// Analyze runs the compositional bound over the image's baseline orders.
func (backend) Analyze(ctx context.Context, img *engine.Image) (*sched.Result, error) {
	return analyzeImage(img, img.NewOrders(), img.CancelWith(ctx))
}

// NewWarm returns an always-cold analyzer: the bound has no incremental
// state worth keeping (a full run is already one pass).
func (backend) NewWarm(img *engine.Image) engine.Warm {
	return engine.NewColdWarm(img, analyzeImage)
}

// analyzeImage computes the window-free bound: per-task interference from
// all other-core bank-sharers, then the release fixed point under frozen
// responses, then the deadline verdicts.
func analyzeImage(img *engine.Image, ord *engine.Orders, cancel <-chan struct{}) (*sched.Result, error) {
	n := img.NumTasks
	arb := img.Opts.Arbiter
	deadline := img.Opts.Deadline
	separate := img.Opts.SeparateCompetitors
	res := sched.NewResult(Algorithm, n, img.Banks)

	// Per-core per-bank demand totals for the merged-competitor mode: one
	// O(n·banks) pass replaces a per-task rescan of all tasks.
	perCore := make([]model.Accesses, img.Cores*img.Banks)
	for i := 0; i < n; i++ {
		row := img.DemandRow(model.TaskID(i))
		base := int(img.CoreOf[i]) * img.Banks
		for b, d := range row {
			perCore[base+b] += d
		}
	}

	// The per-task bounds are mutually independent (each reads only the
	// immutable image and the frozen perCore totals, and writes only its
	// own result rows), so with Options.Parallelism > 1 they are computed
	// over fixed task partitions — bit-identical to the sequential loop by
	// construction. Each partition owns a competitor scratch buffer and
	// polls cancellation itself; workers are joined before the function
	// returns either way.
	parts := img.Opts.Workers()
	if parts > n {
		parts = n
	}
	if parts > 1 {
		kern := engine.NewKernel(parts)
		stopped := make([]bool, parts)
		bufs := make([][]arbiter.Request, parts)
		for p := range bufs {
			bufs[p] = make([]arbiter.Request, 0, n)
		}
		kern.SetTask(func(part int) {
			lo, hi := engine.PartitionRange(n, parts, part)
			for i := lo; i < hi; i++ {
				if canceled(cancel) {
					stopped[part] = true
					return
				}
				bufs[part] = taskBound(img, arb, separate, perCore, bufs[part], i, res)
			}
		})
		kern.Run()
		kern.Close()
		for _, st := range stopped {
			if st {
				return nil, sched.ErrCanceled
			}
		}
	} else {
		comps := make([]arbiter.Request, 0, n)
		for i := 0; i < n; i++ {
			if canceled(cancel) {
				return nil, sched.ErrCanceled
			}
			comps = taskBound(img, arb, separate, perCore, comps, i, res)
		}
	}

	// Same-core predecessor table from the order overlay, then the release
	// fixed point (Jacobi from the minimal releases, like the baseline's
	// release pass) under the frozen responses.
	pred := make([]model.TaskID, n)
	for i := range pred {
		pred[i] = model.NoTask
	}
	for k := 0; k < img.Cores; k++ {
		order := ord.Order(model.CoreID(k))
		for pos := 1; pos < len(order); pos++ {
			pred[order[pos]] = order[pos-1]
		}
	}
	rel := res.Release
	copy(rel, img.MinRelease)
	next := make([]model.Cycles, n)
	rounds := 0
	for {
		rounds++
		if rounds > n+2 {
			return nil, sched.Deadlock(horizon(rel, res.Response), model.NoTask)
		}
		changed := false
		for i := 0; i < n; i++ {
			id := model.TaskID(i)
			want := img.MinRelease[i]
			for _, p := range img.Preds(id) {
				if f := rel[p] + res.Response[p]; f > want {
					want = f
				}
			}
			if p := pred[id]; p != model.NoTask {
				if f := rel[p] + res.Response[p]; f > want {
					want = f
				}
			}
			next[i] = want
			if want != rel[i] {
				changed = true
			}
		}
		copy(rel, next)
		if !changed {
			break
		}
		if h := horizon(rel, res.Response); h > deadline {
			return nil, sched.DeadlineExceeded(h)
		}
	}
	res.Iterations = rounds

	res.RecomputeMakespan()
	if res.Makespan > deadline {
		return nil, sched.DeadlineExceeded(res.Makespan)
	}
	return res, nil
}

// taskBound computes one task's per-bank interference bounds, total
// interference and response time, writing only that task's rows of res. It
// is the shared body of the sequential loop and the parallel partitions;
// comps is a reusable competitor scratch buffer, returned so the caller can
// keep its grown capacity.
//
//mia:hotpath
func taskBound(img *engine.Image, arb arbiter.Arbiter, separate bool, perCore []model.Accesses, comps []arbiter.Request, i int, res *sched.Result) []arbiter.Request {
	id := model.TaskID(i)
	dstCore := img.CoreOf[i]
	row := img.DemandRow(id)
	n := img.NumTasks
	var inter model.Cycles
	for b, d := range row {
		if d == 0 {
			continue
		}
		comps = comps[:0]
		if separate {
			// One entry per other-core task with demand on the bank,
			// in ascending task-ID order.
			for j := 0; j < n; j++ {
				if img.CoreOf[j] == dstCore {
					continue
				}
				if w := img.DemandRow(model.TaskID(j))[b]; w > 0 {
					comps = append(comps, arbiter.Request{Core: img.CoreOf[j], Demand: w})
				}
			}
		} else {
			// One merged entry per other core, in ascending core order.
			for k := 0; k < img.Cores; k++ {
				if model.CoreID(k) == dstCore {
					continue
				}
				if w := perCore[k*img.Banks+b]; w > 0 {
					comps = append(comps, arbiter.Request{Core: model.CoreID(k), Demand: w})
				}
			}
		}
		if len(comps) == 0 {
			continue
		}
		bound := arb.Bound(arbiter.Request{Core: dstCore, Demand: d}, comps, model.BankID(b))
		res.PerBank[i][b] = bound
		inter += bound
	}
	res.Interference[i] = inter
	res.Response[i] = img.WCET[i] + inter
	return comps
}

// canceled polls a cancellation channel without blocking.
func canceled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// horizon is the latest finish date implied by the given releases and
// responses.
func horizon(rel, resp []model.Cycles) model.Cycles {
	var h model.Cycles
	for i := range rel {
		if f := rel[i] + resp[i]; f > h {
			h = f
		}
	}
	return h
}
