package server

import (
	"testing"
	"time"
)

// TestNearestRank pins the quantile definition at the sample sizes the old
// int(q·(n−1)) formula got wrong: n = 1 and 2 (where p99 must be the max,
// not the min) and the empty sample (0 by convention). n = 100 checks the
// textbook anchor points.
func TestNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1) // sorted 1..n
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty/p50", seq(0), 0.50, 0},
		{"empty/p99", seq(0), 0.99, 0},
		{"one/p50", seq(1), 0.50, 1},
		{"one/p99", seq(1), 0.99, 1},
		{"two/p50", seq(2), 0.50, 1},
		{"two/p99", seq(2), 0.99, 2}, // old formula returned 1 (the minimum)
		{"two/p100", seq(2), 1.00, 2},
		{"hundred/p50", seq(100), 0.50, 50},
		{"hundred/p95", seq(100), 0.95, 95},
		{"hundred/p99", seq(100), 0.99, 99},
		{"hundred/p100", seq(100), 1.00, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := nearestRank(tc.sorted, tc.q); got != tc.want {
				t.Errorf("nearestRank(n=%d, q=%.2f) = %v, want %v", len(tc.sorted), tc.q, got, tc.want)
			}
		})
	}
}

// TestQuantilesWindow drives the ring end to end: two observations must
// yield p99 = max.
func TestQuantilesWindow(t *testing.T) {
	m := newMetrics()
	p50, p99, samples := m.quantiles()
	if p50 != 0 || p99 != 0 || samples != 0 {
		t.Errorf("empty window quantiles = (%v, %v, %d), want zeros", p50, p99, samples)
	}
	m.observeLatency(10 * time.Millisecond)
	m.observeLatency(90 * time.Millisecond)
	p50, p99, samples = m.quantiles()
	if samples != 2 || p50 != 10 || p99 != 90 {
		t.Errorf("two-sample quantiles = (p50=%v, p99=%v, n=%d), want (10, 90, 2)", p50, p99, samples)
	}
}

// TestRetryAfterSeconds pins the shed hint derivation: queued work over the
// drain rate, clamped to [1, 30], with the configured fallback when the
// rate is unknown.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name     string
		queued   int
		rate     float64
		fallback time.Duration
		want     int
	}{
		{"no rate uses fallback", 10, 0, 3 * time.Second, 3},
		{"fallback clamped low", 10, 0, 0, 1},
		{"fallback clamped high", 10, 0, time.Hour, 30},
		{"fast drain clamps to 1", 4, 100, time.Second, 1},
		{"queue over rate", 9, 2, time.Second, 5}, // (9+1)/2
		{"rounds up", 10, 3, time.Second, 4},      // ceil(11/3)
		{"slow drain clamps to 30", 64, 0.1, time.Second, 30},
		{"empty queue still waits 1s", 0, 50, time.Second, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterSeconds(tc.queued, tc.rate, tc.fallback); got != tc.want {
				t.Errorf("retryAfterSeconds(%d, %v, %v) = %d, want %d", tc.queued, tc.rate, tc.fallback, got, tc.want)
			}
		})
	}
}

// TestDrainRate: fewer than two completions is an unknown rate; a window of
// completions yields a positive one.
func TestDrainRate(t *testing.T) {
	m := newMetrics()
	now := time.Now()
	if r := m.drainRate(now); r != 0 {
		t.Errorf("drain rate with no completions = %v, want 0 (unknown)", r)
	}
	m.observeCompletion(now.Add(-time.Second))
	if r := m.drainRate(now); r != 0 {
		t.Errorf("drain rate with one completion = %v, want 0 (unknown)", r)
	}
	m.observeCompletion(now.Add(-500 * time.Millisecond))
	r := m.drainRate(now)
	if r < 1.9 || r > 2.1 { // 2 completions over the 1s since the oldest
		t.Errorf("drain rate = %v, want ~2/s", r)
	}
	// Overfill the ring: the rate must use only the window, not the total.
	for i := 0; i < 2*drainWindow; i++ {
		m.observeCompletion(now)
	}
	if r := m.drainRate(now.Add(time.Second)); r < float64(drainWindow)-1 || r > float64(drainWindow)+1 {
		t.Errorf("post-overfill drain rate = %v, want ~%d/s", r, drainWindow)
	}
}
