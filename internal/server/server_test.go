package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer builds a server and registers a drain-plus-leak-check
// cleanup: after Close, the goroutine count must return to its pre-New
// baseline (small slack for runtime background goroutines).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	baseline := runtime.NumGoroutine()
	s := New(cfg)
	t.Cleanup(func() {
		s.Close()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= baseline+2 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak after Close: %d running, baseline %d", runtime.NumGoroutine(), baseline)
	})
	return s
}

func graphJSON(t *testing.T, g *model.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("serializing graph: %v", err)
	}
	return buf.Bytes()
}

func do(s *Server, method, target string, body io.Reader) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, body)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func analyzeGraph(t *testing.T, s *Server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rr := do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body))
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze: got %d, want 200 (body %s)", rr.Code, rr.Body.String())
	}
	return rr
}

func responseHash(t *testing.T, rr *httptest.ResponseRecorder) string {
	t.Helper()
	var resp struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v (body %s)", err, rr.Body.String())
	}
	if resp.Hash == "" {
		t.Fatalf("response has no hash: %s", rr.Body.String())
	}
	return resp.Hash
}

// roundTrip pushes a graph through its JSON representation, the same path a
// posted graph takes, so fingerprints computed on local clones match the
// ones the server reports.
func roundTrip(t *testing.T, g *model.Graph) *model.Graph {
	t.Helper()
	rt, err := model.ReadJSON(bytes.NewReader(graphJSON(t, g)))
	if err != nil {
		t.Fatalf("round-tripping graph: %v", err)
	}
	return rt
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAnalyzeGolden(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rr := analyzeGraph(t, s, graphJSON(t, gen.Figure1()))
	if got := rr.Header().Get("X-Mia-Cache"); got != "miss" {
		t.Errorf("first analyze X-Mia-Cache = %q, want \"miss\"", got)
	}
	golden := filepath.Join("testdata", "analyze_figure1.golden")
	if *update {
		if err := os.WriteFile(golden, rr.Body.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(rr.Body.Bytes(), want) {
		t.Errorf("analyze response drifted from golden\n got: %s\nwant: %s", rr.Body.Bytes(), want)
	}
}

func TestAnalyzeWarmHitIsByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	body := graphJSON(t, gen.Figure1())
	cold := analyzeGraph(t, s, body)
	warm := analyzeGraph(t, s, body)
	if got := warm.Header().Get("X-Mia-Cache"); got != "hit" {
		t.Fatalf("second analyze X-Mia-Cache = %q, want \"hit\"", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Errorf("warm analyze differs from cold\ncold: %s\nwarm: %s", cold.Body.Bytes(), warm.Body.Bytes())
	}
	if hits := s.met.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestRescheduleWarmMatchesColdAnalyze is the differential acceptance test:
// a reschedule served from a warm checkpoint must be byte-identical to a
// cold analyze of the edited graph on a fresh server.
func TestRescheduleWarmMatchesColdAnalyze(t *testing.T) {
	g := roundTrip(t, gen.Figure2()) // no edges, so order swaps stay schedulable
	warmSrv := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, warmSrv, graphJSON(t, g)))

	reqBody := fmt.Sprintf(`{"hash":%q,"swaps":[{"core":2,"pos":0},{"core":3,"pos":1},{"core":0,"pos":1}]}`, hash)
	warm := do(warmSrv, http.MethodPost, "/v1/reschedule", strings.NewReader(reqBody))
	if warm.Code != http.StatusOK {
		t.Fatalf("reschedule: got %d (body %s)", warm.Code, warm.Body.String())
	}
	if got := warm.Header().Get("X-Mia-Cache"); got != "hit" {
		t.Errorf("reschedule X-Mia-Cache = %q, want \"hit\"", got)
	}
	if hits := warmSrv.met.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	edited := g.Clone()
	edited.SwapOrder(2, 0)
	edited.SwapOrder(3, 1)
	edited.SwapOrder(0, 1)
	coldSrv := newTestServer(t, Config{Workers: 1})
	cold := analyzeGraph(t, coldSrv, graphJSON(t, edited))
	if got := cold.Header().Get("X-Mia-Cache"); got != "miss" {
		t.Errorf("cold analyze X-Mia-Cache = %q, want \"miss\"", got)
	}
	if !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Errorf("warm reschedule differs from cold analyze of edited graph\nwarm: %s\ncold: %s",
			warm.Body.Bytes(), cold.Body.Bytes())
	}
	if got, want := responseHash(t, warm), edited.Fingerprint(); got != want {
		t.Errorf("reschedule hash = %s, want edited-graph fingerprint %s", got, want)
	}
}

// TestRescheduleBaselineSurvivesEdits pins the apply-evaluate-undo contract:
// a reschedule must not corrupt the worker's baseline, so an analyze after a
// reschedule still returns the unedited graph's schedule.
func TestRescheduleBaselineSurvivesEdits(t *testing.T) {
	g := gen.Figure2()
	s := newTestServer(t, Config{Workers: 1})
	body := graphJSON(t, g)
	base := analyzeGraph(t, s, body)
	hash := responseHash(t, base)

	for i := 0; i < 3; i++ {
		reqBody := fmt.Sprintf(`{"hash":%q,"swaps":[{"core":2,"pos":1}]}`, hash)
		rr := do(s, http.MethodPost, "/v1/reschedule", strings.NewReader(reqBody))
		if rr.Code != http.StatusOK {
			t.Fatalf("reschedule %d: got %d (body %s)", i, rr.Code, rr.Body.String())
		}
	}
	again := analyzeGraph(t, s, body)
	if !bytes.Equal(base.Body.Bytes(), again.Body.Bytes()) {
		t.Errorf("analyze after reschedules differs from original\nfirst: %s\nafter: %s",
			base.Body.Bytes(), again.Body.Bytes())
	}
}

// TestConcurrentAnalyzeReschedule hammers one graph hash from many client
// goroutines across several workers; run under -race this doubles as the
// synchronization audit. Every response must be one of the two legal bodies.
func TestConcurrentAnalyzeReschedule(t *testing.T) {
	g := gen.Figure2()
	body := graphJSON(t, g)

	refSrv := newTestServer(t, Config{Workers: 1})
	wantBase := append([]byte(nil), analyzeGraph(t, refSrv, body).Body.Bytes()...)
	edited := g.Clone()
	edited.SwapOrder(2, 0)
	wantEdited := append([]byte(nil), analyzeGraph(t, refSrv, graphJSON(t, edited)).Body.Bytes()...)

	s := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	hash := responseHash(t, analyzeGraph(t, s, body))
	reqBody := fmt.Sprintf(`{"hash":%q,"swaps":[{"core":2,"pos":0}]}`, hash)

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rr *httptest.ResponseRecorder
			var want []byte
			if i%2 == 0 {
				rr = do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body))
				want = wantBase
			} else {
				rr = do(s, http.MethodPost, "/v1/reschedule", strings.NewReader(reqBody))
				want = wantEdited
			}
			if rr.Code != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d (body %s)", i, rr.Code, rr.Body.String())
				return
			}
			if !bytes.Equal(rr.Body.Bytes(), want) {
				errs <- fmt.Errorf("client %d: body diverged\n got: %s\nwant: %s", i, rr.Body.Bytes(), want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestQueueFullShedsWith429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	arrived := make(chan struct{}, 4)
	release := make(chan struct{})
	s.gate = func() { arrived <- struct{}{}; <-release }
	defer close(release)

	body := graphJSON(t, gen.Figure1())
	done := make(chan *httptest.ResponseRecorder, 2)
	go func() { done <- do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body)) }()
	<-arrived // worker now holds request 1 at the gate
	go func() { done <- do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body)) }()
	waitFor(t, "request 2 to occupy the queue slot", func() bool { return s.runner.Queued() == 1 })

	rr := do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overload request: got %d, want 429 (body %s)", rr.Code, rr.Body.String())
	}
	// A cold server has no drain-rate history, so the hint falls back to the
	// configured RetryAfter; it must always be an integer within [1, 30].
	got := rr.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(got); err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After = %q, want an integer in [1, 30]", got)
	} else if secs != 3 {
		t.Errorf("Retry-After = %d, want the configured fallback 3 (no completions observed yet)", secs)
	}
	if shed := s.met.shed.Load(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}

	release <- struct{}{}
	<-arrived
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if rr := <-done; rr.Code != http.StatusOK {
			t.Errorf("held request %d: got %d, want 200 (body %s)", i, rr.Code, rr.Body.String())
		}
	}
}

func TestDeadlineExpiryAnswers504(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.gate = func() { <-release }

	body := graphJSON(t, gen.Figure1())
	rr := do(s, http.MethodPost, "/v1/analyze?timeout_ms=30", bytes.NewReader(body))
	close(release) // let the stuck job observe its dead context and finish
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: got %d, want 504 (body %s)", rr.Code, rr.Body.String())
	}
	var resp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Errorf("504 body should carry a JSON error, got %s", rr.Body.String())
	}
}

func TestDrainRejectsNewFinishesAdmitted(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	s.gate = func() { arrived <- struct{}{}; <-release }

	body := graphJSON(t, gen.Figure1())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body)) }()
	<-arrived
	s.BeginDrain()

	if rr := do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(body)); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("analyze during drain: got %d, want 503", rr.Code)
	}
	if rr := do(s, http.MethodGet, "/healthz", nil); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: got %d, want 503 (body %s)", rr.Code, rr.Body.String())
	}

	close(release)
	if rr := <-done; rr.Code != http.StatusOK {
		t.Errorf("admitted request after drain: got %d, want 200 (body %s)", rr.Code, rr.Body.String())
	}
}

func TestBadInputs(t *testing.T) {
	g := gen.Figure2()
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, g)))

	cases := []struct {
		name   string
		target string
		body   string
		want   int
	}{
		{"malformed graph", "/v1/analyze", "{", http.StatusBadRequest},
		{"invalid graph", "/v1/analyze", `{"cores":0,"banks":1}`, http.StatusBadRequest},
		{"malformed reschedule", "/v1/reschedule", "{", http.StatusBadRequest},
		{"unknown field", "/v1/reschedule", `{"hash":"x","moves":[]}`, http.StatusBadRequest},
		{"missing hash", "/v1/reschedule", `{"swaps":[]}`, http.StatusBadRequest},
		{"unknown hash", "/v1/reschedule", `{"hash":"deadbeef","swaps":[]}`, http.StatusNotFound},
		{"swap core out of range", "/v1/reschedule",
			fmt.Sprintf(`{"hash":%q,"swaps":[{"core":99,"pos":0}]}`, hash), http.StatusBadRequest},
		{"swap pos out of range", "/v1/reschedule",
			fmt.Sprintf(`{"hash":%q,"swaps":[{"core":2,"pos":7}]}`, hash), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := do(s, http.MethodPost, tc.target, strings.NewReader(tc.body))
			if rr.Code != tc.want {
				t.Errorf("got %d, want %d (body %s)", rr.Code, tc.want, rr.Body.String())
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		if rr := do(s, http.MethodGet, "/v1/analyze", nil); rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET analyze: got %d, want 405", rr.Code)
		}
	})

	t.Run("rejected swaps leave baseline intact", func(t *testing.T) {
		warm := do(s, http.MethodPost, "/v1/reschedule", strings.NewReader(fmt.Sprintf(`{"hash":%q,"swaps":[]}`, hash)))
		if warm.Code != http.StatusOK {
			t.Fatalf("no-op reschedule: got %d (body %s)", warm.Code, warm.Body.String())
		}
		if got := responseHash(t, warm); got != hash {
			t.Errorf("no-op reschedule hash = %s, want %s", got, hash)
		}
	})
}

func TestUnschedulableAnswers422(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Sched: sched.Options{Deadline: 1}})
	rr := do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(graphJSON(t, gen.Figure1())))
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unschedulable analyze: got %d, want 422 (body %s)", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "unschedulable") {
		t.Errorf("422 body should name the verdict, got %s", rr.Body.String())
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 7})
	if rr := do(s, http.MethodGet, "/healthz", nil); rr.Code != http.StatusOK ||
		!strings.Contains(rr.Body.String(), `"ok"`) {
		t.Errorf("healthz: got %d body %s", rr.Code, rr.Body.String())
	}

	body := graphJSON(t, gen.Figure1())
	analyzeGraph(t, s, body)
	analyzeGraph(t, s, body) // may hit or miss depending on which worker serves it

	rr := do(s, http.MethodGet, "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: got %d", rr.Code)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding metrics: %v (body %s)", err, rr.Body.String())
	}
	if snap.Requests.Analyze != 2 {
		t.Errorf("requests.analyze = %d, want 2", snap.Requests.Analyze)
	}
	if snap.Requests.Healthz != 1 {
		t.Errorf("requests.healthz = %d, want 1", snap.Requests.Healthz)
	}
	if snap.Responses.Class2xx < 3 {
		t.Errorf("responses.2xx = %d, want >= 3", snap.Responses.Class2xx)
	}
	if snap.Queue.Capacity != 7 {
		t.Errorf("queue.capacity = %d, want 7", snap.Queue.Capacity)
	}
	if snap.Cache.Hits+snap.Cache.Misses != 2 {
		t.Errorf("cache hits+misses = %d, want 2", snap.Cache.Hits+snap.Cache.Misses)
	}
	if snap.Cache.Graphs != 1 {
		t.Errorf("cache.graphs = %d, want 1", snap.Cache.Graphs)
	}
	if snap.LatencyMs.Samples != 2 {
		t.Errorf("latency samples = %d, want 2", snap.LatencyMs.Samples)
	}
}

func TestGraphCacheEvictionTurnsRescheduleInto404(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, GraphCacheSize: 1, WarmCacheSize: 1})
	hash1 := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure1())))
	responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2()))) // evicts Figure1 everywhere

	rr := do(s, http.MethodPost, "/v1/reschedule", strings.NewReader(fmt.Sprintf(`{"hash":%q,"swaps":[]}`, hash1)))
	if rr.Code != http.StatusNotFound {
		t.Errorf("reschedule of evicted hash: got %d, want 404 (body %s)", rr.Code, rr.Body.String())
	}
}
