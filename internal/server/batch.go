package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/wire"
)

// readGraphJSON parses an embedded graph object (the "graph" field of a
// batch request). The body size cap was already applied when the enclosing
// request was read.
func (s *Server) readGraphJSON(raw json.RawMessage) (*model.Graph, error) {
	return model.ReadJSON(bytes.NewReader(raw))
}

// batchRequest is the JSON body of POST /v1/batch: one graph — by value or
// by the fingerprint of an earlier analyze — plus an array of edit
// scenarios to evaluate against it. Exactly one of Hash/Graph must be set.
//
// With Content-Type: application/x-mia-wire the body is instead a binary
// wire blob immediately followed by the JSON object {"items":[...]} — the
// blob's header states its exact size, so the two parts need no separator.
type batchRequest struct {
	Hash  string          `json:"hash,omitempty"`
	Graph json.RawMessage `json:"graph,omitempty"`
	Items []batchItem     `json:"items"`
}

// batchItem is one edit scenario: a swap sequence with the same semantics
// as the unary reschedule endpoint (each batch item is evaluated by exactly
// the code path a unary request takes). An empty swap list re-evaluates the
// baseline orders.
type batchItem struct {
	Swaps []swapEdit `json:"swaps"`
}

// batchLine is one NDJSON result line: the item's index in the request, the
// status the same scenario would have received as a unary response, and
// that response's body — the schedule under "result" on success, the error
// message otherwise.
type batchLine struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// batchTrailer is the final NDJSON line of every batch response. Truncated
// batches — client gone, deadline expired, server draining mid-stream —
// still carry every completed result above the trailer, and the trailer
// says so explicitly (the serving twin of miabench's "# TRUNCATED" CSV
// marker): completed counts the result lines actually written, and Reason
// names the interruption.
type batchTrailer struct {
	Done      bool   `json:"done"`
	Items     int    `json:"items"`
	Completed int    `json:"completed"`
	Truncated bool   `json:"truncated"`
	Reason    string `json:"reason,omitempty"`
}

// handleBatch serves POST /v1/batch. The graph is resolved and compiled on
// the handler goroutine (same as analyze), then the scenario list is
// admitted to the worker pool as ONE job: a batch occupies one queue slot
// and one worker for its whole duration, so admission control and
// fairness reason about batches the same way they reason about unary
// requests — a full queue answers 429 before the first byte is streamed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.batch.Add(1)
	hash, items, errRep := s.parseBatch(r)
	if errRep != nil {
		s.writeReply(w, *errRep)
		return
	}
	s.met.observeBatchItems(len(items))
	s.streamBatch(w, r, hash, items)
}

// parseBatch resolves a batch request body into a registered image
// fingerprint plus the scenario list. On any failure it returns the reply
// to send instead.
func (s *Server) parseBatch(r *http.Request) (string, []batchItem, *reply) {
	fail := func(status int, msg string) (string, []batchItem, *reply) {
		return "", nil, &reply{status: status, body: errBody(msg)}
	}
	var img *engine.Image
	var items []batchItem
	if isWire(r) {
		body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
		if err != nil {
			return fail(http.StatusBadRequest, err.Error())
		}
		n, err := wire.Size(body)
		if err != nil || n > len(body) {
			return fail(http.StatusBadRequest, "batch body must start with a wire graph blob")
		}
		if img, err = engine.CompileFromWire(body[:n], s.cfg.Sched); err != nil {
			return fail(http.StatusBadRequest, err.Error())
		}
		s.met.ingestWire.Add(1)
		var rest struct {
			Items []batchItem `json:"items"`
		}
		dec := json.NewDecoder(bytes.NewReader(body[n:]))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rest); err != nil {
			return fail(http.StatusBadRequest, "parsing batch items after wire blob: "+err.Error())
		}
		items = rest.Items
	} else {
		var req batchRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return fail(http.StatusBadRequest, "parsing batch request: "+err.Error())
		}
		switch {
		case req.Hash != "" && req.Graph != nil:
			return fail(http.StatusBadRequest, "set either hash or graph, not both")
		case req.Hash != "":
			var ok bool
			if img, ok = s.images.get(req.Hash); !ok {
				return fail(http.StatusNotFound,
					"unknown graph hash (analyze it first; the registry is an LRU and may have evicted it)")
			}
		case req.Graph != nil:
			g, err := s.readGraphJSON(req.Graph)
			if err != nil {
				return fail(http.StatusBadRequest, err.Error())
			}
			if img, err = engine.Compile(g, s.cfg.Sched); err != nil {
				return fail(http.StatusBadRequest, err.Error())
			}
			s.met.ingestJSON.Add(1)
		default:
			return fail(http.StatusBadRequest, "missing graph: set hash or graph")
		}
		items = req.Items
	}
	if len(items) == 0 {
		return fail(http.StatusBadRequest, "batch has no items")
	}
	hash := img.Fingerprint()
	s.images.put(hash, img)
	return hash, items, nil
}

// streamBatch admits the scenario list as one worker job and streams its
// NDJSON results. The line channel is buffered for the full batch, so the
// worker never blocks on the handler: a slow or gone client cannot pin a
// worker, and on cancellation every line computed so far is still in the
// channel for the handler's final drain.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, hash string, items []batchItem) {
	start := time.Now()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	if s.draining() {
		s.writeReply(w, reply{status: http.StatusServiceUnavailable, body: errBody("draining")})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	lines := make(chan batchLine, len(items)+1)
	admitted := s.runner.TrySubmit(func(wk *worker) {
		if s.gate != nil {
			s.gate()
		}
		defer close(lines)
		// Per-batch result memo: scenarios that evaluate to the same
		// configuration (same orders fingerprint) are answered once — see
		// whatIf. Worker-confined, dropped with the batch.
		memo := make(map[string]reply, len(items))
		for i := range items {
			if ctx.Err() != nil {
				return // handler writes the truncation trailer
			}
			if s.itemGate != nil {
				s.itemGate(i)
			}
			swaps := items[i].Swaps
			rep := safeJob(ctx, wk, func(ctx context.Context, wk *worker) reply {
				return wk.whatIf(ctx, s, hash, swaps, memo)
			})
			lines <- toBatchLine(i, rep)
		}
	})
	if !admitted {
		s.met.shed.Add(1)
		if s.draining() {
			s.writeReply(w, reply{status: http.StatusServiceUnavailable, body: errBody("draining")})
			return
		}
		w.Header().Set("Retry-After", s.retryAfterHint())
		s.writeReply(w, reply{status: http.StatusTooManyRequests, body: errBody("queue full")})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.met.countResponse(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	completed := 0
	write := func(b []byte) {
		w.Write(b)
		s.met.streamedBytes.Add(int64(len(b)))
	}
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeLine := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return // a line that cannot serialize is dropped, never fatal mid-stream
		}
		write(append(b, '\n'))
	}
	// emit writes one result line and counts it as completed — the count and
	// the write can never diverge because they are the same statement.
	// Success lines splice the worker-marshaled result bytes in verbatim —
	// json.Marshal produced them, so re-encoding the RawMessage would only
	// re-compact already-compact bytes.
	emit := func(line batchLine) {
		if line.Status == http.StatusOK && len(line.Result) > 0 {
			b := make([]byte, 0, len(line.Result)+48)
			b = append(b, `{"index":`...)
			b = strconv.AppendInt(b, int64(line.Index), 10)
			b = append(b, `,"status":200,"result":`...)
			b = append(b, line.Result...)
			b = append(b, '}', '\n')
			write(b)
		} else {
			writeLine(line)
		}
		completed++
	}
	// writeTrailer is the single exit of the stream: whatever combination of
	// client disconnect, deadline expiry, drain, and worker completion races
	// the loop below into finishing, exactly one trailer is written, and its
	// truncation reason is chosen by fixed precedence — deadline beats
	// client-gone beats draining — so the same race always reports the same
	// reason.
	trailerSent := false
	writeTrailer := func() {
		if trailerSent {
			return
		}
		trailerSent = true
		trailer := batchTrailer{Done: true, Items: len(items), Completed: completed,
			Truncated: completed < len(items)}
		if trailer.Truncated {
			switch {
			case errors.Is(ctx.Err(), context.DeadlineExceeded):
				trailer.Reason = "deadline exceeded"
			case ctx.Err() != nil:
				trailer.Reason = "client gone"
			case s.draining():
				trailer.Reason = "draining"
			default:
				trailer.Reason = "interrupted"
			}
		}
		writeLine(trailer)
		flush()
	}

stream:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				break stream
			}
			emit(line)
			// Coalesced streaming: flush only when no further line is already
			// waiting, so a fast worker does not force one syscall per line
			// while a slow one still streams every result as it lands.
			if len(lines) == 0 {
				flush()
			}
		case <-ctx.Done():
			// Interrupted — client disconnect or deadline. Flush every line
			// already computed (they sit in the buffered channel), then
			// stop; the in-flight item, if any, is abandoned to the worker,
			// which observes the dead context and returns.
			for {
				select {
				case line, ok := <-lines:
					if !ok {
						break stream
					}
					emit(line)
				default:
					break stream
				}
			}
		}
	}

	writeTrailer()
	s.met.observeLatency(time.Since(start))
	s.met.observeCompletion(time.Now())
}

// toBatchLine converts a unary-shaped reply into its NDJSON line.
func toBatchLine(i int, rep reply) batchLine {
	line := batchLine{Index: i, Status: rep.status}
	if rep.status == http.StatusOK {
		line.Result = rep.body
		return line
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(rep.body, &e) == nil && e.Error != "" {
		line.Error = e.Error
	} else {
		line.Error = http.StatusText(rep.status)
	}
	return line
}
