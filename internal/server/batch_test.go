package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/wire"
)

// lineJSON is the union of batch result lines and the trailer, for test
// parsing.
type lineJSON struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`

	Done      bool   `json:"done"`
	Items     int    `json:"items"`
	Completed int    `json:"completed"`
	Truncated bool   `json:"truncated"`
	Reason    string `json:"reason"`
}

// parseNDJSON splits a batch response body into result lines and trailer.
func parseNDJSON(t *testing.T, body []byte) ([]lineJSON, lineJSON) {
	t.Helper()
	raw := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(raw) == 0 || raw[0] == "" {
		t.Fatalf("empty batch response %q", body)
	}
	all := make([]lineJSON, len(raw))
	for i, l := range raw {
		if err := json.Unmarshal([]byte(l), &all[i]); err != nil {
			t.Fatalf("line %d: %v (line %q)", i, err, l)
		}
	}
	trailer := all[len(all)-1]
	if !trailer.Done {
		t.Fatalf("last line is not a trailer: %s", raw[len(raw)-1])
	}
	return all[:len(all)-1], trailer
}

func doBatch(s *Server, contentType string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

// TestBatchMatchesUnary: every batch item's result must be byte-identical
// to the unary reschedule response for the same swaps — the two paths share
// whatIf as their evaluation core, and this pins it.
func TestBatchMatchesUnary(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))

	itemSwaps := []string{
		`[]`,
		`[{"core":2,"pos":0}]`,
		`[{"core":3,"pos":1},{"core":0,"pos":1}]`,
		`[{"core":2,"pos":0},{"core":2,"pos":0}]`, // identity pair: swap and swap back
		`[{"core":1,"pos":0}]`,
	}
	unary := make([][]byte, len(itemSwaps))
	for i, sw := range itemSwaps {
		rr := do(s, http.MethodPost, "/v1/reschedule",
			strings.NewReader(fmt.Sprintf(`{"hash":%q,"swaps":%s}`, hash, sw)))
		if rr.Code != http.StatusOK {
			t.Fatalf("unary[%d]: %d (%s)", i, rr.Code, rr.Body.String())
		}
		unary[i] = rr.Body.Bytes()
	}

	body := fmt.Sprintf(`{"hash":%q,"items":[%s]}`, hash,
		`{"swaps":`+strings.Join(itemSwaps, `},{"swaps":`)+`}`)
	rr := doBatch(s, "", []byte(body))
	if rr.Code != http.StatusOK {
		t.Fatalf("batch: %d (%s)", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	lines, trailer := parseNDJSON(t, rr.Body.Bytes())
	if len(lines) != len(itemSwaps) {
		t.Fatalf("%d result lines, want %d", len(lines), len(itemSwaps))
	}
	if trailer.Truncated || trailer.Completed != len(itemSwaps) || trailer.Items != len(itemSwaps) {
		t.Fatalf("trailer %+v, want complete run of %d", trailer, len(itemSwaps))
	}
	for i, line := range lines {
		if line.Index != i || line.Status != http.StatusOK {
			t.Fatalf("line %d: index %d status %d", i, line.Index, line.Status)
		}
		if !bytes.Equal(line.Result, unary[i]) {
			t.Errorf("item %d result differs from unary response\nbatch: %s\nunary: %s",
				i, line.Result, unary[i])
		}
	}
}

// TestBatchItemErrors: a bad item fails alone; the batch carries on and the
// trailer still reports a complete, untruncated run.
func TestBatchItemErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))

	body := fmt.Sprintf(`{"hash":%q,"items":[{"swaps":[{"core":2,"pos":0}]},{"swaps":[{"core":99,"pos":0}]},{"swaps":[]}]}`, hash)
	rr := doBatch(s, "", []byte(body))
	if rr.Code != http.StatusOK {
		t.Fatalf("batch: %d (%s)", rr.Code, rr.Body.String())
	}
	lines, trailer := parseNDJSON(t, rr.Body.Bytes())
	if len(lines) != 3 {
		t.Fatalf("%d result lines, want 3", len(lines))
	}
	wantStatus := []int{http.StatusOK, http.StatusBadRequest, http.StatusOK}
	for i, line := range lines {
		if line.Status != wantStatus[i] {
			t.Errorf("line %d status %d, want %d", i, line.Status, wantStatus[i])
		}
	}
	if !strings.Contains(lines[1].Error, "out of range") {
		t.Errorf("bad item error %q, want out-of-range message", lines[1].Error)
	}
	if trailer.Truncated || trailer.Completed != 3 {
		t.Errorf("trailer %+v, want 3 completed untruncated", trailer)
	}
}

// TestBatchWireIngest: a wire blob immediately followed by the items object
// is accepted and resolves to the same fingerprint as a JSON analyze of the
// same graph; the ingest counters record the binary path.
func TestBatchWireIngest(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	g := gen.Figure2()
	jsonHash := responseHash(t, analyzeGraph(t, s, graphJSON(t, g)))

	body := append(wire.EncodeGraph(roundTrip(t, g)),
		[]byte(`{"items":[{"swaps":[]},{"swaps":[{"core":2,"pos":0}]}]}`)...)
	rr := doBatch(s, wireContentType, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("wire batch: %d (%s)", rr.Code, rr.Body.String())
	}
	lines, trailer := parseNDJSON(t, rr.Body.Bytes())
	if trailer.Truncated || len(lines) != 2 {
		t.Fatalf("trailer %+v with %d lines, want 2 untruncated", trailer, len(lines))
	}
	var res struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(lines[0].Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Hash != jsonHash {
		t.Errorf("wire-ingested batch hash %s, JSON analyze hash %s", res.Hash, jsonHash)
	}
	if got := s.met.ingestWire.Load(); got != 1 {
		t.Errorf("ingestWire = %d, want 1", got)
	}
}

// TestAnalyzeWireIngest: /v1/analyze accepts the binary format and answers
// byte-identically to the JSON path (a warm hit after a cold JSON analyze,
// which the bit-identical replay contract makes unobservable in the body).
func TestAnalyzeWireIngest(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	g := gen.Figure1()
	jsonResp := analyzeGraph(t, s, graphJSON(t, g))

	req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewReader(wire.EncodeGraph(roundTrip(t, g))))
	req.Header.Set("Content-Type", wireContentType)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("wire analyze: %d (%s)", rr.Code, rr.Body.String())
	}
	if !bytes.Equal(rr.Body.Bytes(), jsonResp.Body.Bytes()) {
		t.Errorf("wire analyze differs from JSON analyze\nwire: %s\njson: %s",
			rr.Body.Bytes(), jsonResp.Body.Bytes())
	}
	if got := s.met.ingestWire.Load(); got != 1 {
		t.Errorf("ingestWire = %d, want 1", got)
	}
	if got := s.met.ingestJSON.Load(); got != 1 {
		t.Errorf("ingestJSON = %d, want 1", got)
	}
}

// TestBatchBadInputs covers the pre-admission rejections: they answer a
// plain JSON error status before any NDJSON is streamed.
func TestBatchBadInputs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))
	cases := []struct {
		name        string
		contentType string
		body        string
		want        int
	}{
		{"no items", "", fmt.Sprintf(`{"hash":%q,"items":[]}`, hash), http.StatusBadRequest},
		{"missing graph", "", `{"items":[{"swaps":[]}]}`, http.StatusBadRequest},
		{"unknown hash", "", `{"hash":"deadbeef","items":[{"swaps":[]}]}`, http.StatusNotFound},
		{"hash and graph", "", fmt.Sprintf(`{"hash":%q,"graph":{},"items":[{"swaps":[]}]}`, hash), http.StatusBadRequest},
		{"unknown field", "", fmt.Sprintf(`{"hash":%q,"items":[{"swaps":[]}],"bogus":1}`, hash), http.StatusBadRequest},
		{"malformed", "", "{", http.StatusBadRequest},
		{"wire junk", wireContentType, "not a wire blob", http.StatusBadRequest},
		{"wire items garbage", wireContentType,
			string(wire.EncodeGraph(gen.Figure2())) + `{"bogus":[]}`, http.StatusBadRequest},
		{"wire missing items", wireContentType,
			string(wire.EncodeGraph(gen.Figure2())), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doBatch(s, tc.contentType, []byte(tc.body))
			if rr.Code != tc.want {
				t.Fatalf("got %d, want %d (%s)", rr.Code, tc.want, rr.Body.String())
			}
		})
	}
}

// TestBatchQueueFullSheds429: a batch occupies exactly one admission slot
// and is shed like a unary request when the queue is full — before any
// NDJSON is streamed.
func TestBatchQueueFullSheds429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))

	arrived := make(chan struct{}, 4)
	release := make(chan struct{})
	s.gate = func() { arrived <- struct{}{}; <-release }
	defer close(release)

	reqBody := fmt.Sprintf(`{"hash":%q,"swaps":[]}`, hash)
	done := make(chan *httptest.ResponseRecorder, 2)
	go func() { done <- do(s, http.MethodPost, "/v1/reschedule", strings.NewReader(reqBody)) }()
	<-arrived // worker now holds request 1 at the gate
	go func() { done <- do(s, http.MethodPost, "/v1/reschedule", strings.NewReader(reqBody)) }()
	waitFor(t, "request 2 to occupy the queue slot", func() bool { return s.runner.Queued() == 1 })

	rr := doBatch(s, "", []byte(fmt.Sprintf(`{"hash":%q,"items":[{"swaps":[]}]}`, hash)))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("batch under full queue: %d, want 429 (%s)", rr.Code, rr.Body.String())
	}
	// One priming analyze is not enough drain history for a rate estimate,
	// so the hint is the configured fallback — and always within [1, 30].
	got := rr.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(got); err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After = %q, want an integer in [1, 30]", got)
	}
	if shed := s.met.shed.Load(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
}

// TestBatchCancelDuringDrainSingleTrailer is the double-flush audit's
// regression harness: a client disconnect and a graceful drain land on the
// same in-flight batch, and the response must still end with exactly one
// trailer whose truncation reason is deterministic — the dead request
// context ("client gone") outranks the drain, whichever order the two
// signals arrived in.
func TestBatchCancelDuringDrainSingleTrailer(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))

	reached := make(chan struct{})
	release := make(chan struct{})
	s.itemGate = func(i int) {
		if i == 1 {
			close(reached)
			<-release
		}
	}
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/batch",
		strings.NewReader(fmt.Sprintf(
			`{"hash":%q,"items":[{"swaps":[]},{"swaps":[]},{"swaps":[]}]}`, hash)))
	req = req.WithContext(ctx)
	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rr, req)
	}()

	<-reached      // item 0 computed; the worker is held before item 1
	cancel()       // client disconnects...
	s.BeginDrain() // ...while the server starts a graceful drain
	<-done         // handler must still finish without the worker released

	lines, trailer := parseNDJSON(t, rr.Body.Bytes())
	trailers := 0
	for _, l := range append(lines, trailer) {
		if l.Done {
			trailers++
		}
	}
	if trailers != 1 {
		t.Fatalf("%d trailer lines in response, want exactly 1:\n%s", trailers, rr.Body.String())
	}
	if !trailer.Truncated || trailer.Reason != "client gone" {
		t.Errorf("trailer = %+v, want truncated with reason \"client gone\" (deterministic precedence over draining)", trailer)
	}
	if trailer.Completed != len(lines) {
		t.Errorf("trailer completed=%d, but %d result lines were written", trailer.Completed, len(lines))
	}
}

// TestBatchMidCancelFlushesPartial is the truncation contract end to end:
// the client goes away mid-batch, and the response still carries every
// completed result line plus a trailer marking the truncation — the serving
// twin of miabench's "# TRUNCATED" CSV marker. The held worker drains
// cleanly afterwards (newTestServer's cleanup checks for goroutine leaks)
// and its warm analyzer is back in the LRU with the baseline intact.
func TestBatchMidCancelFlushesPartial(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))

	reached := make(chan struct{})
	release := make(chan struct{})
	s.itemGate = func(i int) {
		if i == 2 {
			close(reached)
			<-release
		}
	}
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/batch",
		strings.NewReader(fmt.Sprintf(
			`{"hash":%q,"items":[{"swaps":[]},{"swaps":[{"core":2,"pos":0}]},{"swaps":[]},{"swaps":[]}]}`, hash)))
	req = req.WithContext(ctx)
	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rr, req)
	}()

	<-reached // items 0 and 1 are computed; the worker is held before item 2
	cancel()  // client disconnects
	<-done    // the handler must finish without the worker being released

	lines, trailer := parseNDJSON(t, rr.Body.Bytes())
	if len(lines) != 2 {
		t.Fatalf("%d result lines flushed before truncation, want 2 (body %s)", len(lines), rr.Body.String())
	}
	for i, line := range lines {
		if line.Index != i || line.Status != http.StatusOK {
			t.Errorf("line %d: index %d status %d", i, line.Index, line.Status)
		}
	}
	if !trailer.Truncated || trailer.Completed != 2 || trailer.Items != 4 {
		t.Fatalf("trailer %+v, want truncated with 2/4 completed", trailer)
	}
	if trailer.Reason != "client gone" {
		t.Errorf("trailer reason %q, want \"client gone\"", trailer.Reason)
	}

	// Release the held worker; the interrupted batch drains on its own. The
	// warm analyzer survived it in the worker's LRU with the apply-evaluate-
	// undo baseline intact: an immediate unary reschedule serves warm and
	// reports the unedited fingerprint.
	release <- struct{}{}
	rr2 := do(s, http.MethodPost, "/v1/reschedule",
		strings.NewReader(fmt.Sprintf(`{"hash":%q,"swaps":[]}`, hash)))
	if rr2.Code != http.StatusOK {
		t.Fatalf("post-cancel reschedule: %d (%s)", rr2.Code, rr2.Body.String())
	}
	if got := rr2.Header().Get("X-Mia-Cache"); got != "hit" {
		t.Errorf("post-cancel reschedule X-Mia-Cache = %q, want \"hit\"", got)
	}
	if got := responseHash(t, rr2); got != hash {
		t.Errorf("post-cancel baseline hash %s, want %s (undo failed?)", got, hash)
	}
}

// TestBatchDeadlineTruncates: same truncation contract under deadline
// expiry instead of client disconnect.
func TestBatchDeadlineTruncates(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))

	release := make(chan struct{})
	s.itemGate = func(i int) {
		if i == 1 {
			<-release
		}
	}
	defer close(release)

	req := httptest.NewRequest(http.MethodPost, "/v1/batch?timeout_ms=50",
		strings.NewReader(fmt.Sprintf(`{"hash":%q,"items":[{"swaps":[]},{"swaps":[]},{"swaps":[]}]}`, hash)))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)

	lines, trailer := parseNDJSON(t, rr.Body.Bytes())
	if len(lines) != 1 || !trailer.Truncated || trailer.Reason != "deadline exceeded" {
		t.Fatalf("lines %d trailer %+v, want 1 line + deadline truncation", len(lines), trailer)
	}
}

// TestBatchMetrics: the batch counters, ingest split, items histogram, and
// streamed-bytes total all move and appear on /metrics.
func TestBatchMetrics(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, graphJSON(t, gen.Figure2())))
	rr := doBatch(s, "", []byte(fmt.Sprintf(`{"hash":%q,"items":[{"swaps":[]},{"swaps":[]}]}`, hash)))
	if rr.Code != http.StatusOK {
		t.Fatalf("batch: %d (%s)", rr.Code, rr.Body.String())
	}
	mr := do(s, http.MethodGet, "/metrics", nil)
	if mr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", mr.Code)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal(mr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding metrics: %v (%s)", err, mr.Body.String())
	}
	if snap.Requests.Batch != 1 {
		t.Errorf("requests.batch = %d, want 1", snap.Requests.Batch)
	}
	if snap.Ingest.JSON != 1 { // the analyze that registered the graph
		t.Errorf("ingest.json = %d, want 1", snap.Ingest.JSON)
	}
	if snap.Ingest.Wire != 0 {
		t.Errorf("ingest.wire = %d, want 0", snap.Ingest.Wire)
	}
	if snap.Batch.Items.Le10 != 1 || snap.Batch.Items.Sum != 2 || snap.Batch.Items.Max != 2 {
		t.Errorf("items histogram %+v, want le_10=1 sum=2 max=2", snap.Batch.Items)
	}
	if snap.Batch.StreamedBytes <= 0 {
		t.Errorf("streamed_bytes = %d, want > 0", snap.Batch.StreamedBytes)
	}
}
