package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
)

// jobBody builds a POST /v1/jobs body around a graph JSON payload.
func jobBody(t *testing.T, graph []byte, extra string) []byte {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%s%s}`, graph, extra)
	return []byte(body)
}

func decodeJob(t *testing.T, b []byte) jobStatusResponse {
	t.Helper()
	var resp jobStatusResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("decoding job response: %v (body %s)", err, b)
	}
	return resp
}

// smokeGraphJSON is the small layered instance the job tests search over.
func smokeGraphJSON(t *testing.T) []byte {
	t.Helper()
	p := gen.NewParams(4, 3)
	p.Seed = 9
	p.Cores, p.Banks = 4, 4
	return graphJSON(t, gen.MustLayered(p))
}

// TestJobLifecycleAndMetrics drives one job from POST to completion: status
// polling, the replayed NDJSON stream with its exactly-one trailer, and the
// jobs.* metrics after the lifecycle.
func TestJobLifecycleAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	body := jobBody(t, smokeGraphJSON(t), `,"pop_size":8,"generations":4,"seed":5`)

	rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("job create: got %d, want 202 (body %s)", rr.Code, rr.Body.String())
	}
	job := decodeJob(t, rr.Body.Bytes())
	if job.ID == "" || job.Hash == "" {
		t.Fatalf("job create response missing id/hash: %s", rr.Body.String())
	}
	if want := job.Hash + "-1"; job.ID != want {
		t.Errorf("job id = %q, want %q (fingerprint-prefixed for routing)", job.ID, want)
	}

	var final jobStatusResponse
	waitFor(t, "job completion", func() bool {
		rr := do(s, http.MethodGet, "/v1/jobs/"+job.ID, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("job get: got %d (body %s)", rr.Code, rr.Body.String())
		}
		final = decodeJob(t, rr.Body.Bytes())
		return final.Status != jobRunning
	})
	if final.Status != jobDone {
		t.Fatalf("job finished as %q (reason %q), want done", final.Status, final.Reason)
	}
	if final.Generation != 4 || final.Evaluations == 0 {
		t.Errorf("final accounting generation=%d evaluations=%d, want generation 4 and evaluations > 0",
			final.Generation, final.Evaluations)
	}
	if final.FrontSize == 0 || len(final.Front) != final.FrontSize {
		t.Errorf("final front_size=%d with %d points, want a consistent non-empty front",
			final.FrontSize, len(final.Front))
	}

	// The stream replays the full update history, then the trailer.
	srr := do(s, http.MethodGet, "/v1/jobs/"+job.ID+"/stream", nil)
	if srr.Code != http.StatusOK {
		t.Fatalf("job stream: got %d (body %s)", srr.Code, srr.Body.String())
	}
	updates, trailer := parseJobStream(t, srr.Body.Bytes())
	if len(updates) == 0 {
		t.Fatalf("stream has no front updates")
	}
	lastEvals := 0
	for i, u := range updates {
		if u.Evaluations <= lastEvals || u.FrontSize != len(u.Points) {
			t.Fatalf("update %d not monotone/consistent: evaluations %d after %d, front_size %d with %d points",
				i, u.Evaluations, lastEvals, u.FrontSize, len(u.Points))
		}
		lastEvals = u.Evaluations
	}
	if trailer.Status != jobDone || trailer.Truncated || trailer.Updates != len(updates) {
		t.Fatalf("trailer = %+v, want done/untruncated covering %d updates", trailer, len(updates))
	}

	assertJobMetrics(t, s, 0, 1)
}

// parseJobStream splits an NDJSON job stream into its update lines and the
// single trailer, failing on any malformed or post-trailer line.
func parseJobStream(t *testing.T, stream []byte) ([]jobUpdateLine, jobTrailer) {
	t.Helper()
	var updates []jobUpdateLine
	var trailer jobTrailer
	seenTrailer := false
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if seenTrailer {
			t.Fatalf("line after trailer: %s", line)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("malformed stream line: %v (%s)", err, line)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("malformed trailer: %v (%s)", err, line)
			}
			seenTrailer = true
			continue
		}
		var u jobUpdateLine
		if err := json.Unmarshal(line, &u); err != nil {
			t.Fatalf("malformed update line: %v (%s)", err, line)
		}
		updates = append(updates, u)
	}
	if !seenTrailer {
		t.Fatalf("stream ended without a trailer")
	}
	return updates, trailer
}

// assertJobMetrics scrapes /metrics and checks the jobs gauge/counter pair.
func assertJobMetrics(t *testing.T, s *Server, active, completed int64) {
	t.Helper()
	waitFor(t, "job metrics to settle", func() bool {
		return s.met.jobsActive.Load() == active && s.met.jobsCompleted.Load() == completed
	})
	rr := do(s, http.MethodGet, "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: got %d", rr.Code)
	}
	var snap struct {
		Jobs struct {
			Active    int64 `json:"active"`
			Completed int64 `json:"completed"`
			FrontSize int64 `json:"front_size"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	if snap.Jobs.Active != active || snap.Jobs.Completed != completed {
		t.Fatalf("jobs metrics = active %d completed %d, want %d/%d",
			snap.Jobs.Active, snap.Jobs.Completed, active, completed)
	}
	if completed > 0 && snap.Jobs.FrontSize == 0 {
		t.Errorf("jobs.front_size = 0 after a completed job")
	}
}

// longJobBody is a search big enough to outlive any test action against it.
func longJobBody(t *testing.T) []byte {
	return jobBody(t, smokeGraphJSON(t), `,"pop_size":8,"generations":100000000,"seed":1`)
}

// TestJobCancellationStreamsTruncatedTrailer cancels a running job while a
// live stream is attached: the stream must end with a truncated trailer
// whose status is cancelled, and the job's slot must come back.
func TestJobCancellationStreamsTruncatedTrailer(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(longJobBody(t)))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("job create: got %d (body %s)", rr.Code, rr.Body.String())
	}
	job := decodeJob(t, rr.Body.Bytes())

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	defer resp.Body.Close()
	reader := bufio.NewReader(resp.Body)
	if _, err := reader.ReadBytes('\n'); err != nil {
		t.Fatalf("reading first stream line: %v", err)
	}

	drr := do(s, http.MethodDelete, "/v1/jobs/"+job.ID, nil)
	if drr.Code != http.StatusOK {
		t.Fatalf("job cancel: got %d (body %s)", drr.Code, drr.Body.String())
	}

	var trailer jobTrailer
	for {
		line, err := reader.ReadBytes('\n')
		if err != nil {
			t.Fatalf("stream died without a trailer: %v", err)
		}
		if err := json.Unmarshal(line, &trailer); err != nil {
			t.Fatalf("malformed line: %v (%s)", err, line)
		}
		if trailer.Done {
			break
		}
	}
	if trailer.Status != jobCancelled || !trailer.Truncated || trailer.Reason != "cancelled" {
		t.Fatalf("trailer = %+v, want truncated/cancelled/reason=cancelled", trailer)
	}

	grr := do(s, http.MethodGet, "/v1/jobs/"+job.ID, nil)
	if got := decodeJob(t, grr.Body.Bytes()); got.Status != jobCancelled {
		t.Fatalf("job status after cancel = %q, want cancelled", got.Status)
	}
	// Cancelling again is idempotent.
	if drr := do(s, http.MethodDelete, "/v1/jobs/"+job.ID, nil); drr.Code != http.StatusOK {
		t.Fatalf("second cancel: got %d", drr.Code)
	}
	assertJobMetrics(t, s, 0, 1)
}

// TestJobDrainCancelsRunningJobs: BeginDrain must cancel running jobs with
// reason "draining" (the batch path's drain semantics) and refuse new ones
// with 503.
func TestJobDrainCancelsRunningJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(longJobBody(t)))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("job create: got %d (body %s)", rr.Code, rr.Body.String())
	}
	job := decodeJob(t, rr.Body.Bytes())

	s.BeginDrain()
	var final jobStatusResponse
	waitFor(t, "drain to cancel the job", func() bool {
		final = decodeJob(t, do(s, http.MethodGet, "/v1/jobs/"+job.ID, nil).Body.Bytes())
		return final.Status != jobRunning
	})
	if final.Status != jobCancelled || final.Reason != "draining" {
		t.Fatalf("drained job = %q/%q, want cancelled/draining", final.Status, final.Reason)
	}

	srr := do(s, http.MethodGet, "/v1/jobs/"+job.ID+"/stream", nil)
	_, trailer := parseJobStream(t, srr.Body.Bytes())
	if !trailer.Truncated || trailer.Reason != "draining" {
		t.Fatalf("drained stream trailer = %+v, want truncated with reason draining", trailer)
	}

	if rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(longJobBody(t))); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("job create while draining: got %d, want 503", rr.Code)
	}
}

// TestJobTableBounded: MaxJobs jobs run at once; the next POST sheds with
// 429 + Retry-After, and a freed slot admits again.
func TestJobTableBounded(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(longJobBody(t)))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("job create: got %d (body %s)", rr.Code, rr.Body.String())
	}
	first := decodeJob(t, rr.Body.Bytes())

	over := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(longJobBody(t)))
	if over.Code != http.StatusTooManyRequests {
		t.Fatalf("job create over the cap: got %d, want 429 (body %s)", over.Code, over.Body.String())
	}
	if over.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}

	if drr := do(s, http.MethodDelete, "/v1/jobs/"+first.ID, nil); drr.Code != http.StatusOK {
		t.Fatalf("cancel: got %d", drr.Code)
	}
	waitFor(t, "job slot release", func() bool { return s.met.jobsActive.Load() == 0 })
	again := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(longJobBody(t)))
	if again.Code != http.StatusAccepted {
		t.Fatalf("job create after slot freed: got %d (body %s)", again.Code, again.Body.String())
	}
}

// TestJobValidation covers the create/lookup error surface.
func TestJobValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	graph := smokeGraphJSON(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"missing graph", `{}`, http.StatusBadRequest},
		{"both hash and graph", fmt.Sprintf(`{"hash":"deadbeef","graph":%s}`, graph), http.StatusBadRequest},
		{"unknown hash", `{"hash":"deadbeef"}`, http.StatusNotFound},
		{"unknown objective", fmt.Sprintf(`{"graph":%s,"objectives":["nope"]}`, graph), http.StatusBadRequest},
		{"unknown field", fmt.Sprintf(`{"graph":%s,"bogus":1}`, graph), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader([]byte(tc.body)))
			if rr.Code != tc.want {
				t.Errorf("got %d, want %d (body %s)", rr.Code, tc.want, rr.Body.String())
			}
		})
	}
	if rr := do(s, http.MethodGet, "/v1/jobs/nope", nil); rr.Code != http.StatusNotFound {
		t.Errorf("unknown job get: got %d, want 404", rr.Code)
	}
	if rr := do(s, http.MethodDelete, "/v1/jobs/nope", nil); rr.Code != http.StatusNotFound {
		t.Errorf("unknown job cancel: got %d, want 404", rr.Code)
	}
}

// TestJobByHashReference creates a job against a previously analyzed
// graph's fingerprint — the flow a router client uses after an analyze.
func TestJobByHashReference(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	hash := responseHash(t, analyzeGraph(t, s, smokeGraphJSON(t)))
	body := []byte(fmt.Sprintf(`{"hash":%q,"pop_size":6,"generations":2,"seed":3}`, hash))
	rr := do(s, http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("job create by hash: got %d (body %s)", rr.Code, rr.Body.String())
	}
	job := decodeJob(t, rr.Body.Bytes())
	if job.Hash != hash {
		t.Fatalf("job hash = %q, want %q", job.Hash, hash)
	}
	waitFor(t, "job completion", func() bool {
		return decodeJob(t, do(s, http.MethodGet, "/v1/jobs/"+job.ID, nil).Body.Bytes()).Status == jobDone
	})
}
