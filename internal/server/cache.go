package server

import (
	"container/list"
	"sync"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// warmEntry is one worker's warm analysis state for one graph fingerprint: a
// worker-private clone of the graph (its execution orders are the committed
// checkpoint baseline; reschedule requests mutate them and undo afterwards)
// and the incremental scheduler whose checkpoints replay edits against that
// baseline. Entries are confined to the worker that built them, so nothing
// here is synchronized.
type warmEntry struct {
	hash string
	g    *model.Graph
	sch  *incremental.Scheduler
}

// newWarmEntry clones master for exclusive use by one worker and binds a
// warm-start scheduler to the clone. Trace hooks are stripped: a shared
// trace callback across workers would race, and the service has no use for
// event streams.
func newWarmEntry(hash string, master *model.Graph, opts sched.Options) *warmEntry {
	opts.Trace = nil
	g := master.Clone()
	return &warmEntry{hash: hash, g: g, sch: incremental.NewScheduler(g, opts)}
}

// warmCache is a worker-private LRU of warmEntry values keyed by graph
// fingerprint — the "one warm scheduler per worker, LRU of checkpointed
// graphs" pooling shape. No locking: exactly one goroutine touches it.
type warmCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// get returns the entry for hash, marking it most recently used.
func (c *warmCache) get(hash string) (*warmEntry, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*warmEntry), true
}

// put inserts an entry, evicting the least recently used one past capacity.
func (c *warmCache) put(e *warmEntry) {
	if el, ok := c.entries[e.hash]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.hash] = c.order.PushFront(e)
	if c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.entries, last.Value.(*warmEntry).hash)
		c.order.Remove(last)
	}
}

// graphCache is the shared fingerprint → parsed-graph registry. Analyze
// populates it; reschedule-by-hash reads it when the serving worker has no
// warm entry yet (the graph bytes are not resent). Graphs stored here are
// master copies: workers clone before mutating orders, so concurrent readers
// are safe, and the mutex only guards the map/list structure.
type graphCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are graphRecord
}

type graphRecord struct {
	hash string
	g    *model.Graph
}

func newGraphCache(capacity int) *graphCache {
	return &graphCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

func (c *graphCache) get(hash string) (*model.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(graphRecord).g, true
}

func (c *graphCache) put(hash string, g *model.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return // same fingerprint = same analysis input; keep the original
	}
	c.entries[hash] = c.order.PushFront(graphRecord{hash: hash, g: g})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.entries, last.Value.(graphRecord).hash)
		c.order.Remove(last)
	}
}

func (c *graphCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
