package server

import (
	"container/list"
	"sync"

	"github.com/mia-rt/mia/internal/engine"
)

// closeWarmFn releases a retired analyzer's resources (parked kernel
// workers). A package variable so tests can intercept closes and assert an
// in-use analyzer is never freed.
var closeWarmFn = engine.CloseWarm

// warmEntry is one worker's warm analysis state for one graph fingerprint: a
// warm analyzer over the shared compiled image. The analyzer's private order
// overlay is the committed checkpoint baseline; reschedule requests permute
// it and undo afterwards. Entries are confined to the worker that built
// them, so nothing here is synchronized — the image itself is immutable and
// shared by every worker's entry for the fingerprint.
//
// refs/retired make the eviction/in-use interaction safe by construction: a
// handler brackets its use of the analyzer with acquire/release, and the
// cache marks displaced entries retired instead of closing them directly.
// The underlying analyzer is closed exactly once, at whichever of "last
// release" and "retire" happens second — so an LRU eviction landing while
// the evicted entry is still mid-analysis (today impossible only because
// both happen on one worker goroutine) can never free state the analysis is
// standing on.
type warmEntry struct {
	hash string
	img  *engine.Image
	w    engine.Warm

	refs    int
	retired bool
	closed  bool
}

// newWarmEntry binds a fresh warm analyzer to the shared image for exclusive
// use by one worker. No graph is cloned: the image is the worker-shared,
// immutable problem statement, and the analyzer's order overlay is the only
// per-worker mutable state.
func newWarmEntry(hash string, img *engine.Image) *warmEntry {
	return &warmEntry{hash: hash, img: img, w: eng.NewWarm(img)}
}

// acquire marks the entry in use by one request. Pair with release.
func (e *warmEntry) acquire() { e.refs++ }

// release drops one use; the last release of a retired entry closes it.
func (e *warmEntry) release() {
	e.refs--
	if e.retired && e.refs <= 0 {
		e.close()
	}
}

// retire marks the entry evicted from its cache: it closes now if idle, or
// at the final release otherwise. Idempotent.
func (e *warmEntry) retire() {
	e.retired = true
	if e.refs <= 0 {
		e.close()
	}
}

func (e *warmEntry) close() {
	if e.closed {
		return
	}
	e.closed = true
	closeWarmFn(e.w)
}

// warmCache is a worker-private LRU of warmEntry values keyed by graph
// fingerprint — the "one warm analyzer per worker, LRU of checkpointed
// images" pooling shape. No locking: exactly one goroutine touches it.
type warmCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// get returns the entry for hash, marking it most recently used.
func (c *warmCache) get(hash string) (*warmEntry, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*warmEntry), true
}

// put inserts an entry, evicting the least recently used one past capacity.
// Displaced analyzers are retired, not closed: an entry a request is still
// holding (refs > 0) survives until that request's release, so eviction can
// never free an analyzer mid-use. Idle entries close immediately, keeping
// the old guarantee that parked kernel workers do not outlive residency.
func (c *warmCache) put(e *warmEntry) {
	if el, ok := c.entries[e.hash]; ok {
		if old := el.Value.(*warmEntry); old != e {
			old.retire()
		}
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.hash] = c.order.PushFront(e)
	if c.order.Len() > c.cap {
		last := c.order.Back()
		evicted := last.Value.(*warmEntry)
		delete(c.entries, evicted.hash)
		c.order.Remove(last)
		evicted.retire()
	}
}

// closeAll retires every cached analyzer (releasing any parked kernel
// workers once unreferenced) and empties the cache. Called once the owning
// worker goroutine has exited, so by then every entry is idle.
func (c *warmCache) closeAll() {
	for el := c.order.Front(); el != nil; el = el.Next() {
		el.Value.(*warmEntry).retire()
	}
	c.entries = make(map[string]*list.Element)
	c.order.Init()
}

// imageCache is the shared fingerprint → compiled-image registry. Analyze
// populates it; reschedule-by-hash reads it when the serving worker has no
// warm entry yet (the graph bytes are not resent). Images are immutable, so
// every worker's warm entry for a fingerprint shares one image — the mutex
// only guards the map/list structure.
type imageCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are imageRecord
}

type imageRecord struct {
	hash string
	img  *engine.Image
}

func newImageCache(capacity int) *imageCache {
	return &imageCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

func (c *imageCache) get(hash string) (*engine.Image, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(imageRecord).img, true
}

// put registers img under hash and returns the canonical image for the
// fingerprint: when two requests compile the same graph concurrently, the
// first registration wins and both callers proceed on one shared image (the
// duplicate is dropped, so worker caches never hold divergent copies).
func (c *imageCache) put(hash string, img *engine.Image) *engine.Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return el.Value.(imageRecord).img // same fingerprint = same analysis input
	}
	c.entries[hash] = c.order.PushFront(imageRecord{hash: hash, img: img})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.entries, last.Value.(imageRecord).hash)
		c.order.Remove(last)
	}
	return img
}

func (c *imageCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
