package server

import (
	"container/list"
	"sync"

	"github.com/mia-rt/mia/internal/engine"
)

// warmEntry is one worker's warm analysis state for one graph fingerprint: a
// warm analyzer over the shared compiled image. The analyzer's private order
// overlay is the committed checkpoint baseline; reschedule requests permute
// it and undo afterwards. Entries are confined to the worker that built
// them, so nothing here is synchronized — the image itself is immutable and
// shared by every worker's entry for the fingerprint.
type warmEntry struct {
	hash string
	img  *engine.Image
	w    engine.Warm
}

// newWarmEntry binds a fresh warm analyzer to the shared image for exclusive
// use by one worker. No graph is cloned: the image is the worker-shared,
// immutable problem statement, and the analyzer's order overlay is the only
// per-worker mutable state.
func newWarmEntry(hash string, img *engine.Image) *warmEntry {
	return &warmEntry{hash: hash, img: img, w: eng.NewWarm(img)}
}

// warmCache is a worker-private LRU of warmEntry values keyed by graph
// fingerprint — the "one warm analyzer per worker, LRU of checkpointed
// images" pooling shape. No locking: exactly one goroutine touches it.
type warmCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// get returns the entry for hash, marking it most recently used.
func (c *warmCache) get(hash string) (*warmEntry, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*warmEntry), true
}

// put inserts an entry, evicting the least recently used one past capacity.
// Displaced analyzers are closed through engine.CloseWarm so a parallel
// analyzer's parked kernel workers do not outlive its cache residency.
func (c *warmCache) put(e *warmEntry) {
	if el, ok := c.entries[e.hash]; ok {
		if old := el.Value.(*warmEntry); old != e {
			engine.CloseWarm(old.w)
		}
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.hash] = c.order.PushFront(e)
	if c.order.Len() > c.cap {
		last := c.order.Back()
		evicted := last.Value.(*warmEntry)
		delete(c.entries, evicted.hash)
		c.order.Remove(last)
		engine.CloseWarm(evicted.w)
	}
}

// closeAll closes every cached analyzer (releasing any parked kernel
// workers) and empties the cache. Called once the owning worker goroutine
// has exited.
func (c *warmCache) closeAll() {
	for el := c.order.Front(); el != nil; el = el.Next() {
		engine.CloseWarm(el.Value.(*warmEntry).w)
	}
	c.entries = make(map[string]*list.Element)
	c.order.Init()
}

// imageCache is the shared fingerprint → compiled-image registry. Analyze
// populates it; reschedule-by-hash reads it when the serving worker has no
// warm entry yet (the graph bytes are not resent). Images are immutable, so
// every worker's warm entry for a fingerprint shares one image — the mutex
// only guards the map/list structure.
type imageCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are imageRecord
}

type imageRecord struct {
	hash string
	img  *engine.Image
}

func newImageCache(capacity int) *imageCache {
	return &imageCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

func (c *imageCache) get(hash string) (*engine.Image, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(imageRecord).img, true
}

// put registers img under hash and returns the canonical image for the
// fingerprint: when two requests compile the same graph concurrently, the
// first registration wins and both callers proceed on one shared image (the
// duplicate is dropped, so worker caches never hold divergent copies).
func (c *imageCache) put(hash string, img *engine.Image) *engine.Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return el.Value.(imageRecord).img // same fingerprint = same analysis input
	}
	c.entries[hash] = c.order.PushFront(imageRecord{hash: hash, img: img})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.entries, last.Value.(imageRecord).hash)
		c.order.Remove(last)
	}
	return img
}

func (c *imageCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
