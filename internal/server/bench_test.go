package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
)

// benchEdits is the scenario count both serve benchmarks evaluate per
// iteration, so their ns/op compare directly: one hundred edit scenarios as
// a hundred unary requests vs one batch request.
const benchEdits = 100

// benchServe boots a single-worker server behind a real loopback TCP
// listener — the batch endpoint amortizes per-request transport and
// admission, so the benchmarks must include them the way a client pays them
// — registers a ~128-task layered graph, and returns identity-pair swap
// bodies for benchEdits scenarios (the same swap applied twice evaluates
// the baseline orders, so every scenario is schedulable by construction
// while still paying the full apply-replay-undo cost).
func benchServe(b *testing.B) (*httptest.Server, string, []string) {
	b.Helper()
	p := gen.NewParams(2, 64)
	p.Seed = 7
	g := gen.MustLayered(p)
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		b.Fatalf("serializing graph: %v", err)
	}
	body := benchPost(b, ts, "/v1/analyze", buf.String())
	var resp struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || resp.Hash == "" {
		b.Fatalf("analyze response has no hash: %s", body)
	}
	var sites []string
	for k := 0; k < g.Cores; k++ {
		if ord := g.Order(model.CoreID(k)); len(ord) >= 2 {
			sites = append(sites, fmt.Sprintf(`{"core":%d,"pos":%d}`, k, len(ord)-2))
		}
	}
	swaps := make([]string, benchEdits)
	for i := range swaps {
		one := sites[i%len(sites)]
		swaps[i] = "[" + one + "," + one + "]"
	}
	return ts, resp.Hash, swaps
}

// benchPost issues one POST over the benchmark server's persistent client
// connection and returns the response body.
func benchPost(b *testing.B, ts *httptest.Server, path, body string) []byte {
	b.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatalf("reading %s response: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: %d (%s)", path, resp.StatusCode, rb)
	}
	return rb
}

// reportQuantiles attaches per-request latency quantiles to the benchmark
// output (benchdiff carries these custom metrics alongside ns/op).
func reportQuantiles(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	ms := make([]float64, len(lat))
	for i, d := range lat {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	at := func(q float64) float64 { return ms[int(q*float64(len(ms)-1))] }
	b.ReportMetric(at(0.50), "p50-ms")
	b.ReportMetric(at(0.95), "p95-ms")
	b.ReportMetric(at(0.99), "p99-ms")
}

// BenchmarkServeRescheduleUnary evaluates benchEdits scenarios as that many
// sequential unary requests: each pays a full HTTP round trip, request
// decode, admission and a worker handoff.
func BenchmarkServeRescheduleUnary(b *testing.B) {
	ts, hash, swaps := benchServe(b)
	bodies := make([]string, len(swaps))
	for i, sw := range swaps {
		bodies[i] = fmt.Sprintf(`{"hash":%q,"swaps":%s}`, hash, sw)
	}
	var lat []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			start := time.Now()
			benchPost(b, ts, "/v1/reschedule", body)
			lat = append(lat, time.Since(start))
		}
	}
	b.StopTimer()
	reportQuantiles(b, lat)
}

// BenchmarkServeRescheduleBatch evaluates the same benchEdits scenarios as
// one batch request: one round trip, one admission and one worker handoff
// amortized over every scenario.
func BenchmarkServeRescheduleBatch(b *testing.B) {
	ts, hash, swaps := benchServe(b)
	items := make([]string, len(swaps))
	for i, sw := range swaps {
		items[i] = `{"swaps":` + sw + `}`
	}
	body := fmt.Sprintf(`{"hash":%q,"items":[%s]}`, hash, strings.Join(items, ","))
	var lat []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rb := benchPost(b, ts, "/v1/batch", body)
		lat = append(lat, time.Since(start))
		if !bytes.Contains(rb, []byte(`"truncated":false`)) {
			b.Fatalf("batch response not complete: %s", rb[len(rb)-min(len(rb), 200):])
		}
	}
	b.StopTimer()
	reportQuantiles(b, lat)
}
