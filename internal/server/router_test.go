package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/shard"
)

// fleetShard is one real in-process miaserve shard behind a real listener —
// the router speaks actual HTTP to it, and the test keeps the *Server so it
// can reach test hooks (itemGate) and metrics.
type fleetShard struct {
	srv *Server
	ts  *httptest.Server
}

func newFleet(t *testing.T, n int, cfg Config) ([]*fleetShard, []string) {
	t.Helper()
	shards := make([]*fleetShard, n)
	urls := make([]string, n)
	for i := range shards {
		srv := New(cfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		shards[i] = &fleetShard{srv: srv, ts: ts}
		urls[i] = ts.URL
	}
	return shards, urls
}

func newFleetRouter(t *testing.T, urls []string, cfg shard.Config) *shard.Router {
	t.Helper()
	cfg.Targets = urls
	r, err := shard.NewRouter(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

func shardByURL(shards []*fleetShard, url string) *fleetShard {
	for _, f := range shards {
		if f.ts.URL == url {
			return f
		}
	}
	return nil
}

// routedDo drives one request through the router handler (the router then
// speaks real HTTP to the shards).
func routedDo(r *shard.Router, method, target, contentType string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, req)
	return rr
}

// parityCorpus replicates the engine differential corpus: 6 benchmark
// shapes × 3 platform geometries × 12 seeds = 216 instances.
func parityCorpus() []gen.Params {
	shapes := []struct{ layers, size int }{
		{8, 4}, {12, 4}, {6, 8},
		{4, 8}, {4, 12}, {6, 10},
	}
	platforms := []struct {
		cores, banks int
		shared       bool
	}{
		{4, 4, false},
		{8, 8, false},
		{4, 1, true},
	}
	var corpus []gen.Params
	for _, sh := range shapes {
		for _, pl := range platforms {
			for seed := int64(1); seed <= 12; seed++ {
				p := gen.NewParams(sh.layers, sh.size)
				p.Seed = seed
				p.Cores, p.Banks, p.SharedBank = pl.cores, pl.banks, pl.shared
				corpus = append(corpus, p)
			}
		}
	}
	return corpus
}

// TestRouterParityCorpus is the tentpole acceptance suite: over the full
// 216-instance differential corpus, every response served through the
// router — analyze, reschedule, and (sampled) batch — must be byte-identical
// to the same request served by a direct single-node server. The router may
// add placement, replication, and failover, but it must be unobservable in
// the bytes.
func TestRouterParityCorpus(t *testing.T) {
	direct := newTestServer(t, Config{Workers: 2})
	_, urls := newFleet(t, 3, Config{Workers: 2})
	router := newFleetRouter(t, urls, shard.Config{Replicas: 2, Retries: 3})

	corpus := parityCorpus()
	if len(corpus) < 200 {
		t.Fatalf("corpus has %d instances, want >= 200", len(corpus))
	}
	for ci, p := range corpus {
		g := gen.MustLayered(p)
		body := graphJSON(t, g)
		label := fmt.Sprintf("corpus[%d] %dx%d %dc/%db shared=%v seed=%d",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank, p.Seed)

		dRR := do(direct, http.MethodPost, "/v1/analyze", bytes.NewReader(body))
		rRR := routedDo(router, http.MethodPost, "/v1/analyze", "application/json", body)
		if dRR.Code != http.StatusOK || rRR.Code != http.StatusOK {
			t.Fatalf("%s: analyze direct=%d routed=%d (routed body %s)", label, dRR.Code, rRR.Code, rRR.Body.String())
		}
		if !bytes.Equal(dRR.Body.Bytes(), rRR.Body.Bytes()) {
			t.Fatalf("%s: routed analyze diverges from direct\n direct: %s\n routed: %s",
				label, dRR.Body.Bytes(), rRR.Body.Bytes())
		}

		hash := responseHash(t, dRR)
		if ci%4 == 0 {
			reqBody := fmt.Sprintf(`{"hash":%q,"swaps":[{"core":0,"pos":0},{"core":0,"pos":0}]}`, hash)
			dRS := do(direct, http.MethodPost, "/v1/reschedule", strings.NewReader(reqBody))
			rRS := routedDo(router, http.MethodPost, "/v1/reschedule", "application/json", []byte(reqBody))
			if dRS.Code != http.StatusOK || rRS.Code != http.StatusOK {
				t.Fatalf("%s: reschedule direct=%d routed=%d (routed body %s)", label, dRS.Code, rRS.Code, rRS.Body.String())
			}
			if !bytes.Equal(dRS.Body.Bytes(), rRS.Body.Bytes()) {
				t.Fatalf("%s: routed reschedule diverges from direct\n direct: %s\n routed: %s",
					label, dRS.Body.Bytes(), rRS.Body.Bytes())
			}
		}
		if ci%8 == 0 {
			batchBody := fmt.Sprintf(
				`{"hash":%q,"items":[{"swaps":[]},{"swaps":[{"core":0,"pos":0},{"core":0,"pos":0}]},{"swaps":[]}]}`, hash)
			dB := doBatch(direct, "", []byte(batchBody))
			rB := routedDo(router, http.MethodPost, "/v1/batch", "application/json", []byte(batchBody))
			if dB.Code != http.StatusOK || rB.Code != http.StatusOK {
				t.Fatalf("%s: batch direct=%d routed=%d (routed body %s)", label, dB.Code, rB.Code, rB.Body.String())
			}
			// Single-shard batches are a verbatim relay: whole-body byte
			// parity, trailer included.
			if !bytes.Equal(dB.Body.Bytes(), rB.Body.Bytes()) {
				t.Fatalf("%s: routed batch diverges from direct\n direct: %s\n routed: %s",
					label, dB.Body.Bytes(), rB.Body.Bytes())
			}
		}
	}
}

// TestRouterKillShardMidBatch is the failover acceptance test on real
// shards: a three-shard fleet serves a batch, the primary is killed after
// streaming three lines, and the client must still receive every item's
// line exactly once — each byte-identical to a direct single-node batch —
// with a single untruncated trailer. Shard-side request counters prove the
// batch actually crossed shards.
func TestRouterKillShardMidBatch(t *testing.T) {
	const items = 8
	// The direct reference server is created first so its goroutine-leak
	// cleanup runs last, after the fleet and all HTTP connections are gone.
	direct := newTestServer(t, Config{Workers: 2})
	shards, urls := newFleet(t, 3, Config{Workers: 2})
	router := newFleetRouter(t, urls, shard.Config{Replicas: 2, Retries: 3})
	routerTS := httptest.NewServer(router.Handler())
	t.Cleanup(routerTS.Close)
	client := routerTS.Client()
	t.Cleanup(client.CloseIdleConnections)

	g := roundTrip(t, gen.Figure2())
	fp := g.Fingerprint()
	ring := shard.NewRing(urls, 0) // same defaults as the router's ring
	order := ring.Order(fp)
	primary, successor := shardByURL(shards, order[0]), shardByURL(shards, order[1])

	// Prime through the router: lands on the primary, replicates to the
	// successor — the registry state failover depends on.
	prime := routedDo(router, http.MethodPost, "/v1/analyze", "application/json", graphJSON(t, g))
	if prime.Code != http.StatusOK {
		t.Fatalf("priming analyze via router: %d (%s)", prime.Code, prime.Body.String())
	}
	hash := responseHash(t, prime)

	// Direct reference for byte parity, on a fresh single-node server.
	swapVariants := []string{
		`[]`,
		`[{"core":2,"pos":0},{"core":2,"pos":0}]`,
		`[{"core":3,"pos":1},{"core":3,"pos":1}]`,
		`[{"core":0,"pos":1},{"core":0,"pos":1}]`,
	}
	itemJSON := make([]string, items)
	for i := range itemJSON {
		itemJSON[i] = `{"swaps":` + swapVariants[i%len(swapVariants)] + `}`
	}
	batchBody := fmt.Sprintf(`{"hash":%q,"items":[%s]}`, hash, strings.Join(itemJSON, ","))

	if rr := analyzeGraph(t, direct, graphJSON(t, g)); responseHash(t, rr) != hash {
		t.Fatalf("direct server fingerprint disagrees with routed one")
	}
	dB := doBatch(direct, "", []byte(batchBody))
	if dB.Code != http.StatusOK {
		t.Fatalf("direct reference batch: %d (%s)", dB.Code, dB.Body.String())
	}
	wantLines := map[int]string{}
	{
		lines, trailer := parseNDJSON(t, dB.Body.Bytes())
		if trailer.Truncated || len(lines) != items {
			t.Fatalf("direct reference batch truncated or short: %d lines, trailer %+v", len(lines), trailer)
		}
		for _, raw := range strings.Split(strings.TrimRight(dB.Body.String(), "\n"), "\n") {
			var probe struct {
				Done  bool `json:"done"`
				Index int  `json:"index"`
			}
			if json.Unmarshal([]byte(raw), &probe) == nil && !probe.Done {
				wantLines[probe.Index] = raw
			}
		}
	}

	// Hold the primary's worker before batch item 3, so exactly the window
	// where lines 0–2 are streamed and the rest are not is pinned open.
	reached := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	primary.srv.itemGate = func(i int) {
		if i == 3 {
			once.Do(func() {
				close(reached)
				<-release
			})
		}
	}
	defer close(release)

	resp, err := client.Post(routerTS.URL+"/v1/batch", "application/json", strings.NewReader(batchBody))
	if err != nil {
		t.Fatalf("routed batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed batch status %d", resp.StatusCode)
	}

	gotLines := map[int]string{}
	trailers := 0
	var trailer struct {
		Done      bool   `json:"done"`
		Items     int    `json:"items"`
		Completed int    `json:"completed"`
		Truncated bool   `json:"truncated"`
		Reason    string `json:"reason"`
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	read := 0
	for scanner.Scan() {
		line := scanner.Text()
		var probe struct {
			Done  bool `json:"done"`
			Index int  `json:"index"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			trailers++
			if err := json.Unmarshal([]byte(line), &trailer); err != nil {
				t.Fatalf("bad trailer %q: %v", line, err)
			}
			continue
		}
		if prev, dup := gotLines[probe.Index]; dup {
			t.Fatalf("index %d delivered twice:\n first: %s\nsecond: %s", probe.Index, prev, line)
		}
		gotLines[probe.Index] = line
		read++
		if read == 3 {
			// Lines 0–2 are in hand; now the primary dies mid-batch.
			<-reached
			primary.ts.CloseClientConnections()
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("reading routed stream: %v", err)
	}

	if trailers != 1 {
		t.Fatalf("%d trailers, want exactly 1", trailers)
	}
	if trailer.Truncated || trailer.Completed != items || trailer.Items != items {
		t.Fatalf("trailer %+v, want untruncated %d/%d (failover should complete the batch)", trailer, items, items)
	}
	if len(gotLines) != items {
		t.Fatalf("%d distinct lines, want %d (lost items)", len(gotLines), items)
	}
	for i := 0; i < items; i++ {
		if gotLines[i] != wantLines[i] {
			t.Errorf("index %d diverges from direct batch\n direct: %s\n routed: %s", i, wantLines[i], gotLines[i])
		}
	}
	// The work provably crossed shards: the primary took the first batch,
	// the successor the failover sub-batch.
	if n := primary.srv.met.batch.Load(); n < 1 {
		t.Errorf("primary served %d batches, want >= 1", n)
	}
	if n := successor.srv.met.batch.Load(); n < 1 {
		t.Errorf("successor served %d batches, want >= 1 (failover never engaged)", n)
	}
}

// TestRouterJobsRoutedByIDPrefix drives the served-search protocol through
// the router: POST /v1/jobs places the job on the graph fingerprint's
// primary shard, and every id-addressed request (status, stream, cancel)
// routes by the job id's fingerprint prefix back to the owner — including
// when the owner is not first in the ring walk and the 404-continues
// semantics must find it.
func TestRouterJobsRoutedByIDPrefix(t *testing.T) {
	shards, urls := newFleet(t, 3, Config{Workers: 1})
	router := newFleetRouter(t, urls, shard.Config{Replicas: 2, Retries: 3})

	body := jobBody(t, smokeGraphJSON(t), `,"pop_size":6,"generations":3,"seed":2`)
	rr := routedDo(router, http.MethodPost, "/v1/jobs", "application/json", body)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("routed job create: got %d (body %s)", rr.Code, rr.Body.String())
	}
	job := decodeJob(t, rr.Body.Bytes())

	ring := shard.NewRing(urls, 0)
	order := ring.Order(job.Hash)
	primary := shardByURL(shards, order[0])
	if n := primary.srv.met.jobs.Load(); n < 1 {
		t.Errorf("primary shard saw %d job requests, want >= 1 (fingerprint routing broken)", n)
	}

	waitFor(t, "routed job completion", func() bool {
		rr := routedDo(router, http.MethodGet, "/v1/jobs/"+job.ID, "", nil)
		return rr.Code == http.StatusOK && decodeJob(t, rr.Body.Bytes()).Status == jobDone
	})

	srr := routedDo(router, http.MethodGet, "/v1/jobs/"+job.ID+"/stream", "", nil)
	if srr.Code != http.StatusOK {
		t.Fatalf("routed job stream: got %d (body %s)", srr.Code, srr.Body.String())
	}
	updates, trailer := parseJobStream(t, srr.Body.Bytes())
	if len(updates) == 0 || trailer.Status != jobDone || trailer.Truncated {
		t.Fatalf("routed stream: %d updates, trailer %+v; want updates and a done trailer", len(updates), trailer)
	}

	// A job on a non-primary shard: post a different graph's job directly to
	// the second shard in its ring order. The routed GET must 404 off the
	// primary and continue the walk to the owner.
	p2 := gen.NewParams(4, 3)
	p2.Seed = 77
	p2.Cores, p2.Banks = 4, 4
	g2 := graphJSON(t, gen.MustLayered(p2))
	body2 := jobBody(t, g2, `,"pop_size":6,"generations":2,"seed":4`)
	fp2 := roundTrip(t, gen.MustLayered(p2)).Fingerprint()
	owner := shardByURL(shards, ring.Order(fp2)[1])
	drr := do(owner.srv, http.MethodPost, "/v1/jobs", bytes.NewReader(body2))
	if drr.Code != http.StatusAccepted {
		t.Fatalf("direct job create on successor: got %d (body %s)", drr.Code, drr.Body.String())
	}
	job2 := decodeJob(t, drr.Body.Bytes())
	if got := routedDo(router, http.MethodGet, "/v1/jobs/"+job2.ID, "", nil); got.Code != http.StatusOK {
		t.Fatalf("routed get of non-primary job: got %d, want 200 via the 404 ring walk (body %s)",
			got.Code, got.Body.String())
	}
	if crr := routedDo(router, http.MethodDelete, "/v1/jobs/"+job2.ID, "", nil); crr.Code != http.StatusOK {
		t.Fatalf("routed job cancel: got %d (body %s)", crr.Code, crr.Body.String())
	}
	waitFor(t, "cancelled job to settle", func() bool {
		rr := routedDo(router, http.MethodGet, "/v1/jobs/"+job2.ID, "", nil)
		st := decodeJob(t, rr.Body.Bytes()).Status
		return st == jobCancelled || st == jobDone
	})
}
