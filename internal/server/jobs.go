package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/explore/objective"
	"github.com/mia-rt/mia/internal/explore/pareto"
	"github.com/mia-rt/mia/internal/model"
)

// The jobs subsystem serves long-running multi-objective searches:
//
//	POST   /v1/jobs             graph (or hash) + search options → 202 with a
//	                            job id; the NSGA-II search runs in the
//	                            background, bounded by Config.MaxJobs
//	GET    /v1/jobs/{id}        job status + the current Pareto front
//	GET    /v1/jobs/{id}/stream NDJSON: every front update as it lands, then
//	                            one terminal trailer (mirrors /v1/batch's
//	                            exactly-one-trailer, truncation-marked shape)
//	DELETE /v1/jobs/{id}        cancel a running job
//
// A job id is "<graph-fingerprint>-<seq>", so the shard router can place
// every request about a job on the shard that owns it by the same
// consistent-hash key the graph's analyze traffic uses.
//
// Search jobs do not run on the unary worker pool: a Pareto search is
// minutes of work and would starve analyze/reschedule traffic behind it.
// Each job owns one goroutine (plus the search's internal evaluation pool)
// and admission is bounded separately by MaxJobs — a full job table sheds
// with 429 exactly like a full queue. BeginDrain cancels every running job;
// streams then end with a truncated trailer whose reason is "draining",
// matching the batch path's drain semantics.

// jobRetention bounds how many terminal jobs stay queryable; beyond it the
// oldest terminal job is evicted with its front.
const jobRetention = 128

// maxJobSearchWorkers caps the per-job evaluation parallelism a client may
// request, independent of the unary pool's size.
const maxJobSearchWorkers = 8

// jobStatus is a job's lifecycle state. Transitions: running → done |
// cancelled | failed; terminal states are final.
type jobStatus string

const (
	jobRunning   jobStatus = "running"
	jobDone      jobStatus = "done"
	jobCancelled jobStatus = "cancelled"
	jobFailed    jobStatus = "failed"
)

// searchJob is one served search: the background goroutine's results and
// the subscriber bookkeeping. All mutable state is guarded by mu; notify is
// closed-and-replaced on every change (broadcast), so any number of stream
// subscribers can wait without the job tracking them.
type searchJob struct {
	id   string
	hash string

	// ctx/cancel are created at admission, before the job is visible in the
	// table, so cancelAll can never observe a job without a cancel func.
	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	status      jobStatus
	reason      string // cancellation reason or failure error
	generation  int
	evaluations int
	lines       [][]byte // serialized NDJSON front-update lines, in order
	front       []pareto.Point
	notify      chan struct{}
}

// jobSet is the server's job table: id → job, bounded admission, retention
// of terminal jobs, and the drain/close synchronization.
type jobSet struct {
	maxActive int

	mu     sync.Mutex
	byID   map[string]*searchJob
	order  []*searchJob // creation order, for terminal-job eviction
	seq    int64
	active int

	wg sync.WaitGroup // one count per running search goroutine
}

func newJobSet(maxActive int) *jobSet {
	return &jobSet{maxActive: maxActive, byID: make(map[string]*searchJob)}
}

// admit reserves a job slot and registers the job, or reports the table
// full. Terminal jobs beyond the retention cap are evicted here, oldest
// first — admission is the only point the table grows.
func (js *jobSet) admit(hash string) (*searchJob, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.active >= js.maxActive {
		return nil, false
	}
	js.seq++
	//mialint:ignore ctxflow -- jobs outlive the creating request by design; their root is the job table, which cancels every entry on DELETE, drain, and Close
	ctx, cancel := context.WithCancel(context.Background())
	j := &searchJob{
		id:     hash + "-" + strconv.FormatInt(js.seq, 10),
		hash:   hash,
		ctx:    ctx,
		cancel: cancel,
		status: jobRunning,
		notify: make(chan struct{}),
	}
	js.byID[j.id] = j
	js.order = append(js.order, j)
	js.active++
	terminal := len(js.order) - js.active
	for i := 0; terminal > jobRetention && i < len(js.order); {
		if js.order[i].snapshotStatus() == jobRunning {
			i++
			continue
		}
		delete(js.byID, js.order[i].id)
		js.order = append(js.order[:i], js.order[i+1:]...)
		terminal--
	}
	return j, true
}

// get looks a job up by id.
func (js *jobSet) get(id string) (*searchJob, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.byID[id]
	return j, ok
}

// release returns a finished job's slot.
func (js *jobSet) release() {
	js.mu.Lock()
	js.active--
	js.mu.Unlock()
}

// cancelAll cancels every running job (BeginDrain's job-side half). The
// reason lands in each job's terminal trailer.
func (js *jobSet) cancelAll(reason string) {
	js.mu.Lock()
	jobs := make([]*searchJob, 0, len(js.order))
	jobs = append(jobs, js.order...)
	js.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel(reason)
	}
}

// snapshotStatus reads the job's status under its own lock.
func (j *searchJob) snapshotStatus() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// requestCancel asks a running job to stop. Idempotent; terminal jobs are
// untouched (their status is already final).
func (j *searchJob) requestCancel(reason string) {
	j.mu.Lock()
	if j.status == jobRunning && j.reason == "" {
		j.reason = reason
	}
	j.mu.Unlock()
	j.cancel() // context cancellation is idempotent
}

// broadcast wakes every waiting subscriber. Callers hold j.mu.
func (j *searchJob) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// jobUpdateLine is one streamed front update.
type jobUpdateLine struct {
	Generation  int            `json:"generation"`
	Evaluations int            `json:"evaluations"`
	FrontSize   int            `json:"front_size"`
	Points      []pareto.Point `json:"points"`
}

// pushUpdate records one front update from the search goroutine and wakes
// the stream subscribers. The update is serialized once, here, so every
// subscriber streams identical bytes.
func (j *searchJob) pushUpdate(m *metrics, u pareto.FrontUpdate) {
	b, err := json.Marshal(jobUpdateLine{
		Generation:  u.Generation,
		Evaluations: u.Evaluations,
		FrontSize:   len(u.Points),
		Points:      u.Points,
	})
	if err != nil {
		return
	}
	m.jobsFrontSize.Store(int64(len(u.Points)))
	j.mu.Lock()
	j.generation = u.Generation
	j.evaluations = u.Evaluations
	j.front = u.Points
	j.lines = append(j.lines, append(b, '\n'))
	j.broadcast()
	j.mu.Unlock()
}

// finish moves the job to its terminal state and wakes the subscribers.
func (j *searchJob) finish(m *metrics, res *pareto.Result, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.status = jobDone
		j.generation = res.Generations
		j.evaluations = res.Evaluations
		j.front = res.Front
	case errors.Is(err, context.Canceled) || j.reason != "":
		j.status = jobCancelled
		if j.reason == "" {
			j.reason = "cancelled"
		}
	default:
		j.status = jobFailed
		j.reason = err.Error()
	}
	j.broadcast()
	front := len(j.front)
	j.mu.Unlock()
	m.jobsActive.Add(-1)
	m.jobsCompleted.Add(1)
	m.jobsFrontSize.Store(int64(front))
}

// jobCreateRequest is the body of POST /v1/jobs: a graph by value or by
// fingerprint reference, plus the search's parameters (all optional; the
// pareto package's defaults apply).
type jobCreateRequest struct {
	Hash  string          `json:"hash,omitempty"`
	Graph json.RawMessage `json:"graph,omitempty"`
	// Objectives names the objective vector (objective registry names);
	// empty means the default makespan/peak-interference/bank-variance.
	Objectives  []string `json:"objectives,omitempty"`
	PopSize     int      `json:"pop_size,omitempty"`
	Generations int      `json:"generations,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	// Workers bounds the search's internal evaluation parallelism (clamped
	// to [1, maxJobSearchWorkers]; default 1 keeps jobs deterministic *and*
	// cheap — the front is byte-identical at every setting regardless).
	Workers int `json:"workers,omitempty"`
}

// jobStatusResponse is the body of job-status (and create) responses.
type jobStatusResponse struct {
	ID          string         `json:"id"`
	Hash        string         `json:"hash"`
	Status      jobStatus      `json:"status"`
	Generation  int            `json:"generation"`
	Evaluations int            `json:"evaluations"`
	FrontSize   int            `json:"front_size"`
	Front       []pareto.Point `json:"front,omitempty"`
	Reason      string         `json:"reason,omitempty"`
}

// statusBody snapshots the job as a response body. withFront includes the
// current front (status endpoint); create responses omit it.
func (j *searchJob) statusBody(withFront bool) []byte {
	j.mu.Lock()
	resp := jobStatusResponse{
		ID:          j.id,
		Hash:        j.hash,
		Status:      j.status,
		Generation:  j.generation,
		Evaluations: j.evaluations,
		FrontSize:   len(j.front),
	}
	if withFront {
		resp.Front = j.front
	}
	if j.status == jobCancelled || j.status == jobFailed {
		resp.Reason = j.reason
	}
	j.mu.Unlock()
	b, _ := json.Marshal(&resp)
	return b
}

// handleJobCreate serves POST /v1/jobs.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	s.met.jobs.Add(1)
	if s.draining() {
		s.writeReply(w, reply{status: http.StatusServiceUnavailable, body: errBody("draining")})
		return
	}
	var req jobCreateRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody("parsing job request: " + err.Error())})
		return
	}

	var img *engine.Image
	switch {
	case req.Hash != "" && len(req.Graph) > 0:
		s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody("set hash or graph, not both")})
		return
	case req.Hash != "":
		var ok bool
		if img, ok = s.images.get(req.Hash); !ok {
			s.writeReply(w, reply{status: http.StatusNotFound,
				body: errBody("unknown graph hash (analyze it first; the registry is an LRU and may have evicted it)")})
			return
		}
	case len(req.Graph) > 0:
		g, err := model.ReadJSON(strings.NewReader(string(req.Graph)))
		if err != nil {
			s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody(err.Error())})
			return
		}
		img, err = engine.Compile(g, s.cfg.Sched)
		if err != nil {
			s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody(err.Error())})
			return
		}
		s.met.ingestJSON.Add(1)
		img = s.images.put(img.Fingerprint(), img)
	default:
		s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody("missing graph: set hash or graph")})
		return
	}

	objs := make([]objective.Objective, 0, len(req.Objectives))
	for _, name := range req.Objectives {
		o, err := objective.ByName(name)
		if err != nil {
			s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody(err.Error())})
			return
		}
		objs = append(objs, o)
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > maxJobSearchWorkers {
		workers = maxJobSearchWorkers
	}
	opts := pareto.Options{
		Objectives:  objs,
		PopSize:     req.PopSize,
		Generations: req.Generations,
		Seed:        req.Seed,
		Jobs:        workers,
	}

	hash := img.Fingerprint()
	j, ok := s.jobs.admit(hash)
	if !ok {
		s.met.shed.Add(1)
		w.Header().Set("Retry-After", s.retryAfterHint())
		s.writeReply(w, reply{status: http.StatusTooManyRequests, body: errBody("job table full")})
		return
	}
	s.startJob(j, img, opts)
	s.writeReply(w, reply{status: http.StatusAccepted, body: j.statusBody(false)})
}

// startJob launches the search goroutine for an admitted job.
func (s *Server) startJob(j *searchJob, img *engine.Image, opts pareto.Options) {
	opts.OnFront = func(u pareto.FrontUpdate) { j.pushUpdate(s.met, u) }
	s.met.jobsActive.Add(1)
	s.jobs.wg.Add(1)
	if s.draining() {
		// Drain raced the admission check: the job is registered but must not
		// outlive the drain. Cancel it up front; it finishes as cancelled.
		j.requestCancel("draining")
	}
	go func() {
		defer s.jobs.wg.Done()
		defer j.cancel()
		defer s.jobs.release()
		res, err := func() (res *pareto.Result, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("internal panic: %v", r)
				}
			}()
			return pareto.Search(j.ctx, img, opts)
		}()
		j.finish(s.met, res, err)
	}()
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.met.jobs.Add(1)
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeReply(w, reply{status: http.StatusNotFound, body: errBody("unknown job id")})
		return
	}
	s.writeReply(w, reply{status: http.StatusOK, body: j.statusBody(true)})
}

// handleJobCancel serves DELETE /v1/jobs/{id}. Idempotent: cancelling a
// terminal job reports its final status unchanged.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.met.jobs.Add(1)
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeReply(w, reply{status: http.StatusNotFound, body: errBody("unknown job id")})
		return
	}
	j.requestCancel("cancelled")
	s.writeReply(w, reply{status: http.StatusOK, body: j.statusBody(false)})
}

// jobTrailer is the stream's single terminal line, mirroring the batch
// trailer's shape: done marks it, truncated says whether the search ran to
// completion, and reason explains a truncation.
type jobTrailer struct {
	Done      bool      `json:"done"`
	Status    jobStatus `json:"status"`
	Updates   int       `json:"updates"`
	Truncated bool      `json:"truncated"`
	Reason    string    `json:"reason,omitempty"`
}

// handleJobStream serves GET /v1/jobs/{id}/stream: every front update the
// job has produced so far, then live updates as they land, then exactly one
// trailer once the job reaches a terminal state. A subscriber joining after
// completion replays the whole update history and gets the trailer
// immediately — streams are replayable because every line is serialized
// once, at update time.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	s.met.jobs.Add(1)
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeReply(w, reply{status: http.StatusNotFound, body: errBody("unknown job id")})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.met.countResponse(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		j.mu.Lock()
		lines := j.lines[sent:]
		status := j.status
		reason := j.reason
		total := len(j.lines)
		notify := j.notify
		j.mu.Unlock()
		for _, line := range lines {
			w.Write(line)
			s.met.streamedBytes.Add(int64(len(line)))
		}
		sent = total
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if status != jobRunning {
			t := jobTrailer{Done: true, Status: status, Updates: sent,
				Truncated: status != jobDone, Reason: reason}
			if b, err := json.Marshal(&t); err == nil {
				b = append(b, '\n')
				w.Write(b)
				s.met.streamedBytes.Add(int64(len(b)))
			}
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return // client gone; the job itself keeps running
		}
	}
}
