package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
)

// countingCloser intercepts closeWarmFn to tally closes per analyzer.
type countingCloser struct {
	mu     sync.Mutex
	closes map[engine.Warm]int
}

func interceptCloses(t *testing.T) *countingCloser {
	t.Helper()
	cc := &countingCloser{closes: make(map[engine.Warm]int)}
	prev := closeWarmFn
	closeWarmFn = func(w engine.Warm) {
		cc.mu.Lock()
		cc.closes[w]++
		cc.mu.Unlock()
		prev(w)
	}
	t.Cleanup(func() { closeWarmFn = prev })
	return cc
}

func (cc *countingCloser) of(w engine.Warm) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.closes[w]
}

func compileTestImage(t *testing.T) *engine.Image {
	t.Helper()
	img, err := engine.Compile(roundTrip(t, gen.Figure1()), sched.Options{})
	if err != nil {
		t.Fatalf("compiling: %v", err)
	}
	return img
}

// TestWarmEntryRefcount pins the eviction/in-use state machine: retiring a
// held entry must not close it, the final release must, and both retire and
// release are idempotent about the close.
func TestWarmEntryRefcount(t *testing.T) {
	cc := interceptCloses(t)
	img := compileTestImage(t)

	e := newWarmEntry("a", img)
	e.acquire()
	e.retire() // eviction lands while a request holds the analyzer
	if n := cc.of(e.w); n != 0 {
		t.Fatalf("analyzer closed %d times while still acquired, want 0", n)
	}
	e.retire() // a second retire must stay harmless
	if n := cc.of(e.w); n != 0 {
		t.Fatalf("analyzer closed %d times after double retire while acquired, want 0", n)
	}
	e.release() // last user gone: now it may close, exactly once
	if n := cc.of(e.w); n != 1 {
		t.Fatalf("analyzer closed %d times after final release, want 1", n)
	}
	e.retire() // idempotent after close
	if n := cc.of(e.w); n != 1 {
		t.Fatalf("analyzer closed %d times after post-close retire, want 1", n)
	}

	// The idle path unchanged: retire with no holders closes immediately.
	idle := newWarmEntry("b", img)
	idle.retire()
	if n := cc.of(idle.w); n != 1 {
		t.Fatalf("idle analyzer closed %d times on retire, want 1", n)
	}
}

// TestWarmCachePutRetiresDisplaced: LRU eviction and same-hash replacement
// both route through retire, and a held entry survives its eviction until
// released.
func TestWarmCachePutRetiresDisplaced(t *testing.T) {
	cc := interceptCloses(t)
	img := compileTestImage(t)
	c := newWarmCache(1)

	held := newWarmEntry("a", img)
	held.acquire() // a request is mid-analysis on this entry
	c.put(held)

	evictor := newWarmEntry("b", img)
	c.put(evictor) // capacity 1: evicts "a" while it is held
	if n := cc.of(held.w); n != 0 {
		t.Fatalf("held entry closed %d times by eviction, want 0 (refs > 0)", n)
	}
	held.release()
	if n := cc.of(held.w); n != 1 {
		t.Fatalf("held entry closed %d times after release, want 1", n)
	}

	// Same-hash replacement retires the displaced entry too.
	repl := newWarmEntry("b", img)
	c.put(repl)
	if n := cc.of(evictor.w); n != 1 {
		t.Fatalf("replaced entry closed %d times, want 1", n)
	}
	c.closeAll()
	if n := cc.of(repl.w); n != 1 {
		t.Fatalf("entry closed %d times by closeAll, want 1", n)
	}
}

// TestEvictionHammer is the -race regression for the eviction-vs-in-flight
// audit: warm caches of capacity 1 under concurrent analyze, reschedule, and
// batch traffic over more graphs than fit, so every worker evicts constantly
// while analyses are in flight. Under -race this fails if an eviction ever
// frees analyzer state a request is standing on; the close counter must also
// never exceed one per analyzer.
func TestEvictionHammer(t *testing.T) {
	cc := interceptCloses(t)
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64, WarmCacheSize: 1})

	const graphs = 4
	type target struct {
		hash string
		body []byte
	}
	targets := make([]target, graphs)
	for i := range targets {
		p := gen.NewParams(1, 64)
		p.Seed = int64(i + 1)
		g, err := gen.Layered(p)
		if err != nil {
			t.Fatalf("generating graph %d: %v", i, err)
		}
		body := graphJSON(t, g)
		targets[i] = target{hash: responseHash(t, analyzeGraph(t, s, body)), body: body}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				tg := targets[(c+i)%graphs]
				var rr *httptest.ResponseRecorder
				switch i % 3 {
				case 0:
					rr = do(s, http.MethodPost, "/v1/analyze", bytes.NewReader(tg.body))
				case 1:
					rr = do(s, http.MethodPost, "/v1/reschedule",
						strings.NewReader(fmt.Sprintf(`{"hash":%q,"swaps":[{"core":0,"pos":0},{"core":0,"pos":0}]}`, tg.hash)))
				default:
					rr = do(s, http.MethodPost, "/v1/batch",
						strings.NewReader(fmt.Sprintf(`{"hash":%q,"items":[{"swaps":[]},{"swaps":[{"core":0,"pos":0},{"core":0,"pos":0}]}]}`, tg.hash)))
				}
				if rr.Code != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d (%s)", c, i, rr.Code, rr.Body.String())
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cc.mu.Lock()
	defer cc.mu.Unlock()
	for w, n := range cc.closes {
		if n > 1 {
			t.Errorf("analyzer %p closed %d times, want at most 1", w, n)
		}
	}
}
