package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// scheduleResponse is the body of successful analyze and reschedule
// responses. The two endpoints share it on purpose: a reschedule served from
// a warm checkpoint is byte-identical to a cold analyze of the edited graph
// (the differential tests pin this), so warm reuse is unobservable in the
// payload.
type scheduleResponse struct {
	Hash              string         `json:"hash"`
	Algorithm         string         `json:"algorithm"`
	Tasks             int            `json:"tasks"`
	Makespan          model.Cycles   `json:"makespan"`
	TotalInterference model.Cycles   `json:"totalInterference"`
	Iterations        int            `json:"iterations"`
	Release           []model.Cycles `json:"release"`
	Response          []model.Cycles `json:"response"`
	Interference      []model.Cycles `json:"interference"`
}

// marshalSchedule serializes a result while the worker still owns it (the
// warm analyzer overwrites its Result on the next run).
func marshalSchedule(hash string, tasks int, res *sched.Result) ([]byte, error) {
	return json.Marshal(&scheduleResponse{
		Hash:              hash,
		Algorithm:         res.Algorithm,
		Tasks:             tasks,
		Makespan:          res.Makespan,
		TotalInterference: res.TotalInterference(),
		Iterations:        res.Iterations,
		Release:           res.Release,
		Response:          res.Response,
		Interference:      res.Interference,
	})
}

// schedReply maps an analysis outcome to a reply: 200 with the schedule,
// 422 for unschedulable inputs (a verdict, not a server failure), 504 for a
// deadline that expired mid-analysis.
func schedReply(ctx context.Context, hash string, tasks int, res *sched.Result, err error, cacheNote string) reply {
	switch {
	case errors.Is(err, sched.ErrCanceled):
		return timeoutReply(ctx)
	case err != nil:
		return reply{status: http.StatusUnprocessableEntity, cacheNote: cacheNote, body: errBody(err.Error())}
	}
	body, merr := marshalSchedule(hash, tasks, res)
	if merr != nil {
		return reply{status: http.StatusInternalServerError, body: errBody(merr.Error())}
	}
	return reply{status: http.StatusOK, cacheNote: cacheNote, body: body}
}

// handleAnalyze serves POST /v1/analyze: graph JSON in, schedule out. The
// graph is compiled once into an immutable engine image and registered in
// the shared fingerprint registry, so later requests for the same
// fingerprint — on any worker — analyze the same compiled image instead of
// re-deriving it from graph bytes.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.met.analyze.Add(1)
	img, err := s.compileBody(r)
	if err != nil {
		s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody(err.Error())})
		return
	}
	hash := img.Fingerprint()
	img = s.images.put(hash, img)
	s.dispatch(w, r, func(ctx context.Context, wk *worker) reply {
		return wk.analyze(ctx, s, img, hash)
	})
}

// analyze runs on a worker goroutine. A warm cache entry for the same
// fingerprint serves the request by replaying from the latest checkpoint
// (bit-identical to, and much cheaper than, a cold run); otherwise a fresh
// analyzer over the shared image runs cold and its checkpoints join the
// worker's LRU.
func (wk *worker) analyze(ctx context.Context, s *Server, img *engine.Image, hash string) reply {
	if err := ctx.Err(); err != nil {
		return timeoutReply(ctx)
	}
	e, ok := wk.cache.get(hash)
	warm := ok && e.w.Warm()
	cacheNote := "miss"
	if warm {
		cacheNote = "hit"
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMisses.Add(1)
	}
	if !ok {
		e = newWarmEntry(hash, img)
		wk.cache.put(e)
	}
	e.acquire() // pin across the analysis: a cache eviction cannot close e.w mid-run
	defer e.release()
	var res *sched.Result
	var err error
	if warm {
		res, err = e.w.Reschedule(ctx) // zero edits: replay from the last checkpoint
	} else {
		res, err = e.w.Analyze(ctx)
	}
	return schedReply(ctx, hash, e.img.NumTasks, res, err, cacheNote)
}

// rescheduleRequest is the body of POST /v1/reschedule: the fingerprint of a
// previously analyzed graph plus an ordered list of adjacent order swaps to
// apply to its per-core execution orders before re-analyzing.
type rescheduleRequest struct {
	Hash string `json:"hash"`
	// Swaps are applied in sequence: each exchanges positions pos and pos+1
	// of core's execution order (the explorer's move primitive).
	Swaps []swapEdit `json:"swaps"`
}

type swapEdit struct {
	Core int `json:"core"`
	Pos  int `json:"pos"`
}

// handleReschedule serves POST /v1/reschedule. The response is
// byte-identical to a cold POST /v1/analyze of the edited graph.
func (s *Server) handleReschedule(w http.ResponseWriter, r *http.Request) {
	s.met.reschedule.Add(1)
	var req rescheduleRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody("parsing reschedule request: " + err.Error())})
		return
	}
	if req.Hash == "" {
		s.writeReply(w, reply{status: http.StatusBadRequest, body: errBody("missing graph hash")})
		return
	}
	s.dispatch(w, r, func(ctx context.Context, wk *worker) reply {
		return wk.whatIf(ctx, s, req.Hash, req.Swaps, nil)
	})
}

// whatIf runs on a worker goroutine and evaluates one edit scenario against
// a previously registered graph: it is the shared core of the unary
// reschedule endpoint and of every batch item, so the two paths cannot
// drift apart. The worker's warm entry for the fingerprint — bound to the
// shared image from the registry on a cache miss — provides the checkpoint
// baseline; the requested swaps are applied to the analyzer's order
// overlay, the suffix behind the earliest divergence is replayed, and the
// swaps are undone so the baseline stays valid for the next request (the
// explorer's apply-evaluate-undo pattern, stretched across requests).
//
// memo, when non-nil, memoizes successful replies by the fingerprint of
// the evaluated configuration. Equal fingerprints mean identical analysis
// inputs mean an identical Result (the repository's core bit-identity
// invariant), so a scenario whose applied orders match an earlier one —
// different swap sequences can reach the same configuration — is answered
// with the earlier reply's bytes without replaying. The batch path passes
// a per-batch map; the map is worker-confined, so no locking. Unary
// requests pass nil: cross-request result reuse would need an invalidation
// story, while a batch scopes the memo to one stream naturally.
func (wk *worker) whatIf(ctx context.Context, s *Server, hash string, swaps []swapEdit, memo map[string]reply) reply {
	if err := ctx.Err(); err != nil {
		return timeoutReply(ctx)
	}
	e, ok := wk.cache.get(hash)
	if !ok {
		img, found := s.images.get(hash)
		if !found {
			return reply{status: http.StatusNotFound,
				body: errBody("unknown graph hash (analyze it first; the registry is an LRU and may have evicted it)")}
		}
		e = newWarmEntry(hash, img)
		wk.cache.put(e)
	}
	e.acquire() // pin across apply-evaluate-undo: eviction cannot close e.w mid-scenario
	defer e.release()
	warm := e.w.Warm()
	cacheNote := "miss"
	if warm {
		cacheNote = "hit"
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMisses.Add(1)
	}

	// The checkpoint baseline must describe the *unedited* orders before any
	// swap is applied: Reschedule without a baseline would commit the edited
	// orders as the new baseline, which the undo below would then invalidate.
	if !warm {
		if _, err := e.w.Analyze(ctx); err != nil {
			return schedReply(ctx, hash, e.img.NumTasks, nil, err, cacheNote)
		}
	}

	// Validate and apply the swaps to the order overlay, tracking the
	// earliest divergence position per core for the replay.
	ord := e.w.Orders()
	firstEdit := make(map[model.CoreID]int, len(swaps))
	applied := 0
	undo := func() {
		for i := applied - 1; i >= 0; i-- {
			ord.Swap(model.CoreID(swaps[i].Core), swaps[i].Pos)
		}
	}
	for _, sw := range swaps {
		if sw.Core < 0 || sw.Core >= e.img.Cores {
			undo()
			return reply{status: http.StatusBadRequest, cacheNote: cacheNote,
				body: errBody(fmt.Sprintf("swap core %d out of range (platform has %d cores)", sw.Core, e.img.Cores))}
		}
		order := ord.Order(model.CoreID(sw.Core))
		if sw.Pos < 0 || sw.Pos+1 >= len(order) {
			undo()
			return reply{status: http.StatusBadRequest, cacheNote: cacheNote,
				body: errBody(fmt.Sprintf("swap position %d out of range (core %d orders %d tasks)", sw.Pos, sw.Core, len(order)))}
		}
		ord.Swap(model.CoreID(sw.Core), sw.Pos)
		applied++
		if cur, ok := firstEdit[model.CoreID(sw.Core)]; !ok || sw.Pos < cur {
			firstEdit[model.CoreID(sw.Core)] = sw.Pos
		}
	}
	defer undo()

	edits := make([]engine.Edit, 0, len(firstEdit))
	for k := 0; k < e.img.Cores; k++ {
		if pos, ok := firstEdit[model.CoreID(k)]; ok {
			edits = append(edits, engine.Edit{Core: model.CoreID(k), From: pos})
		}
	}
	// The response carries the fingerprint of the *edited* graph — exactly
	// what a cold analyze of that graph would return — computed while the
	// swaps are applied. It is also the memo key: with the image's frozen
	// midstate hasher this costs O(tasks), far below a replay.
	fp := e.img.FingerprintOrders(ord)
	if memo != nil {
		if rep, ok := memo[fp]; ok {
			return rep
		}
	}
	res, err := e.w.Reschedule(ctx, edits...)
	rep := schedReply(ctx, fp, e.img.NumTasks, res, err, cacheNote)
	if memo != nil && rep.status == http.StatusOK {
		memo[fp] = rep
	}
	return rep
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.healthz.Add(1)
	if s.draining() {
		s.writeReply(w, reply{status: http.StatusServiceUnavailable, body: []byte(`{"status":"draining"}`)})
		return
	}
	s.writeReply(w, reply{status: http.StatusOK,
		body: []byte(fmt.Sprintf(`{"status":"ok","workers":%d}`, s.cfg.Workers))})
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.metricsReqs.Add(1)
	body, err := s.met.snapshot(s.runner.Queued(), s.runner.Capacity(), s.runner.Completed(), s.images.len())
	if err != nil {
		s.writeReply(w, reply{status: http.StatusInternalServerError, body: errBody(err.Error())})
		return
	}
	s.writeReply(w, reply{status: http.StatusOK, body: body})
}
