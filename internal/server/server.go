// Package server exposes the repository's interference analysis as a
// long-running HTTP/JSON service — the serving layer the ROADMAP's
// production north star asks for, and the shape used by online bandwidth
// regulation controllers that re-run interference analysis in a loop.
//
//	POST /v1/analyze     graph (JSON or binary wire format) in → schedule
//	                     (Θ, R, makespan) out
//	POST /v1/reschedule  fingerprint + order edits → schedule out, served
//	                     from a warm scheduler checkpoint when possible
//	POST /v1/batch       one graph (by value or fingerprint) + many edit
//	                     scenarios → streamed NDJSON, one result line per
//	                     scenario as it completes, truncation-marked trailer
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        expvar-style counters + latency quantiles
//
// Requests pass a bounded admission queue onto a fixed pool of workers.
// Each graph is compiled once into an immutable engine.Image registered by
// canonical fingerprint (model.Graph.Fingerprint); every worker's warm
// analyzer for that fingerprint shares the one image, and only the
// analyzer's order overlay and checkpoints are per-worker. Repeat analyses
// and single-edit reschedules replay a checkpointed suffix instead of
// re-analyzing from t=0 — the same warm-start reuse the design-space
// explorer exploits, now held across requests. Warm replays are bit-identical
// to cold runs (the scheduler's differential suite pins this), so a client
// cannot observe whether its response came from a checkpoint: only latency
// and the cache counters differ.
//
// Load shedding: a full queue answers 429 with Retry-After rather than
// queuing unboundedly. Deadlines: every request carries a context deadline
// (default Config.DefaultTimeout, per-request override via ?timeout_ms=);
// expiry mid-analysis cancels the scheduler run and answers 504. Drain:
// BeginDrain rejects new work with 503 while admitted requests finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/pool"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

// eng is the analysis backend every request runs on: the paper's incremental
// scheduler, the only backend with warm-start state worth pooling.
var eng = engine.MustNew(engine.Incremental)

// Config parameterizes a Server. The zero value is usable: every field has
// a serving-sensible default.
type Config struct {
	// Workers is the number of warm evaluator goroutines (default: NumCPU).
	// Each worker owns WarmCacheSize warm schedulers; requests are served by
	// whichever worker picks them up.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A full queue sheds
	// with 429 + Retry-After instead of queuing unboundedly.
	QueueDepth int
	// WarmCacheSize is each worker's warm-scheduler LRU capacity (default 8).
	WarmCacheSize int
	// GraphCacheSize is the shared compiled-image registry capacity (default
	// 128). Reschedule-by-fingerprint needs the compiled image of an earlier
	// analyze; eviction turns later reschedules into 404s.
	GraphCacheSize int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout_ms= (default 30s).
	DefaultTimeout time.Duration
	// RetryAfter is the fallback hint returned with 429 responses when the
	// observed drain rate cannot yet estimate one (default 1s). Once the
	// server has completion history, the hint is derived from queue depth
	// and drain rate instead — see retryAfterSeconds.
	RetryAfter time.Duration
	// MaxRequestBytes bounds request bodies (default 32 MiB).
	MaxRequestBytes int64
	// MaxJobs bounds concurrently running search jobs (default 2). Job
	// admission is separate from the unary queue: a full job table sheds
	// with 429 without touching analyze/reschedule capacity.
	MaxJobs int
	// Sched is the base option set for every analysis (arbiter, competitor
	// merging, ...). Trace and Cancel are ignored: traces would race across
	// workers, and cancellation is wired per request.
	Sched sched.Options
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.WarmCacheSize < 1 {
		c.WarmCacheSize = 8
	}
	if c.GraphCacheSize < 1 {
		c.GraphCacheSize = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 32 << 20
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 2
	}
	c.Sched.Trace = nil
	c.Sched.Cancel = nil
	return c
}

// worker is one evaluator goroutine's private state: its warm-analyzer LRU.
type worker struct {
	cache *warmCache
}

// Server is the analysis service. Create with New, mount Handler on an
// http.Server, and shut down with BeginDrain followed by Close.
type Server struct {
	cfg     Config
	runner  *pool.Runner[*worker]
	workers []*worker
	images  *imageCache
	jobs    *jobSet
	met     *metrics
	mux     *http.ServeMux

	drainCh chan struct{} // closed by BeginDrain

	// gate, when non-nil, runs on the worker goroutine before each admitted
	// job. Tests use it to hold workers deterministically (queue-full and
	// deadline-expiry scenarios).
	gate func()
	// itemGate, when non-nil, runs on the worker goroutine before each batch
	// item. Tests use it to cancel batches deterministically mid-stream.
	itemGate func(i int)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = &worker{cache: newWarmCache(cfg.WarmCacheSize)}
	}
	s := &Server{
		cfg:     cfg,
		runner:  pool.NewRunner(workers, cfg.QueueDepth),
		workers: workers,
		images:  newImageCache(cfg.GraphCacheSize),
		jobs:    newJobSet(cfg.MaxJobs),
		met:     newMetrics(),
		mux:     http.NewServeMux(),
		drainCh: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/reschedule", s.handleReschedule)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's counter set (read-only use intended).
func (s *Server) Metrics() *metrics { return s.met }

// BeginDrain switches the server into draining mode: every subsequent
// analyze/reschedule/healthz/job-create request answers 503 immediately,
// while requests already admitted to the queue keep running. Running search
// jobs are cancelled — their streams end with a truncated trailer whose
// reason is "draining", matching the batch path's drain semantics.
// Idempotent.
func (s *Server) BeginDrain() {
	select {
	case <-s.drainCh:
	default:
		close(s.drainCh)
		s.jobs.cancelAll("draining")
	}
}

// draining reports whether BeginDrain was called.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Close drains the worker pool: admission stops, every admitted job runs to
// completion, and the worker goroutines exit. It implies BeginDrain and
// blocks until the pool is idle — callers wanting a deadline on the HTTP
// side run http.Server.Shutdown first, which bounds how long handlers keep
// waiting for their replies.
func (s *Server) Close() {
	s.BeginDrain()
	s.jobs.wg.Wait() // cancelled by BeginDrain; wait for the goroutines to land
	s.runner.Drain()
	// The worker goroutines have exited; release any parked intra-analysis
	// kernel workers their cached warm analyzers still hold.
	for _, w := range s.workers {
		w.cache.closeAll()
	}
}

// reply is what a worker computes for one request; the handler goroutine
// writes it, since the worker may outlive the handler on deadline expiry.
type reply struct {
	status    int
	cacheNote string // X-Mia-Cache value ("hit"/"miss"); empty = omit
	body      []byte // JSON, already serialized on the worker
}

// errBody renders the uniform JSON error shape.
func errBody(msg string) []byte {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	return b
}

// requestCtx layers the per-request deadline onto the connection context.
// An invalid or non-positive timeout_ms falls back to the default: admission
// control should never fail a request over a malformed hint.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		var ms int64
		if _, err := fmt.Sscan(v, &ms); err == nil && ms > 0 {
			timeout = time.Duration(ms) * time.Millisecond
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// retryAfterSeconds derives a 429 Retry-After hint from the work a shed
// client is behind: with queued jobs ahead of it draining at rate jobs/sec,
// the client's turn comes in about (queued+1)/rate seconds. rate <= 0 means
// the drain rate is unknown (cold server, or no completions yet), and the
// configured fallback applies. The result is clamped to [1, 30] seconds —
// never 0 (a "retry immediately" hint under overload is an invitation to
// hammer), never an hour-long guess from one slow batch skewing the window.
func retryAfterSeconds(queued int, rate float64, fallback time.Duration) int {
	var secs float64
	if rate > 0 {
		secs = math.Ceil(float64(queued+1) / rate)
	} else {
		secs = math.Ceil(fallback.Seconds())
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return int(secs)
}

// retryAfterHint computes the live Retry-After value for a shed response.
func (s *Server) retryAfterHint() string {
	secs := retryAfterSeconds(s.runner.Queued(), s.met.drainRate(time.Now()), s.cfg.RetryAfter)
	return strconv.Itoa(secs)
}

// dispatch admits one analysis job onto the worker pool and writes its
// reply, translating queue pressure into 429, drain into 503, and deadline
// expiry into 504. job runs on a worker goroutine and must serialize its
// response before returning (worker-owned scheduler buffers are reused by
// the next job).
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, job func(ctx context.Context, wk *worker) reply) {
	start := time.Now()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	if s.draining() {
		s.writeReply(w, reply{status: http.StatusServiceUnavailable, body: errBody("draining")})
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()

	out := make(chan reply, 1) // buffered: the worker never blocks on a gone handler
	admitted := s.runner.TrySubmit(func(wk *worker) {
		if s.gate != nil {
			s.gate()
		}
		out <- safeJob(ctx, wk, job)
	})
	if !admitted {
		s.met.shed.Add(1)
		if s.draining() {
			s.writeReply(w, reply{status: http.StatusServiceUnavailable, body: errBody("draining")})
			return
		}
		w.Header().Set("Retry-After", s.retryAfterHint())
		s.writeReply(w, reply{status: http.StatusTooManyRequests, body: errBody("queue full")})
		return
	}

	select {
	case rep := <-out:
		s.met.observeLatency(time.Since(start))
		s.met.observeCompletion(time.Now())
		s.writeReply(w, rep)
	case <-ctx.Done():
		// The job still runs (it cannot be unqueued) but will observe the
		// dead context and return cheaply; its reply lands in the buffered
		// channel and is dropped.
		s.met.observeLatency(time.Since(start))
		s.writeReply(w, timeoutReply(ctx))
	}
}

// safeJob runs job with panic containment: a panicking analysis answers 500
// for its own request instead of killing the worker goroutine and silently
// shrinking pool capacity.
func safeJob(ctx context.Context, wk *worker, job func(context.Context, *worker) reply) (rep reply) {
	defer func() {
		if r := recover(); r != nil {
			rep = reply{status: http.StatusInternalServerError, body: errBody(fmt.Sprintf("internal panic: %v", r))}
		}
	}()
	return job(ctx, wk)
}

// timeoutReply maps a dead request context to its response: 504 for an
// expired deadline, 503 for a client disconnect (the body is written for
// uniformity; a disconnected client never reads it).
func timeoutReply(ctx context.Context) reply {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return reply{status: http.StatusGatewayTimeout, body: errBody("deadline exceeded")}
	}
	return reply{status: http.StatusServiceUnavailable, body: errBody("client gone")}
}

// writeReply writes one reply and tallies it.
func (s *Server) writeReply(w http.ResponseWriter, rep reply) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if rep.cacheNote != "" {
		h.Set("X-Mia-Cache", rep.cacheNote)
	}
	w.WriteHeader(rep.status)
	w.Write(rep.body)
	s.met.countResponse(rep.status)
}

// readGraph decodes a request body as a task graph with the size cap
// applied.
func (s *Server) readGraph(r *http.Request) (*model.Graph, error) {
	return model.ReadJSON(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
}

// wireContentType is the media type of binary wire-format graph bodies
// (internal/wire). Graph-carrying endpoints accept it interchangeably with
// graph JSON; the binary path compiles without materializing a graph.
const wireContentType = "application/x-mia-wire"

// isWire reports whether the request body is declared as binary wire format.
func isWire(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.Index(ct, ";"); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == wireContentType
}

// compileBody compiles a request body into a problem image, dispatching on
// Content-Type: wire blobs take the zero-graph CompileFromWire fast path,
// everything else parses as graph JSON. Both paths apply the body size cap
// and full validation; the ingest counters record which one served each
// graph-carrying request.
func (s *Server) compileBody(r *http.Request) (*engine.Image, error) {
	if isWire(r) {
		body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes))
		if err != nil {
			return nil, err
		}
		img, err := engine.CompileFromWire(body, s.cfg.Sched)
		if err != nil {
			return nil, err
		}
		s.met.ingestWire.Add(1)
		return img, nil
	}
	g, err := s.readGraph(r)
	if err != nil {
		return nil, err
	}
	img, err := engine.Compile(g, s.cfg.Sched)
	if err != nil {
		return nil, err
	}
	s.met.ingestJSON.Add(1)
	return img, nil
}
