package server

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow bounds the rolling latency sample the quantiles are computed
// over. A ring of the most recent samples keeps /metrics O(window) and the
// quantiles responsive to load changes instead of averaging over the whole
// process lifetime.
const latencyWindow = 1024

// metrics holds the service counters exposed on /metrics. Counters are
// plain atomics (expvar-style: monotonic, scraped as a JSON snapshot);
// the latency ring is the only locked structure.
type metrics struct {
	start time.Time

	analyze     atomic.Int64
	reschedule  atomic.Int64
	batch       atomic.Int64
	jobs        atomic.Int64
	healthz     atomic.Int64
	metricsReqs atomic.Int64

	// Search-job lifecycle: active is a gauge of running jobs, completed
	// counts jobs that reached a terminal state (done, cancelled, or
	// failed), frontSize is a gauge of the most recently reported front's
	// cardinality.
	jobsActive    atomic.Int64
	jobsCompleted atomic.Int64
	jobsFrontSize atomic.Int64

	// Graph ingest path split: JSON decode+Compile vs binary wire fast path.
	ingestJSON atomic.Int64
	ingestWire atomic.Int64

	// streamedBytes totals the NDJSON bytes written by batch responses
	// (result lines and trailers, including truncated streams).
	streamedBytes atomic.Int64

	// items is the items-per-batch histogram: fixed decade buckets (≤1,
	// ≤10, ≤100, ≤1000, >1000) plus sum and max, enough to tell sweep-sized
	// batches from chatty unary-like usage without tracking quantiles.
	items struct {
		mu                               sync.Mutex
		le1, le10, le100, le1000, gt1000 int64
		sum, max                         int64
	}

	resp2xx atomic.Int64
	resp4xx atomic.Int64
	resp5xx atomic.Int64

	shed     atomic.Int64
	inFlight atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	lat struct {
		mu    sync.Mutex
		ring  [latencyWindow]float64 // milliseconds
		next  int
		total int64
	}

	// done is the completion-timestamp ring behind drainRate: the shed
	// path's Retry-After hint is derived from how fast the queue has
	// actually been draining, so it needs the recent completion times, not
	// just a count.
	done struct {
		mu    sync.Mutex
		ring  [drainWindow]time.Time
		next  int
		total int64
	}
}

// drainWindow bounds the completion-timestamp sample behind drainRate.
// Smaller than latencyWindow on purpose: the Retry-After hint should track
// the *current* drain speed, and 64 completions of history is seconds of
// traffic at any load level where shedding happens.
const drainWindow = 64

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// observeLatency records one analyze/reschedule request duration.
func (m *metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.lat.mu.Lock()
	m.lat.ring[m.lat.next] = ms
	m.lat.next = (m.lat.next + 1) % latencyWindow
	m.lat.total++
	m.lat.mu.Unlock()
}

// observeCompletion records that one queued unit of work finished at t.
func (m *metrics) observeCompletion(t time.Time) {
	m.done.mu.Lock()
	m.done.ring[m.done.next] = t
	m.done.next = (m.done.next + 1) % drainWindow
	m.done.total++
	m.done.mu.Unlock()
}

// drainRate estimates the service's recent completion throughput in units
// per second, measured from the oldest completion in the window to now. It
// returns 0 when there are fewer than two completions or the window spans no
// measurable time — callers must treat 0 as "rate unknown", not "infinitely
// slow".
func (m *metrics) drainRate(now time.Time) float64 {
	m.done.mu.Lock()
	n := int(m.done.total)
	if n > drainWindow {
		n = drainWindow
	}
	var oldest time.Time
	if n > 0 {
		i := m.done.next - n
		if i < 0 {
			i += drainWindow
		}
		oldest = m.done.ring[i]
	}
	m.done.mu.Unlock()
	if n < 2 {
		return 0
	}
	span := now.Sub(oldest).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(n) / span
}

// observeBatchItems records one batch request's scenario count.
func (m *metrics) observeBatchItems(n int) {
	m.items.mu.Lock()
	switch {
	case n <= 1:
		m.items.le1++
	case n <= 10:
		m.items.le10++
	case n <= 100:
		m.items.le100++
	case n <= 1000:
		m.items.le1000++
	default:
		m.items.gt1000++
	}
	m.items.sum += int64(n)
	if int64(n) > m.items.max {
		m.items.max = int64(n)
	}
	m.items.mu.Unlock()
}

// countResponse tallies a response by status class.
func (m *metrics) countResponse(status int) {
	switch {
	case status >= 500:
		m.resp5xx.Add(1)
	case status >= 400:
		m.resp4xx.Add(1)
	default:
		m.resp2xx.Add(1)
	}
}

// nearestRank returns the q-quantile of an already-sorted sample by the
// nearest-rank definition: the smallest element such that at least q·n of
// the sample is ≤ it, i.e. index ⌈q·n⌉−1. The previous form int(q·(n−1))
// truncated instead of rounding up, which underestimates on small samples —
// p99 of two samples returned the *minimum* — and an empty sample has no
// quantile, so it reports 0 by convention.
func nearestRank(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// quantiles computes p50/p99 over the current latency window.
func (m *metrics) quantiles() (p50, p99 float64, samples int64) {
	m.lat.mu.Lock()
	n := int(m.lat.total)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]float64, n)
	copy(window, m.lat.ring[:n])
	samples = m.lat.total
	m.lat.mu.Unlock()
	sort.Float64s(window)
	return nearestRank(window, 0.50), nearestRank(window, 0.99), samples
}

// metricsSnapshot is the /metrics response body. Field order is fixed by the
// struct, so scrapes are byte-stable for a given counter state.
type metricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      struct {
		Analyze    int64 `json:"analyze"`
		Reschedule int64 `json:"reschedule"`
		Batch      int64 `json:"batch"`
		Jobs       int64 `json:"jobs"`
		Healthz    int64 `json:"healthz"`
		Metrics    int64 `json:"metrics"`
	} `json:"requests"`
	Jobs struct {
		Active    int64 `json:"active"`
		Completed int64 `json:"completed"`
		FrontSize int64 `json:"front_size"`
	} `json:"jobs"`
	Ingest struct {
		JSON int64 `json:"json"`
		Wire int64 `json:"wire"`
	} `json:"ingest"`
	Batch struct {
		Items struct {
			Le1    int64 `json:"le_1"`
			Le10   int64 `json:"le_10"`
			Le100  int64 `json:"le_100"`
			Le1000 int64 `json:"le_1000"`
			Gt1000 int64 `json:"gt_1000"`
			Sum    int64 `json:"sum"`
			Max    int64 `json:"max"`
		} `json:"items"`
		StreamedBytes int64 `json:"streamed_bytes"`
	} `json:"batch"`
	Responses struct {
		Class2xx int64 `json:"2xx"`
		Class4xx int64 `json:"4xx"`
		Class5xx int64 `json:"5xx"`
	} `json:"responses"`
	Shed     int64 `json:"shed"`
	InFlight int64 `json:"in_flight"`
	Queue    struct {
		Depth     int   `json:"depth"`
		Capacity  int   `json:"capacity"`
		Completed int64 `json:"completed"`
	} `json:"queue"`
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Graphs int   `json:"graphs"`
	} `json:"cache"`
	LatencyMs struct {
		P50     float64 `json:"p50"`
		P99     float64 `json:"p99"`
		Samples int64   `json:"samples"`
	} `json:"latency_ms"`
}

// snapshot assembles the scrape body. queueDepth/queueCap/completed/graphs
// are passed in by the server, which owns those structures.
func (m *metrics) snapshot(queueDepth, queueCap int, completed int64, graphs int) ([]byte, error) {
	var s metricsSnapshot
	s.UptimeSeconds = time.Since(m.start).Seconds()
	s.Requests.Analyze = m.analyze.Load()
	s.Requests.Reschedule = m.reschedule.Load()
	s.Requests.Batch = m.batch.Load()
	s.Requests.Jobs = m.jobs.Load()
	s.Requests.Healthz = m.healthz.Load()
	s.Requests.Metrics = m.metricsReqs.Load()
	s.Jobs.Active = m.jobsActive.Load()
	s.Jobs.Completed = m.jobsCompleted.Load()
	s.Jobs.FrontSize = m.jobsFrontSize.Load()
	s.Ingest.JSON = m.ingestJSON.Load()
	s.Ingest.Wire = m.ingestWire.Load()
	m.items.mu.Lock()
	s.Batch.Items.Le1 = m.items.le1
	s.Batch.Items.Le10 = m.items.le10
	s.Batch.Items.Le100 = m.items.le100
	s.Batch.Items.Le1000 = m.items.le1000
	s.Batch.Items.Gt1000 = m.items.gt1000
	s.Batch.Items.Sum = m.items.sum
	s.Batch.Items.Max = m.items.max
	m.items.mu.Unlock()
	s.Batch.StreamedBytes = m.streamedBytes.Load()
	s.Responses.Class2xx = m.resp2xx.Load()
	s.Responses.Class4xx = m.resp4xx.Load()
	s.Responses.Class5xx = m.resp5xx.Load()
	s.Shed = m.shed.Load()
	s.InFlight = m.inFlight.Load()
	s.Queue.Depth = queueDepth
	s.Queue.Capacity = queueCap
	s.Queue.Completed = completed
	s.Cache.Hits = m.cacheHits.Load()
	s.Cache.Misses = m.cacheMisses.Load()
	s.Cache.Graphs = graphs
	s.LatencyMs.P50, s.LatencyMs.P99, s.LatencyMs.Samples = m.quantiles()
	return json.Marshal(&s)
}
