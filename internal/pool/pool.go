// Package pool provides the bounded, deterministic worker pool behind the
// repository's parallel sweeps: the benchmark harness fans (family, size,
// algorithm) points out over it, and the design-space explorer evaluates
// whole swap neighborhoods concurrently.
//
// The pool's contract is what makes parallelism safe to expose in tools
// whose output is diffed byte-for-byte in tests:
//
//   - Deterministic ordering: results are indexed by submission order, never
//     completion order. Map(ctx, 8, n, f) fills results[i] with f(ctx, i) no
//     matter which worker ran it or when it finished.
//   - Bounded concurrency: at most jobs tasks run at once; jobs ≤ 1 degrades
//     to a plain sequential loop in the calling goroutine, so "-jobs 1" is
//     not merely equivalent to the serial code path — it is the serial code
//     path.
//   - Context cancellation: once ctx is canceled, unstarted tasks are never
//     launched and Map returns ctx.Err(). Tasks already running are expected
//     to honor ctx themselves (the schedulers poll Options.Cancel).
//   - Error and panic transparency: the first task error (in submission
//     order, not completion order) is returned after all started tasks have
//     drained; a panicking task re-panics in the caller's goroutine with the
//     original value, so a crash is never silently swallowed by a worker.
//
// The analysis itself stays single-threaded per instance — the incremental
// scheduler's time cursor is inherently sequential — so the pool only ever
// parallelizes across independent instances (sweep points, neighbors,
// annealing chains), which is exactly the granularity where determinism can
// be preserved.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Jobs normalizes a user-supplied -jobs value: values below 1 select
// sequential execution, and 0 is offered to flags as "auto" meaning
// runtime.NumCPU.
func Jobs(n int) int {
	if n == 0 {
		return runtime.NumCPU()
	}
	if n < 1 {
		return 1
	}
	return n
}

// panicError carries a recovered panic value from a worker to the submitting
// goroutine, where it is re-raised.
type panicError struct {
	value any
	stack []byte
}

func (p *panicError) Error() string {
	//mialint:ignore hotpathalloc -- formats a worker panic after the sweep has already failed
	return fmt.Sprintf("pool: task panicked: %v", p.value)
}

// Map runs f(ctx, i) for i in [0, n) on at most jobs concurrent workers and
// returns the results indexed by i (submission order). A task error does not
// stop the sweep — the remaining tasks still run, and the first error by
// index is returned once everything finishes (cancel ctx from inside f for
// fail-fast). When ctx is canceled, unstarted tasks are never launched and
// ctx.Err() is returned unless a task error takes precedence — even when the
// cancellation arrives after every index was handed out, so a canceled sweep
// is never reported as complete. A panic in any task is re-raised in the
// caller's goroutine.
func Map[T any](ctx context.Context, jobs, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return mapIndexed(ctx, jobs, n, func(_, i int) (T, error) {
		return safeCall(ctx, i, f)
	})
}

// MapWith is Map with per-worker mutable state: worker w (of the
// len(states) workers) passes states[w] to every task it executes. Each
// state is owned by exactly one goroutine for the duration of the call, so
// tasks may mutate it freely without synchronization — the idiom behind
// allocation-frugal sweeps where each worker reuses one scratch graph or one
// warm scheduler instead of cloning per task. Which state executes which
// index is scheduling-dependent; determinism therefore requires f's result
// to not depend on the state it ran with (e.g. every state is a clone of the
// same graph), which is exactly the contract the explorer's differential
// tests pin down. len(states) plays the role of jobs: one state means
// sequential execution in the calling goroutine. MapWith panics if states is
// empty and n > 0.
func MapWith[S, T any](ctx context.Context, states []S, n int, f func(ctx context.Context, st S, i int) (T, error)) ([]T, error) {
	if len(states) == 0 && n > 0 {
		panic("pool: MapWith needs at least one worker state")
	}
	return mapIndexed(ctx, len(states), n, func(w, i int) (T, error) {
		return safeCallWith(ctx, states[w], i, f)
	})
}

// mapIndexed is the shared engine of Map and MapWith: it distributes indexes
// [0, n) over min(jobs, n) workers, records results and errors by submission
// index, and hands each execution its worker number.
func mapIndexed[T any](ctx context.Context, jobs, n int, call func(w, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, firstError(errs, err)
			}
			results[i], errs[i] = call(0, i)
		}
		// ctx.Err() rather than nil: a cancellation during the final task
		// tears that task down (it polls ctx) without any index left for the
		// loop check above to refuse, and a canceled sweep must never be
		// reported as complete.
		return results, firstError(errs, ctx.Err())
	}

	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range indexes {
				results[i], errs[i] = call(w, i)
			}
		}(w)
	}
	var ctxErr error
feed:
	for i := 0; i < n; i++ {
		if ctxErr = ctx.Err(); ctxErr != nil {
			break // prompt even when a worker is ready to receive
		}
		select {
		case indexes <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(indexes)
	wg.Wait()
	if ctxErr == nil {
		// The feeder can hand out the last index in the same instant the
		// context is canceled (the select picks the ready send): every task
		// was launched, yet the in-flight ones were torn down by the
		// cancellation. Re-check so a canceled sweep is never reported as
		// complete.
		ctxErr = ctx.Err()
	}
	return results, firstError(errs, ctxErr)
}

// safeCall invokes f, converting a panic into a panicError so that exactly
// one goroutine (the caller of Map) re-raises it.
func safeCall[T any](ctx context.Context, i int, f func(ctx context.Context, i int) (T, error)) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			err = &panicError{value: r, stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	return f(ctx, i)
}

// safeCallWith is safeCall for per-worker-state tasks.
func safeCallWith[S, T any](ctx context.Context, st S, i int, f func(ctx context.Context, st S, i int) (T, error)) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			err = &panicError{value: r, stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	return f(ctx, st, i)
}

// firstError picks the lowest-index task error, re-raising captured panics;
// fallback (typically ctx.Err()) applies only when no task failed.
func firstError(errs []error, fallback error) error {
	for _, err := range errs {
		if err == nil {
			continue
		}
		if pe, ok := err.(*panicError); ok {
			panic(fmt.Sprintf("%v\n\nworker stack:\n%s", pe.value, pe.stack))
		}
		return err
	}
	return fallback
}
