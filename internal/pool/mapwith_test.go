package pool

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// counter is a deliberately unsynchronized per-worker state: any sharing of
// one counter between two goroutines is a data race the -race runs of this
// test would catch.
type counter struct {
	hits int
}

func TestMapWithOrdersResultsBySubmission(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		states := make([]*counter, workers)
		for w := range states {
			states[w] = &counter{}
		}
		got, err := MapWith(context.Background(), states, 50, func(_ context.Context, st *counter, i int) (int, error) {
			st.hits++
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		total := 0
		for _, st := range states {
			total += st.hits
		}
		if total != 50 {
			t.Fatalf("workers=%d: states saw %d tasks, want 50", workers, total)
		}
	}
}

func TestMapWithStateOwnershipIsExclusive(t *testing.T) {
	// Each state records which goroutine-ish token last touched it; a state
	// concurrently owned by two workers would trip the in-flight flag. Under
	// -race, the unsynchronized st.hits increment is an additional tripwire.
	type guarded struct {
		inFlight atomic.Int64
		hits     int
	}
	states := []*guarded{{}, {}, {}, {}}
	_, err := MapWith(context.Background(), states, 200, func(_ context.Context, st *guarded, i int) (struct{}, error) {
		if st.inFlight.Add(1) != 1 {
			t.Error("state shared between concurrent tasks")
		}
		st.hits++
		time.Sleep(50 * time.Microsecond)
		st.inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapWithSingleStateRunsInCallerGoroutine(t *testing.T) {
	// One state must be the serial code path, same as Map with jobs=1.
	var order []int
	st := &counter{}
	_, err := MapWith(context.Background(), []*counter{st}, 10, func(_ context.Context, s *counter, i int) (int, error) {
		order = append(order, i) // safe only if truly sequential
		s.hits++
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
	if st.hits != 10 {
		t.Fatalf("single state saw %d tasks, want 10", st.hits)
	}
}

func TestMapWithRepanicsInCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom-with") {
			t.Fatalf("panic value %q lost original message", r)
		}
	}()
	_, _ = MapWith(context.Background(), []*counter{{}, {}}, 8, func(_ context.Context, _ *counter, i int) (int, error) {
		if i == 5 {
			panic("boom-with")
		}
		return i, nil
	})
}

func TestMapWithEmptyStatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MapWith with no states and n>0 must panic")
		}
	}()
	_, _ = MapWith(context.Background(), []*counter{}, 3, func(_ context.Context, _ *counter, i int) (int, error) {
		return i, nil
	})
}

func TestMapWithZeroTasks(t *testing.T) {
	got, err := MapWith(context.Background(), []*counter{}, 0, func(_ context.Context, _ *counter, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}
