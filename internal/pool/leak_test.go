package pool

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count drops back to the
// baseline (scheduler needs a beat to retire exited goroutines) or the
// deadline passes.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestMapJoinsWorkersOnCancellation pins the join contract of the worker
// goroutines in mapIndexed (the site the ctxflow analyzer audits): even
// when the sweep is canceled mid-flight, Map must not return before every
// worker has exited.
func TestMapJoinsWorkersOnCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	go func() {
		<-started
		cancel()
	}()
	_, err := Map(ctx, 8, 1000, func(ctx context.Context, i int) (int, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		return i, ctx.Err()
	})
	if err == nil {
		t.Log("sweep completed before cancellation; join still asserted")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

// TestRunnerDrainJoinsWorkers pins the join contract of the NewRunner
// worker goroutines: Drain must not return before every worker has exited.
func TestRunnerDrainJoinsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	r := NewRunner([]int{0, 1, 2, 3}, 16)
	for i := 0; i < 64; i++ {
		for !r.TrySubmit(func(int) { time.Sleep(time.Microsecond) }) {
			time.Sleep(time.Microsecond)
		}
	}
	r.Drain()
	waitGoroutines(t, baseline)
}
