package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsBySubmission(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 8, 100} {
		got, err := Map(context.Background(), jobs, 50, func(_ context.Context, i int) (int, error) {
			// Finish in roughly reverse order to stress completion-order
			// independence.
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: results[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), jobs, 64, func(_ context.Context, i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("peak concurrency %d exceeds jobs=%d", p, jobs)
	}
}

func TestMapSequentialRunsInCallerGoroutine(t *testing.T) {
	// jobs ≤ 1 must be the serial code path: strictly in-order, no
	// interleaving possible.
	var order []int
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		order = append(order, i) // safe only if truly sequential
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestMapReturnsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, jobs := range []int{1, 4} {
		_, err := Map(context.Background(), jobs, 20, func(_ context.Context, i int) (int, error) {
			switch i {
			case 7:
				return 0, errB // completes first...
			case 3:
				time.Sleep(time.Millisecond)
				return 0, errA // ...but the lower index wins
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("jobs=%d: err = %v, want errA", jobs, err)
		}
	}
}

func TestMapErrorDoesNotStopSweep(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), 2, 10, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d tasks, want all 10", ran.Load())
	}
}

func TestMapCancellationStopsLaunching(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Map(ctx, 2, 1000, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s > 20 {
		t.Fatalf("%d tasks started after cancellation", s)
	}
}

// TestMapCancellationDuringFinalTasks pins the everything-already-launched
// race: when the cancellation arrives only after every index has been handed
// to a worker, the in-flight tasks are still torn down by the context, so
// Map must report ctx.Err() rather than pass the sweep off as complete (a
// caller flushing partial results would otherwise omit its truncation
// marker).
func TestMapCancellationDuringFinalTasks(t *testing.T) {
	t.Run("sequential", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Map(ctx, 1, 1, func(ctx context.Context, i int) (int, error) {
			cancel() // the only index is in flight; nothing is left to refuse
			<-ctx.Done()
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		_, err := Map(ctx, 2, 2, func(ctx context.Context, i int) (int, error) {
			// Wait for both indexes to be in flight (the feeder has fed
			// everything and closed) before canceling.
			started.Add(1)
			for started.Load() < 2 {
				time.Sleep(10 * time.Microsecond)
			}
			cancel()
			<-ctx.Done()
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

func TestMapCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Map(ctx, jobs, 5, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v", jobs, err)
		}
		if jobs == 1 && ran.Load() != 0 {
			t.Fatalf("sequential path ran %d tasks under canceled ctx", ran.Load())
		}
	}
}

func TestMapRepanicsInCaller(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("jobs=%d: panic swallowed", jobs)
				}
				if !strings.Contains(fmt.Sprint(r), "kaboom") {
					t.Fatalf("jobs=%d: panic value lost: %v", jobs, r)
				}
			}()
			Map(context.Background(), jobs, 8, func(_ context.Context, i int) (int, error) {
				if i == 5 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapSharedStateIsRaceFree(t *testing.T) {
	// Exercised under -race in CI: concurrent writers into distinct result
	// slots plus a shared atomic must not trip the detector.
	var sum atomic.Int64
	got, err := Map(context.Background(), 8, 200, func(_ context.Context, i int) (int, error) {
		sum.Add(int64(i))
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 || sum.Load() != 199*200/2 {
		t.Fatalf("len=%d sum=%d", len(got), sum.Load())
	}
}

func TestJobs(t *testing.T) {
	if Jobs(-1) != 1 || Jobs(1) != 1 || Jobs(7) != 7 {
		t.Error("Jobs normalization broken")
	}
	if Jobs(0) < 1 {
		t.Error("Jobs(0) must resolve to NumCPU ≥ 1")
	}
}
