package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunnerExecutesOnWorkerStates(t *testing.T) {
	type state struct{ id, served int }
	states := []*state{{id: 0}, {id: 1}}
	r := NewRunner(states, 8)
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		ok := r.TrySubmit(func(st *state) {
			defer wg.Done()
			st.served++ // no lock: st is worker-owned
			total.Add(1)
		})
		if !ok {
			wg.Done()
			t.Fatalf("task %d refused with empty-ish queue", i)
		}
		if i%4 == 3 {
			wg.Wait() // keep the queue from filling
		}
	}
	wg.Wait()
	r.Drain()
	if total.Load() != 32 {
		t.Fatalf("served %d of 32 tasks", total.Load())
	}
	if states[0].served+states[1].served != 32 {
		t.Fatalf("per-state tallies %d+%d != 32", states[0].served, states[1].served)
	}
}

func TestRunnerShedsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunner([]int{0}, 1)
	var done sync.WaitGroup
	done.Add(2)
	// First task occupies the single worker; second fills the queue.
	if !r.TrySubmit(func(int) { <-gate; done.Done() }) {
		t.Fatal("first task refused")
	}
	// The worker may not have dequeued the first task yet, so admission of
	// the queue-filling task can race; retry until the queue slot is ours.
	for !r.TrySubmit(func(int) { done.Done() }) {
		time.Sleep(time.Millisecond)
	}
	// Now worker busy + queue full: admission must shed, not block.
	shedAt := time.Now()
	if r.TrySubmit(func(int) { t.Error("shed task ran") }) {
		t.Fatal("third task admitted past a full queue")
	}
	if time.Since(shedAt) > time.Second {
		t.Fatal("TrySubmit blocked instead of shedding")
	}
	close(gate)
	done.Wait()
	r.Drain()
}

func TestRunnerDrainRunsAdmittedTasksAndStopsAdmission(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunner([]int{0}, 4)
	var ran atomic.Int64
	r.TrySubmit(func(int) { <-gate; ran.Add(1) })
	r.TrySubmit(func(int) { ran.Add(1) })
	r.TrySubmit(func(int) { ran.Add(1) })
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()
	r.Drain()
	if got := ran.Load(); got != 3 {
		t.Fatalf("drain ran %d of 3 admitted tasks", got)
	}
	if r.TrySubmit(func(int) { t.Error("post-drain task ran") }) {
		t.Fatal("admission after Drain")
	}
	r.Drain() // idempotent
}

// TestRunnerCompletedCounts: Completed tracks finished tasks only — a task
// still running (or still queued) is not counted, and after Drain the count
// equals everything ever admitted.
func TestRunnerCompletedCounts(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunner([]int{0}, 4)
	if got := r.Completed(); got != 0 {
		t.Fatalf("fresh runner Completed() = %d, want 0", got)
	}
	r.TrySubmit(func(int) { <-gate })
	r.TrySubmit(func(int) {})
	r.TrySubmit(func(int) {})
	if got := r.Completed(); got != 0 {
		t.Fatalf("Completed() = %d while the first task still blocks, want 0", got)
	}
	close(gate)
	r.Drain()
	if got := r.Completed(); got != 3 {
		t.Fatalf("post-drain Completed() = %d, want 3", got)
	}
}

func TestRunnerConcurrentSubmitAndDrain(t *testing.T) {
	r := NewRunner([]int{0, 1, 2, 3}, 16)
	var admitted, ran atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if r.TrySubmit(func(int) { ran.Add(1) }) {
					admitted.Add(1)
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	r.Drain()
	wg.Wait()
	// Everything admitted before/through the drain race must have run.
	if admitted.Load() != ran.Load() {
		t.Fatalf("admitted %d but ran %d", admitted.Load(), ran.Load())
	}
}
