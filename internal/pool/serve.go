package pool

import (
	"sync"
	"sync/atomic"
)

// Runner is the serving-shaped sibling of MapWith: a fixed set of workers,
// each owning one long-lived mutable state, consuming tasks from a bounded
// queue for the lifetime of a service instead of for the span of one batch
// call. It exists for request/response workloads (the analysis server) where
// work arrives continuously, admission must be load-shed rather than
// blocked, and shutdown must drain what was admitted.
//
// The contract mirrors MapWith where it can: each state is owned by exactly
// one goroutine, so tasks mutate it freely without synchronization, and
// which state serves which task is scheduling-dependent. It differs where
// serving demands it: TrySubmit never blocks (a full queue is the caller's
// load-shedding signal), there is no result plumbing (tasks carry their own
// reply channels), and tasks must not panic — a panicking task would kill
// its worker and silently shrink capacity, so servers wrap handlers in their
// own recover.
type Runner[S any] struct {
	queue     chan func(S)
	completed atomic.Int64
	wg        sync.WaitGroup

	mu       sync.Mutex
	draining bool
}

// NewRunner starts len(states) workers consuming from a queue of the given
// capacity. Capacity 0 means tasks are only admitted when a worker is ready
// to receive immediately. NewRunner panics if states is empty — a runner
// with no workers would admit tasks it can never run.
func NewRunner[S any](states []S, capacity int) *Runner[S] {
	if len(states) == 0 {
		panic("pool: NewRunner needs at least one worker state")
	}
	if capacity < 0 {
		capacity = 0
	}
	r := &Runner[S]{queue: make(chan func(S), capacity)}
	for _, st := range states {
		r.wg.Add(1)
		go func(st S) {
			defer r.wg.Done()
			for task := range r.queue {
				task(st)
				r.completed.Add(1)
			}
		}(st)
	}
	return r
}

// TrySubmit enqueues task for execution by some worker. It returns false —
// without blocking — when the queue is full or the runner is draining;
// callers translate that into their load-shedding response. A true return
// guarantees the task will run: Drain executes every admitted task before
// returning.
func (r *Runner[S]) TrySubmit(task func(S)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return false
	}
	select {
	case r.queue <- task:
		return true
	default:
		return false
	}
}

// Queued returns the number of admitted tasks not yet picked up by a worker.
func (r *Runner[S]) Queued() int { return len(r.queue) }

// Completed returns the number of admitted tasks that have finished running.
// With Queued it gives operators the queue's position, not just its depth:
// after Drain returns, Completed equals the number of tasks ever admitted.
func (r *Runner[S]) Completed() int64 { return r.completed.Load() }

// Capacity returns the queue capacity.
func (r *Runner[S]) Capacity() int { return cap(r.queue) }

// Drain stops admission, lets the workers finish every already-admitted
// task, and waits for them to exit. It is idempotent and safe to call
// concurrently with TrySubmit; tasks racing with Drain are either admitted
// (and run) or refused, never lost. Deadline pressure during shutdown is the
// tasks' concern: admitted tasks observing an expired context are expected
// to reply cheaply and return.
func (r *Runner[S]) Drain() {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		close(r.queue)
	}
	r.mu.Unlock()
	r.wg.Wait()
}
