package model

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
)

// RawGraph is the flattened, demand-compiled form of a Graph: every
// scheduling-relevant quantity in dense, task-indexed arrays, per-core
// execution orders in CSR form, and the core→bank assignment as an explicit
// table instead of a function. It is the exchange format between the graph
// layer and the flat consumers of the repository — the binary wire codec
// (internal/wire) and the compiled engine image, whose slab layout it
// mirrors field for field — so a decoded RawGraph can be adopted by an
// image with plain copies, no per-task object graph in between.
//
// Invariants (established by (*Graph).Raw and by wire.Decode, checked by
// Validate): dense arrays all len == NumTasks, Demand is task-major with
// exactly Banks entries per row, OrderStart is a monotone CSR index with
// OrderStart[Cores] == NumTasks, and BankTable has one entry per core.
// Edges preserve their source order — the canonical fingerprint hashes them
// in sequence, so reordering them would change the graph's identity.
type RawGraph struct {
	Cores int
	Banks int

	// Per-task scalars, indexed by TaskID.
	WCET       []Cycles
	MinRelease []Cycles
	Core       []CoreID
	Local      []Accesses

	// Demand is the compiled per-bank access demand, task-major: task id's
	// row is Demand[id*Banks : (id+1)*Banks].
	Demand []Accesses

	// Edges in source order (fingerprint-relevant; see above).
	Edges []Edge

	// Per-core execution orders in CSR form: core k's order is
	// OrderIDs[OrderStart[k]:OrderStart[k+1]].
	OrderStart []int32
	OrderIDs   []TaskID

	// BankTable maps each core to the bank holding its reserved data.
	BankTable []BankID
}

// NumTasks returns the number of tasks.
func (r *RawGraph) NumTasks() int { return len(r.WCET) }

// DemandRow returns task id's per-bank demand row: exactly Banks entries.
//
//mia:hotpath
func (r *RawGraph) DemandRow(id TaskID) []Accesses {
	return r.Demand[int(id)*r.Banks : (int(id)+1)*r.Banks]
}

// Order returns core k's execution order.
//
//mia:hotpath
func (r *RawGraph) Order(k CoreID) []TaskID {
	return r.OrderIDs[r.OrderStart[k]:r.OrderStart[k+1]]
}

// Fingerprint returns the canonical content hash of the flattened graph,
// byte-identical to Graph.Fingerprint on the graph it was flattened from
// (provided that graph's demand rows were compiled to full Banks width, as
// every ingestion path in this repository guarantees). The serialization is
// the one documented on Graph.Fingerprint; keeping the two in lockstep is
// what lets a wire-ingested image share warm-analyzer cache keys with a
// JSON-ingested one.
func (r *RawGraph) Fingerprint() string {
	h := sha256.New()
	r.hashInto(h, nil)
	return hex.EncodeToString(h.Sum(nil))
}

// FingerprintWith returns the fingerprint the graph would have if its
// per-core execution orders were replaced by orders — the RawGraph analogue
// of Graph.FingerprintWithOrders, used by engine images built from wire
// blobs to hash edited order overlays.
func (r *RawGraph) FingerprintWith(orders [][]TaskID) string {
	h := sha256.New()
	r.hashInto(h, orders)
	return hex.EncodeToString(h.Sum(nil))
}

// hashInto feeds the canonical serialization into h. orders == nil means
// "use the CSR orders carried by the RawGraph itself".
func (r *RawGraph) hashInto(h hash.Hash, orders [][]TaskID) {
	r.hashStatic(h)
	if orders != nil {
		hashOrders(h, orders)
	} else {
		putInt(h, int64(r.Cores))
		for k := 0; k < r.Cores; k++ {
			order := r.Order(CoreID(k))
			putInt(h, int64(len(order)))
			for _, id := range order {
				putInt(h, int64(id))
			}
		}
	}
	for k := 0; k < r.Cores; k++ {
		putInt(h, int64(r.BankTable[k]))
	}
}

// hashStatic feeds the order-independent prefix — version, platform shape,
// tasks, edges — matching Graph.hashStatic byte for byte.
func (r *RawGraph) hashStatic(h hash.Hash) {
	putInt(h, fingerprintVersion)
	putInt(h, int64(r.Cores))
	putInt(h, int64(r.Banks))

	n := r.NumTasks()
	putInt(h, int64(n))
	for i := 0; i < n; i++ {
		putInt(h, int64(r.WCET[i]))
		putInt(h, int64(r.Core[i]))
		putInt(h, int64(r.MinRelease[i]))
		putInt(h, int64(r.Local[i]))
		putInt(h, int64(r.Banks)) // row width: rows are always full Banks wide
		for _, d := range r.DemandRow(TaskID(i)) {
			putInt(h, int64(d))
		}
	}

	putInt(h, int64(len(r.Edges)))
	for _, e := range r.Edges {
		putInt(h, int64(e.From))
		putInt(h, int64(e.To))
		putInt(h, int64(e.Words))
	}
}

// OrderHasher returns a reusable overlay fingerprinter for this graph: the
// RawGraph analogue of Graph.OrderHasher, sharing the same frozen-midstate
// mechanics and the same output bytes.
func (r *RawGraph) OrderHasher() *OrderHasher {
	h := sha256.New()
	r.hashStatic(h)
	//mialint:ignore hotpathalloc -- constructor: freezing the midstate allocates by design; hot paths reach it only through the per-image once-guard
	bank := make([]int64, r.Cores)
	for k := range bank {
		bank[k] = int64(r.BankTable[k])
	}
	return newOrderHasher(h, bank)
}

// Raw flattens the graph into its RawGraph form. Demand rows are
// zero-extended to exactly Banks entries; every ingestion path in this
// repository compiles demands to full width before a RawGraph is taken, so
// the extension is a no-op there and the flattened fingerprint matches the
// graph's.
func (g *Graph) Raw() *RawGraph {
	n := len(g.tasks)
	r := &RawGraph{
		Cores:      g.Cores,
		Banks:      g.Banks,
		WCET:       make([]Cycles, n),
		MinRelease: make([]Cycles, n),
		Core:       make([]CoreID, n),
		Local:      make([]Accesses, n),
		Demand:     make([]Accesses, n*g.Banks),
		Edges:      append([]Edge(nil), g.edges...),
		OrderStart: make([]int32, g.Cores+1),
		OrderIDs:   make([]TaskID, 0, n),
		BankTable:  make([]BankID, g.Cores),
	}
	for i, t := range g.tasks {
		r.WCET[i] = t.WCET
		r.MinRelease[i] = t.MinRelease
		r.Core[i] = t.Core
		r.Local[i] = t.Local
		copy(r.Demand[i*g.Banks:(i+1)*g.Banks], t.Demand)
	}
	for k := 0; k < g.Cores; k++ {
		r.OrderIDs = append(r.OrderIDs, g.Order(CoreID(k))...)
		r.OrderStart[k+1] = int32(len(r.OrderIDs))
		r.BankTable[k] = g.BankOf(CoreID(k))
	}
	return r
}

// Graph materializes a full task graph from the flattened form: tasks with
// synthesized names (names are diagnostics, deliberately not carried by the
// flat form), demand rows installed as compiled (no re-derivation from a
// bank policy — the BankTable is the policy, already folded), adjacency
// rebuilt, and the result validated. Every slice is copied, so later
// mutation of the returned graph never reaches the RawGraph's backing
// arrays (which an engine image may have adopted).
func (r *RawGraph) Graph() (*Graph, error) {
	if err := r.shapeError(); err != nil {
		return nil, err
	}
	n := r.NumTasks()
	g := &Graph{Cores: r.Cores, Banks: r.Banks, edges: append([]Edge(nil), r.Edges...)}
	slab := make([]Task, n)
	dem := make([]Accesses, n*r.Banks)
	copy(dem, r.Demand)
	g.tasks = make([]*Task, n)
	for i := 0; i < n; i++ {
		slab[i] = Task{
			ID:         TaskID(i),
			Name:       fmt.Sprintf("n%d", i),
			WCET:       r.WCET[i],
			Core:       r.Core[i],
			MinRelease: r.MinRelease[i],
			Local:      r.Local[i],
			Demand:     dem[i*r.Banks : (i+1)*r.Banks : (i+1)*r.Banks],
		}
		g.tasks[i] = &slab[i]
	}
	g.rebuildAdjacency()
	g.order = make([][]TaskID, r.Cores)
	for k := 0; k < r.Cores; k++ {
		g.order[k] = append([]TaskID(nil), r.Order(CoreID(k))...)
	}
	table := append([]BankID(nil), r.BankTable...)
	banks := r.Banks
	g.bankOf = func(k CoreID) BankID {
		if int(k) < len(table) {
			return table[k]
		}
		return BankID(int(k) % banks)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// shapeError checks the structural container invariants — array lengths
// agree with Cores/Banks/NumTasks and the order CSR is well formed — before
// anything indexes by them. Value-level checks live in Validate.
func (r *RawGraph) shapeError() error {
	n := r.NumTasks()
	if r.Cores < 1 {
		return fmt.Errorf("model: raw graph has %d cores, need at least 1", r.Cores)
	}
	if r.Banks < 1 {
		return fmt.Errorf("model: raw graph has %d banks, need at least 1", r.Banks)
	}
	if len(r.MinRelease) != n || len(r.Core) != n || len(r.Local) != n {
		return fmt.Errorf("model: raw graph per-task arrays disagree on task count")
	}
	if len(r.Demand) != n*r.Banks {
		return fmt.Errorf("model: raw graph demand has %d entries, want %d tasks × %d banks", len(r.Demand), n, r.Banks)
	}
	if len(r.OrderStart) != r.Cores+1 || len(r.OrderIDs) != n {
		return fmt.Errorf("model: raw graph order CSR sized %d/%d, want %d/%d", len(r.OrderStart), len(r.OrderIDs), r.Cores+1, n)
	}
	if r.OrderStart[0] != 0 || r.OrderStart[r.Cores] != int32(n) {
		return fmt.Errorf("model: raw graph order CSR does not span 0..%d", n)
	}
	for k := 0; k < r.Cores; k++ {
		if r.OrderStart[k+1] < r.OrderStart[k] {
			return fmt.Errorf("model: raw graph order CSR decreases at core %d", k)
		}
	}
	if len(r.BankTable) != r.Cores {
		return fmt.Errorf("model: raw graph bank table has %d entries for %d cores", len(r.BankTable), r.Cores)
	}
	return nil
}

// Validate checks the flattened form against every invariant Graph.Validate
// enforces on the assembled form — magnitude bounds (MaxInput, the overflow
// guard), index ranges, acyclicity, and order/mapping consistency — without
// materializing a Graph. wire.Decode runs this on every decoded blob, so a
// wire-ingested image is exactly as vetted as a JSON-ingested one.
func (r *RawGraph) Validate() error {
	if err := r.shapeError(); err != nil {
		return err
	}
	n := r.NumTasks()
	for i := 0; i < n; i++ {
		id := TaskID(i)
		switch {
		case r.WCET[i] < 0:
			return fmt.Errorf("model: %s has negative WCET %d", id, r.WCET[i])
		case r.WCET[i] > MaxInput:
			return fmt.Errorf("model: %s has WCET %d exceeding MaxInput %d (overflow guard)", id, r.WCET[i], int64(MaxInput))
		case r.MinRelease[i] < 0:
			return fmt.Errorf("model: %s has negative minimal release %d", id, r.MinRelease[i])
		case r.MinRelease[i] > MaxInput:
			return fmt.Errorf("model: %s has minimal release %d exceeding MaxInput %d (overflow guard)", id, r.MinRelease[i], int64(MaxInput))
		case r.Local[i] < 0:
			return fmt.Errorf("model: %s has negative local access count %d", id, r.Local[i])
		case r.Local[i] > MaxInput:
			return fmt.Errorf("model: %s has local access count %d exceeding MaxInput %d (overflow guard)", id, r.Local[i], int64(MaxInput))
		case r.Core[i] < 0 || int(r.Core[i]) >= r.Cores:
			return fmt.Errorf("model: %s mapped to core %d, platform has %d cores", id, r.Core[i], r.Cores)
		}
		for b, d := range r.DemandRow(id) {
			if d < 0 {
				return fmt.Errorf("model: %s has negative demand %d on %s", id, d, BankID(b))
			}
			if d > MaxInput {
				return fmt.Errorf("model: %s has demand %d on %s exceeding MaxInput %d (overflow guard)", id, d, BankID(b), int64(MaxInput))
			}
		}
	}
	for _, e := range r.Edges {
		switch {
		case e.From < 0 || int(e.From) >= n:
			return fmt.Errorf("model: edge source %d out of range", e.From)
		case e.To < 0 || int(e.To) >= n:
			return fmt.Errorf("model: edge target %d out of range", e.To)
		case e.From == e.To:
			return fmt.Errorf("model: self-dependency on %s", e.From)
		case e.Words < 0:
			return fmt.Errorf("model: edge %s->%s has negative volume %d", e.From, e.To, e.Words)
		case e.Words > MaxInput:
			return fmt.Errorf("model: edge %s->%s has volume %d exceeding MaxInput %d (overflow guard)", e.From, e.To, e.Words, int64(MaxInput))
		}
	}
	for k := 0; k < r.Cores; k++ {
		if r.BankTable[k] < 0 || int(r.BankTable[k]) >= r.Banks {
			return fmt.Errorf("model: core %d assigned bank %d, platform has %d banks", k, r.BankTable[k], r.Banks)
		}
	}
	if err := r.validateAcyclic(); err != nil {
		return err
	}
	return r.validateOrders()
}

// validateAcyclic runs Kahn's algorithm over the edge list. The Graph form
// delegates this to TopoSort; the flattened form rebuilds the minimal
// adjacency it needs, once, at validation time.
func (r *RawGraph) validateAcyclic() error {
	n := r.NumTasks()
	indeg := make([]int32, n)
	succCount := make([]int32, n)
	for _, e := range r.Edges {
		indeg[e.To]++
		succCount[e.From]++
	}
	succStart := make([]int32, n+1)
	for i := 0; i < n; i++ {
		succStart[i+1] = succStart[i] + succCount[i]
	}
	succ := make([]TaskID, len(r.Edges))
	fill := make([]int32, n)
	for _, e := range r.Edges {
		succ[succStart[e.From]+fill[e.From]] = e.To
		fill[e.From]++
	}
	queue := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range succ[succStart[id]:succStart[id+1]] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("model: dependency graph has a cycle (%d of %d tasks unreachable from sources)", n-seen, seen)
	}
	return nil
}

// validateOrders mirrors Graph.validateOrders on the CSR form: every core's
// order lists exactly the tasks mapped to it, each exactly once, and never
// contradicts a same-core dependency.
func (r *RawGraph) validateOrders() error {
	n := r.NumTasks()
	position := make([]int, n)
	for i := range position {
		position[i] = -1
	}
	total := 0
	for k := 0; k < r.Cores; k++ {
		for pos, id := range r.Order(CoreID(k)) {
			if id < 0 || int(id) >= n {
				return fmt.Errorf("model: order of core %d references unknown task %d", k, id)
			}
			if r.Core[id] != CoreID(k) {
				return fmt.Errorf("model: order of core %d lists %s, which is mapped to core %d", k, id, r.Core[id])
			}
			if position[id] != -1 {
				return fmt.Errorf("model: %s appears twice in execution orders", id)
			}
			position[id] = pos
			total++
		}
	}
	if total != n {
		return fmt.Errorf("model: execution orders cover %d of %d tasks", total, n)
	}
	for _, e := range r.Edges {
		if r.Core[e.From] == r.Core[e.To] && position[e.To] < position[e.From] {
			return fmt.Errorf("model: core %d orders %s before its predecessor %s (certain deadlock)",
				r.Core[e.From], e.To, e.From)
		}
	}
	return nil
}
