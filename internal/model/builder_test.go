package model

import (
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(2, 2)
	a := b.AddTask(TaskSpec{Name: "a", WCET: 10, Core: 0, Local: 5})
	c := b.AddTask(TaskSpec{Name: "c", WCET: 20, Core: 1, MinRelease: 3})
	b.AddEdge(a, c, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d, want 2", g.NumTasks())
	}
	if got := g.Task(a).Name; got != "a" {
		t.Errorf("task a name = %q", got)
	}
	if got := g.Task(c).MinRelease; got != 3 {
		t.Errorf("minRelease = %d, want 3", got)
	}
	if succs := g.Successors(a); len(succs) != 1 || succs[0] != c {
		t.Errorf("Successors(a) = %v, want [c]", succs)
	}
	if preds := g.Predecessors(c); len(preds) != 1 || preds[0] != a {
		t.Errorf("Predecessors(c) = %v, want [a]", preds)
	}
}

func TestBuilderDefaultNames(t *testing.T) {
	b := NewBuilder(1, 1)
	id := b.AddTask(TaskSpec{WCET: 1})
	g := b.MustBuild()
	if got := g.Task(id).Name; got != "n0" {
		t.Errorf("default name = %q, want n0", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
		want  string
	}{
		{"no cores", func() (*Graph, error) { return NewBuilder(0, 1).Build() }, "at least 1 core"},
		{"no banks", func() (*Graph, error) { return NewBuilder(1, 0).Build() }, "at least 1 core"},
		{"negative wcet", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			b.AddTask(TaskSpec{WCET: -1})
			return b.Build()
		}, "negative WCET"},
		{"core out of range", func() (*Graph, error) {
			b := NewBuilder(2, 1)
			b.AddTask(TaskSpec{WCET: 1, Core: 5})
			return b.Build()
		}, "core 5"},
		{"negative min release", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			b.AddTask(TaskSpec{WCET: 1, MinRelease: -2})
			return b.Build()
		}, "negative minimal release"},
		{"negative local", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			b.AddTask(TaskSpec{WCET: 1, Local: -3})
			return b.Build()
		}, "negative local access"},
		{"edge source range", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			id := b.AddTask(TaskSpec{WCET: 1})
			b.AddEdge(5, id, 0)
			return b.Build()
		}, "source"},
		{"edge target range", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			id := b.AddTask(TaskSpec{WCET: 1})
			b.AddEdge(id, 9, 0)
			return b.Build()
		}, "target"},
		{"self edge", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			id := b.AddTask(TaskSpec{WCET: 1})
			b.AddEdge(id, id, 0)
			return b.Build()
		}, "self-dependency"},
		{"negative volume", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			x := b.AddTask(TaskSpec{WCET: 1})
			y := b.AddTask(TaskSpec{WCET: 1})
			b.AddEdge(x, y, -1)
			return b.Build()
		}, "negative write volume"},
		{"cycle", func() (*Graph, error) {
			b := NewBuilder(1, 1)
			x := b.AddTask(TaskSpec{WCET: 1})
			y := b.AddTask(TaskSpec{WCET: 1})
			b.AddEdge(x, y, 0)
			b.AddEdge(y, x, 0)
			return b.Build()
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build()
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddTask(TaskSpec{WCET: -1})         // first error
	b.AddTask(TaskSpec{WCET: 1, Core: 7}) // second error, must not mask the first
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "negative WCET") {
		t.Fatalf("error = %v, want first error (negative WCET)", err)
	}
}

func TestBuilderExplicitOrder(t *testing.T) {
	b := NewBuilder(1, 1)
	x := b.AddTask(TaskSpec{WCET: 1})
	y := b.AddTask(TaskSpec{WCET: 1})
	// No dependency between x and y: order [y, x] is legal.
	b.SetOrder(0, []TaskID{y, x})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	order := g.Order(0)
	if len(order) != 2 || order[0] != y || order[1] != x {
		t.Fatalf("Order(0) = %v, want [y x]", order)
	}
}

func TestBuilderOrderContradictsDependency(t *testing.T) {
	b := NewBuilder(1, 1)
	x := b.AddTask(TaskSpec{WCET: 1})
	y := b.AddTask(TaskSpec{WCET: 1})
	b.AddEdge(x, y, 0)
	b.SetOrder(0, []TaskID{y, x})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error = %v, want same-core deadlock rejection", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid graph")
		}
	}()
	b := NewBuilder(0, 0)
	b.MustBuild()
}

func TestBuilderTopologicalDefaultOrder(t *testing.T) {
	// Diamond on one core: default order must respect dependencies.
	b := NewBuilder(1, 1)
	s := b.AddTask(TaskSpec{WCET: 1})
	m1 := b.AddTask(TaskSpec{WCET: 1})
	m2 := b.AddTask(TaskSpec{WCET: 1})
	e := b.AddTask(TaskSpec{WCET: 1})
	b.AddEdge(s, m1, 0)
	b.AddEdge(s, m2, 0)
	b.AddEdge(m1, e, 0)
	b.AddEdge(m2, e, 0)
	g := b.MustBuild()
	pos := make(map[TaskID]int)
	for i, id := range g.Order(0) {
		pos[id] = i
	}
	if !(pos[s] < pos[m1] && pos[s] < pos[m2] && pos[m1] < pos[e] && pos[m2] < pos[e]) {
		t.Fatalf("default order %v violates dependencies", g.Order(0))
	}
}
