package model

// This file holds the MaxInput-checked arithmetic helpers: the only places
// where two runtime model quantities may be multiplied. Validate bounds
// every externally supplied magnitude to MaxInput (2^40) so that *sums* over
// at most 2^20 tasks stay below Infinity (2^62), but a *product* of two
// bounded quantities can reach 2^80 and silently wrap int64. The helpers
// saturate at Infinity instead: Infinity already means "beyond any
// schedulable horizon", so a saturated bound trips the deadline and
// unschedulability checks exactly like the true (unrepresentable) value
// would, keeping the analysis sound where raw multiplication would make it
// optimistic. The boundedinput analyzer (internal/lint) flags raw products
// of model quantities everywhere else and points here.

// satMul64 multiplies two non-negative int64 quantities, saturating at
// Infinity's numeric value (1<<62 - 1) instead of wrapping.
func satMul64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	const inf = int64(Infinity)
	if a > inf/b {
		return inf
	}
	return a * b
}

// SatMulCycles multiplies two cycle quantities, saturating at Infinity.
// Negative operands (never produced by validated inputs) multiply exactly.
func SatMulCycles(a, b Cycles) Cycles {
	if a < 0 || b < 0 {
		return a * b
	}
	return Cycles(satMul64(int64(a), int64(b)))
}

// SatMulAccesses multiplies two access counts, saturating at Infinity's
// numeric value. Negative operands multiply exactly.
func SatMulAccesses(a, b Accesses) Accesses {
	if a < 0 || b < 0 {
		return a * b
	}
	return Accesses(satMul64(int64(a), int64(b)))
}

// ScaleAccesses converts n shared-memory accesses at perAccess cycles each
// into a cycle count, saturating at Infinity. This is the canonical
// slots·latency step of every arbiter interference bound; MaxInput bounds
// each demand summand, but a competitor *sum* times a large configured
// latency can exceed 2^62, and a wrapped bound would report a tighter
// schedule than the true one.
func ScaleAccesses(n Accesses, perAccess Cycles) Cycles {
	if n < 0 || perAccess < 0 {
		return Cycles(n) * perAccess
	}
	return Cycles(satMul64(int64(n), int64(perAccess)))
}
