package model

import "fmt"

// Builder assembles a Graph incrementally. It is the programmatic entry
// point used by the examples and tests; the random generators in
// internal/gen and the JSON loader are built on top of it.
//
// Usage:
//
//	b := model.NewBuilder(4, 4)
//	n0 := b.AddTask(model.TaskSpec{Name: "n0", WCET: 2, Core: 0})
//	n1 := b.AddTask(model.TaskSpec{Name: "n1", WCET: 2, Core: 1, MinRelease: 2})
//	b.AddEdge(n0, n1, 1)
//	g, err := b.Build()
//
// Build validates the graph, computes the default per-core execution order
// (topological) unless orders were set explicitly, and compiles per-bank
// demands under the builder's bank policy (per-core banks when the platform
// has at least one bank per core, a single shared bank otherwise).
type Builder struct {
	cores int
	banks int

	specs  []TaskSpec
	edges  []Edge
	orders map[CoreID][]TaskID
	bankOf func(CoreID) BankID

	err error // first structural error, reported by Build
}

// NewBuilder returns a Builder for a platform with the given number of cores
// and arbitrated memory banks. Both must be at least 1.
func NewBuilder(cores, banks int) *Builder {
	b := &Builder{cores: cores, banks: banks, orders: make(map[CoreID][]TaskID)}
	if cores < 1 || banks < 1 {
		b.err = fmt.Errorf("model: builder needs at least 1 core and 1 bank, got %d cores, %d banks", cores, banks)
	}
	return b
}

// AddTask records a task and returns its ID. IDs are assigned densely in
// insertion order. Structural problems (negative WCET, core out of range)
// are reported by Build, so call sites can chain AddTask without per-call
// error handling.
func (b *Builder) AddTask(spec TaskSpec) TaskID {
	id := TaskID(len(b.specs))
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("n%d", id)
	}
	if b.err == nil {
		switch {
		case spec.WCET < 0:
			b.err = fmt.Errorf("model: task %q has negative WCET %d", spec.Name, spec.WCET)
		case spec.Core < 0 || int(spec.Core) >= b.cores:
			b.err = fmt.Errorf("model: task %q mapped to core %d, platform has %d cores", spec.Name, spec.Core, b.cores)
		case spec.MinRelease < 0:
			b.err = fmt.Errorf("model: task %q has negative minimal release %d", spec.Name, spec.MinRelease)
		case spec.Local < 0:
			b.err = fmt.Errorf("model: task %q has negative local access count %d", spec.Name, spec.Local)
		}
	}
	b.specs = append(b.specs, spec)
	return id
}

// AddEdge records a dependency: to cannot start before from has finished,
// and from writes words words into to's memory bank.
func (b *Builder) AddEdge(from, to TaskID, words Accesses) {
	if b.err == nil {
		switch {
		case from < 0 || int(from) >= len(b.specs):
			b.err = fmt.Errorf("model: edge source %d out of range", from)
		case to < 0 || int(to) >= len(b.specs):
			b.err = fmt.Errorf("model: edge target %d out of range", to)
		case from == to:
			b.err = fmt.Errorf("model: self-dependency on task %d", from)
		case words < 0:
			b.err = fmt.Errorf("model: edge %d->%d has negative write volume %d", from, to, words)
		}
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Words: words})
}

// SetOrder fixes the execution order of core k explicitly instead of the
// default topological order. The slice must list exactly the tasks mapped to
// k; Build validates this.
func (b *Builder) SetOrder(k CoreID, order []TaskID) {
	b.orders[k] = append([]TaskID(nil), order...)
}

// SetBankPolicy overrides the bank-assignment policy used by the demand
// compiler. The default is BankPerCore when banks >= cores, SharedBank
// otherwise.
func (b *Builder) SetBankPolicy(bankOf func(CoreID) BankID) {
	b.bankOf = bankOf
}

// Build validates the accumulated tasks and edges and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{Cores: b.cores, Banks: b.banks, edges: append([]Edge(nil), b.edges...)}
	g.tasks = make([]*Task, len(b.specs))
	for i, spec := range b.specs {
		g.tasks[i] = &Task{
			ID:         TaskID(i),
			Name:       spec.Name,
			WCET:       spec.WCET,
			Core:       spec.Core,
			MinRelease: spec.MinRelease,
			Local:      spec.Local,
		}
	}
	g.rebuildAdjacency()
	if err := g.defaultOrder(); err != nil {
		return nil, err
	}
	// Apply explicit orders core by core rather than ranging over the map:
	// SetOrder calls are independent per core, but iterating cores in index
	// order keeps Build's entire effect sequence deterministic (and keeps
	// the determinism analyzer's map-range ban hit-free in this package).
	for k := CoreID(0); int(k) < b.cores; k++ {
		if order, ok := b.orders[k]; ok {
			g.SetOrder(k, order)
		}
	}
	policy := b.bankOf
	if policy == nil {
		if b.banks >= b.cores {
			policy = BankPerCore
		} else {
			policy = SharedBank
		}
	}
	g.CompileDemands(policy)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for tests and examples with known-good inputs; it
// panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
