package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation of a task graph, consumed and
// produced by the cmd/ tools. The format is deliberately flat and explicit
// so graphs can be authored by hand or emitted by external toolchains
// (e.g. a dataflow compiler front end).
type graphJSON struct {
	Cores int        `json:"cores"`
	Banks int        `json:"banks"`
	Tasks []taskJSON `json:"tasks"`
	Edges []edgeJSON `json:"edges"`
	// Order optionally fixes the per-core execution order; when omitted the
	// topological default is used. Order[k] lists task IDs for core k.
	Order [][]TaskID `json:"order,omitempty"`
	// BankPolicy selects the demand-compilation policy: "perCore" (default
	// when banks >= cores), "shared", or "striped".
	BankPolicy string `json:"bankPolicy,omitempty"`
}

type taskJSON struct {
	ID         TaskID   `json:"id"`
	Name       string   `json:"name,omitempty"`
	WCET       Cycles   `json:"wcet"`
	Core       CoreID   `json:"core"`
	MinRelease Cycles   `json:"minRelease,omitempty"`
	Local      Accesses `json:"local,omitempty"`
}

type edgeJSON struct {
	From  TaskID   `json:"from"`
	To    TaskID   `json:"to"`
	Words Accesses `json:"words"`
}

// WriteJSON serializes the graph to w in the documented JSON format.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := graphJSON{Cores: g.Cores, Banks: g.Banks, Order: g.order}
	for _, t := range g.tasks {
		out.Tasks = append(out.Tasks, taskJSON{
			ID: t.ID, Name: t.Name, WCET: t.WCET, Core: t.Core,
			MinRelease: t.MinRelease, Local: t.Local,
		})
	}
	for _, e := range g.edges {
		out.Edges = append(out.Edges, edgeJSON{From: e.From, To: e.To, Words: e.Words})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a graph from r, validates it, and compiles demands. Tasks
// may appear in any order but their IDs must form the dense range 0..n-1.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in graphJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("model: parsing graph JSON: %w", err)
	}
	specs := make([]TaskSpec, len(in.Tasks))
	seen := make([]bool, len(in.Tasks))
	for _, t := range in.Tasks {
		if t.ID < 0 || int(t.ID) >= len(in.Tasks) {
			return nil, fmt.Errorf("model: task ID %d outside dense range 0..%d", t.ID, len(in.Tasks)-1)
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("model: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
		specs[t.ID] = TaskSpec{Name: t.Name, WCET: t.WCET, Core: t.Core, MinRelease: t.MinRelease, Local: t.Local}
	}
	b := NewBuilder(in.Cores, in.Banks)
	for _, spec := range specs {
		b.AddTask(spec)
	}
	for _, e := range in.Edges {
		b.AddEdge(e.From, e.To, e.Words)
	}
	if len(in.Order) > in.Cores {
		return nil, fmt.Errorf("model: %d order lists for %d cores", len(in.Order), in.Cores)
	}
	for k, order := range in.Order {
		b.SetOrder(CoreID(k), order)
	}
	switch in.BankPolicy {
	case "", "default":
		// Builder default.
	case "shared":
		b.SetBankPolicy(SharedBank)
	case "perCore":
		b.SetBankPolicy(BankPerCore)
	case "striped":
		b.SetBankPolicy(StripedBanks(in.Banks))
	default:
		return nil, fmt.Errorf("model: unknown bank policy %q (want shared, perCore or striped)", in.BankPolicy)
	}
	return b.Build()
}
