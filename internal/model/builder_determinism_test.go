package model

import (
	"reflect"
	"testing"
)

// buildOrdered constructs a multi-core graph with explicit, non-default
// execution orders on every core — the path that used to apply orders by
// ranging over the builder's map.
func buildOrdered(t *testing.T) *Graph {
	t.Helper()
	const cores = 8
	b := NewBuilder(cores, cores)
	var ids [cores][2]TaskID
	for c := 0; c < cores; c++ {
		ids[c][0] = b.AddTask(TaskSpec{WCET: 2, Core: CoreID(c)})
		ids[c][1] = b.AddTask(TaskSpec{WCET: 3, Core: CoreID(c)})
	}
	for c := 0; c < cores; c++ {
		// Reverse of insertion order, so the explicit order is observable
		// against the default topological one.
		b.SetOrder(CoreID(c), []TaskID{ids[c][1], ids[c][0]})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestBuildAppliesOrdersDeterministically is the regression test for the
// determinism fix in Builder.Build: explicit per-core orders are applied in
// core-index order, never by map iteration, so repeated builds of the same
// spec produce byte-identical graphs (the warm-start differential suites
// compare schedules across runs and depend on this).
func TestBuildAppliesOrdersDeterministically(t *testing.T) {
	ref := buildOrdered(t)
	refPrint := ref.Fingerprint()
	for i := 0; i < 50; i++ {
		g := buildOrdered(t)
		if fp := g.Fingerprint(); fp != refPrint {
			t.Fatalf("build %d: graph fingerprint %s differs from reference %s", i, fp, refPrint)
		}
		for c := CoreID(0); int(c) < g.Cores; c++ {
			if !reflect.DeepEqual(g.Order(c), ref.Order(c)) {
				t.Fatalf("build %d: core %d order %v differs from reference %v", i, c, g.Order(c), ref.Order(c))
			}
		}
	}
}
