package model

import (
	"testing"
	"testing/quick"
)

// twoCoreGraph: producer on core 0 writes 7 words to consumer on core 1,
// with local access counts 5 and 3.
func twoCoreGraph(t testing.TB, banks int, policy func(CoreID) BankID) *Graph {
	t.Helper()
	b := NewBuilder(2, banks)
	p := b.AddTask(TaskSpec{Name: "p", WCET: 10, Core: 0, Local: 5})
	c := b.AddTask(TaskSpec{Name: "c", WCET: 10, Core: 1, Local: 3})
	b.AddEdge(p, c, 7)
	if policy != nil {
		b.SetBankPolicy(policy)
	}
	return b.MustBuild()
}

func TestCompileDemandsPerCore(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	p, c := g.Task(0), g.Task(1)
	// Producer: 5 local on bank 0, 7 written into consumer's bank 1.
	if p.Demand[0] != 5 || p.Demand[1] != 7 {
		t.Errorf("producer demand = %v, want [5 7]", p.Demand)
	}
	// Consumer: 3 local on bank 1 only.
	if c.Demand[0] != 0 || c.Demand[1] != 3 {
		t.Errorf("consumer demand = %v, want [0 3]", c.Demand)
	}
}

func TestCompileDemandsShared(t *testing.T) {
	g := twoCoreGraph(t, 1, nil) // one bank forces SharedBank default
	p, c := g.Task(0), g.Task(1)
	if p.Demand[0] != 12 { // 5 local + 7 written
		t.Errorf("producer demand = %v, want [12]", p.Demand)
	}
	if c.Demand[0] != 3 {
		t.Errorf("consumer demand = %v, want [3]", c.Demand)
	}
}

func TestCompileDemandsPolicyWraparound(t *testing.T) {
	// A policy returning out-of-range banks must be folded modulo Banks.
	g := twoCoreGraph(t, 2, func(k CoreID) BankID { return BankID(int(k) + 10) })
	p := g.Task(0)
	// Core 0 -> bank 10 mod 2 = 0; core 1 -> bank 11 mod 2 = 1.
	if p.Demand[0] != 5 || p.Demand[1] != 7 {
		t.Errorf("producer demand = %v, want [5 7]", p.Demand)
	}
}

func TestRecompileDemands(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	g.CompileDemands(SharedBank)
	p := g.Task(0)
	if p.Demand[0] != 12 || p.Demand[1] != 0 {
		t.Errorf("recompiled demand = %v, want [12 0]", p.Demand)
	}
	if g.BankOf(1) != 0 {
		t.Errorf("BankOf(1) = %v after recompilation, want bank0", g.BankOf(1))
	}
}

func TestStripedBanks(t *testing.T) {
	policy := StripedBanks(3)
	for k, want := range map[CoreID]BankID{0: 0, 1: 1, 2: 2, 3: 0, 4: 1} {
		if got := policy(k); got != want {
			t.Errorf("striped(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestSharedBanksAndInterferes(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	p, c := g.Task(0), g.Task(1)
	banks := SharedBanks(p, c)
	if len(banks) != 1 || banks[0] != 1 {
		t.Errorf("SharedBanks = %v, want [1]", banks)
	}
	if !Interferes(p, c) {
		t.Error("producer and consumer on different cores sharing bank 1 must interfere")
	}
	// Same-core tasks never interfere.
	p2 := &Task{ID: 2, Core: p.Core, Demand: p.Demand}
	if Interferes(p, p2) {
		t.Error("same-core tasks reported as interfering")
	}
}

func TestInterferesDisjointBanks(t *testing.T) {
	a := &Task{ID: 0, Core: 0, Demand: []Accesses{4, 0}}
	b := &Task{ID: 1, Core: 1, Demand: []Accesses{0, 4}}
	if Interferes(a, b) {
		t.Error("tasks with disjoint banks reported as interfering")
	}
	if got := SharedBanks(a, b); len(got) != 0 {
		t.Errorf("SharedBanks = %v, want empty", got)
	}
}

func TestInterferesMismatchedDemandLengths(t *testing.T) {
	a := &Task{ID: 0, Core: 0, Demand: []Accesses{1}}
	b := &Task{ID: 1, Core: 1, Demand: []Accesses{1, 5}}
	if !Interferes(a, b) {
		t.Error("tasks sharing bank 0 must interfere despite demand-vector length mismatch")
	}
	if !b.AccessesBank(1) || a.AccessesBank(1) {
		t.Error("AccessesBank out-of-range handling wrong")
	}
}

func TestTotalDemand(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	if got := g.Task(0).TotalDemand(); got != 12 {
		t.Errorf("TotalDemand = %d, want 12", got)
	}
	var empty Task
	if empty.TotalDemand() != 0 {
		t.Error("TotalDemand of demandless task must be 0")
	}
}

func TestDemandConservationProperty(t *testing.T) {
	// Property: total compiled demand equals total local accesses plus total
	// edge volumes, for any bank policy.
	check := func(seed uint8, shared bool) bool {
		n := 3 + int(seed)%10
		b := NewBuilder(4, 4)
		var wantTotal Accesses
		for i := 0; i < n; i++ {
			local := Accesses(int(seed)%7 + i)
			wantTotal += local
			b.AddTask(TaskSpec{WCET: 1, Core: CoreID(i % 4), Local: local})
		}
		for i := 0; i+1 < n; i++ {
			words := Accesses(i % 5)
			wantTotal += words
			b.AddEdge(TaskID(i), TaskID(i+1), words)
		}
		if shared {
			b.SetBankPolicy(SharedBank)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var got Accesses
		for _, task := range g.Tasks() {
			got += task.TotalDemand()
		}
		return got == wantTotal
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
