package model_test

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
)

// rawTestGraphs returns a labeled spread of graphs covering both bank
// policies, multiple platform shapes, and the hand-written paper figures.
func rawTestGraphs(t *testing.T) map[string]*model.Graph {
	t.Helper()
	graphs := map[string]*model.Graph{
		"figure1":  gen.Figure1(),
		"figure2":  gen.Figure2(),
		"avionics": gen.Avionics(),
	}
	shapes := []struct {
		name   string
		layers int
		size   int
		cores  int
		banks  int
		shared bool
	}{
		{"ls8x4", 8, 4, 4, 4, false},
		{"ls6x8", 6, 8, 8, 8, false},
		{"nl4x12", 4, 12, 4, 1, true},
		{"nl6x10", 6, 10, 16, 16, false},
	}
	for _, s := range shapes {
		p := gen.NewParams(s.layers, s.size)
		p.Cores, p.Banks, p.SharedBank = s.cores, s.banks, s.shared
		p.Seed = int64(31 + s.layers*s.size)
		graphs[s.name] = gen.MustLayered(p)
	}
	return graphs
}

func TestRawFingerprintMatchesGraph(t *testing.T) {
	for name, g := range rawTestGraphs(t) {
		r := g.Raw()
		if got, want := r.Fingerprint(), g.Fingerprint(); got != want {
			t.Errorf("%s: raw fingerprint %s, graph fingerprint %s", name, got, want)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("%s: raw of valid graph fails Validate: %v", name, err)
		}
	}
}

func TestRawGraphRoundTrip(t *testing.T) {
	for name, g := range rawTestGraphs(t) {
		back, err := g.Raw().Graph()
		if err != nil {
			t.Fatalf("%s: Raw().Graph(): %v", name, err)
		}
		if got, want := back.Fingerprint(), g.Fingerprint(); got != want {
			t.Errorf("%s: round-tripped fingerprint %s, want %s", name, got, want)
		}
		if got, want := back.NumTasks(), g.NumTasks(); got != want {
			t.Errorf("%s: round-tripped %d tasks, want %d", name, got, want)
		}
		for k := 0; k < g.Cores; k++ {
			if got, want := back.BankOf(model.CoreID(k)), g.BankOf(model.CoreID(k)); got != want {
				t.Errorf("%s: core %d bank %d after round trip, want %d", name, k, got, want)
			}
		}
	}
}

func TestRawFingerprintWithMatchesGraphOrders(t *testing.T) {
	for name, g := range rawTestGraphs(t) {
		r := g.Raw()
		// Build an explicit order overlay identical to the graph's own
		// orders; FingerprintWith on it must match both fingerprints.
		orders := make([][]model.TaskID, g.Cores)
		for k := range orders {
			orders[k] = append([]model.TaskID(nil), g.Order(model.CoreID(k))...)
		}
		if got, want := r.FingerprintWith(orders), g.FingerprintWithOrders(orders); got != want {
			t.Errorf("%s: FingerprintWith %s, graph FingerprintWithOrders %s", name, got, want)
		}
		// A swapped overlay must change the hash and still agree between
		// the two implementations.
		swapped := false
		for k := range orders {
			if len(orders[k]) >= 2 {
				orders[k][0], orders[k][1] = orders[k][1], orders[k][0]
				swapped = true
				break
			}
		}
		if !swapped {
			continue
		}
		got, want := r.FingerprintWith(orders), g.FingerprintWithOrders(orders)
		if got != want {
			t.Errorf("%s: swapped FingerprintWith %s, graph %s", name, got, want)
		}
		if got == g.Fingerprint() {
			t.Errorf("%s: swapped overlay fingerprint did not change", name)
		}
	}
}

// TestOrderHasherMatchesFingerprint pins the frozen-midstate fast path:
// OrderHasher.Sum must be byte-identical to FingerprintWithOrders /
// FingerprintWith for baseline and edited overlays, on both graph forms,
// and a hasher must stay reusable across many Sum calls.
func TestOrderHasherMatchesFingerprint(t *testing.T) {
	for name, g := range rawTestGraphs(t) {
		r := g.Raw()
		gh, rh := g.OrderHasher(), r.OrderHasher()
		orders := make([][]model.TaskID, g.Cores)
		for k := range orders {
			orders[k] = append([]model.TaskID(nil), g.Order(model.CoreID(k))...)
		}
		for round := 0; round < 3; round++ {
			want := g.FingerprintWithOrders(orders)
			if got := gh.Sum(orders); got != want {
				t.Errorf("%s round %d: graph OrderHasher %s, want %s", name, round, got, want)
			}
			if got := rh.Sum(orders); got != want {
				t.Errorf("%s round %d: raw OrderHasher %s, want %s", name, round, got, want)
			}
			if round == 0 && want != g.Fingerprint() {
				t.Errorf("%s: baseline overlay hash %s differs from Fingerprint %s", name, want, g.Fingerprint())
			}
			// Mutate the overlay for the next round: swap the first core
			// with at least two tasks.
			for k := range orders {
				if len(orders[k]) >= 2 {
					orders[k][0], orders[k][1] = orders[k][1], orders[k][0]
					break
				}
			}
		}
	}
}

// TestRawGraphCopies verifies mutation isolation in both directions: Raw()
// does not alias the graph, and Graph() does not alias the RawGraph.
func TestRawGraphCopies(t *testing.T) {
	g := gen.Figure1()
	r := g.Raw()
	fp := g.Fingerprint()

	r.WCET[0] += 17
	r.OrderIDs[0], r.OrderIDs[1] = r.OrderIDs[1], r.OrderIDs[0]
	if g.Fingerprint() != fp {
		t.Fatalf("mutating RawGraph changed the source graph")
	}

	r2 := g.Raw()
	back, err := r2.Graph()
	if err != nil {
		t.Fatalf("Graph(): %v", err)
	}
	back.Task(0).WCET += 29
	for k := 0; k < back.Cores; k++ {
		if len(back.Order(model.CoreID(k))) >= 2 {
			back.SwapOrder(model.CoreID(k), 0)
			break
		}
	}
	if got := r2.Fingerprint(); got != fp {
		t.Fatalf("mutating materialized graph changed the RawGraph: %s != %s", got, fp)
	}
}

func TestRawValidateRejects(t *testing.T) {
	base := func() *model.RawGraph { return gen.Figure1().Raw() }
	cases := []struct {
		name   string
		break_ func(*model.RawGraph)
		want   string
	}{
		{"wcet overflow", func(r *model.RawGraph) { r.WCET[0] = model.MaxInput + 1 }, "MaxInput"},
		{"negative wcet", func(r *model.RawGraph) { r.WCET[0] = -1 }, "negative WCET"},
		{"release overflow", func(r *model.RawGraph) { r.MinRelease[0] = model.MaxInput + 1 }, "MaxInput"},
		{"local overflow", func(r *model.RawGraph) { r.Local[0] = model.MaxInput + 1 }, "MaxInput"},
		{"demand overflow", func(r *model.RawGraph) { r.Demand[0] = model.MaxInput + 1 }, "MaxInput"},
		{"negative demand", func(r *model.RawGraph) { r.Demand[0] = -3 }, "negative demand"},
		{"core out of range", func(r *model.RawGraph) { r.Core[0] = model.CoreID(r.Cores) }, "platform has"},
		{"edge volume overflow", func(r *model.RawGraph) { r.Edges[0].Words = model.MaxInput + 1 }, "MaxInput"},
		{"edge self-loop", func(r *model.RawGraph) { r.Edges[0].To = r.Edges[0].From }, "self-dependency"},
		{"edge target range", func(r *model.RawGraph) { r.Edges[0].To = model.TaskID(r.NumTasks()) }, "out of range"},
		{"bank table range", func(r *model.RawGraph) { r.BankTable[0] = model.BankID(r.Banks) }, "platform has"},
		{"cycle", func(r *model.RawGraph) {
			e := r.Edges[0]
			r.Edges = append(r.Edges, model.Edge{From: e.To, To: e.From})
		}, "cycle"},
		{"order duplicate", func(r *model.RawGraph) {
			for k := 0; k < r.Cores; k++ {
				if s, e := r.OrderStart[k], r.OrderStart[k+1]; e-s >= 2 {
					r.OrderIDs[s+1] = r.OrderIDs[s]
					return
				}
			}
		}, "twice"},
		{"order csr span", func(r *model.RawGraph) { r.OrderStart[r.Cores] = 0 }, "span"},
		{"demand length", func(r *model.RawGraph) { r.Demand = r.Demand[:len(r.Demand)-1] }, "demand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := base()
			tc.break_(r)
			err := r.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRawValidateAgreesWithGraphValidate feeds the same broken value through
// both validators: whatever RawGraph.Validate rejects on the flat form,
// Graph.Validate must also reject after materialization (and vice versa for
// the accepted baseline) — the wire decoder's vetting must be exactly as
// strict as the JSON path's.
func TestRawValidateAgreesWithGraphValidate(t *testing.T) {
	r := gen.Figure2().Raw()
	if err := r.Validate(); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	r.WCET[2] = model.MaxInput + 1
	if err := r.Validate(); err == nil {
		t.Fatal("raw Validate accepted past-MaxInput WCET")
	}
	if _, err := r.Graph(); err == nil {
		t.Fatal("Graph() materialized a graph with past-MaxInput WCET")
	}
}
