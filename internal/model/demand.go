package model

// Bank-assignment policies map cores to the memory bank holding their
// reserved data. The paper (Section IV.A) notes that the shared memory "may
// have distinct arbitrated banks reserved for each core to minimize
// interference"; the two standard policies below cover the evaluated
// configurations, and callers may supply any custom function.

// SharedBank maps every core to bank 0: all tasks compete on a single
// arbitrated bank, the maximal-interference configuration.
func SharedBank(CoreID) BankID { return 0 }

// BankPerCore reserves bank k for core k. It requires Banks >= Cores; the
// demand compiler wraps around otherwise.
func BankPerCore(k CoreID) BankID { return BankID(k) }

// StripedBanks returns a policy mapping core k to bank k mod banks, the
// generalization of BankPerCore to platforms with fewer banks than cores.
func StripedBanks(banks int) func(CoreID) BankID {
	return func(k CoreID) BankID { return BankID(int(k) % banks) }
}

// CompileDemands fills every task's per-bank demand vector from the graph's
// local access counts and communication edges, under the given
// bank-assignment policy:
//
//   - a task's Local accesses are charged to the bank of its own core
//     (its code and private data live there);
//   - for every edge τ→τ', the Words written by the producer are charged to
//     τ's demand on the *consumer's* bank, since the producer pushes its
//     output into the consumer's reserved bank (the write counts shown on
//     the DAG edges of the paper's Figure 1).
//
// The policy's results are folded modulo the graph's bank count so that any
// policy is safe on any platform. CompileDemands may be called again to
// re-derive demands under a different policy.
func (g *Graph) CompileDemands(bankOf func(CoreID) BankID) {
	if bankOf == nil {
		bankOf = SharedBank
	}
	g.bankOf = func(k CoreID) BankID {
		return BankID(int(bankOf(k)) % g.Banks)
	}
	for _, t := range g.tasks {
		t.Demand = make([]Accesses, g.Banks)
		t.Demand[g.bankOf(t.Core)] += t.Local
	}
	for _, e := range g.edges {
		src := g.tasks[e.From]
		dstBank := g.bankOf(g.tasks[e.To].Core)
		src.Demand[dstBank] += e.Words
	}
}

// SharedBanks returns the banks on which both a and b have non-zero demand.
// Two tasks can only interfere on such banks, and never when mapped to the
// same core (a core's accesses are serialized by its own pipeline).
func SharedBanks(a, b *Task) []BankID {
	var banks []BankID
	n := len(a.Demand)
	if len(b.Demand) < n {
		n = len(b.Demand)
	}
	for bank := 0; bank < n; bank++ {
		if a.Demand[bank] > 0 && b.Demand[bank] > 0 {
			banks = append(banks, BankID(bank))
		}
	}
	return banks
}

// Interferes reports whether tasks a and b can interfere at all: they are
// mapped to different cores and access at least one common bank.
func Interferes(a, b *Task) bool {
	if a.Core == b.Core {
		return false
	}
	n := len(a.Demand)
	if len(b.Demand) < n {
		n = len(b.Demand)
	}
	for bank := 0; bank < n; bank++ {
		if a.Demand[bank] > 0 && b.Demand[bank] > 0 {
			return true
		}
	}
	return false
}
