package model

import "fmt"

// Validate checks every structural invariant the schedulers rely on:
//
//   - platform sanity: at least one core and one bank;
//   - task sanity: dense IDs, non-negative WCETs, minimal releases and
//     demands, cores in range;
//   - magnitude sanity: WCETs, minimal releases, demands and edge volumes
//     do not exceed MaxInput, so accumulated release dates and interference
//     terms cannot overflow int64 arithmetic (see MaxInput);
//   - edge sanity: endpoints in range, no self-loops, non-negative volumes;
//   - the dependency graph is acyclic;
//   - every core's execution order lists exactly the tasks mapped to it,
//     each exactly once;
//   - per-core orders do not contradict same-core dependencies (a task
//     ordered before one of its same-core predecessors can never start:
//     a guaranteed deadlock, rejected here rather than at scheduling time).
//
// Cross-core order/dependency deadlocks (a cycle alternating DAG edges and
// order edges across cores) are NOT rejected here — detecting them is
// exactly what the schedulers' deadlock checks do, and both report
// ErrDeadlock with a diagnostic.
func (g *Graph) Validate() error {
	if g.Cores < 1 {
		return fmt.Errorf("model: graph has %d cores, need at least 1", g.Cores)
	}
	if g.Banks < 1 {
		return fmt.Errorf("model: graph has %d banks, need at least 1", g.Banks)
	}
	for i, t := range g.tasks {
		switch {
		case t == nil:
			return fmt.Errorf("model: nil task at index %d", i)
		case t.ID != TaskID(i):
			return fmt.Errorf("model: task at index %d has ID %d", i, t.ID)
		case t.WCET < 0:
			return fmt.Errorf("model: %s has negative WCET %d", t.ID, t.WCET)
		case t.WCET > MaxInput:
			return fmt.Errorf("model: %s has WCET %d exceeding MaxInput %d (overflow guard)", t.ID, t.WCET, int64(MaxInput))
		case t.MinRelease < 0:
			return fmt.Errorf("model: %s has negative minimal release %d", t.ID, t.MinRelease)
		case t.MinRelease > MaxInput:
			return fmt.Errorf("model: %s has minimal release %d exceeding MaxInput %d (overflow guard)", t.ID, t.MinRelease, int64(MaxInput))
		case t.Core < 0 || int(t.Core) >= g.Cores:
			return fmt.Errorf("model: %s mapped to core %d, platform has %d cores", t.ID, t.Core, g.Cores)
		case len(t.Demand) > g.Banks:
			return fmt.Errorf("model: %s has demand on %d banks, platform has %d", t.ID, len(t.Demand), g.Banks)
		}
		for b, d := range t.Demand {
			if d < 0 {
				return fmt.Errorf("model: %s has negative demand %d on %s", t.ID, d, BankID(b))
			}
			if d > MaxInput {
				return fmt.Errorf("model: %s has demand %d on %s exceeding MaxInput %d (overflow guard)", t.ID, d, BankID(b), int64(MaxInput))
			}
		}
	}
	for _, e := range g.edges {
		switch {
		case e.From < 0 || int(e.From) >= len(g.tasks):
			return fmt.Errorf("model: edge source %d out of range", e.From)
		case e.To < 0 || int(e.To) >= len(g.tasks):
			return fmt.Errorf("model: edge target %d out of range", e.To)
		case e.From == e.To:
			return fmt.Errorf("model: self-dependency on %s", e.From)
		case e.Words < 0:
			return fmt.Errorf("model: edge %s->%s has negative volume %d", e.From, e.To, e.Words)
		case e.Words > MaxInput:
			return fmt.Errorf("model: edge %s->%s has volume %d exceeding MaxInput %d (overflow guard)", e.From, e.To, e.Words, int64(MaxInput))
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return g.validateOrders()
}

func (g *Graph) validateOrders() error {
	if len(g.order) != g.Cores {
		return fmt.Errorf("model: execution orders cover %d cores, platform has %d", len(g.order), g.Cores)
	}
	position := make([]int, len(g.tasks)) // position on its core's order, -1 = unseen
	for i := range position {
		position[i] = -1
	}
	total := 0
	for k, order := range g.order {
		for pos, id := range order {
			if id < 0 || int(id) >= len(g.tasks) {
				return fmt.Errorf("model: order of core %d references unknown task %d", k, id)
			}
			t := g.tasks[id]
			if t.Core != CoreID(k) {
				return fmt.Errorf("model: order of core %d lists %s, which is mapped to core %d", k, t.ID, t.Core)
			}
			if position[id] != -1 {
				return fmt.Errorf("model: %s appears twice in execution orders", t.ID)
			}
			position[id] = pos
			total++
		}
	}
	if total != len(g.tasks) {
		return fmt.Errorf("model: execution orders cover %d of %d tasks", total, len(g.tasks))
	}
	// Same-core dependency vs order consistency.
	for _, e := range g.edges {
		from, to := g.tasks[e.From], g.tasks[e.To]
		if from.Core == to.Core && position[e.To] < position[e.From] {
			return fmt.Errorf("model: core %d orders %s before its predecessor %s (certain deadlock)",
				from.Core, to.ID, from.ID)
		}
	}
	return nil
}
