package model

import (
	"strings"
	"testing"
)

func TestCloneIsDeep(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	c := g.Clone()
	c.Task(0).WCET = 999
	c.Task(0).Demand[0] = 999
	c.SetOrder(0, []TaskID{0})
	if g.Task(0).WCET == 999 {
		t.Error("Clone shares task structs")
	}
	if g.Task(0).Demand[0] == 999 {
		t.Error("Clone shares demand slices")
	}
	if c.NumTasks() != g.NumTasks() || len(c.Edges()) != len(g.Edges()) {
		t.Error("Clone lost structure")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone validation: %v", err)
	}
}

func TestStats(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	s := g.Stats()
	if s.Tasks != 2 || s.Edges != 1 || s.Cores != 2 || s.Banks != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.TotalWCET != 20 {
		t.Errorf("TotalWCET = %d, want 20", s.TotalWCET)
	}
	if s.MaxDegree != 1 {
		t.Errorf("MaxDegree = %d, want 1", s.MaxDegree)
	}
}

func TestMaxMinRelease(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddTask(TaskSpec{WCET: 1, MinRelease: 3})
	b.AddTask(TaskSpec{WCET: 1, MinRelease: 9})
	g := b.MustBuild()
	if got := g.MaxMinRelease(); got != 9 {
		t.Errorf("MaxMinRelease = %d, want 9", got)
	}
}

func TestStringers(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	if s := g.String(); !strings.Contains(s, "tasks=2") {
		t.Errorf("Graph.String = %q", s)
	}
	if s := g.Task(0).String(); !strings.Contains(s, "τ0") || !strings.Contains(s, `"p"`) {
		t.Errorf("Task.String = %q", s)
	}
	if TaskID(3).String() != "τ3" || NoTask.String() != "τ?" {
		t.Error("TaskID.String wrong")
	}
	if CoreID(2).String() != "PE2" {
		t.Error("CoreID.String wrong")
	}
	if BankID(1).String() != "bank1" {
		t.Error("BankID.String wrong")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	fresh := func(t *testing.T) *Graph { return twoCoreGraph(t, 2, BankPerCore) }

	t.Run("id mismatch", func(t *testing.T) {
		g := fresh(t)
		g.tasks[0].ID = 5
		if err := g.Validate(); err == nil {
			t.Fatal("corrupted ID not detected")
		}
	})
	t.Run("order missing task", func(t *testing.T) {
		g := fresh(t)
		g.order[0] = nil
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cover") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("order duplicate", func(t *testing.T) {
		g := fresh(t)
		g.order[0] = []TaskID{0, 0}
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("order wrong core", func(t *testing.T) {
		g := fresh(t)
		g.order[0] = []TaskID{1}
		g.order[1] = []TaskID{0}
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "mapped to core") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("negative demand", func(t *testing.T) {
		g := fresh(t)
		g.tasks[0].Demand[0] = -1
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "negative demand") {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestValidateRejectsOverflowMagnitudes pins the MaxInput overflow guard:
// huge-but-finite magnitudes (which JSON can carry even though NaN/Inf
// cannot) must be rejected before the schedulers accumulate them into int64
// overflow. Values exactly at the bound stay legal.
func TestValidateRejectsOverflowMagnitudes(t *testing.T) {
	fresh := func(t *testing.T) *Graph { return twoCoreGraph(t, 2, BankPerCore) }
	over := Cycles(MaxInput) + 1

	t.Run("wcet", func(t *testing.T) {
		g := fresh(t)
		g.tasks[0].WCET = over
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "MaxInput") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("min release", func(t *testing.T) {
		g := fresh(t)
		g.tasks[0].MinRelease = over
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "MaxInput") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("demand", func(t *testing.T) {
		g := fresh(t)
		g.tasks[0].Demand[0] = Accesses(MaxInput) + 1
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "MaxInput") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("edge volume", func(t *testing.T) {
		g := fresh(t)
		g.edges[0].Words = Accesses(MaxInput) + 1
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "MaxInput") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("at the bound is legal", func(t *testing.T) {
		g := fresh(t)
		g.tasks[0].WCET = MaxInput
		g.tasks[0].MinRelease = MaxInput
		if err := g.Validate(); err != nil {
			t.Fatalf("MaxInput itself must validate: %v", err)
		}
	})
}

func TestBankOfDefault(t *testing.T) {
	g := &Graph{Cores: 2, Banks: 2}
	if g.BankOf(1) != 0 {
		t.Error("BankOf before demand compilation must default to bank 0")
	}
}
