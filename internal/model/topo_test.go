package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chainGraph builds a linear chain of n unit-WCET tasks on a single core.
func chainGraph(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(1, 1)
	prev := NoTask
	for i := 0; i < n; i++ {
		id := b.AddTask(TaskSpec{WCET: 1})
		if prev != NoTask {
			b.AddEdge(prev, id, 1)
		}
		prev = id
	}
	return b.MustBuild()
}

func TestTopoSortChain(t *testing.T) {
	g := chainGraph(t, 10)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	for i, id := range order {
		if id != TaskID(i) {
			t.Fatalf("order[%d] = %d, want %d", i, id, i)
		}
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	// Independent tasks must come out in ID order.
	b := NewBuilder(4, 4)
	for i := 0; i < 8; i++ {
		b.AddTask(TaskSpec{WCET: 1, Core: CoreID(i % 4)})
	}
	g := b.MustBuild()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	for i, id := range order {
		if id != TaskID(i) {
			t.Fatalf("tie-break order[%d] = %d, want %d", i, id, i)
		}
	}
}

func TestTopoSortPropertyRandomDAGs(t *testing.T) {
	// Property: on random DAGs (edges only from lower to higher ID), the
	// topological order places every task after all its predecessors.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(4, 4)
		for i := 0; i < n; i++ {
			b.AddTask(TaskSpec{WCET: Cycles(1 + rng.Intn(10)), Core: CoreID(rng.Intn(4))})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					b.AddEdge(TaskID(i), TaskID(j), Accesses(rng.Intn(5)))
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDepths(t *testing.T) {
	// Diamond: s -> {a, b} -> e
	b := NewBuilder(2, 2)
	s := b.AddTask(TaskSpec{WCET: 1, Core: 0})
	a := b.AddTask(TaskSpec{WCET: 1, Core: 0})
	bb := b.AddTask(TaskSpec{WCET: 1, Core: 1})
	e := b.AddTask(TaskSpec{WCET: 1, Core: 1})
	b.AddEdge(s, a, 0)
	b.AddEdge(s, bb, 0)
	b.AddEdge(a, e, 0)
	b.AddEdge(bb, e, 0)
	g := b.MustBuild()
	depth, err := g.Depths()
	if err != nil {
		t.Fatalf("Depths: %v", err)
	}
	want := []int{0, 1, 1, 2}
	for i, d := range depth {
		if d != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestCriticalPath(t *testing.T) {
	b := NewBuilder(2, 2)
	s := b.AddTask(TaskSpec{WCET: 3, Core: 0})
	a := b.AddTask(TaskSpec{WCET: 5, Core: 1})
	c := b.AddTask(TaskSpec{WCET: 2, Core: 0})
	b.AddEdge(s, a, 0)
	b.AddEdge(s, c, 0)
	g := b.MustBuild()
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if cp != 8 { // 3 + max(5, 2)
		t.Fatalf("CriticalPath = %d, want 8", cp)
	}
}

func TestCriticalPathHonorsMinRelease(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddTask(TaskSpec{WCET: 2, MinRelease: 10})
	g := b.MustBuild()
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if cp != 12 {
		t.Fatalf("CriticalPath = %d, want 12", cp)
	}
}

func TestTaskIDHeapOrdering(t *testing.T) {
	var h taskIDHeap
	for _, id := range []TaskID{5, 3, 9, 1, 7, 0, 2} {
		h.push(id)
	}
	want := []TaskID{0, 1, 2, 3, 5, 7, 9}
	for _, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
}

func TestIsAcyclic(t *testing.T) {
	if !chainGraph(t, 5).IsAcyclic() {
		t.Fatal("chain reported cyclic")
	}
	// Construct a cyclic graph bypassing the builder.
	g := &Graph{Cores: 1, Banks: 1}
	g.tasks = []*Task{{ID: 0, WCET: 1}, {ID: 1, WCET: 1}}
	g.edges = []Edge{{From: 0, To: 1}, {From: 1, To: 0}}
	g.rebuildAdjacency()
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
}
