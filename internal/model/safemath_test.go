package model

import "testing"

func TestSatMulCycles(t *testing.T) {
	const inf = Infinity
	tests := []struct {
		name string
		a, b Cycles
		want Cycles
	}{
		{"zero left", 0, inf, 0},
		{"zero right", inf, 0, 0},
		{"small exact", 7, 6, 42},
		{"max-input product saturates", 1 << 40, 1 << 40, inf},
		{"just below saturation", 1 << 31, 1 << 30, 1 << 61},
		{"at the boundary", inf, 1, inf},
		{"past the boundary", inf, 2, inf},
		{"negative multiplies exactly", -3, 5, -15},
		{"both negative multiplies exactly", -3, -5, 15},
	}
	for _, tc := range tests {
		if got := SatMulCycles(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: SatMulCycles(%d, %d) = %d, want %d", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSatMulCyclesNeverBelowExactOnSaturation(t *testing.T) {
	// Saturation must only ever round up to Infinity, never produce a value
	// below the true product: a low result would loosen an interference
	// bound. Walk a grid of magnitudes around the saturation threshold.
	for _, a := range []Cycles{1, 1 << 20, 1 << 31, 1 << 40, 1 << 52, Infinity} {
		for _, b := range []Cycles{1, 1 << 10, 1 << 22, 1 << 31, Infinity} {
			got := SatMulCycles(a, b)
			if got == Infinity {
				continue // saturated: conservative by construction
			}
			if got != a*b {
				t.Fatalf("SatMulCycles(%d, %d) = %d, want exact %d", a, b, got, a*b)
			}
			if got < 0 {
				t.Fatalf("SatMulCycles(%d, %d) wrapped to %d", a, b, got)
			}
		}
	}
}

func TestSatMulAccesses(t *testing.T) {
	if got := SatMulAccesses(3, 4); got != 12 {
		t.Errorf("SatMulAccesses(3, 4) = %d, want 12", got)
	}
	if got := SatMulAccesses(1<<40, 1<<40); got != Accesses(Infinity) {
		t.Errorf("SatMulAccesses(2^40, 2^40) = %d, want Infinity", got)
	}
	if got := SatMulAccesses(-2, 8); got != -16 {
		t.Errorf("SatMulAccesses(-2, 8) = %d, want exact -16", got)
	}
}

func TestScaleAccesses(t *testing.T) {
	if got := ScaleAccesses(10, 5); got != 50 {
		t.Errorf("ScaleAccesses(10, 5) = %d, want 50", got)
	}
	// The motivating case: a competitor demand sum near the MaxInput scale
	// times a large word latency used to wrap int64 and report a bound far
	// below the true interference.
	if got := ScaleAccesses(1<<41, 1<<22); got != Infinity {
		t.Errorf("ScaleAccesses(2^41, 2^22) = %d, want Infinity", got)
	}
	if got := ScaleAccesses(-1, 5); got != -5 {
		t.Errorf("ScaleAccesses(-1, 5) = %d, want exact -5", got)
	}
}
