// Package model defines the task-graph substrate shared by every analysis in
// this repository: tasks with worst-case execution times and per-bank memory
// demands, a dependency DAG whose edges carry communication volumes, a static
// mapping of tasks onto cores, and a fixed execution order per core.
//
// The model corresponds to the input of the scheduling problem in Section II
// of "Scaling Up the Memory Interference Analysis for Hard Real-Time
// Many-Core Systems" (DATE 2020): a DAG obtained by compiling a dataflow
// program, annotated with WCETs in isolation and memory-access counts, plus a
// previously determined mapping and per-core execution order.
package model

import "fmt"

// Cycles counts time in processor clock cycles. All analyses in this module
// are integer and deterministic; there is no floating-point time.
type Cycles int64

// Infinity is a sentinel Cycles value larger than any schedulable horizon.
// It is used for "no deadline" and for the time cursor's initial next-event
// computation.
const Infinity Cycles = 1<<62 - 1

// MaxInput bounds every externally supplied magnitude: WCETs, minimal
// releases, per-bank demands and edge volumes. JSON cannot carry NaN or
// ±Inf, so the overflow risk for the int64-based Cycles/Accesses arithmetic
// is huge-but-finite inputs: release dates accumulate sums of WCETs,
// interference and demand terms over up to 2^20 tasks, and those sums must
// stay clearly below Infinity (2^62). 2^40 per field keeps any such sum
// under 2^60 while still allowing hour-long WCETs on a multi-GHz clock.
const MaxInput = 1 << 40

// TaskID identifies a task within a Graph. IDs are dense: a graph with n
// tasks uses IDs 0..n-1, so slices indexed by TaskID are the preferred
// per-task storage in the schedulers.
type TaskID int

// NoTask is the invalid TaskID.
const NoTask TaskID = -1

// CoreID identifies a processing element (PE) of the platform.
type CoreID int

// BankID identifies an arbitrated shared-memory bank.
type BankID int

// Accesses counts shared-memory accesses (words read or written). One access
// occupies the bank for the platform's word latency.
type Accesses int64

// String renders a TaskID as "τ<n>" for diagnostics.
func (id TaskID) String() string {
	if id == NoTask {
		return "τ?"
	}
	return fmt.Sprintf("τ%d", int(id))
}

// String renders a CoreID as "PE<n>", matching the paper's figures.
func (c CoreID) String() string { return fmt.Sprintf("PE%d", int(c)) }

// String renders a BankID as "bank<n>".
func (b BankID) String() string { return fmt.Sprintf("bank%d", int(b)) }
