package model

import (
	"fmt"
	"sort"
)

// Edge is a data dependency between two tasks. The consumer cannot start
// before the producer has finished. Words is the communication volume: the
// number of words the producer writes into the consumer's memory bank, which
// the demand compiler charges to the producer's per-bank access vector
// (matching the write counts drawn on the DAG edges of the paper's Figure 1).
type Edge struct {
	From  TaskID
	To    TaskID
	Words Accesses
}

// Graph is an immutable-after-build task graph: a DAG of tasks with a core
// mapping, a per-core execution order, and compiled per-bank memory demands.
// Build one with Builder (programmatic), FromJSON (files) or the generators
// in internal/gen.
//
// Graphs are not safe for concurrent mutation, but all schedulers treat them
// as read-only, so a single Graph may be analyzed by several goroutines.
type Graph struct {
	Cores int // number of processing elements
	Banks int // number of arbitrated memory banks

	tasks []*Task
	edges []Edge

	succs [][]TaskID // adjacency, indexed by TaskID
	preds [][]TaskID // reverse adjacency, indexed by TaskID

	// order[k] is the execution order of the tasks mapped to core k: the
	// "stack" S_k of Algorithm 1. order is always a partition of the task
	// set consistent with the mapping.
	order [][]TaskID

	// bankOf maps each core to the bank holding its reserved data, as
	// configured at demand-compilation time.
	bankOf func(CoreID) BankID
}

// NumTasks returns the number of tasks in the graph.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Task returns the task with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error (IDs are dense and stable).
func (g *Graph) Task(id TaskID) *Task { return g.tasks[id] }

// Tasks returns the task slice indexed by TaskID. Callers must not mutate it.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Edges returns all dependency edges. Callers must not mutate the slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Successors returns the IDs of the tasks that depend on id.
func (g *Graph) Successors(id TaskID) []TaskID { return g.succs[id] }

// Predecessors returns the IDs of the tasks id depends on.
func (g *Graph) Predecessors(id TaskID) []TaskID { return g.preds[id] }

// Order returns the execution order of the tasks mapped to core k. The
// returned slice must not be mutated.
func (g *Graph) Order(k CoreID) []TaskID { return g.order[k] }

// OnCore returns the IDs of all tasks mapped to core k, in execution order.
func (g *Graph) OnCore(k CoreID) []TaskID { return g.order[k] }

// BankOf returns the bank that holds core k's reserved data under the policy
// used at demand-compilation time. Before CompileDemands it defaults to the
// shared-bank policy (every core on bank 0).
func (g *Graph) BankOf(k CoreID) BankID {
	if g.bankOf == nil {
		return 0
	}
	return g.bankOf(k)
}

// SetOrder overrides the execution order of core k. The slice must contain
// exactly the tasks mapped to k; Validate reports violations.
func (g *Graph) SetOrder(k CoreID, order []TaskID) {
	g.order[k] = append([]TaskID(nil), order...)
}

// SwapOrder exchanges the tasks at positions pos and pos+1 of core k's
// execution order in place, without copying the order slice. It is the
// allocation-free move primitive of the design-space explorer: a swap is
// undone by calling SwapOrder again with the same arguments. The caller is
// responsible for position bounds and for re-validating dependency
// consistency.
func (g *Graph) SwapOrder(k CoreID, pos int) {
	o := g.order[k]
	o[pos], o[pos+1] = o[pos+1], o[pos]
}

// rebuildAdjacency recomputes succs/preds from the edge list. Adjacency lists
// are sorted by TaskID so that every traversal in the repository is
// deterministic.
func (g *Graph) rebuildAdjacency() {
	g.succs = make([][]TaskID, len(g.tasks))
	g.preds = make([][]TaskID, len(g.tasks))
	for _, e := range g.edges {
		g.succs[e.From] = append(g.succs[e.From], e.To)
		g.preds[e.To] = append(g.preds[e.To], e.From)
	}
	for i := range g.tasks {
		sortTaskIDs(g.succs[i])
		sortTaskIDs(g.preds[i])
	}
}

// defaultOrder assigns each core the topological order of its tasks, which
// is always deadlock-free with respect to same-core dependencies.
func (g *Graph) defaultOrder() error {
	topo, err := g.TopoSort()
	if err != nil {
		return err
	}
	g.order = make([][]TaskID, g.Cores)
	for _, id := range topo {
		k := g.tasks[id].Core
		g.order[k] = append(g.order[k], id)
	}
	return nil
}

// Clone returns a deep copy of the graph. Schedulers never mutate graphs, but
// preprocessing passes (e.g. demand recompilation under a different bank
// policy) work on clones to keep the original intact.
//
// The copy is slab-backed: tasks, demand vectors, adjacency lists and order
// lists each live in one flat allocation, with per-row views carved out at
// full-capacity bounds so an in-place mutation of one row can never grow
// into its neighbor. Adjacency is copied rather than rebuilt — the source
// lists are already sorted by construction (rebuildAdjacency), so a copy is
// identical and skips the per-task re-sorting an edge-list rebuild pays.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Cores:  g.Cores,
		Banks:  g.Banks,
		bankOf: g.bankOf,
		edges:  append([]Edge(nil), g.edges...),
	}
	n := len(g.tasks)
	slab := make([]Task, n)
	c.tasks = make([]*Task, n)
	demTotal := 0
	for _, t := range g.tasks {
		demTotal += len(t.Demand)
	}
	dem := make([]Accesses, demTotal)
	off := 0
	for i, t := range g.tasks {
		slab[i] = *t
		if t.Demand != nil {
			row := dem[off : off+len(t.Demand) : off+len(t.Demand)]
			copy(row, t.Demand)
			slab[i].Demand = row
			off += len(t.Demand)
		}
		c.tasks[i] = &slab[i]
	}
	c.succs = cloneIDLists(g.succs)
	c.preds = cloneIDLists(g.preds)
	c.order = cloneIDLists(g.order)
	return c
}

// cloneIDLists deep-copies a list-of-ID-lists into one flat backing slab
// with capacity-clamped row views.
func cloneIDLists(src [][]TaskID) [][]TaskID {
	total := 0
	for _, l := range src {
		total += len(l)
	}
	flat := make([]TaskID, total)
	out := make([][]TaskID, len(src))
	off := 0
	for i, l := range src {
		row := flat[off : off+len(l) : off+len(l)]
		copy(row, l)
		out[i] = row
		off += len(l)
	}
	return out
}

// TotalWCET returns the sum of all task WCETs: the sequential lower bound on
// any single-core execution and a convenient scale for deadlines.
func (g *Graph) TotalWCET() Cycles {
	var sum Cycles
	for _, t := range g.tasks {
		sum += t.WCET
	}
	return sum
}

// MaxMinRelease returns the largest minimal release date in the graph.
func (g *Graph) MaxMinRelease() Cycles {
	var m Cycles
	for _, t := range g.tasks {
		if t.MinRelease > m {
			m = t.MinRelease
		}
	}
	return m
}

// Stats summarizes a graph for logging and benchmark tables.
type Stats struct {
	Tasks     int
	Edges     int
	Cores     int
	Banks     int
	TotalWCET Cycles
	MaxDegree int
}

// Stats computes summary statistics of the graph.
func (g *Graph) Stats() Stats {
	s := Stats{
		Tasks:     len(g.tasks),
		Edges:     len(g.edges),
		Cores:     g.Cores,
		Banks:     g.Banks,
		TotalWCET: g.TotalWCET(),
	}
	for i := range g.tasks {
		if d := len(g.succs[i]) + len(g.preds[i]); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}

// String renders a one-line graph summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{tasks=%d edges=%d cores=%d banks=%d}",
		len(g.tasks), len(g.edges), g.Cores, g.Banks)
}

func sortTaskIDs(ids []TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
