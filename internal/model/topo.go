package model

import "fmt"

// TopoSort returns the task IDs in a deterministic topological order of the
// dependency DAG (Kahn's algorithm, ties broken by smallest ID). It returns
// an error naming a task on a cycle if the graph is not acyclic.
func (g *Graph) TopoSort() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	// ready is a binary min-heap of task IDs, so the produced order is the
	// unique smallest-ID-first topological order.
	ready := make(taskIDHeap, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(ready) > 0 {
		id := ready.pop()
		order = append(order, id)
		for _, s := range g.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready.push(s)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("model: dependency cycle through %s (%q)", TaskID(i), g.tasks[i].Name)
			}
		}
	}
	return order, nil
}

// IsAcyclic reports whether the dependency graph is a DAG.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Depths returns, for every task, its depth in the DAG: 0 for sources, and
// 1 + max depth of predecessors otherwise. This is the layer index used by
// the layer-by-layer generator's inverse and by the Gantt renderer.
func (g *Graph) Depths() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(g.tasks))
	for _, id := range order {
		for _, p := range g.preds[id] {
			if depth[p]+1 > depth[id] {
				depth[id] = depth[p] + 1
			}
		}
	}
	return depth, nil
}

// CriticalPath returns the length of the longest WCET-weighted path through
// the DAG, honoring minimal release dates but ignoring interference and core
// contention: a lower bound on any schedule's makespan.
func (g *Graph) CriticalPath() (Cycles, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	finish := make([]Cycles, len(g.tasks))
	var longest Cycles
	for _, id := range order {
		t := g.tasks[id]
		start := t.MinRelease
		for _, p := range g.preds[id] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[id] = start + t.WCET
		if finish[id] > longest {
			longest = finish[id]
		}
	}
	return longest, nil
}

// taskIDHeap is a minimal binary min-heap of TaskIDs. It avoids the
// container/heap interface boilerplate and its interface-dispatch overhead
// in the hot path of TopoSort.
type taskIDHeap []TaskID

func (h *taskIDHeap) push(id TaskID) {
	*h = append(*h, id)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *taskIDHeap) pop() TaskID {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < last && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
