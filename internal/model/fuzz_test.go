package model

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the graph parser never panics and that everything it
// accepts is structurally valid and survives a serialization round trip.
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{"cores":1,"banks":1,"tasks":[],"edges":[]}`,
		`{"cores":2,"banks":2,"tasks":[{"id":0,"wcet":5,"core":0},{"id":1,"wcet":5,"core":1}],"edges":[{"from":0,"to":1,"words":3}]}`,
		`{"cores":4,"banks":1,"tasks":[{"id":0,"name":"x","wcet":1,"core":3,"minRelease":7,"local":9}],"edges":[],"bankPolicy":"shared"}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0}],"edges":[],"order":[[0]]}`,
		`{`,
		`[]`,
		`{"cores":-1}`,
		// Malformed platform indices: cores/banks out of range must be
		// rejected, never indexed with.
		`{"cores":2,"banks":2,"tasks":[{"id":0,"wcet":1,"core":2}],"edges":[]}`,
		`{"cores":2,"banks":2,"tasks":[{"id":0,"wcet":1,"core":-1}],"edges":[]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":9223372036854775807}],"edges":[]}`,
		`{"cores":2,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0},{"id":1,"wcet":1,"core":1}],"edges":[{"from":0,"to":1,"words":1}],"order":[[0],[1],[0]]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0}],"edges":[],"order":[[0,0]]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0}],"edges":[],"order":[[7]]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0}],"edges":[],"bankPolicy":"no-such-policy"}`,
		`{"cores":2,"banks":2,"tasks":[{"id":0,"wcet":1,"core":0}],"edges":[{"from":0,"to":0,"words":1}]}`,
		`{"cores":2,"banks":2,"tasks":[{"id":0,"wcet":1,"core":0}],"edges":[{"from":-1,"to":0,"words":1}]}`,
		// Overflow guards: huge-but-finite magnitudes (2^40+1, past
		// model.MaxInput) must be rejected, not accumulated into int64
		// overflow; the value exactly at the bound is legal.
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1099511627777,"core":0}],"edges":[]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0,"minRelease":1099511627777}],"edges":[]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0,"local":1099511627777}],"edges":[]}`,
		`{"cores":2,"banks":2,"tasks":[{"id":0,"wcet":1,"core":0},{"id":1,"wcet":1,"core":1}],"edges":[{"from":0,"to":1,"words":1099511627777}]}`,
		`{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1099511627776,"core":0}],"edges":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph fails serialization: %v", err)
		}
		g2, err := ReadJSON(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumTasks() != g.NumTasks() || len(g2.Edges()) != len(g.Edges()) {
			t.Fatal("round trip changed the structure")
		}
	})
}
