package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder(4, 4)
	n0 := b.AddTask(TaskSpec{Name: "n0", WCET: 2, Core: 0, Local: 3})
	n1 := b.AddTask(TaskSpec{Name: "n1", WCET: 2, Core: 1, MinRelease: 2})
	n2 := b.AddTask(TaskSpec{Name: "n2", WCET: 1, Core: 1, MinRelease: 4})
	b.AddEdge(n0, n1, 1)
	b.AddEdge(n1, n2, 1)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.NumTasks() != g.NumTasks() || len(g2.Edges()) != len(g.Edges()) {
		t.Fatalf("round trip lost structure: %v vs %v", g2, g)
	}
	for i := 0; i < g.NumTasks(); i++ {
		a, b := g.Task(TaskID(i)), g2.Task(TaskID(i))
		if a.Name != b.Name || a.WCET != b.WCET || a.Core != b.Core ||
			a.MinRelease != b.MinRelease || a.Local != b.Local {
			t.Errorf("task %d mismatch: %+v vs %+v", i, a, b)
		}
		for bank := range a.Demand {
			if a.Demand[bank] != b.Demand[bank] {
				t.Errorf("task %d demand[%d]: %d vs %d", i, bank, a.Demand[bank], b.Demand[bank])
			}
		}
	}
	for k := 0; k < g.Cores; k++ {
		a, b := g.Order(CoreID(k)), g2.Order(CoreID(k))
		if len(a) != len(b) {
			t.Fatalf("order(%d) length mismatch", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("order(%d)[%d]: %d vs %d", k, i, a[i], b[i])
			}
		}
	}
}

func TestReadJSONPolicies(t *testing.T) {
	const src = `{
		"cores": 2, "banks": 2,
		"tasks": [
			{"id": 0, "wcet": 5, "core": 0, "local": 4},
			{"id": 1, "wcet": 5, "core": 1, "local": 4}
		],
		"edges": [{"from": 0, "to": 1, "words": 6}],
		"bankPolicy": "shared"
	}`
	g, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g.Task(0).Demand[0] != 10 { // 4 local + 6 written, all on bank 0
		t.Errorf("shared policy demand = %v, want [10 0]", g.Task(0).Demand)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"syntax", `{`, "parsing"},
		{"unknown field", `{"cores":1,"banks":1,"tasks":[],"edges":[],"bogus":1}`, "parsing"},
		{"sparse ids", `{"cores":1,"banks":1,"tasks":[{"id":5,"wcet":1,"core":0}],"edges":[]}`, "dense"},
		{"duplicate ids", `{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0},{"id":0,"wcet":1,"core":0}],"edges":[]}`, "duplicate"},
		{"bad policy", `{"cores":1,"banks":1,"tasks":[],"edges":[],"bankPolicy":"weird"}`, "bank policy"},
		{"cycle", `{"cores":1,"banks":1,"tasks":[{"id":0,"wcet":1,"core":0},{"id":1,"wcet":1,"core":0}],"edges":[{"from":0,"to":1,"words":0},{"from":1,"to":0,"words":0}]}`, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := twoCoreGraph(t, 2, BankPerCore)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "cluster_core0", "cluster_core1", "t0 -> t1", `label="7"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
