package model

import (
	"regexp"
	"testing"
)

func hashTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2, 2)
	b.AddTask(TaskSpec{Name: "a", WCET: 4, Core: 0, Local: 3})
	b.AddTask(TaskSpec{Name: "b", WCET: 2, Core: 1, Local: 1})
	b.AddTask(TaskSpec{Name: "c", WCET: 5, Core: 0, MinRelease: 1})
	b.AddEdge(0, 1, 2)
	return b.MustBuild()
}

func TestFingerprintDeterministicAndWellFormed(t *testing.T) {
	g := hashTestGraph(t)
	fp := g.Fingerprint()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(fp) {
		t.Fatalf("fingerprint %q is not hex sha256", fp)
	}
	if fp != g.Fingerprint() {
		t.Fatal("fingerprint not deterministic across calls")
	}
	if fp != hashTestGraph(t).Fingerprint() {
		t.Fatal("fingerprint not deterministic across builds")
	}
	if fp != g.Clone().Fingerprint() {
		t.Fatal("clone changed the fingerprint")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	g := hashTestGraph(t)
	b := NewBuilder(2, 2)
	b.AddTask(TaskSpec{Name: "renamed", WCET: 4, Core: 0, Local: 3})
	b.AddTask(TaskSpec{Name: "also-renamed", WCET: 2, Core: 1, Local: 1})
	b.AddTask(TaskSpec{WCET: 5, Core: 0, MinRelease: 1})
	b.AddEdge(0, 1, 2)
	if g.Fingerprint() != b.MustBuild().Fingerprint() {
		t.Fatal("task names should not affect the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := hashTestGraph(t).Fingerprint()

	mutations := map[string]func() *Graph{
		"wcet": func() *Graph {
			b := NewBuilder(2, 2)
			b.AddTask(TaskSpec{WCET: 5, Core: 0, Local: 3})
			b.AddTask(TaskSpec{WCET: 2, Core: 1, Local: 1})
			b.AddTask(TaskSpec{WCET: 5, Core: 0, MinRelease: 1})
			b.AddEdge(0, 1, 2)
			return b.MustBuild()
		},
		"edge volume": func() *Graph {
			b := NewBuilder(2, 2)
			b.AddTask(TaskSpec{WCET: 4, Core: 0, Local: 3})
			b.AddTask(TaskSpec{WCET: 2, Core: 1, Local: 1})
			b.AddTask(TaskSpec{WCET: 5, Core: 0, MinRelease: 1})
			b.AddEdge(0, 1, 3)
			return b.MustBuild()
		},
		"platform": func() *Graph {
			b := NewBuilder(2, 1)
			b.AddTask(TaskSpec{WCET: 4, Core: 0, Local: 3})
			b.AddTask(TaskSpec{WCET: 2, Core: 1, Local: 1})
			b.AddTask(TaskSpec{WCET: 5, Core: 0, MinRelease: 1})
			b.AddEdge(0, 1, 2)
			return b.MustBuild()
		},
	}
	for name, build := range mutations {
		if build().Fingerprint() == base {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}

	// Order changes matter: the schedulers consume orders directly.
	g := hashTestGraph(t)
	g.SwapOrder(0, 0)
	if g.Fingerprint() == base {
		t.Error("order swap did not change the fingerprint")
	}
	g.SwapOrder(0, 0)
	if g.Fingerprint() != base {
		t.Error("undoing the swap did not restore the fingerprint")
	}
}
