package model

import (
	"fmt"
	"io"
)

// WriteDOT renders the task graph in Graphviz DOT syntax, one subgraph
// cluster per core, with edge labels carrying write volumes — the same
// presentation as the DAG of the paper's Figure 1. The output is meant for
// human inspection of small graphs.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph taskgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for k := 0; k < g.Cores; k++ {
		if len(g.order[k]) == 0 {
			continue
		}
		fmt.Fprintf(w, "  subgraph cluster_core%d {\n", k)
		fmt.Fprintf(w, "    label=\"%s\";\n", CoreID(k))
		for _, id := range g.order[k] {
			t := g.tasks[id]
			fmt.Fprintf(w, "    t%d [label=\"%s\\nC=%d\"];\n", id, t.Name, t.WCET)
		}
		fmt.Fprintln(w, "  }")
	}
	for _, e := range g.edges {
		fmt.Fprintf(w, "  t%d -> t%d [label=\"%d\"];\n", e.From, e.To, e.Words)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
