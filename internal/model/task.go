package model

import "fmt"

// Task is one node of the task graph. A task executes exactly once, on the
// core it is mapped to, for at most WCET cycles of isolated execution time.
// Its response time grows beyond WCET only through memory interference.
//
// Demand holds the task's shared-memory access counts per bank, after
// compilation by Graph.CompileDemands (local accesses to the task's own bank
// plus the words it writes into the banks of its consumers). Tasks with a nil
// Demand are treated as making no shared-memory accesses.
type Task struct {
	ID   TaskID
	Name string

	// WCET is the worst-case execution time in isolation, i.e. with no
	// other core competing for the memory bus.
	WCET Cycles

	// Core is the processing element the task is mapped to.
	Core CoreID

	// MinRelease is the minimal release date: the task must not start
	// before this instant even if all its dependencies complete earlier
	// (Section II.B of the paper). Zero means "as soon as possible".
	MinRelease Cycles

	// Local is the number of shared-memory accesses the task performs on
	// its own behalf (code and local data), charged to the bank associated
	// with its core by the bank-assignment policy.
	Local Accesses

	// Demand is the compiled per-bank access count vector, indexed by
	// BankID. It is filled by Graph.CompileDemands and consumed by the bus
	// arbiters.
	Demand []Accesses
}

// TaskSpec is the user-facing description of a task, consumed by Builder and
// by the JSON loader. The zero value of optional fields means "default".
type TaskSpec struct {
	Name       string
	WCET       Cycles
	Core       CoreID
	MinRelease Cycles
	Local      Accesses
}

// TotalDemand returns the task's total number of shared-memory accesses
// across all banks (zero if demands are not compiled yet).
func (t *Task) TotalDemand() Accesses {
	var sum Accesses
	for _, d := range t.Demand {
		sum += d
	}
	return sum
}

// AccessesBank reports whether the task performs at least one access on bank
// b. Tasks that do not access any common bank can never interfere.
func (t *Task) AccessesBank(b BankID) bool {
	return int(b) < len(t.Demand) && t.Demand[b] > 0
}

// String renders a short human-readable description of the task.
func (t *Task) String() string {
	return fmt.Sprintf("%s(%q core=%d wcet=%d)", t.ID, t.Name, t.Core, t.WCET)
}

// clone returns a deep copy of the task.
func (t *Task) clone() *Task {
	c := *t
	if t.Demand != nil {
		c.Demand = make([]Accesses, len(t.Demand))
		copy(c.Demand, t.Demand)
	}
	return &c
}
