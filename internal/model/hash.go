package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// fingerprintVersion is folded into every fingerprint so the hash changes
// whenever the canonical serialization below changes shape. Bump it when
// adding or reordering fields.
const fingerprintVersion = 1

// Fingerprint returns the canonical content hash of the graph: a hex-encoded
// SHA-256 over the platform shape, every task's scheduling-relevant fields
// (WCET, core, minimal release, compiled per-bank demand), the dependency
// edges with their volumes, the per-core execution orders, and the core→bank
// assignment. Two graphs with equal fingerprints are indistinguishable to
// every scheduler in this repository — same inputs, same analysis, same
// Result — which is what lets the analysis service key warm scheduler
// checkpoints and cached parsed graphs by fingerprint alone.
//
// Task names are deliberately excluded (they are diagnostics, not inputs),
// as is everything derivable from the hashed fields (adjacency, stats).
func (g *Graph) Fingerprint() string {
	return g.FingerprintWithOrders(g.order)
}

// FingerprintWithOrders returns the fingerprint the graph would have if
// its per-core execution orders were replaced by orders — byte-identical
// to cloning the graph, installing the orders, and calling Fingerprint.
// It exists so a compiled engine image can hash an edited order overlay
// without materializing a graph; every other hashed field comes from g.
func (g *Graph) FingerprintWithOrders(orders [][]TaskID) string {
	h := sha256.New()
	putInt(h, fingerprintVersion)
	putInt(h, int64(g.Cores))
	putInt(h, int64(g.Banks))

	putInt(h, int64(len(g.tasks)))
	for _, t := range g.tasks {
		putInt(h, int64(t.WCET))
		putInt(h, int64(t.Core))
		putInt(h, int64(t.MinRelease))
		putInt(h, int64(t.Local))
		putInt(h, int64(len(t.Demand)))
		for _, d := range t.Demand {
			putInt(h, int64(d))
		}
	}

	putInt(h, int64(len(g.edges)))
	for _, e := range g.edges {
		putInt(h, int64(e.From))
		putInt(h, int64(e.To))
		putInt(h, int64(e.Words))
	}

	putInt(h, int64(len(orders)))
	for _, order := range orders {
		putInt(h, int64(len(order)))
		for _, id := range order {
			putInt(h, int64(id))
		}
	}

	for k := 0; k < g.Cores; k++ {
		putInt(h, int64(g.BankOf(CoreID(k))))
	}

	return hex.EncodeToString(h.Sum(nil))
}

// putInt feeds one integer into the hash in fixed-width little-endian form,
// so field boundaries are unambiguous regardless of value magnitude.
func putInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}
