package model

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// fingerprintVersion is folded into every fingerprint so the hash changes
// whenever the canonical serialization below changes shape. Bump it when
// adding or reordering fields.
const fingerprintVersion = 1

// Fingerprint returns the canonical content hash of the graph: a hex-encoded
// SHA-256 over the platform shape, every task's scheduling-relevant fields
// (WCET, core, minimal release, compiled per-bank demand), the dependency
// edges with their volumes, the per-core execution orders, and the core→bank
// assignment. Two graphs with equal fingerprints are indistinguishable to
// every scheduler in this repository — same inputs, same analysis, same
// Result — which is what lets the analysis service key warm scheduler
// checkpoints and cached parsed graphs by fingerprint alone.
//
// Task names are deliberately excluded (they are diagnostics, not inputs),
// as is everything derivable from the hashed fields (adjacency, stats).
func (g *Graph) Fingerprint() string {
	return g.FingerprintWithOrders(g.order)
}

// FingerprintWithOrders returns the fingerprint the graph would have if
// its per-core execution orders were replaced by orders — byte-identical
// to cloning the graph, installing the orders, and calling Fingerprint.
// It exists so a compiled engine image can hash an edited order overlay
// without materializing a graph; every other hashed field comes from g.
//
// Callers hashing many order overlays of one graph should build an
// OrderHasher once instead: it freezes the digest midstate after the
// static sections, so each overlay pays only for its own bytes.
func (g *Graph) FingerprintWithOrders(orders [][]TaskID) string {
	h := sha256.New()
	g.hashStatic(h)
	hashOrders(h, orders)
	for k := 0; k < g.Cores; k++ {
		putInt(h, int64(g.BankOf(CoreID(k))))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashStatic feeds the order-independent prefix of the canonical
// serialization — version, platform shape, tasks, edges — into h. The
// orders section and the bank table follow it, in that order.
func (g *Graph) hashStatic(h hash.Hash) {
	putInt(h, fingerprintVersion)
	putInt(h, int64(g.Cores))
	putInt(h, int64(g.Banks))

	putInt(h, int64(len(g.tasks)))
	for _, t := range g.tasks {
		putInt(h, int64(t.WCET))
		putInt(h, int64(t.Core))
		putInt(h, int64(t.MinRelease))
		putInt(h, int64(t.Local))
		putInt(h, int64(len(t.Demand)))
		for _, d := range t.Demand {
			putInt(h, int64(d))
		}
	}

	putInt(h, int64(len(g.edges)))
	for _, e := range g.edges {
		putInt(h, int64(e.From))
		putInt(h, int64(e.To))
		putInt(h, int64(e.Words))
	}
}

// hashOrders feeds the orders section of the canonical serialization.
func hashOrders(h hash.Hash, orders [][]TaskID) {
	putInt(h, int64(len(orders)))
	for _, order := range orders {
		putInt(h, int64(len(order)))
		for _, id := range order {
			putInt(h, int64(id))
		}
	}
}

// OrderHasher fingerprints order overlays of one fixed graph. It snapshots
// the SHA-256 midstate after the static sections (platform shape, tasks,
// edges) once, so each Sum hashes only the orders section and the bank
// table — the per-scenario cost of fingerprinting an edit drops from
// O(graph) to O(tasks). Sum(orders) is byte-identical to the corresponding
// FingerprintWithOrders call; the differential suites pin this.
//
// An OrderHasher is immutable after construction and safe for concurrent
// Sum calls.
type OrderHasher struct {
	state []byte  // marshaled digest midstate after the static sections
	bank  []int64 // bank-table suffix hashed after the orders section
}

// OrderHasher returns a reusable overlay fingerprinter for this graph.
func (g *Graph) OrderHasher() *OrderHasher {
	h := sha256.New()
	g.hashStatic(h)
	//mialint:ignore hotpathalloc -- constructor: freezing the midstate allocates by design; hot paths reach it only through the per-image once-guard
	bank := make([]int64, g.Cores)
	for k := range bank {
		bank[k] = int64(g.BankOf(CoreID(k)))
	}
	return newOrderHasher(h, bank)
}

// newOrderHasher freezes the digest midstate. The stdlib SHA-256 digest
// implements encoding.BinaryMarshaler and never fails; a failure here is a
// broken invariant, not an input condition.
func newOrderHasher(h hash.Hash, bank []int64) *OrderHasher {
	m, ok := h.(encoding.BinaryMarshaler)
	if !ok {
		panic("model: sha256 digest does not marshal")
	}
	state, err := m.MarshalBinary()
	if err != nil {
		//mialint:ignore hotpathalloc -- panic path for a broken marshal invariant; never taken in steady state
		panic("model: marshaling sha256 midstate: " + err.Error())
	}
	//mialint:ignore hotpathalloc -- constructor: the frozen hasher is built once per graph and reused by every Sum
	return &OrderHasher{state: state, bank: bank}
}

// Sum returns the fingerprint of the graph with its orders replaced by
// orders, resuming from the frozen midstate.
//
//mia:hotpath
func (oh *OrderHasher) Sum(orders [][]TaskID) string {
	h := sha256.New()
	restoreMidstate(h, oh.state)
	hashOrders(h, orders)
	for _, b := range oh.bank {
		putInt(h, b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// restoreMidstate rewinds a fresh digest to a frozen midstate. Restoring a
// state the same stdlib digest produced never fails; a failure here is a
// broken invariant, not an input condition.
func restoreMidstate(h hash.Hash, state []byte) {
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		//mialint:ignore hotpathalloc -- panic path for a broken midstate invariant; never taken in steady state
		panic("model: restoring sha256 midstate: " + err.Error())
	}
}

// putInt feeds one integer into the hash in fixed-width little-endian form,
// so field boundaries are unambiguous regardless of value magnitude.
func putInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}
