package sched

import (
	"fmt"
	"strings"

	"github.com/mia-rt/mia/internal/model"
)

// Gantt renders the schedule as an ASCII timing diagram in the style of the
// paper's Figure 1: one row per core, one box per task spanning its
// execution window, annotated with the task name and, when non-zero, its
// interference ("I:n"). width is the approximate number of character
// columns for the time axis (minimum 20; 0 selects 72).
//
// The rendering is for human inspection of small schedules; boxes narrower
// than their label are truncated.
func Gantt(g *model.Graph, r *Result, width int) string {
	if width <= 0 {
		width = 72
	}
	if width < 20 {
		width = 20
	}
	span := int64(r.Makespan)
	if span <= 0 {
		span = 1
	}
	// Proportional mapping: column = t·width/span, so short schedules
	// stretch across the full width and long ones compress to fit.
	col := func(t model.Cycles) int { return int(int64(t) * int64(width) / span) }
	cols := width + 1

	var sb strings.Builder
	for k := 0; k < g.Cores; k++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, id := range g.Order(model.CoreID(k)) {
			from, to := r.Window(id)
			c0, c1 := col(from), col(to)
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > cols {
				c1 = cols
			}
			label := g.Task(id).Name
			if inter := r.Interference[id]; inter > 0 {
				label += fmt.Sprintf(" I:%d", inter)
			}
			row[c0] = '['
			for c := c0 + 1; c < c1; c++ {
				row[c] = '.'
			}
			if c1-1 > c0 {
				row[c1-1] = ']'
			}
			for i := 0; i < len(label) && c0+1+i < c1-1; i++ {
				row[c0+1+i] = label[i]
			}
		}
		fmt.Fprintf(&sb, "%-5s|%s|\n", model.CoreID(k), string(row))
	}
	// Time axis with tick marks every ~10 columns.
	axis := make([]byte, cols)
	for i := range axis {
		axis[i] = '-'
	}
	var marks []string
	const step = 10
	for c := 0; c < cols; c += step {
		axis[c] = '+'
		marks = append(marks, fmt.Sprintf("%-*d", step, int64(c)*span/int64(width)))
	}
	fmt.Fprintf(&sb, "t:    %s\n", string(axis))
	fmt.Fprintf(&sb, "      %s\n", strings.TrimRight(strings.Join(marks, ""), " "))
	fmt.Fprintf(&sb, "makespan = %d cycles (%s)\n", r.Makespan, r.Algorithm)
	return sb.String()
}
