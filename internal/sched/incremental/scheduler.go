package incremental

import (
	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Edit declares one divergence site between the analyzed execution orders
// and the orders the Scheduler last committed with Schedule: core Core's
// order may differ at positions From and later, and is guaranteed by the
// caller to be unchanged at positions before From. An adjacent swap of
// order positions p and p+1 on core k is Edit{Core: k, From: p}. It is an
// alias of the engine's edit type, so engine.Warm callers and direct
// Scheduler callers speak the same vocabulary.
type Edit = engine.Edit

// maxCheckpoints bounds the Scheduler's checkpoint store. When a run records
// more, every other checkpoint is dropped and the recording stride doubles,
// so memory stays O(maxCheckpoints · state size) while the replay distance
// from the nearest checkpoint stays O(events / maxCheckpoints).
const maxCheckpoints = 64

// Scheduler is the warm-start façade over the incremental algorithm: a
// reusable analysis engine bound to one compiled image and one option set
// that snapshots its cursor state at event boundaries during full runs, and
// can then re-analyze a mutated variant of the execution orders by
// restoring the latest snapshot unaffected by the mutation and replaying
// only the suffix.
//
// The intended client is design-space exploration, where neighboring
// candidates differ from the incumbent by a single adjacent swap in one
// core's execution order: a cold analysis costs O(n²) while the replay of
// the suffix behind the swapped position costs O(suffix²), which is the same
// incremental-reuse idea that lets the paper's algorithm beat the global
// fixed-point. Soundness is inherited from the monotonicity hypothesis
// (Section II.C): the schedule prefix produced before the first event that
// could observe the mutated order positions is *exact*, not approximate, so
// a restored prefix plus a replayed suffix is bit-identical to a cold run
// (enforced by the differential tests in warmstart_test.go).
//
// All buffers — working state, result, and checkpoints — are owned by the
// Scheduler and reused across calls, so the steady-state event loop runs
// allocation-free (pinned by an AllocsPerRun guard test). Consequently the
// returned *sched.Result is overwritten by the next Schedule or Reschedule
// call; callers that need to keep one must copy it. A Scheduler is not safe
// for concurrent use; give each goroutine its own — several Schedulers may
// share one immutable engine.Image.
//
// Between calls the caller may mutate ONLY the execution orders (the bound
// graph's SetOrder/SwapOrder, or the Orders overlay for image-native
// schedulers). Mutating tasks, edges, demands or the platform invalidates
// the Scheduler; compile a new image and build a new one instead.
type Scheduler struct {
	g   *model.Graph // non-nil only for graph-bound schedulers (NewScheduler)
	img *engine.Image
	ord *engine.Orders
	st  *state
	err error // compile failure at construction, reported by every call

	snaps  []snapshot // committed checkpoints, in cursor order
	stride int        // record every stride-th event
	tick   int        // event counter of the recording run

	recording bool // checkpoint hook active (cold Schedule runs only)
	base      bool // snaps describe the orders as of the last Schedule

	lastEvents int // event count of the last successful cold run
}

// NewScheduler builds a warm-start scheduler for g under opts. The graph is
// captured by reference: each Schedule or Reschedule call re-reads g's
// current per-core execution orders into the scheduler's order overlay, so
// SwapOrder/SetOrder mutations between calls are analyzed, exactly as
// before the engine existed. The rest of the graph is compiled once; if
// compilation (validation) fails, the error surfaces from the first
// Schedule or Reschedule call.
func NewScheduler(g *model.Graph, opts sched.Options) *Scheduler {
	img, err := engine.Compile(g, opts)
	if err != nil {
		return &Scheduler{err: err}
	}
	sc := newWarmScheduler(img)
	sc.g = g
	return sc
}

// newWarmScheduler builds an image-native scheduler owning a private order
// overlay — the engine backend's Warm implementation.
func newWarmScheduler(img *engine.Image) *Scheduler {
	ord := img.NewOrders()
	sc := &Scheduler{img: img, ord: ord, st: newState(img, ord), stride: 1}
	sc.st.ckpt = sc.checkpoint
	return sc
}

// Orders exposes the scheduler's mutable order overlay. Graph-bound
// schedulers overwrite it from the graph at every call; image-native ones
// (the engine path) treat it as the single source of order truth.
func (sc *Scheduler) Orders() *engine.Orders { return sc.ord }

// syncOrders re-reads the bound graph's current orders into the overlay.
// Image-native schedulers have no bound graph and skip it.
//
//mia:hotpath
func (sc *Scheduler) syncOrders() {
	if sc.g != nil {
		sc.ord.CopyFrom(sc.g)
	}
}

// Schedule analyzes the current orders cold from t=0, rebuilding the
// checkpoint store as it goes, and commits them as the warm-start baseline
// for subsequent Reschedule calls. The returned Result is owned by the
// Scheduler and valid only until the next call.
func (sc *Scheduler) Schedule() (*sched.Result, error) {
	if sc.err != nil {
		return nil, sc.err
	}
	sc.syncOrders()
	sc.st.reset()
	sc.snaps = sc.snaps[:0]
	sc.tick = 0
	// Size the stride from the previous run so a steady-state run records
	// ~maxCheckpoints evenly spaced checkpoints instead of recording densely
	// and compacting repeatedly.
	if sc.lastEvents > 0 {
		if stride := (sc.lastEvents + maxCheckpoints - 1) / maxCheckpoints; stride > 1 {
			sc.stride = stride
		}
	}
	sc.recording = true
	res, err := sc.st.run()
	sc.recording = false
	sc.base = err == nil
	if err == nil {
		sc.lastEvents = sc.st.events
	}
	return res, err
}

// scheduleCold analyzes the current orders from t=0 without recording
// checkpoints and without committing a baseline — the oracle path for
// differential comparisons against Reschedule (exploration's
// DisableWarmStart mode). The committed warm baseline, if any, survives.
func (sc *Scheduler) scheduleCold() (*sched.Result, error) {
	if sc.err != nil {
		return nil, sc.err
	}
	sc.syncOrders()
	sc.st.reset()
	return sc.st.run()
}

// Reschedule re-analyzes after the execution orders were mutated at the
// given divergence sites, relative to the orders committed by the last
// successful Schedule. It restores the latest checkpoint that provably
// precedes every site's first possible influence on the schedule and replays
// only the remaining events; when no checkpoint qualifies (a mutation at the
// very front of an order), it falls back to a cold replay. Either way the
// result is bit-identical to what Schedule would compute on the mutated
// orders — only cheaper.
//
// The checkpoint store is never modified: after the caller undoes its
// mutation (restoring the committed orders), further Reschedule calls
// against the same baseline remain valid, which is exactly the
// apply-evaluate-undo pattern of neighborhood search. An unschedulable
// verdict for the mutated orders likewise leaves the baseline intact. If no
// valid baseline exists (never scheduled, or the last cold run failed),
// Reschedule behaves as Schedule, committing the current orders.
//
//mia:hotpath warm replay: 0 allocs/op pinned by alloc_test.go
func (sc *Scheduler) Reschedule(edits ...Edit) (*sched.Result, error) {
	if sc.err != nil {
		return nil, sc.err
	}
	if !sc.base {
		return sc.Schedule()
	}
	sc.syncOrders()
	for i := len(sc.snaps) - 1; i >= 0; i-- {
		if snapSafe(&sc.snaps[i], edits) {
			sc.st.restore(&sc.snaps[i])
			return sc.st.run()
		}
	}
	sc.st.reset()
	return sc.st.run()
}

// SetCancel replaces the cancellation channel consulted by subsequent
// Schedule and Reschedule calls, enabling per-request deadlines on a
// long-lived Scheduler (Options.Cancel is compiled into the image and would
// otherwise be fixed for the Scheduler's whole life). A canceled call
// returns sched.ErrCanceled and never corrupts the warm state: a canceled
// cold Schedule simply leaves the Scheduler without a baseline (the next
// call runs cold), and a canceled Reschedule leaves the committed
// checkpoints untouched.
func (sc *Scheduler) SetCancel(ch <-chan struct{}) {
	if sc.err != nil {
		return
	}
	sc.st.cancel = ch
}

// Close joins the parked worker goroutines of the parallel exchange kernel,
// when the compiled options enabled one (Options.Parallelism > 1). The
// Scheduler — checkpoints, warm baseline and all — remains fully usable:
// the next parallel run simply respawns the workers. Call it when retiring
// a Scheduler from a pool so parked goroutines do not outlive the analyzer
// that owns them; sequential Schedulers make it a no-op.
func (sc *Scheduler) Close() {
	if sc.st != nil {
		sc.st.close()
	}
}

// Warm reports whether the Scheduler holds a valid warm-start baseline: a
// successful cold Schedule has committed checkpoints and the caller has not
// invalidated them. Serving layers use it to distinguish a cheap Reschedule
// replay from the cold run it would silently fall back to, and to report
// warm-pool occupancy in metrics.
func (sc *Scheduler) Warm() bool { return sc.base }

// Checkpoints returns the number of committed event-boundary checkpoints of
// the last recording run — an observability hook for tests and metrics; the
// replay machinery does not depend on callers reading it.
func (sc *Scheduler) Checkpoints() int { return len(sc.snaps) }

// checkpoint is the state's event-boundary hook: during recording runs it
// captures every stride-th event into the store, compacting (drop every
// other checkpoint, double the stride) when the store outgrows its bound.
//
//mia:hotpath
func (sc *Scheduler) checkpoint() {
	if !sc.recording {
		return
	}
	if sc.tick%sc.stride == 0 {
		sc.push().capture(sc.st)
		if len(sc.snaps) > maxCheckpoints {
			sc.compact()
		}
	}
	sc.tick++
}

// push extends the checkpoint list by one entry, reviving the buffers of a
// previously truncated entry when the backing array still holds one.
func (sc *Scheduler) push() *snapshot {
	if len(sc.snaps) < cap(sc.snaps) {
		sc.snaps = sc.snaps[:len(sc.snaps)+1]
	} else {
		sc.snaps = append(sc.snaps, snapshot{})
	}
	return &sc.snaps[len(sc.snaps)-1]
}

// compact halves the checkpoint density in place: entry i takes the value of
// entry 2i by swapping (not copying), so the displaced entries — and their
// buffers — remain in the backing array beyond the new length for push to
// revive.
func (sc *Scheduler) compact() {
	n := len(sc.snaps)
	for i := 1; 2*i < n; i++ {
		sc.snaps[i], sc.snaps[2*i] = sc.snaps[2*i], sc.snaps[i]
	}
	sc.snaps = sc.snaps[:(n+1)/2]
	sc.stride *= 2
}

// snapSafe reports whether a checkpoint provably precedes any influence of
// the given divergence sites on the schedule. Order position From of core
// Core is first consulted when the core sits idle with its head index at
// From, so the checkpoint is safe for that edit while the head index is
// still below From, or equals From with the task at From-1 still alive (the
// head has then never been consulted while the core was idle: consultation
// only happens in openAt on idle cores, and the core has been busy since the
// head index reached From). Head indices only grow and an idle core at From
// stays idle until From opens, so safety is a prefix property over the run —
// the latest safe checkpoint is the best restart point.
//
//mia:hotpath
func snapSafe(sn *snapshot, edits []Edit) bool {
	for _, e := range edits {
		h := sn.headIdx[e.Core]
		if h > e.From || (h == e.From && sn.slots[e.Core].task == model.NoTask) {
			return false
		}
	}
	return true
}

// snapshot captures the complete mutable state of a run immediately before
// the event at cursor t is processed: restoring it and re-entering the event
// loop replays the event at t and everything after with no special casing.
// All slices are full-length copies into buffers owned by the snapshot and
// reused across captures.
type snapshot struct {
	t      model.Cycles
	events int
	closed int
	relPtr int

	headIdx  []int
	depsLeft []int
	slots    []slotSnap

	release      []model.Cycles
	interference []model.Cycles
	response     []model.Cycles
	perBank      []model.Cycles // flat task-major copy of Result.PerBank
}

// slotSnap is the deep copy of one core's slot. The competitor index is not
// captured: it is derivable from comp and rebuilt on restore, which keeps
// checkpoints O(entries) instead of O(cores·banks).
type slotSnap struct {
	task   model.TaskID
	finish model.Cycles
	comp   [][]arbiter.Request
	terms  [][]model.Cycles
}

// capture deep-copies the state into the snapshot, reusing its buffers.
//
//mia:hotpath buffers are revived across captures; first capture warms them
func (sn *snapshot) capture(s *state) {
	sn.t, sn.events, sn.closed, sn.relPtr = s.t, s.events, s.closed, s.relPtr
	sn.headIdx = append(sn.headIdx[:0], s.headIdx...)
	sn.depsLeft = append(sn.depsLeft[:0], s.depsLeft...)
	if sn.slots == nil {
		//mialint:ignore hotpathalloc -- one-time buffer birth on a snapshot entry's first capture; nil-guarded, steady-state captures reuse
		sn.slots = make([]slotSnap, len(s.slots))
	}
	for k := range s.slots {
		sl, ss := &s.slots[k], &sn.slots[k]
		ss.task, ss.finish = sl.task, sl.finish
		if ss.comp == nil {
			//mialint:ignore hotpathalloc -- one-time buffer birth on a snapshot entry's first capture; nil-guarded, steady-state captures reuse
			ss.comp = make([][]arbiter.Request, len(sl.comp))
			//mialint:ignore hotpathalloc -- one-time buffer birth on a snapshot entry's first capture; nil-guarded, steady-state captures reuse
			ss.terms = make([][]model.Cycles, len(sl.terms))
		}
		for b := range sl.comp {
			ss.comp[b] = append(ss.comp[b][:0], sl.comp[b]...)
			ss.terms[b] = append(ss.terms[b][:0], sl.terms[b]...)
		}
	}
	sn.release = append(sn.release[:0], s.res.Release...)
	sn.interference = append(sn.interference[:0], s.res.Interference...)
	sn.response = append(sn.response[:0], s.res.Response...)
	sn.perBank = append(sn.perBank[:0], s.res.FlatPerBank()...)
}

// restore copies the snapshot back into the working state, rebuilding the
// per-core competitor index from the restored competitor sets.
//
//mia:hotpath
func (s *state) restore(sn *snapshot) {
	s.t, s.events, s.closed, s.relPtr = sn.t, sn.events, sn.closed, sn.relPtr
	copy(s.headIdx, sn.headIdx)
	copy(s.depsLeft, sn.depsLeft)
	for k := range s.slots {
		sl, ss := &s.slots[k], &sn.slots[k]
		sl.task, sl.finish = ss.task, ss.finish
		for b := range sl.comp {
			for _, r := range sl.comp[b] {
				sl.compIdx[b][r.Core] = -1
			}
			sl.comp[b] = append(sl.comp[b][:0], ss.comp[b]...)
			sl.terms[b] = append(sl.terms[b][:0], ss.terms[b]...)
			if s.fast && !s.separate {
				for i, r := range sl.comp[b] {
					sl.compIdx[b][r.Core] = int32(i)
				}
			}
		}
	}
	copy(s.res.Release, sn.release)
	copy(s.res.Interference, sn.interference)
	copy(s.res.Response, sn.response)
	copy(s.res.FlatPerBank(), sn.perBank)
}
