package incremental_test

import (
	"fmt"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// ExampleSchedule analyzes the paper's Figure 1 task set and prints the
// published schedule.
func ExampleSchedule() {
	g := gen.Figure1()
	res, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		fmt.Println("unschedulable:", err)
		return
	}
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		fmt.Printf("%s rel=%d I=%d R=%d\n",
			g.Task(id).Name, res.Release[id], res.Interference[id], res.Response[id])
	}
	fmt.Println("makespan:", res.Makespan)
	// Output:
	// n0 rel=0 I=1 R=3
	// n1 rel=3 I=1 R=3
	// n2 rel=6 I=0 R=1
	// n3 rel=0 I=2 R=5
	// n4 rel=5 I=0 R=2
	// makespan: 7
}

// ExampleSchedule_deadline shows unschedulability reporting.
func ExampleSchedule_deadline() {
	g := gen.Figure1()
	_, err := incremental.Schedule(g, sched.Options{Deadline: 6})
	fmt.Println(err)
	// Output:
	// unschedulable: deadline at t=7
}

// ExampleSchedule_trace shows the cursor event stream of Section IV.
func ExampleSchedule_trace() {
	b := model.NewBuilder(2, 1)
	p := b.AddTask(model.TaskSpec{Name: "prod", WCET: 3, Core: 0, Local: 2})
	c := b.AddTask(model.TaskSpec{Name: "cons", WCET: 2, Core: 1, Local: 2})
	b.AddEdge(p, c, 1)
	g, _ := b.Build()
	_, err := incremental.Schedule(g, sched.Options{Trace: func(e sched.Event) {
		if e.Kind != sched.EventCursor {
			fmt.Println(e)
		}
	}})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// t=0      open τ0
	// t=3      close τ0
	// t=3      open τ1
	// t=5      close τ1
}
