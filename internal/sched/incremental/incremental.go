// Package incremental implements the paper's contribution: an O(n²)
// algorithm computing the static time-triggered schedule (release dates and
// worst-case response times under memory interference) of a task DAG mapped
// onto a many-core platform — Algorithm 1 of "Scaling Up the Memory
// Interference Analysis for Hard Real-Time Many-Core Systems" (DATE 2020).
//
// Instead of the global fixed-point iterations of the original analysis
// (Rihani et al., RTNS 2016 — see the sibling fixpoint package), the
// schedule is built incrementally behind a monotonically advancing time
// cursor t. Tasks are partitioned into three groups:
//
//   - Closed: t is past their finish date; release date and response time
//     are final.
//   - Alive: t lies in their execution window; the release date is final
//     but the response time may still grow as future tasks join.
//   - Future: t is before their release; nothing is computed yet.
//
// At each event the cursor jumps to the nearest finish date of an alive
// task or minimal release date of a future task. Closing tasks release
// their dependents; each core then opens the next task of its fixed
// execution order if it is ready. Interference is only exchanged between
// *alive* tasks: closed tasks cannot overlap the new ones, and future tasks
// will contribute when they open. Because at most one task per core is
// alive at any instant, the alive set is bounded by the core count c, so
// each of the O(n) events costs O(c²·b) arbiter work — O(c²·b·n²) overall
// in the worst case, i.e. O(n²) for a fixed platform.
//
// Soundness rests on the monotonicity hypothesis of Section II.C: adding a
// task to the schedule can only increase the interference received by
// others, hence finish dates only move later and a release date, once
// assigned, never needs revisiting.
//
// The event loop reads a compiled engine.Image — flat per-task arrays, CSR
// adjacency, one flat demand backing array — rather than the pointer-rich
// model.Graph, and runs the per-core orders from a mutable engine.Orders
// overlay. Package-level Schedule stays the compatibility entry point that
// compiles per call; the engine backend ("incremental") and the warm-start
// Scheduler reuse one image across runs.
package incremental

import (
	"math/bits"
	"sort"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Algorithm is the name recorded in results produced by this package.
const Algorithm = "incremental"

// Schedule computes release dates and worst-case response times for g under
// opts. It returns an error wrapping sched.ErrUnschedulable when the
// configured deadline is crossed or the per-core orders deadlock against
// the dependency DAG; the graph itself is never mutated.
//
// Schedule is the compatibility wrapper around the engine: it compiles a
// fresh image on every call (validation, adjacency flattening, demand
// layout) and analyzes it once. Callers that analyze the same graph many
// times should engine.Compile once and go through the engine façade.
func Schedule(g *model.Graph, opts sched.Options) (*sched.Result, error) {
	img, err := engine.Compile(g, opts)
	if err != nil {
		return nil, err
	}
	st := newState(img, img.NewOrders())
	defer st.close()
	return st.run()
}

// slot is the per-core scheduling state: the alive task of the core (if
// any) and its accumulated per-bank competitor demands.
type slot struct {
	task   model.TaskID // NoTask when the core is idle
	finish model.Cycles
	// comp[b] holds the competitor demands accumulated against this task
	// on bank b, grouped per initiator core unless the options request
	// separate competitors. Slices are reused across tasks occupying the
	// slot to avoid per-event allocation.
	comp [][]arbiter.Request
	// terms[b][i] caches the additive per-competitor bound term
	// Bound(dst, {comp[b][i]}, b) for the task currently in the slot: the
	// memoized running-IBUS state of the fast path. When an interferer's
	// demand grows, only its term is re-evaluated and the delta applied —
	// one single-competitor arbiter call per update instead of a rescan of
	// the whole competitor set. Maintained only on the fast path; reset
	// together with comp when a new task opens.
	terms [][]model.Cycles
	// compIdx[b][c] is the position in comp[b] of initiator core c's merged
	// entry, or -1 when core c has no entry yet, so the fast path locates a
	// growing competitor in O(1) instead of scanning comp[b]. Maintained
	// only on the merged fast path; the uncached oracle keeps its linear
	// scan so an index bug cannot hide in both sides of the differential
	// tests. Invariant: compIdx[b][c] >= 0 exactly for the cores present in
	// comp[b] (when maintained), so clearing walks the entries, not the
	// whole core range.
	compIdx [][]int32
}

type state struct {
	img      *engine.Image
	ord      *engine.Orders
	arb      arbiter.Arbiter
	deadline model.Cycles
	separate bool
	// fast selects the cached-IBUS fast path: the arbiter's bound
	// decomposes per competitor and the options did not request the
	// uncached reference oracle.
	fast   bool
	trace  func(sched.Event)
	cancel <-chan struct{}

	res *sched.Result

	depsLeft []int          // unresolved dependencies per task
	headIdx  []int          // next position in each core's execution order
	slots    []slot         // per-core alive state
	minRels  []model.Cycles // sorted minimal release dates of tasks that have one
	relPtr   int

	t      model.Cycles // cursor: the event instant about to be processed
	closed int
	events int

	// ckpt, when non-nil, is invoked at the top of every event iteration,
	// before the event at the current cursor is processed. The warm-start
	// Scheduler uses it to capture checkpoints at event boundaries; it is
	// nil for one-shot runs and during replays.
	ckpt func()

	// scratch is the reusable one-element request slice of the additive
	// fast path; keeping it in state avoids a heap allocation on every
	// interference update (the slice escapes through the Arbiter
	// interface).
	scratch []arbiter.Request

	// Parallel Alive-set exchange (Options.Parallelism > 1, no trace).
	// The per-event interference exchange partitions by *destination*
	// core: every alive destination's competitor sets, memoized terms and
	// result rows are exclusively owned, so each partition replays its
	// destinations' exact sequential source order with no synchronization
	// beyond the kernel's fork-join barrier — bit-identical by
	// construction at every partition count (DESIGN §3.7).
	par        bool                // parallel exchange enabled
	parts      int                 // fixed partition count (≤ cores)
	kern       *engine.Kernel      // fork-join worker group, lazily spawned
	mark       []uint8             // per-core alive marks for the current event
	news       []model.CoreID      // cores opened at the current event, ascending
	parScratch [][]arbiter.Request // per-partition fast-path scratch
}

// Per-core alive marks of one event's exchange phase.
const (
	markIdle uint8 = iota // core not alive after the opens
	markOld               // alive before this event's opens
	markNew               // opened at this event
)

// newState builds the run state over a compiled image, reading the per-core
// orders from ord. The image's compiled options select arbiter, deadline,
// competitor merging, fast path, trace, and default cancellation.
func newState(img *engine.Image, ord *engine.Orders) *state {
	n := img.NumTasks
	s := &state{
		img:      img,
		ord:      ord,
		arb:      img.Opts.Arbiter,
		deadline: img.Opts.Deadline,
		separate: img.Opts.SeparateCompetitors,
		fast:     img.Opts.Arbiter.Additive() && !img.Opts.DisableFastPath,
		trace:    img.Opts.Trace,
		cancel:   img.Opts.Cancel,
		res:      sched.NewResult(Algorithm, n, img.Banks),
		depsLeft: make([]int, n),
		headIdx:  make([]int, img.Cores),
		slots:    make([]slot, img.Cores),
		scratch:  make([]arbiter.Request, 1),
	}
	for _, m := range img.MinRelease {
		if m > 0 {
			s.minRels = append(s.minRels, m)
		}
	}
	sort.Slice(s.minRels, func(i, j int) bool { return s.minRels[i] < s.minRels[j] })
	for k := range s.slots {
		s.slots[k].comp = make([][]arbiter.Request, img.Banks)
		s.slots[k].terms = make([][]model.Cycles, img.Banks)
		s.slots[k].compIdx = make([][]int32, img.Banks)
		for b := range s.slots[k].compIdx {
			s.slots[k].compIdx[b] = make([]int32, img.Cores)
		}
	}
	// Parallel exchange: more partitions than cores cannot help (the
	// exchange partitions by destination core), and a trace hook needs the
	// sequential event interleaving, so both degrade to the sequential
	// path. The kernel is constructed here but spawns its workers only on
	// the first event that actually has parallel work.
	if parts := img.Opts.Workers(); parts > 1 && img.Opts.Trace == nil {
		if parts > img.Cores {
			parts = img.Cores
		}
		if parts > 1 {
			s.par = true
			s.parts = parts
			s.kern = engine.NewKernel(parts)
			s.kern.SetTask(s.exchangePart)
			s.mark = make([]uint8, img.Cores)
			s.news = make([]model.CoreID, 0, img.Cores)
			s.parScratch = make([][]arbiter.Request, parts)
			for p := range s.parScratch {
				s.parScratch[p] = make([]arbiter.Request, 1)
			}
		}
	}
	s.reset()
	return s
}

// close releases the parallel kernel's parked workers, if any. The state
// stays usable: the next parallel event respawns them.
func (s *state) close() {
	if s.kern != nil {
		s.kern.Close()
	}
}

// reset rewinds the state to the initial instant (cursor 0, nothing closed,
// nothing alive) without allocating: every buffer is truncated or zeroed in
// place so that a pooled state can re-run — possibly after the order
// overlay was permuted — at zero steady-state allocation cost. Min-release
// dates and dependency counts are order-independent, so they are rebuilt
// from the image without re-sorting.
//
//mia:hotpath
func (s *state) reset() {
	for i := range s.depsLeft {
		s.depsLeft[i] = s.img.PredCount(model.TaskID(i))
	}
	for k := range s.headIdx {
		s.headIdx[k] = 0
	}
	for k := range s.slots {
		sl := &s.slots[k]
		sl.task = model.NoTask
		sl.finish = 0
		for b := range sl.comp {
			sl.comp[b] = sl.comp[b][:0]
			sl.terms[b] = sl.terms[b][:0]
			idx := sl.compIdx[b]
			for c := range idx {
				idx[c] = -1
			}
		}
	}
	s.relPtr = 0
	s.t = 0
	s.closed = 0
	s.events = 0
	s.res.Reset()
}

func (s *state) emit(kind sched.EventKind, t model.Cycles, task model.TaskID, value model.Cycles) {
	if s.trace != nil {
		s.trace(sched.Event{Kind: kind, Time: t, Task: task, Value: value})
	}
}

// run is the event loop of Algorithm 1.
//
//mia:hotpath steady-state event loop: 0 allocs/op pinned by alloc_test.go
func (s *state) run() (*sched.Result, error) {
	n := s.img.NumTasks
	for s.closed < n {
		if s.cancel != nil {
			select {
			case <-s.cancel:
				return nil, sched.ErrCanceled
			default:
			}
		}
		// Checkpoint hook: the state right here — before the event at s.t
		// is processed — is exactly what a warm restart needs to capture,
		// because re-entering this loop with a restored state replays the
		// event at s.t and everything after it with no special casing.
		if s.ckpt != nil {
			s.ckpt()
		}
		s.events++
		s.emit(sched.EventCursor, s.t, model.NoTask, 0)

		// Step 1-2: close alive tasks ending at t and release dependents.
		s.closeAt(s.t)

		// Step 3-4: open ready heads of the per-core execution orders.
		// Newly opened tasks immediately join the alive set, so several
		// tasks opening at the same event see each other (step 5 pairing
		// happens inside open). The parallel variant computes the same
		// opens sequentially, then partitions the pairing by destination
		// core — bit-identical, kept as a separate function so the
		// sequential path stays the differential oracle.
		if s.par {
			s.openAtPar(s.t)
		} else {
			s.openAt(s.t)
		}

		if s.closed == n {
			break
		}

		// Step 6: advance the cursor to the next event.
		tNext := model.Infinity
		for k := range s.slots {
			if s.slots[k].task != model.NoTask && s.slots[k].finish < tNext {
				tNext = s.slots[k].finish
			}
		}
		for s.relPtr < len(s.minRels) && s.minRels[s.relPtr] <= s.t {
			s.relPtr++
		}
		if s.relPtr < len(s.minRels) && s.minRels[s.relPtr] < tNext {
			tNext = s.minRels[s.relPtr]
		}
		if tNext == model.Infinity {
			return nil, sched.Deadlock(s.t, s.firstBlocked())
		}
		if tNext > s.deadline {
			return nil, sched.DeadlineExceeded(tNext)
		}
		s.t = tNext
	}
	s.res.Iterations = s.events
	s.res.RecomputeMakespan()
	if s.res.Makespan > s.deadline {
		return nil, sched.DeadlineExceeded(s.res.Makespan)
	}
	return s.res, nil
}

// closeAt closes every alive task whose finish date equals t.
//
//mia:hotpath
func (s *state) closeAt(t model.Cycles) {
	for k := range s.slots {
		sl := &s.slots[k]
		if sl.task == model.NoTask || sl.finish != t {
			continue
		}
		id := sl.task
		s.res.Response[id] = s.img.WCET[id] + s.res.Interference[id]
		for _, succ := range s.img.Succs(id) {
			s.depsLeft[succ]--
		}
		sl.task = model.NoTask
		s.closed++
		s.emit(sched.EventClose, t, id, 0)
	}
}

// openAt opens, on every idle core, the head of the execution order if its
// dependencies are closed and its minimal release date has passed, fixing
// its release date to t and exchanging interference with the alive set.
//
//mia:hotpath
func (s *state) openAt(t model.Cycles) {
	for k := range s.slots {
		sl := &s.slots[k]
		if sl.task != model.NoTask {
			continue // core busy: at most one alive task per core
		}
		order := s.ord.Order(model.CoreID(k))
		if s.headIdx[k] >= len(order) {
			continue
		}
		id := order[s.headIdx[k]]
		if s.depsLeft[id] > 0 || s.img.MinRelease[id] > t {
			continue
		}
		s.headIdx[k]++
		sl.task = id
		s.res.Release[id] = t
		s.res.Interference[id] = 0
		sl.finish = t + s.img.WCET[id]
		for b := range sl.comp {
			for _, r := range sl.comp[b] {
				sl.compIdx[b][r.Core] = -1
			}
			sl.comp[b] = sl.comp[b][:0]
			sl.terms[b] = sl.terms[b][:0]
		}
		s.emit(sched.EventOpen, t, id, 0)

		// Step 5: exchange interference with every other alive task. Each
		// unordered pair of tasks becomes co-alive exactly when the later
		// one opens, so processing pairs here accounts every interference
		// exactly once — the "if src not already accounted" bookkeeping of
		// Algorithm 1 is implicit.
		for k2 := range s.slots {
			other := &s.slots[k2]
			if k2 == k || other.task == model.NoTask {
				continue
			}
			s.addCompetitor(t, sl, id, other.task, s.scratch)
			s.addCompetitor(t, other, other.task, id, s.scratch)
		}
	}
}

// openAtPar is openAt with the step-5 pairing partitioned across the
// kernel. Phase one is sequential and identical to openAt's open decisions:
// they read only dependency counts, head indices and minimal releases —
// never interference — so splitting them off changes nothing. It records
// which cores were already alive (markOld) and which opened now (markNew,
// collected ascending in news). Phase two runs exchangePart over every
// partition; each partition owns a contiguous destination-core range and
// replays, per destination, the exact source order the sequential pairing
// would have used, so the accumulated competitor sets, memoized terms, and
// result rows are bit-identical at any partition count.
//
//mia:hotpath
func (s *state) openAtPar(t model.Cycles) {
	s.news = s.news[:0]
	for k := range s.slots {
		sl := &s.slots[k]
		if sl.task != model.NoTask {
			s.mark[k] = markOld
			continue
		}
		s.mark[k] = markIdle
		order := s.ord.Order(model.CoreID(k))
		if s.headIdx[k] >= len(order) {
			continue
		}
		id := order[s.headIdx[k]]
		if s.depsLeft[id] > 0 || s.img.MinRelease[id] > t {
			continue
		}
		s.headIdx[k]++
		sl.task = id
		s.res.Release[id] = t
		s.res.Interference[id] = 0
		sl.finish = t + s.img.WCET[id]
		for b := range sl.comp {
			for _, r := range sl.comp[b] {
				sl.compIdx[b][r.Core] = -1
			}
			sl.comp[b] = sl.comp[b][:0]
			sl.terms[b] = sl.terms[b][:0]
		}
		s.mark[k] = markNew
		s.news = append(s.news, model.CoreID(k))
	}
	alive := s.aliveCount()
	if len(s.news) == 0 || alive < 2 {
		return // no new pairs to exchange
	}
	// Small events are exchanged inline: below the cutoff the pairing work
	// cannot amortize the fork/join signaling, and the inline path walks
	// the same destinations in the same order, so the choice is invisible
	// in the results.
	if len(s.news)*alive < parExchangeCutoff {
		s.exchangeRange(0, len(s.slots), s.parScratch[0])
		return
	}
	s.kern.Run()
}

// parExchangeCutoff is the minimum pairing-work estimate (newly opened
// tasks × alive tasks) at which one event's exchange is worth a kernel
// fork/join; smaller events run inline on the caller.
const parExchangeCutoff = 128

// aliveCount counts the cores with an alive task.
//
//mia:hotpath
func (s *state) aliveCount() int {
	n := 0
	for k := range s.slots {
		if s.slots[k].task != model.NoTask {
			n++
		}
	}
	return n
}

// exchangePart performs the step-5 interference exchange for the alive
// destinations of one partition's core range. For every destination it
// replays the sequential pairing's source order exactly:
//
//   - an old-alive destination receives the newly opened tasks in
//     ascending core order (in openAt, each new task pairs with it as the
//     new task opens, and opens happen in ascending core order);
//   - a newly opened destination on core k first receives, in ascending
//     core order, every task alive at the moment k opened (the old-alive
//     set plus the news below k — openAt's inner pairing loop), then the
//     news above k in ascending core order (each pairs with k as it
//     opens).
//
// All writes — competitor sets, memoized terms, compIdx, PerBank row,
// Interference, finish — are owned by the destination, so partitions never
// race; integer sums in replayed order make the merge exact, not
// approximate.
//
//mia:hotpath
func (s *state) exchangePart(part int) {
	lo, hi := engine.PartitionRange(len(s.slots), s.parts, part)
	s.exchangeRange(lo, hi, s.parScratch[part])
}

// exchangeRange is exchangePart's body over an explicit destination-core
// range; the inline small-event path runs it over all cores on the caller.
//
//mia:hotpath
func (s *state) exchangeRange(lo, hi int, scratch []arbiter.Request) {
	for k := lo; k < hi; k++ {
		sl := &s.slots[k]
		switch s.mark[k] {
		case markOld:
			dst := sl.task
			for _, k2 := range s.news {
				s.addCompetitor(s.t, sl, dst, s.slots[k2].task, scratch)
			}
		case markNew:
			dst := sl.task
			for k2 := range s.slots {
				if k2 == k {
					continue
				}
				if m := s.mark[k2]; m == markOld || (m == markNew && k2 < k) {
					s.addCompetitor(s.t, sl, dst, s.slots[k2].task, scratch)
				}
			}
			for k2 := k + 1; k2 < len(s.slots); k2++ {
				if s.mark[k2] == markNew {
					s.addCompetitor(s.t, sl, dst, s.slots[k2].task, scratch)
				}
			}
		}
	}
}

// addCompetitor accounts src's demand against dst (alive in slot sl) on
// every bank they share, and refreshes dst's interference and finish date.
// The shared banks are the AND of the two tasks' demand bitsets, walked
// word-at-a-time in ascending bank order — the blocked form of the former
// per-bank scan over the zero-extended demand rows, visiting exactly the
// banks that scan would have charged, in the same order. scratch is the
// caller-owned one-element request buffer of the additive fast path (per
// partition under parallel exchange, so concurrent destinations never share
// it).
//
//mia:hotpath
func (s *state) addCompetitor(t model.Cycles, sl *slot, dst, src model.TaskID, scratch []arbiter.Request) {
	var grew model.Cycles
	dstRow := s.img.DemandRow(dst)
	srcRow := s.img.DemandRow(src)
	srcMask := s.img.DemandMaskRow(src)
	for wi, mw := range s.img.DemandMaskRow(dst) {
		mw &= srcMask[wi]
		for mw != 0 {
			b := wi<<6 + bits.TrailingZeros64(mw)
			mw &= mw - 1
			grew += s.accountOnBank(sl, dst, src, model.BankID(b), dstRow[b], srcRow[b], scratch)
		}
	}
	if grew == 0 {
		return
	}
	s.res.Interference[sl.task] += grew
	sl.finish += grew
	s.emit(sched.EventInterference, t, sl.task, s.res.Interference[sl.task])
}

// accountOnBank merges src's demand w into dst's competitor set on bank b
// and returns the growth of dst's interference bound on that bank. scratch
// is the caller's one-element fast-path buffer.
//
//mia:hotpath
func (s *state) accountOnBank(sl *slot, dst, src model.TaskID, b model.BankID, d, w model.Accesses, scratch []arbiter.Request) model.Cycles {
	dstReq := arbiter.Request{Core: s.img.CoreOf[dst], Demand: d}
	srcCore := s.img.CoreOf[src]
	comps := sl.comp[b]

	if s.separate {
		// Every task is its own competitor entry.
		req := arbiter.Request{Core: srcCore, Demand: w}
		sl.comp[b] = append(comps, req)
		if s.fast {
			term := arbiter.One(s.arb, dstReq, req, b, scratch)
			sl.terms[b] = append(sl.terms[b], term)
			s.res.PerBank[sl.task][b] += term
			return term
		}
		return s.recomputeBank(sl, dstReq, b)
	}

	if !s.fast {
		// Reference oracle: locate src's entry by linear scan (the index is
		// a fast-path optimization; the oracle stays the dumb, obviously
		// correct code the differential tests compare against), mutate the
		// competitor set, then re-evaluate the full bound over it.
		idx := -1
		for i := range comps {
			if comps[i].Core == srcCore {
				idx = i
				break
			}
		}
		if idx >= 0 {
			comps[idx].Demand += w
		} else {
			sl.comp[b] = append(comps, arbiter.Request{Core: srcCore, Demand: w})
		}
		return s.recomputeBank(sl, dstReq, b)
	}
	// Cached-IBUS fast path: the bound is a sum of per-entry terms and
	// terms[b] memoizes each entry's current term, so a growing entry costs
	// one single-competitor evaluation plus a subtraction — O(1) per update
	// instead of a rescan of the competitor set. This is the speed-up that
	// the additivity property of Section II.C enables. compIdx finds the
	// entry of src's core in O(1), replacing the former linear scan.
	idx := int(sl.compIdx[b][srcCore])
	if idx < 0 {
		req := arbiter.Request{Core: srcCore, Demand: w}
		sl.compIdx[b][srcCore] = int32(len(comps))
		sl.comp[b] = append(comps, req)
		term := arbiter.One(s.arb, dstReq, req, b, scratch)
		sl.terms[b] = append(sl.terms[b], term)
		s.res.PerBank[sl.task][b] += term
		return term
	}
	comps[idx].Demand += w
	term := arbiter.One(s.arb, dstReq, comps[idx], b, scratch)
	delta := term - sl.terms[b][idx]
	sl.terms[b][idx] = term
	s.res.PerBank[sl.task][b] += delta
	return delta
}

// recomputeBank re-evaluates the full arbiter bound for one bank (the
// general, non-additive path) and returns the growth.
//
//mia:hotpath
func (s *state) recomputeBank(sl *slot, dstReq arbiter.Request, b model.BankID) model.Cycles {
	bound := s.arb.Bound(dstReq, sl.comp[b], b)
	delta := bound - s.res.PerBank[sl.task][b]
	s.res.PerBank[sl.task][b] = bound
	return delta
}

// firstBlocked names a task that can never start, for deadlock diagnostics:
// the head of some core's order with unmet conditions, or NoTask.
func (s *state) firstBlocked() model.TaskID {
	for k := range s.slots {
		order := s.ord.Order(model.CoreID(k))
		if s.headIdx[k] < len(order) {
			return order[s.headIdx[k]]
		}
	}
	return model.NoTask
}
