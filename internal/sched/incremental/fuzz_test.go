package incremental

import (
	"math/rand"
	"testing"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// FuzzScheduleInvariants drives the scheduler with byte-seeded random
// graphs and checks that every produced schedule passes the independent
// invariant checker, and that failures are always proper unschedulability
// errors (never panics or silent corruption).
func FuzzScheduleInvariants(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), false)
	f.Add(int64(42), uint8(16), uint8(1), true)
	f.Add(int64(-7), uint8(2), uint8(4), false)
	f.Fuzz(func(t *testing.T, seed int64, coresByte, banksByte uint8, separate bool) {
		cores := int(coresByte)%8 + 1
		banks := int(banksByte)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		b := model.NewBuilder(cores, banks)
		for i := 0; i < n; i++ {
			b.AddTask(model.TaskSpec{
				WCET:       model.Cycles(rng.Intn(300)),
				Core:       model.CoreID(rng.Intn(cores)),
				MinRelease: model.Cycles(rng.Intn(1000)),
				Local:      model.Accesses(rng.Intn(200)),
			})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(6) == 0 {
					b.AddEdge(model.TaskID(i), model.TaskID(j), model.Accesses(rng.Intn(60)))
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("generator produced invalid graph: %v", err)
		}
		opts := sched.Options{SeparateCompetitors: separate}
		res, err := Schedule(g, opts)
		if err != nil {
			t.Fatalf("schedulable DAG rejected: %v", err)
		}
		if err := sched.Check(g, opts, res); err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
	})
}
