package incremental

import (
	"context"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/sched"
)

// backend adapts this package to the engine registry: cold Analyze builds
// per-run state over the shared image (safe for concurrent use — the image
// is read-only), NewWarm hands out single-goroutine warm schedulers.
type backend struct{}

func init() { engine.Register(engine.Incremental, backend{}) }

// Analyze runs one cold analysis of the image's baseline orders. A parallel
// run's kernel workers are scoped to the call: they spawn on the first
// parallel event and are joined before returning, so cold analyses never
// strand goroutines.
func (backend) Analyze(ctx context.Context, img *engine.Image) (*sched.Result, error) {
	st := newState(img, img.NewOrders())
	st.cancel = img.CancelWith(ctx)
	defer st.close()
	return st.run()
}

// NewWarm returns a warm-start scheduler over the image, exposed through
// the engine's Warm interface.
func (backend) NewWarm(img *engine.Image) engine.Warm {
	return &warmScheduler{sc: newWarmScheduler(img)}
}

// warmScheduler adapts Scheduler to engine.Warm: the context's Done channel
// (when cancellable) replaces the compiled cancellation channel for the
// duration of the call, matching the per-request deadline pattern of the
// serving layer. It exists as a separate type because Scheduler's own
// Reschedule takes edits only — the harness-facing API predates the engine
// and stays source-compatible.
type warmScheduler struct{ sc *Scheduler }

func (w *warmScheduler) Orders() *engine.Orders { return w.sc.Orders() }

func (w *warmScheduler) Warm() bool { return w.sc.Warm() }

// setCancel installs the context's cancellation for one call, falling back
// to the image's compiled Options.Cancel when the context is not cancellable
// (context.Background reports a nil Done channel). The fallback is installed
// unconditionally so an expired channel from an earlier cancelled request
// can never poison later background-context runs.
//
//mia:hotpath
func (w *warmScheduler) setCancel(ctx context.Context) {
	if d := ctx.Done(); d != nil {
		w.sc.SetCancel(d)
	} else {
		w.sc.SetCancel(w.sc.img.Opts.Cancel)
	}
}

func (w *warmScheduler) Analyze(ctx context.Context) (*sched.Result, error) {
	w.setCancel(ctx)
	return w.sc.Schedule()
}

func (w *warmScheduler) AnalyzeCold(ctx context.Context) (*sched.Result, error) {
	w.setCancel(ctx)
	return w.sc.scheduleCold()
}

//mia:hotpath warm replay entry: 0 allocs/op pinned by the engine alloc guard
func (w *warmScheduler) Reschedule(ctx context.Context, edits ...engine.Edit) (*sched.Result, error) {
	w.setCancel(ctx)
	return w.sc.Reschedule(edits...)
}

// Close releases the parked kernel workers of a parallel Scheduler
// (engine.CloseWarm reaches it through the optional-Close assertion). The
// analyzer stays usable afterwards.
func (w *warmScheduler) Close() { w.sc.Close() }
