package incremental

import (
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// benchGraph builds an NL-shaped (few wide layers) benchmark instance of n
// tasks — the shape where per-core orders are long and warm-start replays
// skip the most work.
func benchGraph(b *testing.B, layers, layerSize int) *model.Graph {
	b.Helper()
	p := gen.NewParams(layers, layerSize)
	p.Seed = 1
	p.Cores, p.Banks = 8, 4
	return gen.MustLayered(p)
}

// BenchmarkScheduleIncremental measures one full cold analysis through the
// reusable Scheduler (checkpoint recording on, steady-state buffers warm).
// The b.ReportMetric of allocs/op is the number the CI smoke job tracks: the
// event loop must stay at zero.
func BenchmarkScheduleIncremental(b *testing.B) {
	for _, size := range []struct{ layers, layerSize int }{
		{4, 16},  // n=64
		{4, 64},  // n=256
		{4, 128}, // n=512
	} {
		n := size.layers * size.layerSize
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(b, size.layers, size.layerSize)
			sc := NewScheduler(g, sched.Options{})
			if _, err := sc.Schedule(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Schedule(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRescheduleWarm measures the warm-start path against the cold
// baseline on the same adjacent-swap neighbor: swap, re-analyze, swap back,
// re-analyze — the exact cycle of neighborhood search. The warm/cold ratio
// is the tentpole's headline number.
func BenchmarkRescheduleWarm(b *testing.B) {
	for _, size := range []struct{ layers, layerSize int }{
		{4, 64},  // n=256
		{4, 128}, // n=512
	} {
		n := size.layers * size.layerSize
		g := benchGraph(b, size.layers, size.layerSize)
		// Swap deep in core 0's order: a realistic late-neighborhood move.
		order := g.Order(0)
		pos := len(order) * 3 / 4
		dep := false
		for _, e := range g.Edges() {
			if e.From == order[pos] && e.To == order[pos+1] {
				dep = true
			}
		}
		if dep {
			pos--
		}
		edits := []Edit{{Core: 0, From: pos}}

		b.Run(fmt.Sprintf("n=%d/warm", n), func(b *testing.B) {
			sc := NewScheduler(g, sched.Options{})
			if _, err := sc.Schedule(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.SwapOrder(0, pos)
				if _, err := sc.Reschedule(edits...); err != nil {
					b.Fatal(err)
				}
				g.SwapOrder(0, pos)
				if _, err := sc.Reschedule(edits...); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/cold", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.SwapOrder(0, pos)
				if _, err := Schedule(g, sched.Options{}); err != nil {
					b.Fatal(err)
				}
				g.SwapOrder(0, pos)
				if _, err := Schedule(g, sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
