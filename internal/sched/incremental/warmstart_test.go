package incremental

import (
	"errors"
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// legalSwapSites enumerates (core, pos) adjacent swaps that keep the graph
// structurally valid: no direct dependency between the swapped pair and
// Validate accepting the swapped order. Cross-core deadlocks may survive
// this filter — exactly as in the explorer — so scheduling a swapped
// candidate may still fail, and the differential tests assert that warm and
// cold agree on the failure too.
func legalSwapSites(g *model.Graph) [][2]int {
	dep := make(map[[2]model.TaskID]bool)
	for _, e := range g.Edges() {
		dep[[2]model.TaskID{e.From, e.To}] = true
	}
	var sites [][2]int
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		for pos := 0; pos+1 < len(order); pos++ {
			if dep[[2]model.TaskID{order[pos], order[pos+1]}] {
				continue
			}
			g.SwapOrder(model.CoreID(k), pos)
			ok := g.Validate() == nil
			g.SwapOrder(model.CoreID(k), pos)
			if ok {
				sites = append(sites, [2]int{k, pos})
			}
		}
	}
	return sites
}

// sampleSites thins a site list to at most max entries spread evenly across
// it, so the corpus sweep touches front, middle and tail positions (tail
// swaps exercise deep checkpoints, front swaps the cold-fallback path)
// without exploding the runtime.
func sampleSites(sites [][2]int, max int) [][2]int {
	if len(sites) <= max {
		return sites
	}
	out := make([][2]int, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, sites[i*(len(sites)-1)/(max-1)])
	}
	return out
}

// assertWarmMatchesCold compares one warm-started re-analysis against a cold
// Schedule of the same mutated graph: identical error verdicts, and
// bit-identical schedules (including per-bank splits and event counts) when
// schedulable.
func assertWarmMatchesCold(t *testing.T, label string, sc *Scheduler, g *model.Graph, opts sched.Options, edits ...Edit) {
	t.Helper()
	warm, werr := sc.Reschedule(edits...)
	cold, cerr := Schedule(g, opts)
	if (werr == nil) != (cerr == nil) {
		t.Fatalf("%s: warm err %v, cold err %v", label, werr, cerr)
	}
	if werr != nil {
		if !errors.Is(werr, sched.ErrUnschedulable) || !errors.Is(cerr, sched.ErrUnschedulable) {
			t.Fatalf("%s: non-unschedulable failure: warm %v, cold %v", label, werr, cerr)
		}
		return
	}
	identical(t, label, warm, cold)
}

// TestWarmStartMatchesColdSchedule is the warm-start half of the
// differential contract: across the full corpus (≥200 instances), every
// additive arbiter, both competitor-merging modes and both fast/oracle
// paths, replaying an adjacent-swap neighbor from a restored checkpoint must
// reproduce the cold analysis of the mutated graph bit for bit — Release,
// Response, Interference, PerBank and the event count — and undoing the swap
// must reproduce the committed baseline bit for bit as well.
func TestWarmStartMatchesColdSchedule(t *testing.T) {
	arbiters := []arbiter.Arbiter{
		arbiter.NewRoundRobin(1),
		arbiter.NewRoundRobin(3),
		arbiter.NewWeightedRR(1, func(c model.CoreID) int64 { return int64(c)%2 + 1 }),
	}
	corpus := differentialCorpus()
	if len(corpus) < 200 {
		t.Fatalf("differential corpus has %d instances, want ≥ 200", len(corpus))
	}
	instances := 0
	for ci, p := range corpus {
		g, err := gen.Layered(p)
		if err != nil {
			t.Fatalf("corpus[%d]: %v", ci, err)
		}
		opts := sched.Options{
			Arbiter:             arbiters[ci%len(arbiters)],
			SeparateCompetitors: ci%2 == 1,
			// Exercise the uncached oracle path under warm start too: the
			// checkpoint/replay machinery must be path-agnostic.
			DisableFastPath: ci%5 == 4,
		}
		label := fmt.Sprintf("corpus[%d] %d layers × %d, %d×%d shared=%v arb=%s separate=%v oracle=%v",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank,
			opts.EffectiveArbiter().Name(), opts.SeparateCompetitors, opts.DisableFastPath)

		sc := NewScheduler(g, opts)
		baseWarm, err := sc.Schedule()
		if err != nil {
			t.Fatalf("%s: base schedule: %v", label, err)
		}
		baseCold, err := Schedule(g, opts)
		if err != nil {
			t.Fatalf("%s: base cold: %v", label, err)
		}
		identical(t, label+" base", baseWarm, baseCold)

		for si, site := range sampleSites(legalSwapSites(g), 5) {
			k, pos := site[0], site[1]
			swapLabel := fmt.Sprintf("%s swap[%d]=(core %d, pos %d)", label, si, k, pos)
			g.SwapOrder(model.CoreID(k), pos)
			assertWarmMatchesCold(t, swapLabel, sc, g, opts, Edit{Core: model.CoreID(k), From: pos})
			g.SwapOrder(model.CoreID(k), pos) // undo
			// The baseline checkpoints must have survived the excursion:
			// rescheduling the undone graph reproduces the base run.
			if si == 0 {
				back, err := sc.Reschedule(Edit{Core: model.CoreID(k), From: pos})
				if err != nil {
					t.Fatalf("%s: reschedule after undo: %v", swapLabel, err)
				}
				identical(t, swapLabel+" undo", back, baseCold)
			}
		}
		instances++
	}
	if instances < 200 {
		t.Fatalf("only %d instances compared", instances)
	}
}

// TestWarmStartMultiEdit pins the multi-site contract: when the graph
// diverges from the baseline at several cores at once (an accepted move plus
// a candidate, the steady state of annealing), Reschedule must restore a
// checkpoint preceding every site and still match the cold analysis.
func TestWarmStartMultiEdit(t *testing.T) {
	p := gen.NewParams(8, 6)
	p.Seed = 42
	p.Cores, p.Banks = 4, 4
	g := gen.MustLayered(p)
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	sc := NewScheduler(g, opts)
	if _, err := sc.Schedule(); err != nil {
		t.Fatal(err)
	}
	sites := legalSwapSites(g)
	if len(sites) < 2 {
		t.Skip("graph has fewer than two legal swap sites")
	}
	applied := 0
	var edits []Edit
	for _, site := range sites {
		if applied == 2 {
			break
		}
		if len(edits) > 0 && model.CoreID(site[0]) == edits[0].Core {
			continue // want two distinct cores
		}
		g.SwapOrder(model.CoreID(site[0]), site[1])
		if g.Validate() != nil {
			g.SwapOrder(model.CoreID(site[0]), site[1])
			continue
		}
		edits = append(edits, Edit{Core: model.CoreID(site[0]), From: site[1]})
		applied++
	}
	if applied < 2 {
		t.Skip("could not combine two swaps on distinct cores")
	}
	assertWarmMatchesCold(t, "multi-edit", sc, g, opts, edits...)
}

// TestWarmStartFrontSwapFallsBackCold covers the no-safe-checkpoint path: a
// swap at position 0 diverges before the very first event, so Reschedule
// must replay cold — and still match, without touching the baseline.
func TestWarmStartFrontSwapFallsBackCold(t *testing.T) {
	p := gen.NewParams(6, 6)
	p.Seed = 7
	p.Cores, p.Banks = 4, 2
	g := gen.MustLayered(p)
	opts := sched.Options{}
	sc := NewScheduler(g, opts)
	base, err := sc.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	baseCopy, err := Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "base", base, baseCopy)
	for _, site := range legalSwapSites(g) {
		if site[1] != 0 {
			continue
		}
		g.SwapOrder(model.CoreID(site[0]), site[1])
		assertWarmMatchesCold(t, "front swap", sc, g, opts, Edit{Core: model.CoreID(site[0]), From: 0})
		g.SwapOrder(model.CoreID(site[0]), site[1])
		back, err := sc.Reschedule(Edit{Core: model.CoreID(site[0]), From: 0})
		if err != nil {
			t.Fatal(err)
		}
		identical(t, "front swap undo", back, baseCopy)
		return
	}
	t.Skip("no legal front swap in this instance")
}

// TestRescheduleWithoutBaseBehavesAsSchedule pins the degenerate entry
// point: a Reschedule before any Schedule commits a cold run.
func TestRescheduleWithoutBaseBehavesAsSchedule(t *testing.T) {
	p := gen.NewParams(5, 5)
	p.Cores, p.Banks = 4, 2
	g := gen.MustLayered(p)
	opts := sched.Options{}
	sc := NewScheduler(g, opts)
	warm, err := sc.Reschedule()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "no-base reschedule", warm, cold)
}
