package incremental

import (
	"errors"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// TestFigure1 reproduces experiment E1: the paper's worked example must
// yield exactly the published schedule — interference 1, 1, 0, 2, 0 on
// n0..n4 and a global WCRT of 7 cycles under the round-robin arbiter.
func TestFigure1(t *testing.T) {
	g := gen.Figure1()
	res, err := Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	wantRelease := []model.Cycles{0, 3, 6, 0, 5}
	wantInter := []model.Cycles{1, 1, 0, 2, 0}
	for i := range wantRelease {
		if res.Release[i] != wantRelease[i] {
			t.Errorf("release[n%d] = %d, want %d", i, res.Release[i], wantRelease[i])
		}
		if res.Interference[i] != wantInter[i] {
			t.Errorf("interference[n%d] = %d, want %d (paper Figure 1)", i, res.Interference[i], wantInter[i])
		}
	}
	if res.Makespan != 7 {
		t.Errorf("makespan = %d, want 7 (paper Figure 1 bottom)", res.Makespan)
	}
	if err := sched.Check(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)}, res); err != nil {
		t.Errorf("Check: %v", err)
	}
}

// TestFigure1NoInterference reproduces the top half of Figure 1: ignoring
// interference the same task set spans only 6 cycles.
func TestFigure1NoInterference(t *testing.T) {
	g := gen.Figure1()
	res, err := Schedule(g, sched.Options{Arbiter: arbiter.NewNone()})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Makespan != 6 {
		t.Errorf("makespan = %d, want 6 (paper Figure 1 top)", res.Makespan)
	}
	wantRelease := []model.Cycles{0, 2, 4, 0, 4}
	for i := range wantRelease {
		if res.Release[i] != wantRelease[i] {
			t.Errorf("release[n%d] = %d, want %d", i, res.Release[i], wantRelease[i])
		}
		if res.Interference[i] != 0 {
			t.Errorf("interference[n%d] = %d, want 0", i, res.Interference[i])
		}
	}
}

// TestFigure2Partition reproduces experiment E2: at the cursor event t = 5
// on the Figure 2 task set, the algorithm closes n6, keeps n0, n4 and n9
// alive, and opens n7 — the running example of Section IV.
func TestFigure2Partition(t *testing.T) {
	g := gen.Figure2()
	byName := make(map[string]model.TaskID)
	for _, task := range g.Tasks() {
		byName[task.Name] = task.ID
	}

	var closedAt5, openedAt5 []model.TaskID
	aliveNow := make(map[model.TaskID]bool)
	var aliveJustBefore5 []model.TaskID
	res, err := Schedule(g, sched.Options{Trace: func(e sched.Event) {
		switch e.Kind {
		case sched.EventCursor:
			if e.Time == 5 {
				for id := range aliveNow {
					aliveJustBefore5 = append(aliveJustBefore5, id)
				}
			}
		case sched.EventOpen:
			aliveNow[e.Task] = true
			if e.Time == 5 {
				openedAt5 = append(openedAt5, e.Task)
			}
		case sched.EventClose:
			delete(aliveNow, e.Task)
			if e.Time == 5 {
				closedAt5 = append(closedAt5, e.Task)
			}
		}
	}})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}

	if len(closedAt5) != 1 || closedAt5[0] != byName["n6"] {
		t.Errorf("C at t=5 = %v, want {n6}", closedAt5)
	}
	if len(openedAt5) != 1 || openedAt5[0] != byName["n7"] {
		t.Errorf("O at t=5 = %v, want {n7}", openedAt5)
	}
	// Alive just before the event: n0, n4, n6, n9 (n6 about to close).
	wantAlive := map[model.TaskID]bool{
		byName["n0"]: true, byName["n4"]: true, byName["n6"]: true, byName["n9"]: true,
	}
	if len(aliveJustBefore5) != len(wantAlive) {
		t.Errorf("alive before t=5 = %v, want n0, n4, n6, n9", aliveJustBefore5)
	}
	for _, id := range aliveJustBefore5 {
		if !wantAlive[id] {
			t.Errorf("unexpected alive task %s before t=5", id)
		}
	}
	if err := sched.Check(g, sched.Options{}, res); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestSingleTask(t *testing.T) {
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 5, Local: 100})
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Release[0] != 0 || res.Response[0] != 5 || res.Makespan != 5 {
		t.Fatalf("single task schedule wrong: %+v", res)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := model.NewBuilder(2, 2).MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Makespan != 0 {
		t.Fatalf("empty graph makespan = %d", res.Makespan)
	}
}

func TestMinReleaseOnlyGap(t *testing.T) {
	// A single task with a far minimal release: the cursor must jump
	// straight there.
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 2, MinRelease: 1000})
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Release[0] != 1000 || res.Makespan != 1002 {
		t.Fatalf("release = %d, makespan = %d", res.Release[0], res.Makespan)
	}
	if res.Iterations > 3 {
		t.Errorf("cursor took %d events for a 2-event schedule", res.Iterations)
	}
}

func TestZeroWCETTasks(t *testing.T) {
	// Zero-length tasks open and close at the same cursor position; the
	// loop must still make progress.
	b := model.NewBuilder(1, 1)
	a := b.AddTask(model.TaskSpec{WCET: 0})
	c := b.AddTask(model.TaskSpec{WCET: 0})
	d := b.AddTask(model.TaskSpec{WCET: 3})
	b.AddEdge(a, c, 0)
	b.AddEdge(c, d, 0)
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", res.Makespan)
	}
	if err := sched.Check(g, sched.Options{}, res); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	g := gen.Figure1()
	_, err := Schedule(g, sched.Options{Deadline: 6}) // needs 7
	if !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("err = %v, want unschedulable", err)
	}
	var ue *sched.UnschedulableError
	if !errors.As(err, &ue) || ue.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline reason", err)
	}
	// Exactly at the makespan, it must be schedulable.
	if _, err := Schedule(g, sched.Options{Deadline: 7}); err != nil {
		t.Fatalf("deadline 7 should be feasible: %v", err)
	}
}

func TestCrossCoreDeadlock(t *testing.T) {
	// Core 0 order: a then b. Core 1 order: c then d. Dependencies d→a and
	// b→c close a cycle through the order edges: a waits for d, d waits
	// for c, c waits for b, b waits for a.
	b := model.NewBuilder(2, 1)
	a := b.AddTask(model.TaskSpec{Name: "a", WCET: 1, Core: 0})
	bb := b.AddTask(model.TaskSpec{Name: "b", WCET: 1, Core: 0})
	c := b.AddTask(model.TaskSpec{Name: "c", WCET: 1, Core: 1})
	d := b.AddTask(model.TaskSpec{Name: "d", WCET: 1, Core: 1})
	b.AddEdge(d, a, 0)
	b.AddEdge(bb, c, 0)
	b.SetOrder(0, []model.TaskID{a, bb})
	b.SetOrder(1, []model.TaskID{c, d})
	g := b.MustBuild()
	_, err := Schedule(g, sched.Options{})
	var ue *sched.UnschedulableError
	if !errors.As(err, &ue) || ue.Reason != "deadlock" {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if ue.Task == model.NoTask {
		t.Error("deadlock error should name a blocked task")
	}
}

func TestDeadlockWithPendingMinReleases(t *testing.T) {
	// Same deadlock, but one blocked task has a distant minimal release:
	// the cursor must walk the release events and still detect the
	// deadlock instead of spinning.
	b := model.NewBuilder(2, 1)
	a := b.AddTask(model.TaskSpec{Name: "a", WCET: 1, Core: 0, MinRelease: 50})
	bb := b.AddTask(model.TaskSpec{Name: "b", WCET: 1, Core: 0})
	c := b.AddTask(model.TaskSpec{Name: "c", WCET: 1, Core: 1})
	d := b.AddTask(model.TaskSpec{Name: "d", WCET: 1, Core: 1})
	b.AddEdge(d, a, 0)
	b.AddEdge(bb, c, 0)
	b.SetOrder(0, []model.TaskID{a, bb})
	b.SetOrder(1, []model.TaskID{c, d})
	g := b.MustBuild()
	_, err := Schedule(g, sched.Options{})
	if !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("err = %v, want unschedulable", err)
	}
}

func TestInterferenceMonotoneGrowth(t *testing.T) {
	// Three cores all hammering one shared bank simultaneously: pairwise
	// round-robin interference must appear on every task.
	b := model.NewBuilder(3, 1)
	for i := 0; i < 3; i++ {
		b.AddTask(model.TaskSpec{WCET: 10, Core: model.CoreID(i), Local: 8})
	}
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// Paper's Section II.A example: each of the three cores writing 8
	// words is halted 8+8 = 16 cycles.
	for i := 0; i < 3; i++ {
		if res.Interference[i] != 16 {
			t.Errorf("interference[%d] = %d, want 16", i, res.Interference[i])
		}
		if res.Release[i] != 0 {
			t.Errorf("release[%d] = %d, want 0", i, res.Release[i])
		}
	}
	if res.Makespan != 26 {
		t.Errorf("makespan = %d, want 26", res.Makespan)
	}
	if err := sched.Check(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)}, res); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestLateArrivalExtendsAliveTask(t *testing.T) {
	// A task opening later must add interference to an already-alive task
	// (whose release date nevertheless stays fixed).
	b := model.NewBuilder(2, 1)
	long := b.AddTask(model.TaskSpec{Name: "long", WCET: 100, Core: 0, Local: 50})
	late := b.AddTask(model.TaskSpec{Name: "late", WCET: 10, Core: 1, Local: 20, MinRelease: 40})
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// long: min(20, 50) = 20 interference from late; late: min(50, 20) = 20.
	if res.Release[long] != 0 || res.Interference[long] != 20 {
		t.Errorf("long: rel=%d inter=%d, want 0/20", res.Release[long], res.Interference[long])
	}
	if res.Release[late] != 40 || res.Interference[late] != 20 {
		t.Errorf("late: rel=%d inter=%d, want 40/20", res.Release[late], res.Interference[late])
	}
	if err := sched.Check(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)}, res); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestNoOverlapNoInterference(t *testing.T) {
	// Sequential dependency: producer and consumer never overlap, so no
	// interference despite sharing a bank.
	b := model.NewBuilder(2, 1)
	p := b.AddTask(model.TaskSpec{WCET: 10, Core: 0, Local: 100})
	c := b.AddTask(model.TaskSpec{WCET: 10, Core: 1, Local: 100})
	b.AddEdge(p, c, 50)
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Interference[p] != 0 || res.Interference[c] != 0 {
		t.Errorf("interference = %d/%d, want 0/0", res.Interference[p], res.Interference[c])
	}
	if res.Makespan != 20 {
		t.Errorf("makespan = %d, want 20", res.Makespan)
	}
}

func TestDisjointBanksNoInterference(t *testing.T) {
	// Per-core banks and no communication: concurrent tasks cannot
	// interfere.
	b := model.NewBuilder(2, 2)
	b.AddTask(model.TaskSpec{WCET: 10, Core: 0, Local: 100})
	b.AddTask(model.TaskSpec{WCET: 10, Core: 1, Local: 100})
	g := b.MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.TotalInterference() != 0 {
		t.Errorf("total interference = %d, want 0", res.TotalInterference())
	}
}

func TestReleaseDatesNeverBeforeDependencies(t *testing.T) {
	// Check on a realistic generated graph plus the independent checker.
	g := gen.MustLayered(gen.NewParams(6, 8))
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	res, err := Schedule(g, opts)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Check(g, opts, res); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestAliveSetBoundedByCores(t *testing.T) {
	// The complexity argument requires |A| ≤ cores at all times.
	g := gen.MustLayered(gen.NewParams(8, 12))
	alive := 0
	maxAlive := 0
	_, err := Schedule(g, sched.Options{Trace: func(e sched.Event) {
		switch e.Kind {
		case sched.EventOpen:
			alive++
			if alive > maxAlive {
				maxAlive = alive
			}
		case sched.EventClose:
			alive--
		}
	}})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if maxAlive > g.Cores {
		t.Fatalf("alive set reached %d tasks, cores = %d", maxAlive, g.Cores)
	}
}

func TestEventCountLinear(t *testing.T) {
	// The cursor visits at most ~2n events (finish dates + minimal
	// releases), the other half of the complexity argument.
	g := gen.MustLayered(gen.NewParams(10, 10))
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	n := g.NumTasks()
	if res.Iterations > 2*n+2 {
		t.Fatalf("%d cursor events for %d tasks, want ≤ 2n+2", res.Iterations, n)
	}
}

func TestGraphNotMutated(t *testing.T) {
	g := gen.Figure1()
	before := g.Clone()
	if _, err := Schedule(g, sched.Options{}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for i := range g.Tasks() {
		id := model.TaskID(i)
		a, b := g.Task(id), before.Task(id)
		if a.WCET != b.WCET || a.MinRelease != b.MinRelease || a.Local != b.Local {
			t.Fatalf("task %s mutated by scheduling", id)
		}
		for bank := range a.Demand {
			if a.Demand[bank] != b.Demand[bank] {
				t.Fatalf("task %s demand mutated", id)
			}
		}
	}
}

func TestSeparateCompetitorsMorePessimistic(t *testing.T) {
	// Ablation E7: treating same-core interferers separately must never
	// reduce interference under round-robin (Σ min(w,d) ≥ min(Σw, d)).
	for seed := int64(1); seed <= 10; seed++ {
		p := gen.NewParams(5, 8)
		p.Seed = seed
		p.Cores, p.Banks = 4, 1
		p.SharedBank = true
		g := gen.MustLayered(p)
		merged, err := Schedule(g, sched.Options{})
		if err != nil {
			t.Fatalf("seed %d merged: %v", seed, err)
		}
		separate, err := Schedule(g, sched.Options{SeparateCompetitors: true})
		if err != nil {
			t.Fatalf("seed %d separate: %v", seed, err)
		}
		if separate.TotalInterference() < merged.TotalInterference() {
			t.Errorf("seed %d: separate interference %d < merged %d — contradicts paper §II.C",
				seed, separate.TotalInterference(), merged.TotalInterference())
		}
		if err := sched.Check(g, sched.Options{SeparateCompetitors: true}, separate); err != nil {
			t.Errorf("seed %d separate check: %v", seed, err)
		}
	}
}

func TestAllArbitersProduceValidSchedules(t *testing.T) {
	arbiters := []arbiter.Arbiter{
		arbiter.NewRoundRobin(1),
		arbiter.NewRoundRobin(3),
		arbiter.NewHierarchicalRR(1, 2),
		arbiter.NewTDM(4, 2),
		arbiter.NewFixedPriority(1),
		arbiter.NewNone(),
	}
	p := gen.NewParams(4, 8)
	p.Cores, p.Banks = 4, 4
	g := gen.MustLayered(p)
	for _, arb := range arbiters {
		opts := sched.Options{Arbiter: arb}
		res, err := Schedule(g, opts)
		if err != nil {
			t.Errorf("%s: %v", arb.Name(), err)
			continue
		}
		if err := sched.Check(g, opts, res); err != nil {
			t.Errorf("%s: check: %v", arb.Name(), err)
		}
	}
}
