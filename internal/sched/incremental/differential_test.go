package incremental

import (
	"fmt"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// differentialCorpus enumerates the seeded random DAGs the cached fast path
// is differentially tested on: both benchmark families (LS-like shapes with
// many small layers, NL-like shapes with few wide layers) across platform
// geometries, bank layouts, and seeds. Kept in one place so the corpus size
// is auditable — the acceptance bar is ≥ 200 instances.
func differentialCorpus() []gen.Params {
	shapes := []struct {
		family       string
		layers, size int
	}{
		{"LS", 8, 4}, {"LS", 12, 4}, {"LS", 6, 8}, // fixed small layer size, growing depth
		{"NL", 4, 8}, {"NL", 4, 12}, {"NL", 6, 10}, // fixed shallow depth, growing width
	}
	platforms := []struct {
		cores, banks int
		shared       bool
	}{
		{4, 4, false},
		{8, 8, false},
		{4, 1, true}, // maximal contention: every task on every other's bank
	}
	var corpus []gen.Params
	for _, sh := range shapes {
		for _, pl := range platforms {
			for seed := int64(1); seed <= 12; seed++ {
				p := gen.NewParams(sh.layers, sh.size)
				p.Seed = seed
				p.Cores, p.Banks, p.SharedBank = pl.cores, pl.banks, pl.shared
				corpus = append(corpus, p)
			}
		}
	}
	return corpus
}

// identical asserts every analyzed quantity matches bit-for-bit — not just
// the Release/Response pair that Result.Equal compares, but the per-bank
// interference split and the event count too, so a cache bug cannot hide in
// an aggregate.
func identical(t *testing.T, label string, fast, slow *sched.Result) {
	t.Helper()
	if d := fast.Diff(slow); d != "" {
		t.Fatalf("%s: fast/oracle schedules diverge: %s", label, d)
	}
	if fast.Makespan != slow.Makespan {
		t.Fatalf("%s: makespan %d (fast) vs %d (oracle)", label, fast.Makespan, slow.Makespan)
	}
	if fast.Iterations != slow.Iterations {
		t.Fatalf("%s: iterations %d (fast) vs %d (oracle)", label, fast.Iterations, slow.Iterations)
	}
	for i := range fast.Interference {
		if fast.Interference[i] != slow.Interference[i] {
			t.Fatalf("%s: task %d interference %d (fast) vs %d (oracle)",
				label, i, fast.Interference[i], slow.Interference[i])
		}
		for b := range fast.PerBank[i] {
			if fast.PerBank[i][b] != slow.PerBank[i][b] {
				t.Fatalf("%s: task %d bank %d: %d (fast) vs %d (oracle)",
					label, i, b, fast.PerBank[i][b], slow.PerBank[i][b])
			}
		}
	}
}

// TestCachedFastPathMatchesOracle is the differential property test behind
// the cached-IBUS kernel: on every corpus instance, under every additive
// arbiter and both competitor-merging modes, the memoized fast path must
// produce a bit-identical schedule to the uncached reference path
// (Options.DisableFastPath), which recomputes the full bound over the
// competitor set at every update.
func TestCachedFastPathMatchesOracle(t *testing.T) {
	arbiters := []arbiter.Arbiter{
		arbiter.NewRoundRobin(1),
		arbiter.NewRoundRobin(3),
		arbiter.NewWeightedRR(1, func(c model.CoreID) int64 { return int64(c)%2 + 1 }),
	}
	corpus := differentialCorpus()
	if len(corpus) < 200 {
		t.Fatalf("differential corpus has %d instances, want ≥ 200", len(corpus))
	}
	instances := 0
	for ci, p := range corpus {
		g, err := gen.Layered(p)
		if err != nil {
			t.Fatalf("corpus[%d]: %v", ci, err)
		}
		// Rotate arbiter and merging mode across the corpus so every
		// combination appears many times without multiplying the runtime.
		arb := arbiters[ci%len(arbiters)]
		separate := ci%2 == 1
		label := fmt.Sprintf("corpus[%d] %d layers × %d, %d×%d shared=%v arb=%s separate=%v",
			ci, p.Layers, p.LayerSize, p.Cores, p.Banks, p.SharedBank, arb.Name(), separate)

		base := sched.Options{Arbiter: arb, SeparateCompetitors: separate}
		fast, err := Schedule(g, base)
		if err != nil {
			t.Fatalf("%s: fast path: %v", label, err)
		}
		oracle := base
		oracle.DisableFastPath = true
		slow, err := Schedule(g, oracle)
		if err != nil {
			t.Fatalf("%s: oracle path: %v", label, err)
		}
		identical(t, label, fast, slow)
		if err := sched.Check(g, base, fast); err != nil {
			t.Fatalf("%s: invariant check: %v", label, err)
		}
		instances++
	}
	if instances < 200 {
		t.Fatalf("only %d instances compared", instances)
	}
}

// TestOracleFlagReachesNonAdditiveArbiters pins the flag's semantics for
// policies that never had a fast path: DisableFastPath must be a no-op, not
// an error or a different schedule.
func TestOracleFlagReachesNonAdditiveArbiters(t *testing.T) {
	p := gen.NewParams(6, 6)
	p.Cores, p.Banks = 4, 4
	g := gen.MustLayered(p)
	arb := arbiter.NewTDM(4, 2)
	a, err := Schedule(g, sched.Options{Arbiter: arb})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(g, sched.Options{Arbiter: arb, DisableFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "tdm", a, b)
}
