package incremental

import (
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// allocGraph builds the steady-state workload for the allocation guards: big
// enough that the event loop dominates, small enough to keep the guard fast.
func allocGraph(t testing.TB) *model.Graph {
	t.Helper()
	p := gen.NewParams(8, 16)
	p.Seed = 3
	p.Cores, p.Banks = 8, 4
	return gen.MustLayered(p)
}

// TestScheduleSteadyStateAllocationFree pins the tentpole's allocation
// contract: after warm-up runs have grown every pooled buffer (state, result,
// checkpoint store) to its high-water mark, repeated cold Schedule calls on
// the same Scheduler perform zero heap allocations.
func TestScheduleSteadyStateAllocationFree(t *testing.T) {
	g := allocGraph(t)
	sc := NewScheduler(g, sched.Options{})
	// Two warm-ups: the first grows the buffers, the second runs with the
	// steady-state stride derived from the first run's event count (a stride
	// change reshapes which events land checkpoints, hence buffer sizes).
	for i := 0; i < 2; i++ {
		if _, err := sc.Schedule(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := sc.Schedule(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule allocates %.1f objects per run, want 0", avg)
	}
}

// TestRescheduleSteadyStateAllocationFree pins the same contract for the
// neighborhood-evaluation cycle: swap, warm Reschedule, swap back. The edits
// slice is prebuilt and passed via ... so the call itself does not allocate —
// exactly how the explorer drives it.
func TestRescheduleSteadyStateAllocationFree(t *testing.T) {
	g := allocGraph(t)
	sc := NewScheduler(g, sched.Options{})
	if _, err := sc.Schedule(); err != nil {
		t.Fatal(err)
	}
	sites := legalSwapSites(g)
	if len(sites) == 0 {
		t.Fatal("no legal swap sites")
	}
	site := sites[len(sites)/2]
	core, pos := model.CoreID(site[0]), site[1]
	edits := []Edit{{Core: core, From: pos}}
	cycle := func() {
		g.SwapOrder(core, pos)
		if _, err := sc.Reschedule(edits...); err != nil {
			t.Fatal(err)
		}
		g.SwapOrder(core, pos)
		if _, err := sc.Reschedule(edits...); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm-up: replay suffix may grow comp/terms high-water marks
	avg := testing.AllocsPerRun(10, cycle)
	if avg != 0 {
		t.Fatalf("steady-state swap/Reschedule cycle allocates %.1f objects per run, want 0", avg)
	}
}
