package sched

import (
	"errors"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/model"
)

// figure1 rebuilds the paper's Figure 1 graph locally (the gen package
// depends on model only, but sched cannot import gen without a cycle in the
// test topology we want to keep one-directional).
func figure1(t testing.TB) *model.Graph {
	t.Helper()
	b := model.NewBuilder(4, 1)
	b.SetBankPolicy(model.SharedBank)
	n0 := b.AddTask(model.TaskSpec{Name: "n0", WCET: 2, Core: 0})
	n1 := b.AddTask(model.TaskSpec{Name: "n1", WCET: 2, Core: 1, MinRelease: 2})
	n2 := b.AddTask(model.TaskSpec{Name: "n2", WCET: 1, Core: 1, MinRelease: 4})
	n3 := b.AddTask(model.TaskSpec{Name: "n3", WCET: 3, Core: 2})
	n4 := b.AddTask(model.TaskSpec{Name: "n4", WCET: 2, Core: 3, MinRelease: 4})
	b.AddEdge(n0, n1, 1)
	b.AddEdge(n0, n2, 1)
	b.AddEdge(n0, n4, 1)
	b.AddEdge(n1, n2, 1)
	b.AddEdge(n3, n4, 1)
	return b.MustBuild()
}

// figure1Result builds the known-correct schedule of Figure 1 by hand.
func figure1Result() *Result {
	r := NewResult("hand", 5, 1)
	copy(r.Release, []model.Cycles{0, 3, 6, 0, 5})
	copy(r.Interference, []model.Cycles{1, 1, 0, 2, 0})
	wcets := []model.Cycles{2, 2, 1, 3, 2}
	for i := range wcets {
		r.Response[i] = wcets[i] + r.Interference[i]
		r.PerBank[i][0] = r.Interference[i]
	}
	r.RecomputeMakespan()
	return r
}

func TestCheckAcceptsCorrectSchedule(t *testing.T) {
	g := figure1(t)
	if err := Check(g, Options{}, figure1Result()); err != nil {
		t.Fatalf("Check rejected the paper's schedule: %v", err)
	}
}

func TestCheckRejectsCorruptions(t *testing.T) {
	g := figure1(t)
	corrupt := []struct {
		name string
		mut  func(*Result)
		want string
	}{
		{"wrong response", func(r *Result) { r.Response[0] = 99 }, "response"},
		{"negative interference", func(r *Result) { r.Interference[0] = -1; r.Response[0] = 1 }, "negative"},
		{"per-bank mismatch", func(r *Result) { r.PerBank[0][0] = 5 }, "per-bank"},
		{"before min release", func(r *Result) { r.Release[2] = 3; r.PerBank[2][0] = 0 }, "minimal release"},
		{"before dependency", func(r *Result) {
			r.Release[4] = 4 // n3 finishes at 5
		}, "dependency"},
		{"too late release", func(r *Result) {
			r.Release[2] = 7
			r.Makespan = 8
		}, "earliest-release"},
		{"interference inconsistent", func(r *Result) {
			r.Interference[2] = 5
			r.Response[2] = 6
			r.PerBank[2][0] = 5
			r.Makespan = 12
		}, "recomputation"},
		{"wrong makespan", func(r *Result) { r.Makespan = 100 }, "makespan"},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			r := figure1Result()
			tc.mut(r)
			err := Check(g, Options{}, r)
			if err == nil {
				t.Fatalf("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCheckShapeMismatch(t *testing.T) {
	g := figure1(t)
	r := NewResult("x", 3, 1)
	if err := Check(g, Options{}, r); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("err = %v, want shape mismatch", err)
	}
}

func TestCheckDeadlineViolationReported(t *testing.T) {
	g := figure1(t)
	r := figure1Result()
	if err := Check(g, Options{Deadline: 6}, r); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline violation", err)
	}
}

func TestWindowInterferencePaperExample(t *testing.T) {
	// Three tasks, one bank, fully overlapping windows, 8 accesses each:
	// the Section II.A example (16 cycles each).
	b := model.NewBuilder(3, 1)
	for i := 0; i < 3; i++ {
		b.AddTask(model.TaskSpec{WCET: 10, Core: model.CoreID(i), Local: 8})
	}
	g := b.MustBuild()
	rel := []model.Cycles{0, 0, 0}
	fin := []model.Cycles{10, 10, 10}
	perBank := make([]model.Cycles, 1)
	for dst := 0; dst < 3; dst++ {
		got := WindowInterference(g, arbiter.NewRoundRobin(1), false, rel, fin, model.TaskID(dst), perBank)
		if got != 16 {
			t.Errorf("dst %d: interference = %d, want 16", dst, got)
		}
		if perBank[0] != 16 {
			t.Errorf("dst %d: perBank = %v", dst, perBank)
		}
	}
}

func TestWindowInterferenceHalfOpenWindows(t *testing.T) {
	// Task B starts exactly when A finishes: no overlap, no interference.
	b := model.NewBuilder(2, 1)
	b.AddTask(model.TaskSpec{WCET: 10, Core: 0, Local: 8})
	b.AddTask(model.TaskSpec{WCET: 10, Core: 1, Local: 8})
	g := b.MustBuild()
	rel := []model.Cycles{0, 10}
	fin := []model.Cycles{10, 20}
	if got := WindowInterference(g, arbiter.NewRoundRobin(1), false, rel, fin, 0, nil); got != 0 {
		t.Errorf("touching windows: interference = %d, want 0", got)
	}
	// One cycle of overlap is enough to count the full demand bound.
	rel[1] = 9
	if got := WindowInterference(g, arbiter.NewRoundRobin(1), false, rel, fin, 0, nil); got != 8 {
		t.Errorf("overlapping windows: interference = %d, want 8", got)
	}
}

func TestWindowInterferenceMergingVsSeparate(t *testing.T) {
	// Two tasks of the same core interfering with dst: merged they count
	// min(w1+w2, d); separate they count min(w1,d)+min(w2,d).
	b := model.NewBuilder(2, 1)
	b.AddTask(model.TaskSpec{WCET: 100, Core: 0, Local: 10}) // dst
	b.AddTask(model.TaskSpec{WCET: 10, Core: 1, Local: 8})
	b.AddTask(model.TaskSpec{WCET: 10, Core: 1, Local: 8})
	g := b.MustBuild()
	rel := []model.Cycles{0, 0, 10}
	fin := []model.Cycles{100, 10, 20}
	merged := WindowInterference(g, arbiter.NewRoundRobin(1), false, rel, fin, 0, nil)
	separate := WindowInterference(g, arbiter.NewRoundRobin(1), true, rel, fin, 0, nil)
	if merged != 10 { // min(8+8, 10)
		t.Errorf("merged = %d, want 10", merged)
	}
	if separate != 16 { // min(8,10) + min(8,10)
		t.Errorf("separate = %d, want 16", separate)
	}
}

func TestWindowInterferenceZeroDemandDst(t *testing.T) {
	b := model.NewBuilder(2, 1)
	b.AddTask(model.TaskSpec{WCET: 10, Core: 0}) // no demand
	b.AddTask(model.TaskSpec{WCET: 10, Core: 1, Local: 50})
	g := b.MustBuild()
	rel := []model.Cycles{0, 0}
	fin := []model.Cycles{10, 10}
	if got := WindowInterference(g, arbiter.NewRoundRobin(1), false, rel, fin, 0, nil); got != 0 {
		t.Errorf("zero-demand destination: %d, want 0", got)
	}
}

func TestResultHelpers(t *testing.T) {
	r := figure1Result()
	if f := r.Finish(3); f != 5 {
		t.Errorf("Finish(n3) = %d, want 5", f)
	}
	if from, to := r.Window(1); from != 3 || to != 6 {
		t.Errorf("Window(n1) = [%d, %d), want [3, 6)", from, to)
	}
	if !r.Overlaps(0, 3) {
		t.Error("n0 and n3 must overlap")
	}
	if r.Overlaps(0, 2) {
		t.Error("n0 [0,3) and n2 [6,7) must not overlap")
	}
	if ti := r.TotalInterference(); ti != 4 {
		t.Errorf("TotalInterference = %d, want 4", ti)
	}
	if r.Makespan != 7 {
		t.Errorf("Makespan = %d, want 7", r.Makespan)
	}
	if s := r.String(); !strings.Contains(s, "makespan=7") {
		t.Errorf("String = %q", s)
	}
}

func TestResultEqualAndDiff(t *testing.T) {
	a, b := figure1Result(), figure1Result()
	if !a.Equal(b) || a.Diff(b) != "" {
		t.Fatal("identical results reported different")
	}
	b.Release[2] = 5
	if a.Equal(b) {
		t.Fatal("different releases reported equal")
	}
	if d := a.Diff(b); !strings.Contains(d, "release") {
		t.Errorf("Diff = %q", d)
	}
	c := NewResult("x", 3, 1)
	if a.Equal(c) {
		t.Fatal("different sizes reported equal")
	}
	if d := a.Diff(c); !strings.Contains(d, "task counts") {
		t.Errorf("Diff = %q", d)
	}
	b = figure1Result()
	b.Response[4] = 9
	if d := a.Diff(b); !strings.Contains(d, "response") {
		t.Errorf("Diff = %q", d)
	}
}

func TestUnschedulableErrors(t *testing.T) {
	err := DeadlineExceeded(42)
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatal("DeadlineExceeded does not wrap ErrUnschedulable")
	}
	if !strings.Contains(err.Error(), "deadline") || !strings.Contains(err.Error(), "42") {
		t.Errorf("Error = %q", err.Error())
	}
	err = Deadlock(7, 3)
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatal("Deadlock does not wrap ErrUnschedulable")
	}
	if !strings.Contains(err.Error(), "τ3") {
		t.Errorf("Error = %q", err.Error())
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.EffectiveArbiter() == nil || o.EffectiveArbiter().Name() != "round-robin(L=1)" {
		t.Errorf("default arbiter = %v", o.EffectiveArbiter())
	}
	if o.EffectiveDeadline() != model.Infinity {
		t.Errorf("default deadline = %d", o.EffectiveDeadline())
	}
	o.Deadline = 5
	if o.EffectiveDeadline() != 5 {
		t.Errorf("deadline = %d", o.EffectiveDeadline())
	}
}

func TestEventStrings(t *testing.T) {
	cases := map[string]Event{
		"cursor":       {Kind: EventCursor, Time: 3, Task: model.NoTask},
		"open":         {Kind: EventOpen, Time: 3, Task: 1},
		"close":        {Kind: EventClose, Time: 3, Task: 1},
		"interference": {Kind: EventInterference, Time: 3, Task: 1, Value: 9},
	}
	for want, e := range cases {
		if s := e.String(); !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, want substring %q", s, want)
		}
	}
	if s := EventKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestGantt(t *testing.T) {
	g := figure1(t)
	out := Gantt(g, figure1Result(), 60)
	for _, want := range []string{"PE0", "PE3", "n0 I:1", "n3 I:2", "makespan = 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
	// Degenerate widths must not panic and still render rows.
	for _, w := range []int{0, 1, 19, 500} {
		if out := Gantt(g, figure1Result(), w); !strings.Contains(out, "PE0") {
			t.Errorf("width %d: missing PE0", w)
		}
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	g := model.NewBuilder(2, 1).MustBuild()
	r := NewResult("x", 0, 1)
	if out := Gantt(g, r, 40); !strings.Contains(out, "makespan = 0") {
		t.Errorf("empty Gantt = %q", out)
	}
}
