package sched

import (
	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/model"
)

// WindowInterference computes, from scratch, the interference received by
// task dst given every task's execution window: the tasks considered are
// those whose half-open windows [rel, fin) overlap dst's, mapped to a
// different core, with demand on a common bank. Competitor demands are
// grouped per core unless separate is true (the Section II.C merging
// hypothesis and its ablation).
//
// The fixed-point baseline calls this in every pass — it *is* the expensive
// global recomputation the paper's algorithm avoids — and the independent
// schedule checker uses it to cross-validate both schedulers' outputs.
//
// perBank, when non-nil, must have length g.Banks and receives the per-bank
// split. The return value is the total over banks.
func WindowInterference(
	g *model.Graph,
	arb arbiter.Arbiter,
	separate bool,
	rel, fin []model.Cycles,
	dst model.TaskID,
	perBank []model.Cycles,
) model.Cycles {
	d := g.Task(dst)
	var total model.Cycles
	if perBank != nil {
		for b := range perBank {
			perBank[b] = 0
		}
	}
	if d.TotalDemand() == 0 {
		return 0
	}
	// Gather overlapping interferers once, then split by bank.
	var overlapping []*model.Task
	for i, t := range g.Tasks() {
		id := model.TaskID(i)
		if id == dst || t.Core == d.Core {
			continue
		}
		if rel[dst] < fin[id] && rel[id] < fin[dst] {
			overlapping = append(overlapping, t)
		}
	}
	if len(overlapping) == 0 {
		return 0
	}
	comps := make([]arbiter.Request, 0, len(overlapping))
	for b := 0; b < g.Banks; b++ {
		demand := model.Accesses(0)
		if b < len(d.Demand) {
			demand = d.Demand[b]
		}
		if demand == 0 {
			continue
		}
		comps = comps[:0]
		for _, src := range overlapping {
			if !src.AccessesBank(model.BankID(b)) {
				continue
			}
			w := src.Demand[b]
			if separate {
				comps = append(comps, arbiter.Request{Core: src.Core, Demand: w})
				continue
			}
			merged := false
			for j := range comps {
				if comps[j].Core == src.Core {
					comps[j].Demand += w
					merged = true
					break
				}
			}
			if !merged {
				comps = append(comps, arbiter.Request{Core: src.Core, Demand: w})
			}
		}
		if len(comps) == 0 {
			continue
		}
		bound := arb.Bound(arbiter.Request{Core: d.Core, Demand: demand}, comps, model.BankID(b))
		if perBank != nil {
			perBank[b] = bound
		}
		total += bound
	}
	return total
}
