// Package sched defines the common vocabulary of the two interference-aware
// schedulers in this repository: the problem options, the schedule result
// (release dates Θ and response times R), unschedulability errors, the
// shared interference computation over execution windows, an independent
// invariant checker, and an ASCII Gantt renderer in the style of the
// paper's Figure 1.
//
// The actual algorithms live in the subpackages:
//
//   - sched/incremental — the paper's contribution, the O(n²) time-cursor
//     algorithm (Algorithm 1);
//   - sched/fixpoint — the O(n⁴) double fixed-point baseline of Rihani et
//     al. (RTNS 2016) that the paper improves upon.
//
// Both consume the same inputs and produce the same Result type, and are
// cross-validated for bit-identical outputs in the integration tests.
package sched

import (
	"errors"
	"fmt"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/model"
)

// Options parameterizes a scheduling run. The zero value asks for a flat
// round-robin bus with single-cycle service, no deadline, and the paper's
// same-core competitor merging.
type Options struct {
	// Arbiter is the bus-arbitration policy (IBUS). Nil selects flat
	// round-robin with WordLatency 1.
	Arbiter arbiter.Arbiter

	// Deadline aborts the analysis as unschedulable when the schedule
	// horizon passes it. Zero means no deadline.
	Deadline model.Cycles

	// SeparateCompetitors disables the paper's Section II.C hypothesis of
	// merging same-core interferers into a single big task, treating every
	// interfering task as its own competitor instead. Merging is the
	// default because the paper reports it to be *less* pessimistic; this
	// flag exists for the ablation experiment quantifying that claim.
	SeparateCompetitors bool

	// DisableFastPath forces the incremental scheduler onto its uncached
	// reference path: every interference update re-evaluates the full
	// arbiter bound over the accumulated competitor set, even for additive
	// policies whose cached per-competitor terms would allow an O(1)
	// update. The two paths are differentially tested for bit-identical
	// schedules; this flag exists so the slow path stays reachable as the
	// oracle (and to quantify the cache's speedup in benchmarks).
	DisableFastPath bool

	// Trace, when non-nil, receives the incremental scheduler's event
	// stream (cursor advances, openings, closings, interference updates) —
	// the data behind the paper's Figure 2 snapshot. It is ignored by the
	// fixed-point baseline, which has no cursor.
	Trace func(Event)

	// Cancel, when non-nil and closed, aborts the analysis with
	// ErrCanceled at the next algorithm step. The benchmark harness uses
	// it to impose wall-clock timeouts on the O(n⁴) baseline, as the
	// paper's benchmarks do.
	Cancel <-chan struct{}

	// Parallelism is the number of worker goroutines a backend may use
	// *inside* one analysis: the per-event Alive-set exchange of the
	// incremental scheduler, the per-round interference pass of the
	// fixed-point baseline, and the per-task bound loop of the RTA screen
	// partition their work across this many fixed partitions. 0 and 1 both
	// select the sequential path, preserving the pre-parallel behavior
	// exactly. Results are bit-identical at every level: partitions have
	// fixed, size-derived boundaries and each partition replays the exact
	// per-destination accumulation order of the sequential code, so the
	// reduction is deterministic by construction (see DESIGN §3.7), not by
	// synchronization. Parallelism composes with, and is independent of,
	// analysis-level concurrency such as bench sweeps' Jobs.
	Parallelism int
}

// Workers resolves Parallelism to the effective partition count: at least 1.
func (o Options) Workers() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// Canceled reports whether the options' cancel channel is closed.
func (o Options) Canceled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// EffectiveArbiter resolves the arbitration policy, applying the default.
func (o Options) EffectiveArbiter() arbiter.Arbiter {
	if o.Arbiter == nil {
		return arbiter.NewRoundRobin(1)
	}
	return o.Arbiter
}

// EffectiveDeadline resolves the deadline, mapping "none" to Infinity.
func (o Options) EffectiveDeadline() model.Cycles {
	if o.Deadline <= 0 {
		return model.Infinity
	}
	return o.Deadline
}

// EventKind classifies incremental-scheduler trace events.
type EventKind int

const (
	// EventCursor reports the time cursor jumping to Event.Time.
	EventCursor EventKind = iota
	// EventOpen reports Event.Task being released at Event.Time.
	EventOpen
	// EventClose reports Event.Task finishing at Event.Time.
	EventClose
	// EventInterference reports Event.Task's total interference growing to
	// Event.Value at time Event.Time.
	EventInterference
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCursor:
		return "cursor"
	case EventOpen:
		return "open"
	case EventClose:
		return "close"
	case EventInterference:
		return "interference"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one step of the incremental scheduler's execution, exposed for
// tracing and for the Figure 2 cursor-walkthrough example.
type Event struct {
	Kind  EventKind
	Time  model.Cycles
	Task  model.TaskID // NoTask for EventCursor
	Value model.Cycles // interference total for EventInterference
}

// String renders a compact trace line.
func (e Event) String() string {
	switch e.Kind {
	case EventCursor:
		return fmt.Sprintf("t=%-6d cursor", e.Time)
	case EventInterference:
		return fmt.Sprintf("t=%-6d %s %s I=%d", e.Time, e.Kind, e.Task, e.Value)
	default:
		return fmt.Sprintf("t=%-6d %s %s", e.Time, e.Kind, e.Task)
	}
}

// ErrUnschedulable is the sentinel wrapped by every scheduling failure, so
// callers can test errors.Is(err, sched.ErrUnschedulable).
var ErrUnschedulable = errors.New("unschedulable")

// ErrCanceled reports an analysis aborted through Options.Cancel. It is a
// measurement artifact (timeout), not a schedulability verdict.
var ErrCanceled = errors.New("analysis canceled")

// UnschedulableError reports why and when an analysis gave up.
type UnschedulableError struct {
	// Reason is "deadline" or "deadlock".
	Reason string
	// Time is the analysis horizon at failure.
	Time model.Cycles
	// Task names an involved task when known (the first blocked task for
	// deadlocks), NoTask otherwise.
	Task model.TaskID
}

// Error implements error.
func (e *UnschedulableError) Error() string {
	if e.Task != model.NoTask {
		//mialint:ignore hotpathalloc -- error formatting runs only after the analysis has already failed
		return fmt.Sprintf("unschedulable: %s at t=%d (task %s)", e.Reason, e.Time, e.Task)
	}
	//mialint:ignore hotpathalloc -- error formatting runs only after the analysis has already failed
	return fmt.Sprintf("unschedulable: %s at t=%d", e.Reason, e.Time)
}

// Unwrap makes errors.Is(err, ErrUnschedulable) true.
func (e *UnschedulableError) Unwrap() error { return ErrUnschedulable }

// DeadlineExceeded builds the deadline-crossed failure.
func DeadlineExceeded(t model.Cycles) error {
	//mialint:ignore hotpathalloc -- termination path: an unschedulable verdict ends the run and the error carries per-call time context
	return &UnschedulableError{Reason: "deadline", Time: t, Task: model.NoTask}
}

// Deadlock builds the dependency/order-deadlock failure.
func Deadlock(t model.Cycles, task model.TaskID) error {
	//mialint:ignore hotpathalloc -- termination path: an unschedulable verdict ends the run and the error carries per-call (time, task) context
	return &UnschedulableError{Reason: "deadlock", Time: t, Task: task}
}
